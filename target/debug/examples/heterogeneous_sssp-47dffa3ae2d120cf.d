/root/repo/target/debug/examples/heterogeneous_sssp-47dffa3ae2d120cf.d: crates/apps/../../examples/heterogeneous_sssp.rs

/root/repo/target/debug/examples/heterogeneous_sssp-47dffa3ae2d120cf: crates/apps/../../examples/heterogeneous_sssp.rs

crates/apps/../../examples/heterogeneous_sssp.rs:
