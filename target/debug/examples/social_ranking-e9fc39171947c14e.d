/root/repo/target/debug/examples/social_ranking-e9fc39171947c14e.d: crates/apps/../../examples/social_ranking.rs

/root/repo/target/debug/examples/social_ranking-e9fc39171947c14e: crates/apps/../../examples/social_ranking.rs

crates/apps/../../examples/social_ranking.rs:
