/root/repo/target/debug/examples/social_ranking-72e02c6a2980f631.d: crates/apps/../../examples/social_ranking.rs Cargo.toml

/root/repo/target/debug/examples/libsocial_ranking-72e02c6a2980f631.rmeta: crates/apps/../../examples/social_ranking.rs Cargo.toml

crates/apps/../../examples/social_ranking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
