/root/repo/target/debug/examples/quickstart-5ad6d537d2ae42bf.d: crates/apps/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-5ad6d537d2ae42bf.rmeta: crates/apps/../../examples/quickstart.rs Cargo.toml

crates/apps/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
