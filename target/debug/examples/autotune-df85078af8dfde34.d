/root/repo/target/debug/examples/autotune-df85078af8dfde34.d: crates/apps/../../examples/autotune.rs

/root/repo/target/debug/examples/autotune-df85078af8dfde34: crates/apps/../../examples/autotune.rs

crates/apps/../../examples/autotune.rs:
