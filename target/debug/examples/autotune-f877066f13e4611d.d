/root/repo/target/debug/examples/autotune-f877066f13e4611d.d: crates/apps/../../examples/autotune.rs Cargo.toml

/root/repo/target/debug/examples/libautotune-f877066f13e4611d.rmeta: crates/apps/../../examples/autotune.rs Cargo.toml

crates/apps/../../examples/autotune.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
