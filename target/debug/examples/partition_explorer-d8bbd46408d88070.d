/root/repo/target/debug/examples/partition_explorer-d8bbd46408d88070.d: crates/apps/../../examples/partition_explorer.rs

/root/repo/target/debug/examples/partition_explorer-d8bbd46408d88070: crates/apps/../../examples/partition_explorer.rs

crates/apps/../../examples/partition_explorer.rs:
