/root/repo/target/debug/examples/heterogeneous_sssp-871cf89409aff375.d: crates/apps/../../examples/heterogeneous_sssp.rs Cargo.toml

/root/repo/target/debug/examples/libheterogeneous_sssp-871cf89409aff375.rmeta: crates/apps/../../examples/heterogeneous_sssp.rs Cargo.toml

crates/apps/../../examples/heterogeneous_sssp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
