/root/repo/target/debug/examples/quickstart-bf7a856978954ef9.d: crates/apps/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-bf7a856978954ef9: crates/apps/../../examples/quickstart.rs

crates/apps/../../examples/quickstart.rs:
