/root/repo/target/debug/examples/partition_explorer-675f0c739ae4c41e.d: crates/apps/../../examples/partition_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libpartition_explorer-675f0c739ae4c41e.rmeta: crates/apps/../../examples/partition_explorer.rs Cargo.toml

crates/apps/../../examples/partition_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
