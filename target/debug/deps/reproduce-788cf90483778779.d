/root/repo/target/debug/deps/reproduce-788cf90483778779.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-788cf90483778779: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
