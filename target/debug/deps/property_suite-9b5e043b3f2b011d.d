/root/repo/target/debug/deps/property_suite-9b5e043b3f2b011d.d: crates/apps/../../tests/property_suite.rs

/root/repo/target/debug/deps/property_suite-9b5e043b3f2b011d: crates/apps/../../tests/property_suite.rs

crates/apps/../../tests/property_suite.rs:
