/root/repo/target/debug/deps/phigraph_device-97ce5e44d6d2edb8.d: crates/device/src/lib.rs crates/device/src/balance.rs crates/device/src/cost.rs crates/device/src/counters.rs crates/device/src/pool.rs crates/device/src/sched.rs crates/device/src/spec.rs

/root/repo/target/debug/deps/libphigraph_device-97ce5e44d6d2edb8.rlib: crates/device/src/lib.rs crates/device/src/balance.rs crates/device/src/cost.rs crates/device/src/counters.rs crates/device/src/pool.rs crates/device/src/sched.rs crates/device/src/spec.rs

/root/repo/target/debug/deps/libphigraph_device-97ce5e44d6d2edb8.rmeta: crates/device/src/lib.rs crates/device/src/balance.rs crates/device/src/cost.rs crates/device/src/counters.rs crates/device/src/pool.rs crates/device/src/sched.rs crates/device/src/spec.rs

crates/device/src/lib.rs:
crates/device/src/balance.rs:
crates/device/src/cost.rs:
crates/device/src/counters.rs:
crates/device/src/pool.rs:
crates/device/src/sched.rs:
crates/device/src/spec.rs:
