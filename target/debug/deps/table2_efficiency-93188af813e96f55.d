/root/repo/target/debug/deps/table2_efficiency-93188af813e96f55.d: crates/bench/benches/table2_efficiency.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_efficiency-93188af813e96f55.rmeta: crates/bench/benches/table2_efficiency.rs Cargo.toml

crates/bench/benches/table2_efficiency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
