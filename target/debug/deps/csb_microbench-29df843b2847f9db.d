/root/repo/target/debug/deps/csb_microbench-29df843b2847f9db.d: crates/bench/benches/csb_microbench.rs Cargo.toml

/root/repo/target/debug/deps/libcsb_microbench-29df843b2847f9db.rmeta: crates/bench/benches/csb_microbench.rs Cargo.toml

crates/bench/benches/csb_microbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
