/root/repo/target/debug/deps/partition_integration-942c0dccaa701836.d: crates/apps/../../tests/partition_integration.rs Cargo.toml

/root/repo/target/debug/deps/libpartition_integration-942c0dccaa701836.rmeta: crates/apps/../../tests/partition_integration.rs Cargo.toml

crates/apps/../../tests/partition_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
