/root/repo/target/debug/deps/app_correctness-d4d41f3e46e03387.d: crates/apps/../../tests/app_correctness.rs Cargo.toml

/root/repo/target/debug/deps/libapp_correctness-d4d41f3e46e03387.rmeta: crates/apps/../../tests/app_correctness.rs Cargo.toml

crates/apps/../../tests/app_correctness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
