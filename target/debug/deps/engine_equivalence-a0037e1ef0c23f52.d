/root/repo/target/debug/deps/engine_equivalence-a0037e1ef0c23f52.d: crates/apps/../../tests/engine_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libengine_equivalence-a0037e1ef0c23f52.rmeta: crates/apps/../../tests/engine_equivalence.rs Cargo.toml

crates/apps/../../tests/engine_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
