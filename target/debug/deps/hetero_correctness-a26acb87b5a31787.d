/root/repo/target/debug/deps/hetero_correctness-a26acb87b5a31787.d: crates/apps/../../tests/hetero_correctness.rs

/root/repo/target/debug/deps/hetero_correctness-a26acb87b5a31787: crates/apps/../../tests/hetero_correctness.rs

crates/apps/../../tests/hetero_correctness.rs:
