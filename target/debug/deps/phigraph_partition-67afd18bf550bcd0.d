/root/repo/target/debug/deps/phigraph_partition-67afd18bf550bcd0.d: crates/partition/src/lib.rs crates/partition/src/file.rs crates/partition/src/mlp/mod.rs crates/partition/src/mlp/coarsen.rs crates/partition/src/mlp/initial.rs crates/partition/src/mlp/kway.rs crates/partition/src/mlp/kway_refine.rs crates/partition/src/mlp/matching.rs crates/partition/src/mlp/refine.rs crates/partition/src/ratio.rs crates/partition/src/scheme.rs crates/partition/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libphigraph_partition-67afd18bf550bcd0.rmeta: crates/partition/src/lib.rs crates/partition/src/file.rs crates/partition/src/mlp/mod.rs crates/partition/src/mlp/coarsen.rs crates/partition/src/mlp/initial.rs crates/partition/src/mlp/kway.rs crates/partition/src/mlp/kway_refine.rs crates/partition/src/mlp/matching.rs crates/partition/src/mlp/refine.rs crates/partition/src/ratio.rs crates/partition/src/scheme.rs crates/partition/src/stats.rs Cargo.toml

crates/partition/src/lib.rs:
crates/partition/src/file.rs:
crates/partition/src/mlp/mod.rs:
crates/partition/src/mlp/coarsen.rs:
crates/partition/src/mlp/initial.rs:
crates/partition/src/mlp/kway.rs:
crates/partition/src/mlp/kway_refine.rs:
crates/partition/src/mlp/matching.rs:
crates/partition/src/mlp/refine.rs:
crates/partition/src/ratio.rs:
crates/partition/src/scheme.rs:
crates/partition/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
