/root/repo/target/debug/deps/phigraph_partition-6a1c35f3e3adbbd8.d: crates/partition/src/lib.rs crates/partition/src/file.rs crates/partition/src/mlp/mod.rs crates/partition/src/mlp/coarsen.rs crates/partition/src/mlp/initial.rs crates/partition/src/mlp/kway.rs crates/partition/src/mlp/kway_refine.rs crates/partition/src/mlp/matching.rs crates/partition/src/mlp/refine.rs crates/partition/src/ratio.rs crates/partition/src/scheme.rs crates/partition/src/stats.rs

/root/repo/target/debug/deps/phigraph_partition-6a1c35f3e3adbbd8: crates/partition/src/lib.rs crates/partition/src/file.rs crates/partition/src/mlp/mod.rs crates/partition/src/mlp/coarsen.rs crates/partition/src/mlp/initial.rs crates/partition/src/mlp/kway.rs crates/partition/src/mlp/kway_refine.rs crates/partition/src/mlp/matching.rs crates/partition/src/mlp/refine.rs crates/partition/src/ratio.rs crates/partition/src/scheme.rs crates/partition/src/stats.rs

crates/partition/src/lib.rs:
crates/partition/src/file.rs:
crates/partition/src/mlp/mod.rs:
crates/partition/src/mlp/coarsen.rs:
crates/partition/src/mlp/initial.rs:
crates/partition/src/mlp/kway.rs:
crates/partition/src/mlp/kway_refine.rs:
crates/partition/src/mlp/matching.rs:
crates/partition/src/mlp/refine.rs:
crates/partition/src/ratio.rs:
crates/partition/src/scheme.rs:
crates/partition/src/stats.rs:
