/root/repo/target/debug/deps/property_suite-894dd52bca68ac0b.d: crates/apps/../../tests/property_suite.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_suite-894dd52bca68ac0b.rmeta: crates/apps/../../tests/property_suite.rs Cargo.toml

crates/apps/../../tests/property_suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
