/root/repo/target/debug/deps/cli_end_to_end-0d77971c660ebec0.d: crates/cli/tests/cli_end_to_end.rs

/root/repo/target/debug/deps/cli_end_to_end-0d77971c660ebec0: crates/cli/tests/cli_end_to_end.rs

crates/cli/tests/cli_end_to_end.rs:

# env-dep:CARGO_BIN_EXE_phigraph=/root/repo/target/debug/phigraph
