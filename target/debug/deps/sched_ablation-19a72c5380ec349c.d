/root/repo/target/debug/deps/sched_ablation-19a72c5380ec349c.d: crates/bench/benches/sched_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libsched_ablation-19a72c5380ec349c.rmeta: crates/bench/benches/sched_ablation.rs Cargo.toml

crates/bench/benches/sched_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
