/root/repo/target/debug/deps/reproduce_smoke-a3af156afe3fbbb7.d: crates/bench/tests/reproduce_smoke.rs

/root/repo/target/debug/deps/reproduce_smoke-a3af156afe3fbbb7: crates/bench/tests/reproduce_smoke.rs

crates/bench/tests/reproduce_smoke.rs:

# env-dep:CARGO_BIN_EXE_reproduce=/root/repo/target/debug/reproduce
