/root/repo/target/debug/deps/partition_integration-e33433a68cd1156d.d: crates/apps/../../tests/partition_integration.rs

/root/repo/target/debug/deps/partition_integration-e33433a68cd1156d: crates/apps/../../tests/partition_integration.rs

crates/apps/../../tests/partition_integration.rs:
