/root/repo/target/debug/deps/phigraph_apps-70157948f1ddc3e6.d: crates/apps/src/lib.rs crates/apps/src/bfs.rs crates/apps/src/kcore.rs crates/apps/src/pagerank.rs crates/apps/src/reference/mod.rs crates/apps/src/reference/bfs.rs crates/apps/src/reference/kcore.rs crates/apps/src/reference/pagerank.rs crates/apps/src/reference/semicluster.rs crates/apps/src/reference/sssp.rs crates/apps/src/reference/toposort.rs crates/apps/src/reference/wcc.rs crates/apps/src/semicluster.rs crates/apps/src/sssp.rs crates/apps/src/toposort.rs crates/apps/src/wcc.rs crates/apps/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libphigraph_apps-70157948f1ddc3e6.rmeta: crates/apps/src/lib.rs crates/apps/src/bfs.rs crates/apps/src/kcore.rs crates/apps/src/pagerank.rs crates/apps/src/reference/mod.rs crates/apps/src/reference/bfs.rs crates/apps/src/reference/kcore.rs crates/apps/src/reference/pagerank.rs crates/apps/src/reference/semicluster.rs crates/apps/src/reference/sssp.rs crates/apps/src/reference/toposort.rs crates/apps/src/reference/wcc.rs crates/apps/src/semicluster.rs crates/apps/src/sssp.rs crates/apps/src/toposort.rs crates/apps/src/wcc.rs crates/apps/src/workloads.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/bfs.rs:
crates/apps/src/kcore.rs:
crates/apps/src/pagerank.rs:
crates/apps/src/reference/mod.rs:
crates/apps/src/reference/bfs.rs:
crates/apps/src/reference/kcore.rs:
crates/apps/src/reference/pagerank.rs:
crates/apps/src/reference/semicluster.rs:
crates/apps/src/reference/sssp.rs:
crates/apps/src/reference/toposort.rs:
crates/apps/src/reference/wcc.rs:
crates/apps/src/semicluster.rs:
crates/apps/src/sssp.rs:
crates/apps/src/toposort.rs:
crates/apps/src/wcc.rs:
crates/apps/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
