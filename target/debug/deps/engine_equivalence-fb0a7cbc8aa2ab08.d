/root/repo/target/debug/deps/engine_equivalence-fb0a7cbc8aa2ab08.d: crates/apps/../../tests/engine_equivalence.rs

/root/repo/target/debug/deps/engine_equivalence-fb0a7cbc8aa2ab08: crates/apps/../../tests/engine_equivalence.rs

crates/apps/../../tests/engine_equivalence.rs:
