/root/repo/target/debug/deps/fig5f_simd-c338569b735df2e5.d: crates/bench/benches/fig5f_simd.rs Cargo.toml

/root/repo/target/debug/deps/libfig5f_simd-c338569b735df2e5.rmeta: crates/bench/benches/fig5f_simd.rs Cargo.toml

crates/bench/benches/fig5f_simd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
