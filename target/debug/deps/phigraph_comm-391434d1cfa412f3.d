/root/repo/target/debug/deps/phigraph_comm-391434d1cfa412f3.d: crates/comm/src/lib.rs crates/comm/src/combiner.rs crates/comm/src/exchange.rs crates/comm/src/link.rs crates/comm/src/message.rs Cargo.toml

/root/repo/target/debug/deps/libphigraph_comm-391434d1cfa412f3.rmeta: crates/comm/src/lib.rs crates/comm/src/combiner.rs crates/comm/src/exchange.rs crates/comm/src/link.rs crates/comm/src/message.rs Cargo.toml

crates/comm/src/lib.rs:
crates/comm/src/combiner.rs:
crates/comm/src/exchange.rs:
crates/comm/src/link.rs:
crates/comm/src/message.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
