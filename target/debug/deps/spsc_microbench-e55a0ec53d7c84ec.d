/root/repo/target/debug/deps/spsc_microbench-e55a0ec53d7c84ec.d: crates/bench/benches/spsc_microbench.rs Cargo.toml

/root/repo/target/debug/deps/libspsc_microbench-e55a0ec53d7c84ec.rmeta: crates/bench/benches/spsc_microbench.rs Cargo.toml

crates/bench/benches/spsc_microbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
