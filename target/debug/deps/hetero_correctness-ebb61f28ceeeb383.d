/root/repo/target/debug/deps/hetero_correctness-ebb61f28ceeeb383.d: crates/apps/../../tests/hetero_correctness.rs Cargo.toml

/root/repo/target/debug/deps/libhetero_correctness-ebb61f28ceeeb383.rmeta: crates/apps/../../tests/hetero_correctness.rs Cargo.toml

crates/apps/../../tests/hetero_correctness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
