/root/repo/target/debug/deps/phigraph_bench-c164fcfb9b370f69.d: crates/bench/src/lib.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/tab2.rs Cargo.toml

/root/repo/target/debug/deps/libphigraph_bench-c164fcfb9b370f69.rmeta: crates/bench/src/lib.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/tab2.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/fig5.rs:
crates/bench/src/fig6.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
crates/bench/src/tab2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
