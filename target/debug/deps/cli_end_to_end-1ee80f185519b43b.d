/root/repo/target/debug/deps/cli_end_to_end-1ee80f185519b43b.d: crates/cli/tests/cli_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libcli_end_to_end-1ee80f185519b43b.rmeta: crates/cli/tests/cli_end_to_end.rs Cargo.toml

crates/cli/tests/cli_end_to_end.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_phigraph=placeholder:phigraph
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
