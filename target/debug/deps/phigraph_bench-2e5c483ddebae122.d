/root/repo/target/debug/deps/phigraph_bench-2e5c483ddebae122.d: crates/bench/src/lib.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/tab2.rs

/root/repo/target/debug/deps/phigraph_bench-2e5c483ddebae122: crates/bench/src/lib.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/tab2.rs

crates/bench/src/lib.rs:
crates/bench/src/fig5.rs:
crates/bench/src/fig6.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
crates/bench/src/tab2.rs:
