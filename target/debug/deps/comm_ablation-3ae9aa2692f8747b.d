/root/repo/target/debug/deps/comm_ablation-3ae9aa2692f8747b.d: crates/bench/benches/comm_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libcomm_ablation-3ae9aa2692f8747b.rmeta: crates/bench/benches/comm_ablation.rs Cargo.toml

crates/bench/benches/comm_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
