/root/repo/target/debug/deps/reproduce-b44c74bebd4c748b.d: crates/bench/src/bin/reproduce.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce-b44c74bebd4c748b.rmeta: crates/bench/src/bin/reproduce.rs Cargo.toml

crates/bench/src/bin/reproduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
