/root/repo/target/debug/deps/phigraph_bench-e35fa6796cabf239.d: crates/bench/src/lib.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/tab2.rs

/root/repo/target/debug/deps/libphigraph_bench-e35fa6796cabf239.rlib: crates/bench/src/lib.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/tab2.rs

/root/repo/target/debug/deps/libphigraph_bench-e35fa6796cabf239.rmeta: crates/bench/src/lib.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/tab2.rs

crates/bench/src/lib.rs:
crates/bench/src/fig5.rs:
crates/bench/src/fig6.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
crates/bench/src/tab2.rs:
