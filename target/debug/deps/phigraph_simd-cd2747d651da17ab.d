/root/repo/target/debug/deps/phigraph_simd-cd2747d651da17ab.d: crates/simd/src/lib.rs crates/simd/src/aligned.rs crates/simd/src/masked.rs crates/simd/src/ops.rs crates/simd/src/scalar.rs crates/simd/src/vlane.rs crates/simd/src/width.rs

/root/repo/target/debug/deps/phigraph_simd-cd2747d651da17ab: crates/simd/src/lib.rs crates/simd/src/aligned.rs crates/simd/src/masked.rs crates/simd/src/ops.rs crates/simd/src/scalar.rs crates/simd/src/vlane.rs crates/simd/src/width.rs

crates/simd/src/lib.rs:
crates/simd/src/aligned.rs:
crates/simd/src/masked.rs:
crates/simd/src/ops.rs:
crates/simd/src/scalar.rs:
crates/simd/src/vlane.rs:
crates/simd/src/width.rs:
