/root/repo/target/debug/deps/phigraph-062b1a4c5c355c39.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/cmd_generate.rs crates/cli/src/cmd_info.rs crates/cli/src/cmd_partition.rs crates/cli/src/cmd_run.rs crates/cli/src/cmd_check.rs crates/cli/src/cmd_tune.rs Cargo.toml

/root/repo/target/debug/deps/libphigraph-062b1a4c5c355c39.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/cmd_generate.rs crates/cli/src/cmd_info.rs crates/cli/src/cmd_partition.rs crates/cli/src/cmd_run.rs crates/cli/src/cmd_check.rs crates/cli/src/cmd_tune.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/cmd_generate.rs:
crates/cli/src/cmd_info.rs:
crates/cli/src/cmd_partition.rs:
crates/cli/src/cmd_run.rs:
crates/cli/src/cmd_check.rs:
crates/cli/src/cmd_tune.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
