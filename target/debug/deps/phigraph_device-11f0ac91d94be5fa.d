/root/repo/target/debug/deps/phigraph_device-11f0ac91d94be5fa.d: crates/device/src/lib.rs crates/device/src/balance.rs crates/device/src/cost.rs crates/device/src/counters.rs crates/device/src/pool.rs crates/device/src/sched.rs crates/device/src/spec.rs

/root/repo/target/debug/deps/phigraph_device-11f0ac91d94be5fa: crates/device/src/lib.rs crates/device/src/balance.rs crates/device/src/cost.rs crates/device/src/counters.rs crates/device/src/pool.rs crates/device/src/sched.rs crates/device/src/spec.rs

crates/device/src/lib.rs:
crates/device/src/balance.rs:
crates/device/src/cost.rs:
crates/device/src/counters.rs:
crates/device/src/pool.rs:
crates/device/src/sched.rs:
crates/device/src/spec.rs:
