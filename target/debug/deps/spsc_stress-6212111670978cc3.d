/root/repo/target/debug/deps/spsc_stress-6212111670978cc3.d: crates/core/tests/spsc_stress.rs Cargo.toml

/root/repo/target/debug/deps/libspsc_stress-6212111670978cc3.rmeta: crates/core/tests/spsc_stress.rs Cargo.toml

crates/core/tests/spsc_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
