/root/repo/target/debug/deps/fig6_partitioning-52b457661a8bc004.d: crates/bench/benches/fig6_partitioning.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_partitioning-52b457661a8bc004.rmeta: crates/bench/benches/fig6_partitioning.rs Cargo.toml

crates/bench/benches/fig6_partitioning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
