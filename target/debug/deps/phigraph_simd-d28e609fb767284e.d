/root/repo/target/debug/deps/phigraph_simd-d28e609fb767284e.d: crates/simd/src/lib.rs crates/simd/src/aligned.rs crates/simd/src/masked.rs crates/simd/src/ops.rs crates/simd/src/scalar.rs crates/simd/src/vlane.rs crates/simd/src/width.rs

/root/repo/target/debug/deps/libphigraph_simd-d28e609fb767284e.rlib: crates/simd/src/lib.rs crates/simd/src/aligned.rs crates/simd/src/masked.rs crates/simd/src/ops.rs crates/simd/src/scalar.rs crates/simd/src/vlane.rs crates/simd/src/width.rs

/root/repo/target/debug/deps/libphigraph_simd-d28e609fb767284e.rmeta: crates/simd/src/lib.rs crates/simd/src/aligned.rs crates/simd/src/masked.rs crates/simd/src/ops.rs crates/simd/src/scalar.rs crates/simd/src/vlane.rs crates/simd/src/width.rs

crates/simd/src/lib.rs:
crates/simd/src/aligned.rs:
crates/simd/src/masked.rs:
crates/simd/src/ops.rs:
crates/simd/src/scalar.rs:
crates/simd/src/vlane.rs:
crates/simd/src/width.rs:
