/root/repo/target/debug/deps/phigraph_core-725d0a124f0d141e.d: crates/core/src/lib.rs crates/core/src/active.rs crates/core/src/api.rs crates/core/src/check.rs crates/core/src/csb/mod.rs crates/core/src/csb/buffer.rs crates/core/src/csb/layout.rs crates/core/src/csb/process.rs crates/core/src/engine/mod.rs crates/core/src/engine/config.rs crates/core/src/engine/device.rs crates/core/src/engine/flat.rs crates/core/src/engine/hetero.rs crates/core/src/engine/obj.rs crates/core/src/engine/seq.rs crates/core/src/metrics.rs crates/core/src/queues.rs crates/core/src/tune.rs crates/core/src/util.rs Cargo.toml

/root/repo/target/debug/deps/libphigraph_core-725d0a124f0d141e.rmeta: crates/core/src/lib.rs crates/core/src/active.rs crates/core/src/api.rs crates/core/src/check.rs crates/core/src/csb/mod.rs crates/core/src/csb/buffer.rs crates/core/src/csb/layout.rs crates/core/src/csb/process.rs crates/core/src/engine/mod.rs crates/core/src/engine/config.rs crates/core/src/engine/device.rs crates/core/src/engine/flat.rs crates/core/src/engine/hetero.rs crates/core/src/engine/obj.rs crates/core/src/engine/seq.rs crates/core/src/metrics.rs crates/core/src/queues.rs crates/core/src/tune.rs crates/core/src/util.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/active.rs:
crates/core/src/api.rs:
crates/core/src/check.rs:
crates/core/src/csb/mod.rs:
crates/core/src/csb/buffer.rs:
crates/core/src/csb/layout.rs:
crates/core/src/csb/process.rs:
crates/core/src/engine/mod.rs:
crates/core/src/engine/config.rs:
crates/core/src/engine/device.rs:
crates/core/src/engine/flat.rs:
crates/core/src/engine/hetero.rs:
crates/core/src/engine/obj.rs:
crates/core/src/engine/seq.rs:
crates/core/src/metrics.rs:
crates/core/src/queues.rs:
crates/core/src/tune.rs:
crates/core/src/util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
