/root/repo/target/debug/deps/phigraph_comm-40c229d9f7c9cd98.d: crates/comm/src/lib.rs crates/comm/src/combiner.rs crates/comm/src/exchange.rs crates/comm/src/link.rs crates/comm/src/message.rs

/root/repo/target/debug/deps/libphigraph_comm-40c229d9f7c9cd98.rlib: crates/comm/src/lib.rs crates/comm/src/combiner.rs crates/comm/src/exchange.rs crates/comm/src/link.rs crates/comm/src/message.rs

/root/repo/target/debug/deps/libphigraph_comm-40c229d9f7c9cd98.rmeta: crates/comm/src/lib.rs crates/comm/src/combiner.rs crates/comm/src/exchange.rs crates/comm/src/link.rs crates/comm/src/message.rs

crates/comm/src/lib.rs:
crates/comm/src/combiner.rs:
crates/comm/src/exchange.rs:
crates/comm/src/link.rs:
crates/comm/src/message.rs:
