/root/repo/target/debug/deps/phigraph_comm-b7f774ba5ffdcd0d.d: crates/comm/src/lib.rs crates/comm/src/combiner.rs crates/comm/src/exchange.rs crates/comm/src/link.rs crates/comm/src/message.rs

/root/repo/target/debug/deps/phigraph_comm-b7f774ba5ffdcd0d: crates/comm/src/lib.rs crates/comm/src/combiner.rs crates/comm/src/exchange.rs crates/comm/src/link.rs crates/comm/src/message.rs

crates/comm/src/lib.rs:
crates/comm/src/combiner.rs:
crates/comm/src/exchange.rs:
crates/comm/src/link.rs:
crates/comm/src/message.rs:
