/root/repo/target/debug/deps/phigraph_device-bb8746325491cf82.d: crates/device/src/lib.rs crates/device/src/balance.rs crates/device/src/cost.rs crates/device/src/counters.rs crates/device/src/pool.rs crates/device/src/sched.rs crates/device/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libphigraph_device-bb8746325491cf82.rmeta: crates/device/src/lib.rs crates/device/src/balance.rs crates/device/src/cost.rs crates/device/src/counters.rs crates/device/src/pool.rs crates/device/src/sched.rs crates/device/src/spec.rs Cargo.toml

crates/device/src/lib.rs:
crates/device/src/balance.rs:
crates/device/src/cost.rs:
crates/device/src/counters.rs:
crates/device/src/pool.rs:
crates/device/src/sched.rs:
crates/device/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
