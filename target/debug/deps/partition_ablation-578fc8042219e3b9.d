/root/repo/target/debug/deps/partition_ablation-578fc8042219e3b9.d: crates/bench/benches/partition_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libpartition_ablation-578fc8042219e3b9.rmeta: crates/bench/benches/partition_ablation.rs Cargo.toml

crates/bench/benches/partition_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
