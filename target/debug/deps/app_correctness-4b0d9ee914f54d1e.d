/root/repo/target/debug/deps/app_correctness-4b0d9ee914f54d1e.d: crates/apps/../../tests/app_correctness.rs

/root/repo/target/debug/deps/app_correctness-4b0d9ee914f54d1e: crates/apps/../../tests/app_correctness.rs

crates/apps/../../tests/app_correctness.rs:
