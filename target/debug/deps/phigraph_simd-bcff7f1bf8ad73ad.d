/root/repo/target/debug/deps/phigraph_simd-bcff7f1bf8ad73ad.d: crates/simd/src/lib.rs crates/simd/src/aligned.rs crates/simd/src/masked.rs crates/simd/src/ops.rs crates/simd/src/scalar.rs crates/simd/src/vlane.rs crates/simd/src/width.rs Cargo.toml

/root/repo/target/debug/deps/libphigraph_simd-bcff7f1bf8ad73ad.rmeta: crates/simd/src/lib.rs crates/simd/src/aligned.rs crates/simd/src/masked.rs crates/simd/src/ops.rs crates/simd/src/scalar.rs crates/simd/src/vlane.rs crates/simd/src/width.rs Cargo.toml

crates/simd/src/lib.rs:
crates/simd/src/aligned.rs:
crates/simd/src/masked.rs:
crates/simd/src/ops.rs:
crates/simd/src/scalar.rs:
crates/simd/src/vlane.rs:
crates/simd/src/width.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
