/root/repo/target/debug/deps/phigraph-613ef9fa99259a4f.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/cmd_generate.rs crates/cli/src/cmd_info.rs crates/cli/src/cmd_partition.rs crates/cli/src/cmd_run.rs crates/cli/src/cmd_check.rs crates/cli/src/cmd_tune.rs

/root/repo/target/debug/deps/phigraph-613ef9fa99259a4f: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/cmd_generate.rs crates/cli/src/cmd_info.rs crates/cli/src/cmd_partition.rs crates/cli/src/cmd_run.rs crates/cli/src/cmd_check.rs crates/cli/src/cmd_tune.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/cmd_generate.rs:
crates/cli/src/cmd_info.rs:
crates/cli/src/cmd_partition.rs:
crates/cli/src/cmd_run.rs:
crates/cli/src/cmd_check.rs:
crates/cli/src/cmd_tune.rs:
