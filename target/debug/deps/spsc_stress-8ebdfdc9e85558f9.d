/root/repo/target/debug/deps/spsc_stress-8ebdfdc9e85558f9.d: crates/core/tests/spsc_stress.rs

/root/repo/target/debug/deps/spsc_stress-8ebdfdc9e85558f9: crates/core/tests/spsc_stress.rs

crates/core/tests/spsc_stress.rs:
