/root/repo/target/debug/deps/phigraph_bench-f0f5d4a635c14cf9.d: crates/bench/src/lib.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/tab2.rs Cargo.toml

/root/repo/target/debug/deps/libphigraph_bench-f0f5d4a635c14cf9.rmeta: crates/bench/src/lib.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/tab2.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/fig5.rs:
crates/bench/src/fig6.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
crates/bench/src/tab2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
