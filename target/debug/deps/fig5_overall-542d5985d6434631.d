/root/repo/target/debug/deps/fig5_overall-542d5985d6434631.d: crates/bench/benches/fig5_overall.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_overall-542d5985d6434631.rmeta: crates/bench/benches/fig5_overall.rs Cargo.toml

crates/bench/benches/fig5_overall.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
