/root/repo/target/debug/deps/reproduce-a58725d192413ed1.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-a58725d192413ed1: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
