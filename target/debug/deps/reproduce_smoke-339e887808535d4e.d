/root/repo/target/debug/deps/reproduce_smoke-339e887808535d4e.d: crates/bench/tests/reproduce_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce_smoke-339e887808535d4e.rmeta: crates/bench/tests/reproduce_smoke.rs Cargo.toml

crates/bench/tests/reproduce_smoke.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_reproduce=placeholder:reproduce
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
