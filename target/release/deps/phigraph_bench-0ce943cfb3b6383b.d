/root/repo/target/release/deps/phigraph_bench-0ce943cfb3b6383b.d: crates/bench/src/lib.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/tab2.rs

/root/repo/target/release/deps/libphigraph_bench-0ce943cfb3b6383b.rlib: crates/bench/src/lib.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/tab2.rs

/root/repo/target/release/deps/libphigraph_bench-0ce943cfb3b6383b.rmeta: crates/bench/src/lib.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/tab2.rs

crates/bench/src/lib.rs:
crates/bench/src/fig5.rs:
crates/bench/src/fig6.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
crates/bench/src/tab2.rs:
