/root/repo/target/release/deps/reproduce-2a50a5413f28bc82.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-2a50a5413f28bc82: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
