/root/repo/target/release/deps/phigraph_simd-060c63dfc10d1f51.d: crates/simd/src/lib.rs crates/simd/src/aligned.rs crates/simd/src/masked.rs crates/simd/src/ops.rs crates/simd/src/scalar.rs crates/simd/src/vlane.rs crates/simd/src/width.rs

/root/repo/target/release/deps/libphigraph_simd-060c63dfc10d1f51.rlib: crates/simd/src/lib.rs crates/simd/src/aligned.rs crates/simd/src/masked.rs crates/simd/src/ops.rs crates/simd/src/scalar.rs crates/simd/src/vlane.rs crates/simd/src/width.rs

/root/repo/target/release/deps/libphigraph_simd-060c63dfc10d1f51.rmeta: crates/simd/src/lib.rs crates/simd/src/aligned.rs crates/simd/src/masked.rs crates/simd/src/ops.rs crates/simd/src/scalar.rs crates/simd/src/vlane.rs crates/simd/src/width.rs

crates/simd/src/lib.rs:
crates/simd/src/aligned.rs:
crates/simd/src/masked.rs:
crates/simd/src/ops.rs:
crates/simd/src/scalar.rs:
crates/simd/src/vlane.rs:
crates/simd/src/width.rs:
