/root/repo/target/release/deps/phigraph-44b4347bbbf25e1a.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/cmd_generate.rs crates/cli/src/cmd_info.rs crates/cli/src/cmd_partition.rs crates/cli/src/cmd_run.rs crates/cli/src/cmd_check.rs crates/cli/src/cmd_tune.rs

/root/repo/target/release/deps/phigraph-44b4347bbbf25e1a: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/cmd_generate.rs crates/cli/src/cmd_info.rs crates/cli/src/cmd_partition.rs crates/cli/src/cmd_run.rs crates/cli/src/cmd_check.rs crates/cli/src/cmd_tune.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/cmd_generate.rs:
crates/cli/src/cmd_info.rs:
crates/cli/src/cmd_partition.rs:
crates/cli/src/cmd_run.rs:
crates/cli/src/cmd_check.rs:
crates/cli/src/cmd_tune.rs:
