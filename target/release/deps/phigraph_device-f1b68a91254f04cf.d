/root/repo/target/release/deps/phigraph_device-f1b68a91254f04cf.d: crates/device/src/lib.rs crates/device/src/balance.rs crates/device/src/cost.rs crates/device/src/counters.rs crates/device/src/pool.rs crates/device/src/sched.rs crates/device/src/spec.rs

/root/repo/target/release/deps/libphigraph_device-f1b68a91254f04cf.rlib: crates/device/src/lib.rs crates/device/src/balance.rs crates/device/src/cost.rs crates/device/src/counters.rs crates/device/src/pool.rs crates/device/src/sched.rs crates/device/src/spec.rs

/root/repo/target/release/deps/libphigraph_device-f1b68a91254f04cf.rmeta: crates/device/src/lib.rs crates/device/src/balance.rs crates/device/src/cost.rs crates/device/src/counters.rs crates/device/src/pool.rs crates/device/src/sched.rs crates/device/src/spec.rs

crates/device/src/lib.rs:
crates/device/src/balance.rs:
crates/device/src/cost.rs:
crates/device/src/counters.rs:
crates/device/src/pool.rs:
crates/device/src/sched.rs:
crates/device/src/spec.rs:
