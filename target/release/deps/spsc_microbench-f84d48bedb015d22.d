/root/repo/target/release/deps/spsc_microbench-f84d48bedb015d22.d: crates/bench/benches/spsc_microbench.rs

/root/repo/target/release/deps/spsc_microbench-f84d48bedb015d22: crates/bench/benches/spsc_microbench.rs

crates/bench/benches/spsc_microbench.rs:
