/root/repo/target/release/deps/phigraph_apps-dbd02d8be5fc5259.d: crates/apps/src/lib.rs crates/apps/src/bfs.rs crates/apps/src/kcore.rs crates/apps/src/pagerank.rs crates/apps/src/reference/mod.rs crates/apps/src/reference/bfs.rs crates/apps/src/reference/kcore.rs crates/apps/src/reference/pagerank.rs crates/apps/src/reference/semicluster.rs crates/apps/src/reference/sssp.rs crates/apps/src/reference/toposort.rs crates/apps/src/reference/wcc.rs crates/apps/src/semicluster.rs crates/apps/src/sssp.rs crates/apps/src/toposort.rs crates/apps/src/wcc.rs crates/apps/src/workloads.rs

/root/repo/target/release/deps/libphigraph_apps-dbd02d8be5fc5259.rlib: crates/apps/src/lib.rs crates/apps/src/bfs.rs crates/apps/src/kcore.rs crates/apps/src/pagerank.rs crates/apps/src/reference/mod.rs crates/apps/src/reference/bfs.rs crates/apps/src/reference/kcore.rs crates/apps/src/reference/pagerank.rs crates/apps/src/reference/semicluster.rs crates/apps/src/reference/sssp.rs crates/apps/src/reference/toposort.rs crates/apps/src/reference/wcc.rs crates/apps/src/semicluster.rs crates/apps/src/sssp.rs crates/apps/src/toposort.rs crates/apps/src/wcc.rs crates/apps/src/workloads.rs

/root/repo/target/release/deps/libphigraph_apps-dbd02d8be5fc5259.rmeta: crates/apps/src/lib.rs crates/apps/src/bfs.rs crates/apps/src/kcore.rs crates/apps/src/pagerank.rs crates/apps/src/reference/mod.rs crates/apps/src/reference/bfs.rs crates/apps/src/reference/kcore.rs crates/apps/src/reference/pagerank.rs crates/apps/src/reference/semicluster.rs crates/apps/src/reference/sssp.rs crates/apps/src/reference/toposort.rs crates/apps/src/reference/wcc.rs crates/apps/src/semicluster.rs crates/apps/src/sssp.rs crates/apps/src/toposort.rs crates/apps/src/wcc.rs crates/apps/src/workloads.rs

crates/apps/src/lib.rs:
crates/apps/src/bfs.rs:
crates/apps/src/kcore.rs:
crates/apps/src/pagerank.rs:
crates/apps/src/reference/mod.rs:
crates/apps/src/reference/bfs.rs:
crates/apps/src/reference/kcore.rs:
crates/apps/src/reference/pagerank.rs:
crates/apps/src/reference/semicluster.rs:
crates/apps/src/reference/sssp.rs:
crates/apps/src/reference/toposort.rs:
crates/apps/src/reference/wcc.rs:
crates/apps/src/semicluster.rs:
crates/apps/src/sssp.rs:
crates/apps/src/toposort.rs:
crates/apps/src/wcc.rs:
crates/apps/src/workloads.rs:
