/root/repo/target/release/deps/phigraph_graph-8cbd4ae5aa301771.d: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/degree.rs crates/graph/src/edge_list.rs crates/graph/src/generators/mod.rs crates/graph/src/generators/ba.rs crates/graph/src/generators/community.rs crates/graph/src/generators/dag.rs crates/graph/src/generators/erdos_renyi.rs crates/graph/src/generators/grid.rs crates/graph/src/generators/rmat.rs crates/graph/src/generators/rng.rs crates/graph/src/generators/small.rs crates/graph/src/generators/watts_strogatz.rs crates/graph/src/io.rs crates/graph/src/subgraph.rs crates/graph/src/types.rs crates/graph/src/validation.rs

/root/repo/target/release/deps/libphigraph_graph-8cbd4ae5aa301771.rlib: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/degree.rs crates/graph/src/edge_list.rs crates/graph/src/generators/mod.rs crates/graph/src/generators/ba.rs crates/graph/src/generators/community.rs crates/graph/src/generators/dag.rs crates/graph/src/generators/erdos_renyi.rs crates/graph/src/generators/grid.rs crates/graph/src/generators/rmat.rs crates/graph/src/generators/rng.rs crates/graph/src/generators/small.rs crates/graph/src/generators/watts_strogatz.rs crates/graph/src/io.rs crates/graph/src/subgraph.rs crates/graph/src/types.rs crates/graph/src/validation.rs

/root/repo/target/release/deps/libphigraph_graph-8cbd4ae5aa301771.rmeta: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/degree.rs crates/graph/src/edge_list.rs crates/graph/src/generators/mod.rs crates/graph/src/generators/ba.rs crates/graph/src/generators/community.rs crates/graph/src/generators/dag.rs crates/graph/src/generators/erdos_renyi.rs crates/graph/src/generators/grid.rs crates/graph/src/generators/rmat.rs crates/graph/src/generators/rng.rs crates/graph/src/generators/small.rs crates/graph/src/generators/watts_strogatz.rs crates/graph/src/io.rs crates/graph/src/subgraph.rs crates/graph/src/types.rs crates/graph/src/validation.rs

crates/graph/src/lib.rs:
crates/graph/src/analysis.rs:
crates/graph/src/builder.rs:
crates/graph/src/csr.rs:
crates/graph/src/degree.rs:
crates/graph/src/edge_list.rs:
crates/graph/src/generators/mod.rs:
crates/graph/src/generators/ba.rs:
crates/graph/src/generators/community.rs:
crates/graph/src/generators/dag.rs:
crates/graph/src/generators/erdos_renyi.rs:
crates/graph/src/generators/grid.rs:
crates/graph/src/generators/rmat.rs:
crates/graph/src/generators/rng.rs:
crates/graph/src/generators/small.rs:
crates/graph/src/generators/watts_strogatz.rs:
crates/graph/src/io.rs:
crates/graph/src/subgraph.rs:
crates/graph/src/types.rs:
crates/graph/src/validation.rs:
