/root/repo/target/release/deps/phigraph_comm-e7d4867c6f427f22.d: crates/comm/src/lib.rs crates/comm/src/combiner.rs crates/comm/src/exchange.rs crates/comm/src/link.rs crates/comm/src/message.rs

/root/repo/target/release/deps/libphigraph_comm-e7d4867c6f427f22.rlib: crates/comm/src/lib.rs crates/comm/src/combiner.rs crates/comm/src/exchange.rs crates/comm/src/link.rs crates/comm/src/message.rs

/root/repo/target/release/deps/libphigraph_comm-e7d4867c6f427f22.rmeta: crates/comm/src/lib.rs crates/comm/src/combiner.rs crates/comm/src/exchange.rs crates/comm/src/link.rs crates/comm/src/message.rs

crates/comm/src/lib.rs:
crates/comm/src/combiner.rs:
crates/comm/src/exchange.rs:
crates/comm/src/link.rs:
crates/comm/src/message.rs:
