//! End-to-end application correctness on realistic workloads, against the
//! sequential reference implementations.

#![allow(clippy::needless_range_loop)] // index loops read clearer in vertex-indexed asserts

use phigraph_apps::reference::{
    bfs::bfs_reference, pagerank::pagerank_reference, sssp::dijkstra_reference,
    toposort::kahn_levels,
};
use phigraph_apps::semicluster::community_agreement;
use phigraph_apps::toposort::is_valid_topo;
use phigraph_apps::{workloads, Bfs, PageRank, SemiClustering, Sssp, TopoSort};
use phigraph_core::engine::obj::run_obj_single;
use phigraph_core::engine::{run_single, EngineConfig};
use phigraph_device::DeviceSpec;

#[test]
fn pagerank_matches_reference_on_power_law_graph() {
    let g = workloads::pokec_like(workloads::Scale::Tiny, 41);
    let out = run_single(
        &PageRank {
            damping: 0.85,
            iterations: 10,
        },
        &g,
        DeviceSpec::xeon_phi_se10p(),
        &EngineConfig::pipelined().with_host_threads(4),
    );
    let expect = pagerank_reference(&g, 0.85, 10);
    for v in 0..g.num_vertices() {
        assert!(
            (out.values[v] - expect[v]).abs() < 1e-3,
            "vertex {v}: {} vs {}",
            out.values[v],
            expect[v]
        );
    }
    // Hubs (front-loaded ids) should accumulate above-average rank.
    let front_avg: f32 = out.values[..16].iter().sum::<f32>() / 16.0;
    let total_avg: f32 = out.values.iter().sum::<f32>() / g.num_vertices() as f32;
    assert!(front_avg > total_avg);
}

#[test]
fn bfs_matches_reference_on_power_law_graph() {
    let g = workloads::pokec_like(workloads::Scale::Tiny, 42);
    let out = run_single(
        &Bfs { source: 0 },
        &g,
        DeviceSpec::xeon_e5_2680(),
        &EngineConfig::locking(),
    );
    assert_eq!(out.values, bfs_reference(&g, 0));
}

#[test]
fn sssp_matches_dijkstra_on_weighted_graph() {
    let g = workloads::pokec_like_weighted(workloads::Scale::Tiny, 43);
    let out = run_single(
        &Sssp { source: 0 },
        &g,
        DeviceSpec::xeon_phi_se10p(),
        &EngineConfig::locking(),
    );
    let expect = dijkstra_reference(&g, 0);
    for v in 0..g.num_vertices() {
        let (a, b) = (out.values[v], expect[v]);
        if b.is_infinite() {
            assert!(a.is_infinite(), "vertex {v} should be unreachable");
        } else {
            assert!((a - b).abs() < 1e-2, "vertex {v}: {a} vs {b}");
        }
    }
}

#[test]
fn toposort_levels_match_kahn_on_dense_dag() {
    let g = workloads::toposort_dag(workloads::Scale::Tiny, 44);
    let out = run_single(
        &TopoSort::new(&g),
        &g,
        DeviceSpec::xeon_phi_se10p(),
        &EngineConfig::pipelined().with_host_threads(4),
    );
    assert!(is_valid_topo(&g, &out.values));
    let expect = kahn_levels(&g).expect("workload DAG is acyclic");
    for v in 0..g.num_vertices() {
        assert_eq!(out.values[v].level, expect[v], "vertex {v}");
    }
}

#[test]
fn semicluster_recovers_planted_structure() {
    let (g, labels) = workloads::dblp_like(workloads::Scale::Tiny, 45);
    let out = run_obj_single(
        &SemiClustering::default(),
        &g,
        DeviceSpec::xeon_e5_2680(),
        &EngineConfig::locking(),
    );
    let agreement = community_agreement(&out.values, &labels);
    assert!(agreement > 0.6, "agreement {agreement}");
}

#[test]
fn message_counts_match_analytic_expectations() {
    // PageRank on a graph with E edges sends exactly E messages per
    // superstep (every vertex propagates along every out-edge).
    let g = workloads::pokec_like(workloads::Scale::Tiny, 46);
    let out = run_single(
        &PageRank {
            damping: 0.85,
            iterations: 4,
        },
        &g,
        DeviceSpec::xeon_e5_2680(),
        &EngineConfig::locking(),
    );
    for step in &out.report.steps {
        assert_eq!(step.counters.msgs_total(), g.num_edges() as u64);
    }
    // BFS sends each edge's message at most once over the whole run.
    let bfs = run_single(
        &Bfs { source: 0 },
        &g,
        DeviceSpec::xeon_e5_2680(),
        &EngineConfig::locking(),
    );
    assert!(bfs.report.total_msgs() <= g.num_edges() as u64);
}
