//! Heterogeneous CPU-MIC execution must compute exactly what a single
//! device computes, for every application, partitioning scheme, and ratio —
//! and its communication accounting must reflect the partition's cross-edge
//! structure.

use phigraph_apps::{workloads, Bfs, PageRank, SemiClustering, Sssp, TopoSort};
use phigraph_comm::PcieLink;
use phigraph_core::engine::obj::{run_obj_hetero, run_obj_single};
use phigraph_core::engine::{run_hetero, run_single, EngineConfig};
use phigraph_device::DeviceSpec;
use phigraph_graph::Csr;
use phigraph_partition::{partition, PartitionScheme, Ratio};

fn specs() -> [DeviceSpec; 2] {
    [DeviceSpec::xeon_e5_2680(), DeviceSpec::xeon_phi_se10p()]
}

fn hetero_configs() -> [EngineConfig; 2] {
    // The paper's best heterogeneous setup: locking on the CPU, pipelining
    // on the MIC.
    [
        EngineConfig::locking(),
        EngineConfig::pipelined().with_host_threads(4),
    ]
}

fn schemes() -> Vec<PartitionScheme> {
    vec![
        PartitionScheme::Continuous,
        PartitionScheme::RoundRobin,
        PartitionScheme::Hybrid { blocks: 32 },
    ]
}

fn check_hetero<P>(program: &P, graph: &Csr)
where
    P: phigraph_core::api::VertexProgram,
    P::Value: PartialEq + std::fmt::Debug,
{
    let single = run_single(
        program,
        graph,
        DeviceSpec::xeon_e5_2680(),
        &EngineConfig::locking(),
    );
    for scheme in schemes() {
        for ratio in [Ratio::even(), Ratio::new(3, 5), Ratio::new(4, 1)] {
            let p = partition(graph, scheme, ratio, 7);
            let out = run_hetero(
                program,
                graph,
                &p,
                specs(),
                hetero_configs(),
                PcieLink::gen2_x16(),
            );
            assert_eq!(
                out.values,
                single.values,
                "{} at {ratio} diverged",
                scheme.name()
            );
        }
    }
}

#[test]
fn pagerank_hetero_correct() {
    // Numeric (not bitwise) comparison: heterogeneous execution combines
    // remote f32 sums in a different association order.
    let g = workloads::pokec_like(workloads::Scale::Tiny, 21);
    let pr = PageRank {
        damping: 0.85,
        iterations: 5,
    };
    let single = run_single(
        &pr,
        &g,
        DeviceSpec::xeon_e5_2680(),
        &EngineConfig::locking(),
    );
    for scheme in schemes() {
        for ratio in [Ratio::even(), Ratio::new(3, 5)] {
            let p = partition(&g, scheme, ratio, 7);
            let out = run_hetero(&pr, &g, &p, specs(), hetero_configs(), PcieLink::gen2_x16());
            for v in 0..g.num_vertices() {
                assert!(
                    (out.values[v] - single.values[v]).abs() < 1e-3,
                    "{} at {ratio}, vertex {v}: {} vs {}",
                    scheme.name(),
                    out.values[v],
                    single.values[v]
                );
            }
        }
    }
}

#[test]
fn bfs_hetero_correct() {
    let g = workloads::pokec_like(workloads::Scale::Tiny, 22);
    check_hetero(&Bfs { source: 0 }, &g);
}

#[test]
fn sssp_hetero_correct() {
    let g = workloads::pokec_like_weighted(workloads::Scale::Tiny, 23);
    check_hetero(&Sssp { source: 0 }, &g);
}

#[test]
fn toposort_hetero_correct() {
    let g = workloads::toposort_dag(workloads::Scale::Tiny, 24);
    check_hetero(&TopoSort::new(&g), &g);
}

#[test]
fn wcc_hetero_correct() {
    use phigraph_apps::Wcc;
    let g = workloads::pokec_like(workloads::Scale::Tiny, 29);
    check_hetero(&Wcc::new(&g), &g);
}

#[test]
fn kcore_hetero_correct() {
    use phigraph_apps::KCore;
    let g = workloads::pokec_like(workloads::Scale::Tiny, 30);
    check_hetero(&KCore::new(&g, 4), &g);
}

#[test]
fn semicluster_hetero_correct() {
    let (g, _) = workloads::dblp_like(workloads::Scale::Tiny, 25);
    let sc = SemiClustering::default();
    let single = run_obj_single(
        &sc,
        &g,
        DeviceSpec::xeon_e5_2680(),
        &EngineConfig::locking(),
    );
    for scheme in schemes() {
        let p = partition(&g, scheme, Ratio::new(2, 1), 3);
        let out = run_obj_hetero(
            &sc,
            &g,
            &p,
            specs(),
            [EngineConfig::locking(), EngineConfig::locking()],
            PcieLink::gen2_x16(),
        );
        assert_eq!(out.values, single.values, "{}", scheme.name());
    }
}

#[test]
fn hybrid_partitioning_moves_fewer_bytes_than_round_robin() {
    // The Fig. 6 communication story, end to end through the runtime.
    let g = workloads::pokec_like(workloads::Scale::Tiny, 26);
    let pr = PageRank {
        damping: 0.85,
        iterations: 5,
    };
    let ratio = Ratio::even();
    let run = |scheme| {
        let p = partition(&g, scheme, ratio, 7);
        run_hetero(&pr, &g, &p, specs(), hetero_configs(), PcieLink::gen2_x16())
            .report
            .total_comm_bytes()
    };
    let rr = run(PartitionScheme::RoundRobin);
    let hy = run(PartitionScheme::Hybrid { blocks: 32 });
    assert!(
        hy < rr,
        "hybrid bytes {hy} should undercut round-robin bytes {rr}"
    );
}

#[test]
fn remote_combining_reduces_message_count() {
    // PageRank fan-in across the device boundary: many raw remote messages
    // per destination collapse to one after combining.
    let g = workloads::pokec_like(workloads::Scale::Tiny, 27);
    let pr = PageRank {
        damping: 0.85,
        iterations: 3,
    };
    let p = partition(&g, PartitionScheme::RoundRobin, Ratio::even(), 1);
    let out = run_hetero(&pr, &g, &p, specs(), hetero_configs(), PcieLink::gen2_x16());
    let before: u64 = out
        .device_reports
        .iter()
        .flat_map(|r| &r.steps)
        .map(|s| s.counters.remote_before_combine)
        .sum();
    let after: u64 = out
        .device_reports
        .iter()
        .flat_map(|r| &r.steps)
        .map(|s| s.counters.remote_after_combine)
        .sum();
    assert!(after > 0);
    assert!(
        after * 2 < before,
        "combining should at least halve remote traffic: {before} -> {after}"
    );
}

#[test]
fn one_sided_partition_degenerates_to_single_device() {
    let g = workloads::pokec_like_weighted(workloads::Scale::Tiny, 28);
    let p = partition(&g, PartitionScheme::Continuous, Ratio::new(1, 0), 0);
    let out = run_hetero(
        &Sssp { source: 0 },
        &g,
        &p,
        specs(),
        hetero_configs(),
        PcieLink::gen2_x16(),
    );
    let single = run_single(
        &Sssp { source: 0 },
        &g,
        DeviceSpec::xeon_e5_2680(),
        &EngineConfig::locking(),
    );
    assert_eq!(out.values, single.values);
    assert_eq!(
        out.report.total_comm_bytes(),
        0,
        "nothing should cross the bus"
    );
}
