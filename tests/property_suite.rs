//! Property-based tests (proptest) over the framework's core invariants.

#![allow(clippy::needless_range_loop)] // index loops read clearer in vertex-indexed asserts

use proptest::collection::vec;
use proptest::prelude::*;

use phigraph_apps::reference::sssp::dijkstra_reference;
use phigraph_apps::Sssp;
use phigraph_comm::{combine_messages, WireMsg};
use phigraph_core::csb::{ColumnMode, Csb, CsbLayout};
use phigraph_core::engine::{run_single, EngineConfig};
use phigraph_core::util::SharedSlice;
use phigraph_device::{makespan, DeviceSpec};
use phigraph_graph::{Csr, EdgeList};
use phigraph_partition::{partition, PartitionScheme, PartitionStats, Ratio};
use phigraph_simd::{Min, ReduceOp, Sum};

/// Arbitrary small directed graph as an edge list.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Csr> {
    (2..max_n).prop_flat_map(move |n| {
        vec((0..n as u32, 0..n as u32), 0..max_m).prop_map(move |edges| {
            let mut el = EdgeList::new(n);
            for (s, d) in edges {
                if s != d {
                    el.push(s, d);
                }
            }
            el.sort_dedup();
            Csr::from_edge_list(&el)
        })
    })
}

/// Arbitrary message batch `(dst, value)` bounded by per-dst capacity.
fn arb_messages(n: usize, cap: u32) -> impl Strategy<Value = Vec<(u32, f32)>> {
    vec(
        (0..n as u32, -100.0f32..100.0),
        0..(n * cap as usize).min(400),
    )
    .prop_map(move |mut msgs| {
        // Enforce the capacity bound per destination.
        let mut counts = vec![0u32; n];
        msgs.retain(|&(d, _)| {
            counts[d as usize] += 1;
            counts[d as usize] <= cap
        });
        msgs
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSB insert → process is exactly a per-destination reduction, for
    /// both column modes and both processing paths.
    #[test]
    fn csb_round_trip_is_per_destination_reduce(
        msgs in arb_messages(48, 6),
        one_to_one in any::<bool>(),
        vectorized in any::<bool>(),
        k in 1usize..5,
    ) {
        let n = 48usize;
        let cap = vec![6u32; n];
        let owned: Vec<u32> = (0..n as u32).collect();
        let layout = CsbLayout::build(n, &owned, &cap, 4, k);
        let mode = if one_to_one { ColumnMode::OneToOne } else { ColumnMode::Dynamic };
        let csb = Csb::<f32>::new(layout, mode);
        for &(d, v) in &msgs {
            csb.insert(d, v);
        }
        let positions = csb.layout.num_positions();
        let mut out = vec![0f32; positions];
        let mut has = vec![0u8; positions];
        let mut chunks = Vec::new();
        {
            let o = SharedSlice::new(&mut out);
            let h = SharedSlice::new(&mut has);
            csb.process_groups::<Sum>(0..csb.layout.num_groups(), vectorized, &o, &h, &mut chunks);
        }
        // Work records must account for every message exactly once.
        let recorded: u64 = chunks.iter().map(|c| c.msgs).sum();
        prop_assert_eq!(recorded, msgs.len() as u64);
        // Oracle: plain per-destination fold.
        let mut expect = vec![0f32; n];
        let mut got = vec![false; n];
        for &(d, v) in &msgs {
            expect[d as usize] += v;
            got[d as usize] = true;
        }
        for v in 0..n as u32 {
            let pos = csb.layout.position[v as usize] as usize;
            prop_assert_eq!(has[pos] == 1, got[v as usize], "vertex {}", v);
            if got[v as usize] {
                prop_assert!((out[pos] - expect[v as usize]).abs() < 1e-3,
                    "vertex {}: {} vs {}", v, out[pos], expect[v as usize]);
            }
        }
    }

    /// The engine's SSSP equals Dijkstra on arbitrary weighted digraphs.
    #[test]
    fn sssp_equals_dijkstra(g in arb_graph(40, 200), seed in 0u64..1000) {
        let mut el = g.to_edge_list();
        el.randomize_weights(0.1, 5.0, seed);
        let g = Csr::from_edge_list(&el);
        let out = run_single(
            &Sssp { source: 0 },
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        let expect = dijkstra_reference(&g, 0);
        for v in 0..g.num_vertices() {
            let (a, b) = (out.values[v], expect[v]);
            if b.is_infinite() {
                prop_assert!(a.is_infinite());
            } else {
                prop_assert!((a - b).abs() < 1e-2, "vertex {}: {} vs {}", v, a, b);
            }
        }
    }

    /// Every partitioning scheme yields a total assignment whose stats are
    /// internally consistent.
    #[test]
    fn partitions_are_total_and_consistent(
        g in arb_graph(60, 300),
        a in 1u32..5,
        b in 1u32..5,
        scheme_idx in 0usize..3,
    ) {
        let scheme = [
            PartitionScheme::Continuous,
            PartitionScheme::RoundRobin,
            PartitionScheme::Hybrid { blocks: 8 },
        ][scheme_idx];
        let ratio = Ratio::new(a, b);
        let p = partition(&g, scheme, ratio, 11);
        prop_assert_eq!(p.assign.len(), g.num_vertices());
        let s = PartitionStats::compute(&g, &p);
        prop_assert_eq!(s.vertices[0] + s.vertices[1], g.num_vertices());
        prop_assert_eq!(s.edges[0] + s.edges[1], g.num_edges() as u64);
        prop_assert!(s.cross_edges <= g.num_edges() as u64);
    }

    /// Makespan is sandwiched between the two lower bounds and the serial
    /// total, and never increases with more workers.
    #[test]
    fn makespan_bounds(chunks in vec(0.0f64..100.0, 1..200), workers in 1usize..64) {
        let r = makespan(&chunks, workers);
        let total: f64 = chunks.iter().sum();
        let maxc = chunks.iter().cloned().fold(0.0, f64::max);
        prop_assert!(r.makespan <= total + 1e-9);
        prop_assert!(r.makespan + 1e-9 >= total / workers as f64);
        prop_assert!(r.makespan + 1e-9 >= maxc);
        let r2 = makespan(&chunks, workers * 2);
        prop_assert!(r2.makespan <= r.makespan + 1e-9);
    }

    /// Remote combining preserves the per-destination reduction and emits
    /// at most one message per destination.
    #[test]
    fn combining_preserves_reduction(msgs in vec((0u32..30, -50.0f32..50.0), 0..200)) {
        let wire: Vec<WireMsg<f32>> = msgs
            .iter()
            .map(|&(dst, value)| WireMsg { dst, value })
            .collect();
        let (combined, before) = combine_messages::<f32, Min>(wire);
        prop_assert_eq!(before, msgs.len());
        // At most one per destination, sorted.
        for w in combined.windows(2) {
            prop_assert!(w[0].dst < w[1].dst);
        }
        // Values equal the scalar fold.
        for m in &combined {
            let expect = msgs
                .iter()
                .filter(|&&(d, _)| d == m.dst)
                .map(|&(_, v)| v)
                .fold(<Min as ReduceOp<f32>>::identity(), <Min as ReduceOp<f32>>::apply);
            prop_assert_eq!(m.value, expect);
        }
    }

    /// The SPSC queue transfers an arbitrary item sequence across threads
    /// without loss, duplication, or reordering, for any capacity.
    #[test]
    fn spsc_transfer_is_lossless(items in vec(any::<u64>(), 0..500), cap in 2usize..64) {
        use phigraph_core::queues::SpscQueue;
        let q = SpscQueue::new(cap);
        let got: Vec<u64> = std::thread::scope(|s| {
            s.spawn(|| {
                for &x in &items {
                    // SAFETY: single producer thread.
                    unsafe { q.push(x) };
                }
                q.close();
            });
            let mut got = Vec::new();
            while !q.is_drained() {
                // SAFETY: single consumer thread.
                unsafe { q.pop_batch(&mut got, 17) };
            }
            got
        });
        prop_assert_eq!(got, items);
    }

    /// Wire encode/decode is the identity on arbitrary message batches.
    #[test]
    fn wire_codec_round_trips(msgs in vec((any::<u32>(), any::<f32>()), 0..200)) {
        use phigraph_comm::message::{decode_batch, encode_batch};
        let wire: Vec<WireMsg<f32>> = msgs
            .iter()
            .map(|&(dst, value)| WireMsg { dst, value })
            .collect();
        let bytes = encode_batch(&wire);
        prop_assert_eq!(bytes.len(), wire.len() * 8);
        let back = decode_batch::<f32>(&bytes);
        // NaN-safe comparison via bit patterns.
        prop_assert_eq!(back.len(), wire.len());
        for (a, b) in back.iter().zip(&wire) {
            prop_assert_eq!(a.dst, b.dst);
            prop_assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
    }

    /// The CSB layout is a permutation with non-increasing capacities and
    /// exact group geometry, for arbitrary capacity vectors.
    #[test]
    fn csb_layout_invariants(caps in vec(0u32..50, 1..200), lanes_pow in 1u32..5, k in 1usize..5) {
        use phigraph_core::csb::CsbLayout;
        let lanes = 1usize << lanes_pow;
        let n = caps.len();
        let owned: Vec<u32> = (0..n as u32).collect();
        let layout = CsbLayout::build(n, &owned, &caps, lanes, k);
        // order is a permutation of owned.
        let mut sorted = layout.order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, owned);
        // capacities are non-increasing.
        for w in layout.capacity.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        // redirection map round-trips.
        for (pos, &v) in layout.order.iter().enumerate() {
            prop_assert_eq!(layout.position[v as usize] as usize, pos);
        }
        // group rows equal the max capacity of their slice, and cell
        // offsets tile exactly.
        let width = k * lanes;
        let mut offset = 0usize;
        for (gi, info) in layout.groups.iter().enumerate() {
            let slice = &layout.capacity[gi * width..(gi * width + width).min(n)];
            prop_assert_eq!(info.rows, slice.iter().copied().max().unwrap_or(0));
            prop_assert_eq!(info.cell_offset, offset);
            offset += info.rows as usize * width;
        }
        prop_assert_eq!(layout.total_cells, offset);
        prop_assert!(layout.dense_cells() >= layout.total_cells);
    }

    /// Ratio display/parse round-trips.
    #[test]
    fn ratio_round_trips(a in 1u32..100, b in 0u32..100) {
        let r = Ratio::new(a, b);
        let parsed: Ratio = r.to_string().parse().unwrap();
        prop_assert_eq!(parsed, r);
        prop_assert!((r.share(0) + r.share(1) - 1.0).abs() < 1e-12);
    }

    /// Graph adjacency-list I/O round-trips arbitrary graphs.
    #[test]
    fn adjacency_io_round_trips(g in arb_graph(50, 250)) {
        use phigraph_graph::io::{read_adjacency, write_adjacency};
        let mut buf = Vec::new();
        write_adjacency(&g, &mut buf).unwrap();
        let g2 = read_adjacency(&buf[..]).unwrap();
        prop_assert_eq!(g, g2);
    }

    /// The engine is bitwise deterministic for a fixed input, regardless of
    /// threading (PageRank sums are applied in a fixed buffer order).
    #[test]
    fn engine_is_deterministic(g in arb_graph(40, 150), threads in 1usize..6) {
        use phigraph_apps::PageRank;
        let pr = PageRank { damping: 0.85, iterations: 4 };
        let a = run_single(
            &pr, &g, DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking().with_host_threads(threads),
        );
        let b = run_single(
            &pr, &g, DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking().with_host_threads(1),
        );
        // Same multiset of messages reduced with an associative op over a
        // deterministic layout: identical reports step-for-step.
        prop_assert_eq!(a.report.supersteps(), b.report.supersteps());
        for v in 0..g.num_vertices() {
            prop_assert!((a.values[v] - b.values[v]).abs() < 1e-4);
        }
    }
}
