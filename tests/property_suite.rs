//! Randomized property tests over the framework's core invariants.
//!
//! Previously written with `proptest`; now driven by the vendored
//! deterministic PRNG so the suite runs hermetically offline. Each property
//! is exercised over a fixed number of seeded random cases — failures
//! reproduce exactly (the case seed is part of the assertion message).

#![allow(clippy::needless_range_loop)] // index loops read clearer in vertex-indexed asserts

use phigraph_apps::reference::sssp::dijkstra_reference;
use phigraph_apps::Sssp;
use phigraph_comm::{combine_messages, WireMsg};
use phigraph_core::csb::{ColumnMode, Csb, CsbLayout};
use phigraph_core::engine::{run_single, EngineConfig};
use phigraph_core::util::SharedSlice;
use phigraph_device::{makespan, DeviceSpec};
use phigraph_graph::{Csr, EdgeList, SplitMix64};

/// Cases per property (the proptest suite used 64).
const CASES: u64 = 48;

/// Random small directed graph as CSR.
fn random_graph(rng: &mut SplitMix64, max_n: usize, max_m: usize) -> Csr {
    let n = rng.random_range(2..max_n);
    let m = rng.random_range(0..max_m);
    let mut el = EdgeList::new(n);
    for _ in 0..m {
        let s = rng.random_range(0..n as u32);
        let d = rng.random_range(0..n as u32);
        if s != d {
            el.push(s, d);
        }
    }
    el.sort_dedup();
    Csr::from_edge_list(&el)
}

/// Random message batch `(dst, value)` bounded by per-dst capacity.
fn random_messages(rng: &mut SplitMix64, n: usize, cap: u32) -> Vec<(u32, f32)> {
    let count = rng.random_range(0..(n * cap as usize).min(400));
    let mut counts = vec![0u32; n];
    let mut msgs = Vec::with_capacity(count);
    for _ in 0..count {
        let d = rng.random_range(0..n as u32);
        if counts[d as usize] < cap {
            counts[d as usize] += 1;
            msgs.push((d, rng.random_range(-100.0f32..100.0)));
        }
    }
    msgs
}

/// CSB insert → process is exactly a per-destination reduction, for both
/// column modes and both processing paths.
#[test]
fn csb_round_trip_is_per_destination_reduce() {
    use phigraph_simd::Sum;
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(1000 + case);
        let n = 48usize;
        let msgs = random_messages(&mut rng, n, 6);
        let one_to_one: bool = rng.random();
        let vectorized: bool = rng.random();
        let k = rng.random_range(1usize..5);
        let cap = vec![6u32; n];
        let owned: Vec<u32> = (0..n as u32).collect();
        let layout = CsbLayout::build(n, &owned, &cap, 4, k);
        let mode = if one_to_one {
            ColumnMode::OneToOne
        } else {
            ColumnMode::Dynamic
        };
        let csb = Csb::<f32>::new(layout, mode);
        for &(d, v) in &msgs {
            csb.insert(d, v);
        }
        let positions = csb.layout.num_positions();
        let mut out = vec![0f32; positions];
        let mut has = vec![0u8; positions];
        let mut chunks = Vec::new();
        {
            let o = SharedSlice::new(&mut out);
            let h = SharedSlice::new(&mut has);
            csb.process_groups::<Sum>(0..csb.layout.num_groups(), vectorized, &o, &h, &mut chunks);
        }
        // Work records must account for every message exactly once.
        let recorded: u64 = chunks.iter().map(|c| c.msgs).sum();
        assert_eq!(recorded, msgs.len() as u64, "case {case}");
        // Oracle: plain per-destination fold.
        let mut expect = vec![0f32; n];
        let mut got = vec![false; n];
        for &(d, v) in &msgs {
            expect[d as usize] += v;
            got[d as usize] = true;
        }
        for v in 0..n as u32 {
            let pos = csb.layout.position[v as usize] as usize;
            assert_eq!(has[pos] == 1, got[v as usize], "case {case} vertex {v}");
            if got[v as usize] {
                assert!(
                    (out[pos] - expect[v as usize]).abs() < 1e-3,
                    "case {case} vertex {v}: {} vs {}",
                    out[pos],
                    expect[v as usize]
                );
            }
        }
    }
}

/// The engine's SSSP equals Dijkstra on arbitrary weighted digraphs.
#[test]
fn sssp_equals_dijkstra() {
    for case in 0..CASES / 2 {
        let mut rng = SplitMix64::seed_from_u64(2000 + case);
        let g = random_graph(&mut rng, 40, 200);
        let seed = rng.random_range(0u64..1000);
        let mut el = g.to_edge_list();
        el.randomize_weights(0.1, 5.0, seed);
        let g = Csr::from_edge_list(&el);
        let out = run_single(
            &Sssp { source: 0 },
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        let expect = dijkstra_reference(&g, 0);
        for v in 0..g.num_vertices() {
            let (a, b) = (out.values[v], expect[v]);
            if b.is_infinite() {
                assert!(a.is_infinite(), "case {case} vertex {v}");
            } else {
                assert!((a - b).abs() < 1e-2, "case {case} vertex {v}: {a} vs {b}");
            }
        }
    }
}

/// Every partitioning scheme yields a total assignment whose stats are
/// internally consistent.
#[test]
fn partitions_are_total_and_consistent() {
    use phigraph_partition::{partition, PartitionScheme, PartitionStats, Ratio};
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(3000 + case);
        let g = random_graph(&mut rng, 60, 300);
        let a = rng.random_range(1u32..5);
        let b = rng.random_range(1u32..5);
        let scheme = [
            PartitionScheme::Continuous,
            PartitionScheme::RoundRobin,
            PartitionScheme::Hybrid { blocks: 8 },
        ][rng.random_range(0usize..3)];
        let ratio = Ratio::new(a, b);
        let p = partition(&g, scheme, ratio, 11);
        assert_eq!(p.assign.len(), g.num_vertices(), "case {case}");
        let s = PartitionStats::compute(&g, &p);
        assert_eq!(
            s.vertices[0] + s.vertices[1],
            g.num_vertices(),
            "case {case}"
        );
        assert_eq!(s.edges[0] + s.edges[1], g.num_edges() as u64, "case {case}");
        assert!(s.cross_edges <= g.num_edges() as u64, "case {case}");
    }
}

/// Makespan is sandwiched between the two lower bounds and the serial
/// total, and never increases with more workers.
#[test]
fn makespan_bounds() {
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(4000 + case);
        let len = rng.random_range(1usize..200);
        let chunks: Vec<f64> = (0..len).map(|_| rng.random_range(0.0f64..100.0)).collect();
        let workers = rng.random_range(1usize..64);
        let r = makespan(&chunks, workers);
        let total: f64 = chunks.iter().sum();
        let maxc = chunks.iter().cloned().fold(0.0, f64::max);
        assert!(r.makespan <= total + 1e-9, "case {case}");
        assert!(r.makespan + 1e-9 >= total / workers as f64, "case {case}");
        assert!(r.makespan + 1e-9 >= maxc, "case {case}");
        let r2 = makespan(&chunks, workers * 2);
        assert!(r2.makespan <= r.makespan + 1e-9, "case {case}");
    }
}

/// Remote combining preserves the per-destination reduction and emits at
/// most one message per destination.
#[test]
fn combining_preserves_reduction() {
    use phigraph_simd::{Min, ReduceOp};
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(5000 + case);
        let count = rng.random_range(0usize..200);
        let msgs: Vec<(u32, f32)> = (0..count)
            .map(|_| (rng.random_range(0u32..30), rng.random_range(-50.0f32..50.0)))
            .collect();
        let wire: Vec<WireMsg<f32>> = msgs
            .iter()
            .map(|&(dst, value)| WireMsg { dst, value })
            .collect();
        let (combined, before) = combine_messages::<f32, Min>(wire);
        assert_eq!(before, msgs.len(), "case {case}");
        // At most one per destination, sorted.
        for w in combined.windows(2) {
            assert!(w[0].dst < w[1].dst, "case {case}");
        }
        // Values equal the scalar fold.
        for m in &combined {
            let expect = msgs
                .iter()
                .filter(|&&(d, _)| d == m.dst)
                .map(|&(_, v)| v)
                .fold(
                    <Min as ReduceOp<f32>>::identity(),
                    <Min as ReduceOp<f32>>::apply,
                );
            assert_eq!(m.value, expect, "case {case} dst {}", m.dst);
        }
    }
}

/// The SPSC queue transfers an arbitrary item sequence across threads
/// without loss, duplication, or reordering, for any capacity — via both
/// the per-item path and the batched slice path.
#[test]
fn spsc_transfer_is_lossless() {
    use phigraph_core::queues::SpscQueue;
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(6000 + case);
        let len = rng.random_range(0usize..500);
        let items: Vec<u64> = (0..len).map(|_| rng.random()).collect();
        let cap = rng.random_range(2usize..64);
        let batched = case % 2 == 0;
        let q = SpscQueue::new(cap);
        let got: Vec<u64> = std::thread::scope(|s| {
            s.spawn(|| {
                if batched {
                    // SAFETY: single producer thread.
                    unsafe { q.push_slice(&items) };
                } else {
                    for &x in &items {
                        // SAFETY: single producer thread.
                        unsafe { q.push(x) };
                    }
                }
                q.close();
            });
            let mut got = Vec::new();
            while !q.is_drained() {
                if batched {
                    // SAFETY: single consumer thread.
                    unsafe {
                        q.pop_slices(17, |slice| got.extend_from_slice(slice));
                    }
                } else {
                    // SAFETY: single consumer thread.
                    unsafe { q.pop_batch(&mut got, 17) };
                }
            }
            got
        });
        assert_eq!(got, items, "case {case} (batched={batched}, cap={cap})");
    }
}

/// Wire encode/decode is the identity on arbitrary message batches.
#[test]
fn wire_codec_round_trips() {
    use phigraph_comm::message::{decode_batch, encode_batch};
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(7000 + case);
        let count = rng.random_range(0usize..200);
        let wire: Vec<WireMsg<f32>> = (0..count)
            .map(|_| WireMsg {
                dst: rng.random(),
                value: f32::from_bits(rng.random()),
            })
            .collect();
        let bytes = encode_batch(&wire);
        assert_eq!(bytes.len(), wire.len() * 8, "case {case}");
        let back = decode_batch::<f32>(&bytes);
        // NaN-safe comparison via bit patterns.
        assert_eq!(back.len(), wire.len(), "case {case}");
        for (a, b) in back.iter().zip(&wire) {
            assert_eq!(a.dst, b.dst, "case {case}");
            assert_eq!(a.value.to_bits(), b.value.to_bits(), "case {case}");
        }
    }
}

/// The CSB layout is a permutation with non-increasing capacities and exact
/// group geometry, for arbitrary capacity vectors.
#[test]
fn csb_layout_invariants() {
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(8000 + case);
        let n = rng.random_range(1usize..200);
        let caps: Vec<u32> = (0..n).map(|_| rng.random_range(0u32..50)).collect();
        let lanes = 1usize << rng.random_range(1u32..5);
        let k = rng.random_range(1usize..5);
        let owned: Vec<u32> = (0..n as u32).collect();
        let layout = CsbLayout::build(n, &owned, &caps, lanes, k);
        // order is a permutation of owned.
        let mut sorted = layout.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, owned, "case {case}");
        // capacities are non-increasing.
        for w in layout.capacity.windows(2) {
            assert!(w[0] >= w[1], "case {case}");
        }
        // redirection map round-trips.
        for (pos, &v) in layout.order.iter().enumerate() {
            assert_eq!(layout.position[v as usize] as usize, pos, "case {case}");
        }
        // group rows equal the max capacity of their slice, and cell offsets
        // tile exactly.
        let width = k * lanes;
        let mut offset = 0usize;
        for (gi, info) in layout.groups.iter().enumerate() {
            let slice = &layout.capacity[gi * width..(gi * width + width).min(n)];
            assert_eq!(
                info.rows,
                slice.iter().copied().max().unwrap_or(0),
                "case {case}"
            );
            assert_eq!(info.cell_offset, offset, "case {case}");
            offset += info.rows as usize * width;
        }
        assert_eq!(layout.total_cells, offset, "case {case}");
        assert!(layout.dense_cells() >= layout.total_cells, "case {case}");
    }
}

/// Ratio display/parse round-trips.
#[test]
fn ratio_round_trips() {
    use phigraph_partition::Ratio;
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(9000 + case);
        let a = rng.random_range(1u32..100);
        let b = rng.random_range(0u32..100);
        let r = Ratio::new(a, b);
        let parsed: Ratio = r.to_string().parse().unwrap();
        assert_eq!(parsed, r, "case {case}");
        assert!((r.share(0) + r.share(1) - 1.0).abs() < 1e-12, "case {case}");
    }
}

/// Graph adjacency-list I/O round-trips arbitrary graphs.
#[test]
fn adjacency_io_round_trips() {
    use phigraph_graph::io::{read_adjacency, write_adjacency};
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(10_000 + case);
        let g = random_graph(&mut rng, 50, 250);
        let mut buf = Vec::new();
        write_adjacency(&g, &mut buf).unwrap();
        let g2 = read_adjacency(&buf[..]).unwrap();
        assert_eq!(g, g2, "case {case}");
    }
}

/// Byte-smear fuzzing of the ingestion parsers: corrupting arbitrary bytes
/// of a valid file must yield `Ok` or a typed `GraphError`, never a panic.
#[test]
fn graph_parsers_survive_byte_smear() {
    use phigraph_graph::io::{read_adjacency, read_binary, write_adjacency, write_binary};
    for case in 0..CASES * 4 {
        let mut rng = SplitMix64::seed_from_u64(12_000 + case);
        let g = random_graph(&mut rng, 30, 120);
        let mut adj = Vec::new();
        write_adjacency(&g, &mut adj).unwrap();
        let mut bin = Vec::new();
        write_binary(&g, &mut bin).unwrap();
        for buf in [&mut adj, &mut bin] {
            // Smear a handful of bytes, sometimes truncate the tail.
            let smears = rng.random_range(1usize..6);
            for _ in 0..smears {
                let at = rng.random_range(0..buf.len());
                buf[at] = (rng.next_u64() & 0xFF) as u8;
            }
            if rng.random_bool(0.3) {
                let keep = rng.random_range(0..buf.len());
                buf.truncate(keep);
            }
        }
        // Any outcome is fine except a panic; errors must be typed and
        // printable (the Display path is part of the contract).
        if let Err(e) = read_adjacency(&adj[..]) {
            let _ = e.to_string();
        }
        if let Err(e) = read_binary(&bin[..]) {
            let _ = e.to_string();
        }
    }
}

/// The engine is bitwise deterministic for a fixed input, regardless of
/// threading (PageRank sums are applied in a fixed buffer order).
#[test]
fn engine_is_deterministic() {
    use phigraph_apps::PageRank;
    for case in 0..CASES / 4 {
        let mut rng = SplitMix64::seed_from_u64(11_000 + case);
        let g = random_graph(&mut rng, 40, 150);
        let threads = rng.random_range(1usize..6);
        let pr = PageRank {
            damping: 0.85,
            iterations: 4,
        };
        let a = run_single(
            &pr,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking().with_host_threads(threads),
        );
        let b = run_single(
            &pr,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking().with_host_threads(1),
        );
        // Same multiset of messages reduced with an associative op over a
        // deterministic layout: identical reports step-for-step.
        assert_eq!(a.report.supersteps(), b.report.supersteps(), "case {case}");
        for v in 0..g.num_vertices() {
            assert!((a.values[v] - b.values[v]).abs() < 1e-4, "case {case}");
        }
    }
}

/// The per-thread span recorder under concurrency: with ring capacity above
/// the per-thread span count nothing is lost, every span closes at or after
/// it opens, spans land in closing order (the single-writer ring appends on
/// guard drop), and overflow is accounted rather than silent.
#[test]
fn trace_recorder_concurrent_no_loss_below_capacity() {
    use phigraph_trace::{Phase, Trace, TraceLevel, ALL_PHASES};
    for case in 0..8u64 {
        let mut rng = SplitMix64::seed_from_u64(7200 + case);
        let nthreads = rng.random_range(2..7usize);
        let spans_per_thread = rng.random_range(10..400usize);
        let trace = Trace::with_capacity(TraceLevel::Fine, 512);
        std::thread::scope(|scope| {
            for i in 0..nthreads {
                let trace = trace.clone();
                scope.spawn(move || {
                    let t = trace.thread(&format!("stress-{i}"), i as u32);
                    let mut recorded = 0usize;
                    while recorded < spans_per_thread {
                        if recorded.is_multiple_of(3) && recorded + 2 <= spans_per_thread {
                            // Nested pair: inner closes (and records) first.
                            let _outer =
                                t.span(ALL_PHASES[recorded % ALL_PHASES.len()], recorded as u32);
                            let _inner = t.span(
                                ALL_PHASES[(recorded + 1) % ALL_PHASES.len()],
                                recorded as u32,
                            );
                            recorded += 2;
                        } else {
                            let _s =
                                t.span(ALL_PHASES[recorded % ALL_PHASES.len()], recorded as u32);
                            recorded += 1;
                        }
                    }
                });
            }
        });
        let snap = trace.snapshot();
        assert_eq!(snap.threads.len(), nthreads, "case {case}");
        for th in &snap.threads {
            assert_eq!(th.dropped, 0, "case {case} thread {}", th.name);
            assert_eq!(
                th.spans.len(),
                spans_per_thread,
                "case {case} thread {} lost spans below capacity",
                th.name
            );
            let mut last_close = 0u64;
            for s in &th.spans {
                assert!(
                    s.t0_ns <= s.t1_ns,
                    "case {case}: span closes before it opens"
                );
                assert!(
                    s.t1_ns >= last_close,
                    "case {case} thread {}: close times must be monotonic",
                    th.name
                );
                last_close = s.t1_ns;
            }
        }
        assert_eq!(snap.total_spans(), nthreads * spans_per_thread);
        assert_eq!(snap.total_dropped(), 0);
    }

    // Overflow accounting: a tiny ring keeps the first `capacity` spans and
    // counts the rest as dropped instead of corrupting the buffer.
    let trace = Trace::with_capacity(TraceLevel::Phase, 16);
    let t = trace.thread("tiny", 0);
    for i in 0..50u32 {
        let _s = t.span(Phase::Generate, i);
    }
    let snap = trace.snapshot();
    assert_eq!(snap.threads[0].spans.len(), 16);
    assert_eq!(snap.threads[0].dropped, 34);
    assert_eq!(snap.total_dropped(), 34);
}
