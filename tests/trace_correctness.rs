//! Tracing must be an observer, never a participant.
//!
//! Two contracts from the observability layer:
//!
//! 1. Attaching a disabled trace (or none at all) leaves every computed
//!    vertex value **bit-identical** — the span sites cost one relaxed
//!    atomic load and must not perturb scheduling-sensitive results.
//! 2. The emitted Chrome trace JSON is well-formed (it parses with the
//!    framework's own hand-rolled parser) and its spans are strictly
//!    nested per thread with monotonic close times — the ring buffer
//!    records spans in closing order.

use phigraph_apps::{workloads, PageRank, Sssp};
use phigraph_comm::PcieLink;
use phigraph_core::engine::{run_hetero, run_single, EngineConfig};
use phigraph_device::DeviceSpec;
use phigraph_partition::{partition, PartitionScheme, Ratio};
use phigraph_trace::json::Json;
use phigraph_trace::{Trace, TraceLevel};

fn graph() -> phigraph_graph::Csr {
    workloads::pokec_like_weighted(workloads::Scale::Tiny, 16)
}

/// Run `cfg` three ways — untraced, with a `TraceLevel::Off` trace, and
/// with a `TraceLevel::Phase` trace — and demand bit-identical values.
fn assert_trace_invisible<P, F>(program: &P, cfg: EngineConfig, bits: F, label: &str)
where
    P: phigraph_core::api::VertexProgram,
    P::Value: Copy,
    F: Fn(P::Value) -> u64,
{
    let g = graph();
    let spec = DeviceSpec::xeon_e5_2680();
    let base = run_single(program, &g, spec.clone(), &cfg);

    let off = Trace::new(TraceLevel::Off);
    let with_off = run_single(
        program,
        &g,
        spec.clone(),
        &cfg.clone().with_trace(off.clone()),
    );
    let phase = Trace::new(TraceLevel::Phase);
    let with_phase = run_single(program, &g, spec, &cfg.clone().with_trace(phase.clone()));

    for (v, (&a, (&b, &c))) in base
        .values
        .iter()
        .zip(with_off.values.iter().zip(&with_phase.values))
        .enumerate()
    {
        assert_eq!(
            bits(a),
            bits(b),
            "{label}: Off-trace diverged at vertex {v}"
        );
        assert_eq!(
            bits(a),
            bits(c),
            "{label}: Phase-trace diverged at vertex {v}"
        );
    }
    // A disabled trace records nothing at all.
    let snap = off.snapshot();
    assert_eq!(snap.total_spans(), 0, "{label}: Off trace recorded spans");
    assert!(
        phase.snapshot().total_spans() > 0,
        "{label}: Phase trace recorded nothing"
    );
}

#[test]
fn disabled_tracing_is_bit_identical_sssp() {
    // Min-reduction is order-independent, so even heavily threaded runs
    // must agree bit-for-bit.
    let p = Sssp { source: 3 };
    assert_trace_invisible(
        &p,
        EngineConfig::locking().with_host_threads(8),
        |v: f32| v.to_bits() as u64,
        "sssp/lock",
    );
    assert_trace_invisible(
        &p,
        EngineConfig::pipelined().with_host_threads(8),
        |v: f32| v.to_bits() as u64,
        "sssp/pipe",
    );
}

#[test]
fn disabled_tracing_is_bit_identical_pagerank() {
    // f32 sums depend on reduction order, so pin the deterministic
    // single-worker configurations: any bit-level divergence then must
    // come from the tracing layer itself.
    let p = PageRank {
        damping: 0.85,
        iterations: 8,
    };
    assert_trace_invisible(
        &p,
        EngineConfig::locking().with_host_threads(1),
        |v: f32| v.to_bits() as u64,
        "pagerank/lock1",
    );
    // host_threads(2) resolves to exactly one worker and one mover.
    assert_trace_invisible(
        &p,
        EngineConfig::pipelined().with_host_threads(2),
        |v: f32| v.to_bits() as u64,
        "pagerank/pipe2",
    );
}

/// Collect `(ts, dur, name)` per tid from a parsed Chrome trace.
fn spans_by_tid(doc: &Json) -> std::collections::BTreeMap<u64, Vec<(f64, f64, String)>> {
    let mut by_tid: std::collections::BTreeMap<u64, Vec<(f64, f64, String)>> =
        std::collections::BTreeMap::new();
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    for e in events {
        if e.get("ph").and_then(|p| p.as_str()) != Some("X") {
            continue;
        }
        let tid = e.u64_or_0("tid");
        let ts = e.f64_or_0("ts");
        let dur = e.f64_or_0("dur");
        let name = e
            .get("name")
            .and_then(|n| n.as_str())
            .unwrap_or("")
            .to_string();
        by_tid.entry(tid).or_default().push((ts, dur, name));
    }
    by_tid
}

/// Stack-discipline check: spans either nest strictly or are disjoint.
fn assert_nested(tid: u64, spans: &[(f64, f64, String)]) {
    const EPS: f64 = 1e-6;
    // Ring order is closing order: close times must be monotonic.
    let mut last_close = f64::NEG_INFINITY;
    for (ts, dur, name) in spans {
        let close = ts + dur;
        assert!(
            close >= last_close - EPS,
            "tid {tid}: span {name} closes at {close} before previous close {last_close}"
        );
        last_close = close;
    }
    // Sorted by open time (ties: longest first), spans must nest.
    let mut sorted = spans.to_vec();
    sorted.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap()
            .then(b.1.partial_cmp(&a.1).unwrap())
    });
    let mut stack: Vec<(f64, f64)> = Vec::new();
    for (ts, dur, name) in &sorted {
        while let Some(&(_, end)) = stack.last() {
            if *ts >= end - EPS {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&(start, end)) = stack.last() {
            assert!(
                *ts >= start - EPS && ts + dur <= end + EPS,
                "tid {tid}: span {name} [{ts}, {}] partially overlaps parent [{start}, {end}]",
                ts + dur
            );
        }
        stack.push((*ts, ts + dur));
    }
}

#[test]
fn chrome_trace_parses_and_spans_nest() {
    let g = graph();
    let trace = Trace::new(TraceLevel::Fine);
    let cfg = EngineConfig::pipelined()
        .with_host_threads(4)
        .with_trace(trace.clone());
    let _ = run_single(&Sssp { source: 3 }, &g, DeviceSpec::xeon_e5_2680(), &cfg);

    let text = trace.export_chrome();
    let doc = Json::parse(&text).expect("chrome trace must be valid JSON");

    // One metadata track per registered thread, including worker and mover
    // lanes from the pipelined engine.
    let events = doc.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
    let names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(|n| n.as_str())
        })
        .collect();
    assert!(names.contains(&"dev0"), "device track missing: {names:?}");
    assert!(
        names.iter().any(|n| n.starts_with("dev0/worker-")),
        "worker track missing: {names:?}"
    );
    assert!(
        names.iter().any(|n| n.starts_with("dev0/mover-")),
        "mover track missing: {names:?}"
    );

    let by_tid = spans_by_tid(&doc);
    assert_eq!(
        by_tid.len(),
        names.len(),
        "every named track should carry spans"
    );
    let mut phases_seen = std::collections::BTreeSet::new();
    for (tid, spans) in &by_tid {
        assert!(!spans.is_empty());
        assert_nested(*tid, spans);
        for (_, _, name) in spans {
            phases_seen.insert(name.clone());
        }
    }
    for expected in [
        "superstep",
        "generate",
        "insert",
        "process",
        "update",
        "flush",
    ] {
        assert!(
            phases_seen.contains(expected),
            "phase {expected} missing from trace (saw {phases_seen:?})"
        );
    }
}

#[test]
fn hetero_trace_has_exchange_spans_and_both_devices() {
    let g = graph();
    let p = partition(&g, PartitionScheme::hybrid_default(), Ratio::new(1, 1), 7);
    let trace = Trace::new(TraceLevel::Phase);
    let out = run_hetero(
        &Sssp { source: 3 },
        &g,
        &p,
        [DeviceSpec::xeon_e5_2680(), DeviceSpec::xeon_phi_se10p()],
        [
            EngineConfig::locking().with_trace(trace.clone()),
            EngineConfig::pipelined().with_trace(trace.clone()),
        ],
        PcieLink::gen2_x16(),
    );
    assert_eq!(out.device_reports.len(), 2);
    let text = trace.export_chrome();
    let doc = Json::parse(&text).expect("valid JSON");
    let by_tid = spans_by_tid(&doc);
    let all: Vec<&str> = by_tid
        .values()
        .flatten()
        .map(|(_, _, n)| n.as_str())
        .collect();
    assert!(all.contains(&"exchange"), "exchange spans missing");
    let snap = trace.snapshot();
    let names: Vec<&str> = snap.threads.iter().map(|t| t.name.as_str()).collect();
    assert!(
        names.contains(&"dev0") && names.contains(&"dev1"),
        "{names:?}"
    );
}
