//! Cross-engine equivalence: every application must produce identical
//! results under every execution strategy, device model, vectorization
//! setting, and column-mapping mode. The execution strategies are
//! performance techniques (§IV), not semantics — any divergence is a bug.

use phigraph_apps::{workloads, Bfs, PageRank, Sssp, TopoSort};
use phigraph_core::csb::ColumnMode;
use phigraph_core::engine::{run_single, EngineConfig};
use phigraph_device::DeviceSpec;
use phigraph_graph::Csr;

fn all_configs() -> Vec<(&'static str, EngineConfig)> {
    vec![
        ("lock", EngineConfig::locking()),
        (
            "lock-scalar",
            EngineConfig::locking().with_vectorized(false),
        ),
        (
            "lock-one2one",
            EngineConfig::locking().with_column_mode(ColumnMode::OneToOne),
        ),
        ("lock-k1", EngineConfig::locking().with_k(1)),
        ("lock-k8", EngineConfig::locking().with_k(8)),
        ("pipe", EngineConfig::pipelined().with_host_threads(6)),
        (
            "pipe-scalar",
            EngineConfig::pipelined()
                .with_host_threads(3)
                .with_vectorized(false),
        ),
        // Batched-transport corner cases: per-message degenerate batch,
        // a ragged batch that never divides the ring, and a batch exactly
        // equal to the ring capacity (every flush fills the whole ring).
        (
            "pipe-batch1",
            EngineConfig::pipelined()
                .with_host_threads(4)
                .with_pipe_batch(1),
        ),
        (
            "pipe-batch7",
            EngineConfig::pipelined()
                .with_host_threads(4)
                .with_pipe_batch(7),
        ),
        (
            "pipe-batchcap",
            EngineConfig::pipelined()
                .with_host_threads(4)
                .with_queue_cap(64)
                .with_pipe_batch(64),
        ),
        ("omp", EngineConfig::flat()),
        ("seq", EngineConfig::sequential()),
    ]
}

fn devices() -> Vec<DeviceSpec> {
    vec![DeviceSpec::xeon_e5_2680(), DeviceSpec::xeon_phi_se10p()]
}

fn check_all<P>(program: &P, graph: &Csr)
where
    P: phigraph_core::api::VertexProgram,
    P::Value: PartialEq + std::fmt::Debug,
{
    let baseline = run_single(
        program,
        graph,
        DeviceSpec::xeon_e5_2680(),
        &EngineConfig::sequential(),
    );
    for spec in devices() {
        for (name, config) in all_configs() {
            let out = run_single(program, graph, spec.clone(), &config);
            assert_eq!(
                out.values, baseline.values,
                "engine {name} on {} diverged",
                spec.name
            );
        }
    }
}

#[test]
fn pagerank_equivalence() {
    // PageRank reduces with f32 sums, whose result depends on association
    // order (insertion order varies across threads), so equivalence is
    // numeric rather than bitwise.
    let g = workloads::pokec_like(workloads::Scale::Tiny, 11);
    let pr = PageRank {
        damping: 0.85,
        iterations: 5,
    };
    let baseline = run_single(
        &pr,
        &g,
        DeviceSpec::xeon_e5_2680(),
        &EngineConfig::sequential(),
    );
    for spec in devices() {
        for (name, config) in all_configs() {
            let out = run_single(&pr, &g, spec.clone(), &config);
            for v in 0..g.num_vertices() {
                assert!(
                    (out.values[v] - baseline.values[v]).abs() < 1e-3,
                    "engine {name} on {} diverged at vertex {v}: {} vs {}",
                    spec.name,
                    out.values[v],
                    baseline.values[v]
                );
            }
        }
    }
}

#[test]
fn bfs_equivalence() {
    let g = workloads::pokec_like(workloads::Scale::Tiny, 12);
    check_all(&Bfs { source: 0 }, &g);
}

#[test]
fn sssp_equivalence() {
    let g = workloads::pokec_like_weighted(workloads::Scale::Tiny, 13);
    check_all(&Sssp { source: 0 }, &g);
}

#[test]
fn toposort_equivalence() {
    let g = workloads::toposort_dag(workloads::Scale::Tiny, 14);
    check_all(&TopoSort::new(&g), &g);
}

#[test]
fn wcc_equivalence() {
    use phigraph_apps::Wcc;
    let g = workloads::pokec_like(workloads::Scale::Tiny, 18);
    check_all(&Wcc::new(&g), &g);
}

#[test]
fn kcore_equivalence() {
    use phigraph_apps::KCore;
    let g = workloads::pokec_like(workloads::Scale::Tiny, 19);
    check_all(&KCore::new(&g, 4), &g);
}

#[test]
fn semicluster_equivalence_across_engines() {
    use phigraph_apps::SemiClustering;
    use phigraph_core::engine::obj::run_obj_single;
    let (g, _) = workloads::dblp_like(workloads::Scale::Tiny, 15);
    let sc = SemiClustering::default();
    let baseline = run_obj_single(
        &sc,
        &g,
        DeviceSpec::xeon_e5_2680(),
        &EngineConfig::sequential(),
    );
    for spec in devices() {
        for (name, config) in [
            ("lock", EngineConfig::locking()),
            ("pipe", EngineConfig::pipelined().with_host_threads(6)),
            ("omp", EngineConfig::flat()),
        ] {
            let out = run_obj_single(&sc, &g, spec.clone(), &config);
            assert_eq!(
                out.values, baseline.values,
                "obj engine {name} on {}",
                spec.name
            );
        }
    }
}

#[test]
fn equivalence_is_thread_count_independent() {
    let g = workloads::pokec_like_weighted(workloads::Scale::Tiny, 16);
    let p = Sssp { source: 3 };
    let base = run_single(
        &p,
        &g,
        DeviceSpec::xeon_e5_2680(),
        &EngineConfig::locking().with_host_threads(1),
    );
    for threads in [2, 3, 5, 8] {
        let out = run_single(
            &p,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking().with_host_threads(threads),
        );
        assert_eq!(out.values, base.values, "threads={threads}");
        let pipe = run_single(
            &p,
            &g,
            DeviceSpec::xeon_phi_se10p(),
            &EngineConfig::pipelined().with_host_threads(threads),
        );
        assert_eq!(pipe.values, base.values, "pipe threads={threads}");
    }
}

/// The batched queue protocol is pure transport: for batch sizes 1 (the
/// per-message degenerate case), 7 (ragged — never divides the ring or the
/// wavefront), and exactly the ring capacity (every flush wraps the full
/// ring), the pipelined engine must match the sequential and flat engines
/// bit-for-bit on BFS and WCC, and numerically on PageRank (f32 sum order).
#[test]
fn pipe_batch_sizes_do_not_change_results() {
    let batches: [(&str, EngineConfig); 3] = [
        (
            "batch=1",
            EngineConfig::pipelined()
                .with_host_threads(4)
                .with_pipe_batch(1),
        ),
        (
            "batch=7",
            EngineConfig::pipelined()
                .with_host_threads(4)
                .with_pipe_batch(7),
        ),
        (
            "batch=cap",
            EngineConfig::pipelined()
                .with_host_threads(4)
                .with_queue_cap(32)
                .with_pipe_batch(32),
        ),
    ];

    // BFS and WCC: bitwise equality against sequential AND flat.
    let g = workloads::pokec_like(workloads::Scale::Tiny, 21);
    let spec = DeviceSpec::xeon_e5_2680();
    {
        let p = Bfs { source: 0 };
        let seq = run_single(&p, &g, spec.clone(), &EngineConfig::sequential());
        let flat = run_single(&p, &g, spec.clone(), &EngineConfig::flat());
        assert_eq!(seq.values, flat.values, "bfs: flat vs seq");
        for (name, cfg) in &batches {
            let out = run_single(&p, &g, spec.clone(), cfg);
            assert_eq!(out.values, seq.values, "bfs {name}");
        }
    }
    {
        use phigraph_apps::Wcc;
        let p = Wcc::new(&g);
        let seq = run_single(&p, &g, spec.clone(), &EngineConfig::sequential());
        let flat = run_single(&p, &g, spec.clone(), &EngineConfig::flat());
        assert_eq!(seq.values, flat.values, "wcc: flat vs seq");
        for (name, cfg) in &batches {
            let out = run_single(&p, &g, spec.clone(), cfg);
            assert_eq!(out.values, seq.values, "wcc {name}");
        }
    }
    // PageRank: numeric equality (f32 reduction order varies per engine).
    {
        let p = PageRank {
            damping: 0.85,
            iterations: 5,
        };
        let seq = run_single(&p, &g, spec.clone(), &EngineConfig::sequential());
        for (name, cfg) in &batches {
            let out = run_single(&p, &g, spec.clone(), cfg);
            for v in 0..g.num_vertices() {
                assert!(
                    (out.values[v] - seq.values[v]).abs() < 1e-3,
                    "pagerank {name} diverged at vertex {v}"
                );
            }
        }
    }
}

#[test]
fn gen_chunk_size_does_not_change_results() {
    let g = workloads::pokec_like(workloads::Scale::Tiny, 17);
    let p = Bfs { source: 2 };
    let base = run_single(&p, &g, DeviceSpec::xeon_e5_2680(), &EngineConfig::locking());
    for chunk in [1, 7, 64, 100_000] {
        let out = run_single(
            &p,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking().with_gen_chunk(chunk),
        );
        assert_eq!(out.values, base.values, "gen_chunk={chunk}");
    }
}
