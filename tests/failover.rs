//! Live-failover acceptance sweeps for the heterogeneous engine.
//!
//! The contract under test: kill **or hang** one device at *every*
//! superstep of a hetero SSSP / PageRank run and the survivor must
//! reproduce the fault-free result bit for bit by migrating the lost
//! partition and replaying from the newest barrier snapshot — never by
//! restarting the whole run. Stragglers (slowdowns) must instead trigger a
//! partition rebalance, and the watchdog must detect every injected hang
//! within the configured deadline.

use phigraph_comm::PcieLink;
use phigraph_core::engine::{
    run_hetero, run_hetero_failover, run_ranks_failover, run_seq, EngineConfig,
};
use phigraph_core::metrics::RunOutput;
use phigraph_device::DeviceSpec;
use phigraph_graph::state::PodState;
use phigraph_graph::{Csr, EdgeList, SplitMix64};
use phigraph_partition::{partition, partition_n, DevicePartition, PartitionScheme, Ratio, Shares};
use phigraph_recover::{
    CheckpointStore, FailoverConfig, FailoverPolicy, FaultInjector, FaultKind, FaultPlan, MemStore,
};

use phigraph_apps::{PageRank, Sssp};
use phigraph_core::api::VertexProgram;

/// A connected-ish weighted graph deep enough for ~10 SSSP supersteps.
fn sweep_graph(seed: u64) -> Csr {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let n = 400usize;
    let mut el = EdgeList::new(n);
    for v in 0..n as u32 {
        el.push(v, (v + 1) % n as u32);
    }
    for _ in 0..1_500 {
        let s = rng.random_range(0..n as u32);
        let d = rng.random_range(0..n as u32);
        if s != d {
            el.push(s, d);
        }
    }
    el.sort_dedup();
    el.randomize_weights(0.0, 4.0, seed);
    Csr::from_edge_list(&el)
}

fn specs() -> [DeviceSpec; 2] {
    [DeviceSpec::xeon_e5_2680(), DeviceSpec::xeon_phi_se10p()]
}

fn even_partition(g: &Csr) -> DevicePartition {
    partition(g, PartitionScheme::RoundRobin, Ratio::even(), 0)
}

/// Run the failover driver with fresh in-memory stores.
fn run_failover<P: VertexProgram>(
    program: &P,
    g: &Csr,
    p: &DevicePartition,
    configs: [EngineConfig; 2],
    fcfg: &FailoverConfig,
    injector: Option<FaultInjector>,
) -> RunOutput<P::Value>
where
    P::Value: PodState,
{
    let [c0, c1] = configs;
    let (c0, c1) = match injector {
        Some(inj) => (c0.with_fault_plan(inj.clone()), c1.with_fault_plan(inj)),
        None => (c0, c1),
    };
    let mut s0 = MemStore::new();
    let mut s1 = MemStore::new();
    run_hetero_failover(
        program,
        g,
        p,
        specs(),
        [c0, c1],
        PcieLink::gen2_x16(),
        fcfg,
        [&mut s0 as &mut dyn CheckpointStore, &mut s1],
        false,
    )
}

fn sssp_configs() -> [EngineConfig; 2] {
    [
        EngineConfig::locking()
            .with_checkpoint_every(1)
            .with_backoff_ms(0),
        EngineConfig::locking()
            .with_checkpoint_every(1)
            .with_backoff_ms(0),
    ]
}

/// Kill or hang one device at every superstep of a hetero SSSP run: the
/// survivor must migrate and replay from the newest snapshot, matching the
/// clean run bit for bit without a whole-run restart.
#[test]
fn sssp_crash_or_hang_at_every_superstep_migrates_bit_identically() {
    let g = sweep_graph(11);
    let p = even_partition(&g);
    let app = Sssp { source: 0 };
    let baseline = run_hetero(&app, &g, &p, specs(), sssp_configs(), PcieLink::gen2_x16());
    let steps = baseline.report.steps.len() as u64;
    assert!(steps >= 8, "sweep graph too shallow: {steps} supersteps");

    let fcfg = FailoverConfig::default().with_watchdog_ms(150);
    for s in 0..steps {
        // Alternate fault kind and victim device across the sweep.
        let kind = if s % 2 == 0 {
            FaultKind::CrashDevice
        } else {
            FaultKind::HangDevice
        };
        let dev = ((s / 2) % 2) as u8;
        let plan = FaultPlan::new().with(s, kind, dev);
        let out = run_failover(&app, &g, &p, sssp_configs(), &fcfg, Some(plan.injector()));
        assert_eq!(
            out.values,
            baseline.values,
            "divergence after {} on device {dev} at superstep {s}",
            kind.name()
        );
        let f = out.report.failover;
        assert_eq!(f.migrations, 1, "step {s}");
        assert!(f.degraded_single, "step {s}");
        if kind == FaultKind::HangDevice {
            assert_eq!(f.hang_detections, 1, "step {s}");
            assert_eq!(f.crash_detections, 0, "step {s}");
        } else {
            assert_eq!(f.crash_detections, 1, "step {s}");
            assert_eq!(f.hang_detections, 0, "step {s}");
        }
        assert_eq!(f.supersteps_total, steps, "step {s}");
        assert_eq!(f.resume_step, s, "step {s}");
        if s > 0 {
            // Recovery resumed mid-run — no whole-run restart.
            assert!(
                f.supersteps_replayed < f.supersteps_total,
                "step {s}: replayed {}/{}",
                f.supersteps_replayed,
                f.supersteps_total
            );
        }
        // Step reports stay monotone through the migration splice.
        let ids: Vec<usize> = out.report.steps.iter().map(|r| r.step).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "step {s}: {ids:?}");
        assert!(out.report.summary().contains("failover"), "step {s}");
    }
}

/// Same sweep for PageRank: an order-sensitive `f32` `Sum` combiner, pinned
/// to one host thread per device so the baseline itself is bit-stable. The
/// migrated replay hosts both engine halves with their original configs, so
/// every reduction order is preserved.
#[test]
fn pagerank_crash_or_hang_sweep_is_bit_identical() {
    let mut rng = SplitMix64::seed_from_u64(23);
    let n = rng.random_range(150..250usize);
    let mut el = EdgeList::new(n);
    for _ in 0..1_200 {
        let s = rng.random_range(0..n as u32);
        let d = rng.random_range(0..n as u32);
        if s != d {
            el.push(s, d);
        }
    }
    el.sort_dedup();
    let g = Csr::from_edge_list(&el);
    let p = even_partition(&g);
    let app = PageRank {
        damping: 0.85,
        iterations: 7,
    };
    let configs = || {
        [
            EngineConfig::locking()
                .with_host_threads(1)
                .with_checkpoint_every(1)
                .with_backoff_ms(0),
            EngineConfig::locking()
                .with_host_threads(1)
                .with_checkpoint_every(1)
                .with_backoff_ms(0),
        ]
    };
    let baseline = run_hetero(&app, &g, &p, specs(), configs(), PcieLink::gen2_x16());
    let bits = |o: &RunOutput<f32>| -> Vec<u32> { o.values.iter().map(|v| v.to_bits()).collect() };
    let steps = baseline.report.steps.len() as u64;
    assert!(steps >= 6);

    let fcfg = FailoverConfig::default().with_watchdog_ms(150);
    for s in 0..steps {
        let kind = if s % 2 == 0 {
            FaultKind::HangDevice
        } else {
            FaultKind::CrashDevice
        };
        let dev = (s % 2) as u8;
        let plan = FaultPlan::new().with(s, kind, dev);
        let out = run_failover(&app, &g, &p, configs(), &fcfg, Some(plan.injector()));
        assert_eq!(
            bits(&out),
            bits(&baseline),
            "pagerank diverged after {} on device {dev} at superstep {s}",
            kind.name()
        );
        assert_eq!(out.report.failover.migrations, 1, "step {s}");
        if s > 0 {
            assert!(
                out.report.failover.supersteps_replayed < out.report.failover.supersteps_total,
                "step {s}"
            );
        }
    }
}

/// The watchdog notices every injected hang within (a small multiple of)
/// the configured deadline — the detection latency is measured from the
/// moment the deadline expired.
#[test]
fn watchdog_detects_hangs_within_deadline() {
    let g = sweep_graph(31);
    let p = even_partition(&g);
    let app = Sssp { source: 0 };
    let fcfg = FailoverConfig::default().with_watchdog_ms(40);
    let plan = FaultPlan::new().with(3, FaultKind::HangDevice, 1);
    let out = run_failover(&app, &g, &p, sssp_configs(), &fcfg, Some(plan.injector()));
    let f = out.report.failover;
    assert_eq!(f.hang_detections, 1);
    assert_eq!(f.exchange_timeouts, 1, "survivor saw the deadline expire");
    // Detection latency is bounded: deadline (40ms) + poll interval + sched
    // slack. The bound is generous to stay robust on loaded CI machines.
    assert!(
        f.watchdog_latency_ms < 2_000,
        "watchdog took {}ms past the deadline",
        f.watchdog_latency_ms
    );
    assert!(out.report.total_exchange_timeouts() >= 1);
    assert!(out.report.summary().contains("timeouts="));
}

/// A slowdown is not a death: the straggler triggers exactly one partition
/// rebalance (no migration), the run finishes two-device, and the SSSP
/// fixpoint is unchanged.
#[test]
fn straggler_rebalances_instead_of_migrating() {
    let g = sweep_graph(47);
    let p = even_partition(&g);
    let app = Sssp { source: 0 };
    let baseline = run_hetero(&app, &g, &p, specs(), sssp_configs(), PcieLink::gen2_x16());
    let fcfg = FailoverConfig::default()
        .with_rebalance_after(2)
        .with_slow_factor(3.0);
    let plan = FaultPlan::new().with(1, FaultKind::SlowDevice, 1);
    let out = run_failover(&app, &g, &p, sssp_configs(), &fcfg, Some(plan.injector()));
    // Min-combiner SSSP is partition-independent, so values still match.
    assert_eq!(out.values, baseline.values);
    let f = out.report.failover;
    assert_eq!(f.rebalances, 1);
    assert_eq!(f.migrations, 0);
    assert_eq!(f.crash_detections + f.hang_detections, 0);
    assert!(!f.degraded_single, "rebalance keeps both devices");
    assert!(out.report.summary().contains("rebalances=1"));
}

/// `--failover retry`: the lost device's partition is not migrated; both
/// sides roll back to the newest common snapshot and replay in lock-step.
#[test]
fn retry_policy_rolls_back_without_migration() {
    let g = sweep_graph(53);
    let p = even_partition(&g);
    let app = Sssp { source: 0 };
    let baseline = run_hetero(&app, &g, &p, specs(), sssp_configs(), PcieLink::gen2_x16());
    let fcfg = FailoverConfig::default()
        .with_watchdog_ms(150)
        .with_policy(FailoverPolicy::Retry);
    let plan = FaultPlan::new().with(3, FaultKind::CrashDevice, 1);
    let out = run_failover(&app, &g, &p, sssp_configs(), &fcfg, Some(plan.injector()));
    assert_eq!(out.values, baseline.values);
    let f = out.report.failover;
    assert_eq!(f.migrations, 0);
    assert_eq!(f.crash_detections, 1);
    assert_eq!(f.resume_step, 3, "rolled back to the barrier, not step 0");
    assert_eq!(out.report.recovery.rollbacks, 1);
    assert_eq!(out.report.recovery.retries, 1);
    assert!(!out.report.recovery.degraded);
}

/// `--failover off`: no migration machinery — the survivor degrades to the
/// sequential engine from the last barrier and still converges correctly.
#[test]
fn off_policy_degrades_to_the_survivor() {
    let g = sweep_graph(59);
    let p = even_partition(&g);
    let app = Sssp { source: 0 };
    let baseline = run_hetero(&app, &g, &p, specs(), sssp_configs(), PcieLink::gen2_x16());
    let fcfg = FailoverConfig::default()
        .with_watchdog_ms(150)
        .with_policy(FailoverPolicy::Off);
    let plan = FaultPlan::new().with(2, FaultKind::CrashDevice, 0);
    let out = run_failover(&app, &g, &p, sssp_configs(), &fcfg, Some(plan.injector()));
    assert_eq!(out.values, baseline.values);
    assert!(out.report.failover.degraded_single);
    assert!(out.report.recovery.degraded);
    assert_eq!(out.report.failover.migrations, 0);
    assert_eq!(out.report.mode, "seq");
}

/// Without faults the failover driver computes exactly what the plain
/// hetero driver computes, and reports no failover activity.
#[test]
fn fault_free_failover_run_matches_plain_hetero() {
    let g = sweep_graph(61);
    let p = even_partition(&g);
    let app = Sssp { source: 0 };
    let plain = run_hetero(&app, &g, &p, specs(), sssp_configs(), PcieLink::gen2_x16());
    let fcfg = FailoverConfig::default();
    let out = run_failover(&app, &g, &p, sssp_configs(), &fcfg, None);
    assert_eq!(out.values, plain.values);
    assert_eq!(out.report.steps.len(), plain.report.steps.len());
    assert!(!out.report.failover.any());
    assert_eq!(out.report.recovery.rollbacks, 0);
    assert!(out.report.recovery.checkpoints_written > 0);
    assert_eq!(out.report.mode, "cpu-mic");
}

/// A dropped exchange under the failover driver is a bounded rollback to
/// the newest common snapshot — both the drop and the rollback are
/// surfaced in the report.
#[test]
fn dropped_exchange_rolls_back_to_snapshot_not_step_zero() {
    let g = sweep_graph(67);
    let p = even_partition(&g);
    let app = Sssp { source: 0 };
    let baseline = run_hetero(&app, &g, &p, specs(), sssp_configs(), PcieLink::gen2_x16());
    let fcfg = FailoverConfig::default();
    let plan = FaultPlan::new().with(4, FaultKind::DropExchange, 1);
    let out = run_failover(&app, &g, &p, sssp_configs(), &fcfg, Some(plan.injector()));
    assert_eq!(out.values, baseline.values);
    let f = out.report.failover;
    assert_eq!(f.exchange_drops, 1);
    assert_eq!(f.resume_step, 4, "resumed from the barrier before the drop");
    assert_eq!(out.report.recovery.rollbacks, 1);
    assert!(out.report.total_exchange_drops() >= 1);
    assert!(out.report.summary().contains("xchg drops=1"));
}

/// Even round-robin split across `n` ranks (mirrors [`even_partition`]).
fn n_partition(g: &Csr, n: usize) -> DevicePartition {
    partition_n(g, PartitionScheme::RoundRobin, &Shares::even(n), 0)
}

/// Run the N-rank failover driver with fresh in-memory stores.
fn run_n_failover<P: VertexProgram>(
    program: &P,
    g: &Csr,
    p: &DevicePartition,
    n: usize,
    fcfg: &FailoverConfig,
    injector: Option<FaultInjector>,
) -> RunOutput<P::Value>
where
    P::Value: PodState,
{
    let configs: Vec<EngineConfig> = (0..n)
        .map(|_| {
            let c = EngineConfig::locking()
                .with_checkpoint_every(1)
                .with_backoff_ms(0);
            match &injector {
                Some(inj) => c.with_fault_plan(inj.clone()),
                None => c,
            }
        })
        .collect();
    let specs: Vec<DeviceSpec> = (0..n)
        .map(|r| {
            if r == 0 {
                DeviceSpec::xeon_e5_2680()
            } else {
                DeviceSpec::xeon_phi_se10p()
            }
        })
        .collect();
    let mut stores: Vec<MemStore> = (0..n).map(|_| MemStore::new()).collect();
    let store_refs: Vec<&mut dyn CheckpointStore> = stores
        .iter_mut()
        .map(|s| s as &mut dyn CheckpointStore)
        .collect();
    run_ranks_failover(
        program,
        g,
        p,
        &specs,
        &configs,
        PcieLink::gen2_x16(),
        fcfg,
        store_refs,
        false,
    )
}

/// The N-rank elasticity contract: at every superstep boundary of a 3- and
/// 4-rank SSSP run, kill one rank, and after recovery kill a second — the
/// survivor subset (one rank for N=3, two for N=4) must still converge to
/// exactly the sequential engine's fixpoint, with both evictions accounted.
#[test]
fn kill_one_then_a_second_rank_at_every_superstep_n3_n4() {
    let g = sweep_graph(83);
    let app = Sssp { source: 0 };
    let seq = run_seq(
        &app,
        &g,
        DeviceSpec::xeon_e5_2680(),
        &EngineConfig::sequential(),
    );
    for n in [3usize, 4] {
        let p = n_partition(&g, n);
        let clean = run_n_failover(&app, &g, &p, n, &FailoverConfig::default(), None);
        assert_eq!(clean.values, seq.values, "clean {n}-rank run vs sequential");
        assert!(!clean.report.failover.any(), "n={n}");
        let steps = clean.report.steps.len() as u64;
        assert!(steps >= 8, "sweep graph too shallow at n={n}: {steps}");
        let fcfg = FailoverConfig::default().with_watchdog_ms(200);
        for s1 in 0..steps {
            // First victim rotates over all ranks; the second dies two
            // barriers later (same barrier at the tail of the run — the
            // simultaneous double-loss case).
            let a = (s1 % n as u64) as u8;
            let b = ((s1 + 1) % n as u64) as u8;
            let s2 = (s1 + 2).min(steps - 1);
            let plan = FaultPlan::new().with(s1, FaultKind::CrashRank(a), 0).with(
                s2,
                FaultKind::CrashRank(b),
                0,
            );
            let out = run_n_failover(&app, &g, &p, n, &fcfg, Some(plan.injector()));
            assert_eq!(
                out.values, seq.values,
                "n={n}: killed rank {a}@{s1} then rank {b}@{s2}"
            );
            let f = out.report.failover;
            assert_eq!(f.crash_detections, 2, "n={n} s1={s1}");
            let mut expect = vec![a.min(b), a.max(b)];
            expect.dedup();
            assert_eq!(f.evicted_rank_list(), expect, "n={n} s1={s1}");
            assert!(f.migrations >= 1, "n={n} s1={s1}");
            // Step reports stay monotone through both migration splices.
            let ids: Vec<usize> = out.report.steps.iter().map(|r| r.step).collect();
            assert!(
                ids.windows(2).all(|w| w[0] < w[1]),
                "n={n} s1={s1}: {ids:?}"
            );
        }
    }
}

/// A partitioned link is not a dead rank: the verdict evicts exactly the
/// higher endpoint of the cut, the two remaining ranks keep running as a
/// fabric, and the fixpoint is untouched.
#[test]
fn link_partition_evicts_the_higher_endpoint_and_fabric_survives() {
    let g = sweep_graph(89);
    let app = Sssp { source: 0 };
    let seq = run_seq(
        &app,
        &g,
        DeviceSpec::xeon_e5_2680(),
        &EngineConfig::sequential(),
    );
    let n = 3usize;
    let p = n_partition(&g, n);
    let fcfg = FailoverConfig::default().with_watchdog_ms(200);
    let plan = FaultPlan::new().with(3, FaultKind::partition_link(0, 2), 0);
    let out = run_n_failover(&app, &g, &p, n, &fcfg, Some(plan.injector()));
    assert_eq!(out.values, seq.values);
    let f = out.report.failover;
    assert_eq!(f.link_partitions, 1);
    assert_eq!(f.crash_detections, 0, "a cut link must not read as a crash");
    assert_eq!(
        f.evicted_rank_list(),
        vec![2],
        "the higher side of the 0-2 cut loses the verdict"
    );
    assert!(
        !f.degraded_single,
        "ranks 0 and 1 keep running as a two-rank fabric"
    );
    assert!(out.report.summary().contains("evicted=[2]"));
}

/// Both devices lost at the same superstep: nothing to migrate onto, so
/// the driver degrades to a sequential run from the last barrier.
#[test]
fn losing_both_devices_degrades_but_stays_correct() {
    let g = sweep_graph(71);
    let p = even_partition(&g);
    let app = Sssp { source: 0 };
    let baseline = run_hetero(&app, &g, &p, specs(), sssp_configs(), PcieLink::gen2_x16());
    let fcfg = FailoverConfig::default().with_watchdog_ms(150);
    let plan =
        FaultPlan::new()
            .with(3, FaultKind::CrashDevice, 0)
            .with(3, FaultKind::CrashDevice, 1);
    let out = run_failover(&app, &g, &p, sssp_configs(), &fcfg, Some(plan.injector()));
    assert_eq!(out.values, baseline.values);
    assert!(out.report.failover.degraded_single);
    assert_eq!(out.report.failover.crash_detections, 2);
}
