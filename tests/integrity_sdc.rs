//! Silent-data-corruption sweeps: flip a bit somewhere in the message path
//! at every superstep and demand that `--integrity full` detects it,
//! quarantines the affected vertex groups, heals them by targeted
//! recompute (no whole-run retry), and converges bit-identical to the
//! fault-free baseline. Also here: the zero-overhead contract — integrity
//! `off` must be bit-identical to the plain engines, because the disabled
//! path does no work beyond one relaxed atomic load.
//!
//! The fault model is the SDC subset of [`FaultKind`]: `BitFlipMessage`
//! (a CSB cell rots after the drain), `BitFlipState` (a barrier value rots
//! between supersteps), `TruncateFrame` (an exchange frame arrives short).
//! None of them crash anything — with integrity off they are *silent*.

use phigraph_apps::{PageRank, Sssp, Wcc};
use phigraph_comm::PcieLink;
use phigraph_core::engine::{run_hetero, run_recoverable, run_single, EngineConfig};
use phigraph_core::metrics::RunOutput;
use phigraph_device::DeviceSpec;
use phigraph_graph::{Csr, EdgeList, SplitMix64};
use phigraph_partition::{partition, PartitionScheme, Ratio};
use phigraph_recover::{FaultKind, FaultPlan, IntegrityMode, MemStore};

/// A connected-ish graph big enough to run ~10 supersteps of SSSP.
fn sweep_graph(seed: u64) -> Csr {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let n = 500usize;
    let mut el = EdgeList::new(n);
    for v in 0..n as u32 {
        el.push(v, (v + 1) % n as u32);
    }
    for _ in 0..1_600 {
        let s = rng.random_range(0..n as u32);
        let d = rng.random_range(0..n as u32);
        if s != d {
            el.push(s, d);
        }
    }
    el.sort_dedup();
    Csr::from_edge_list(&el)
}

fn spec() -> DeviceSpec {
    DeviceSpec::xeon_e5_2680()
}

fn run_with_fault<P>(
    app: &P,
    g: &Csr,
    base: &EngineConfig,
    step: u64,
    kind: FaultKind,
) -> RunOutput<P::Value>
where
    P: phigraph_core::api::VertexProgram,
    P::Value: phigraph_graph::state::PodState,
{
    let mut store = MemStore::new();
    let cfg = base
        .clone()
        .with_integrity(IntegrityMode::Full)
        .with_fault_plan(FaultPlan::single(step, kind).injector());
    run_recoverable(app, g, spec(), &cfg, &mut store, false)
}

/// Flip a message bit at every superstep of SSSP: the group-checksum audit
/// must detect 100% of the injected corruptions and heal them by targeted
/// regeneration of the quarantined groups — never a whole-run retry.
#[test]
fn sssp_message_bitflip_at_every_superstep_heals_in_place() {
    let g = sweep_graph(71);
    let app = Sssp { source: 0 };
    let cfg = EngineConfig::locking().with_backoff_ms(0);
    let baseline = run_single(&app, &g, spec(), &cfg);
    let steps = baseline.report.steps.len();
    assert!(steps >= 8, "sweep graph too shallow: {steps} supersteps");

    let mut detected = 0u64;
    for s in 0..steps as u64 {
        let out = run_with_fault(&app, &g, &cfg, s, FaultKind::BitFlipMessage);
        assert_eq!(
            out.values, baseline.values,
            "divergence after message bit flip at superstep {s}"
        );
        let i = out.report.integrity;
        if out.report.recovery.faults_injected > 0 {
            // The flip landed in an occupied cell: it must be detected and
            // healed group-granularly, with no rollback and no replay.
            assert!(i.group_detections >= 1, "step {s}: undetected flip");
            assert!(i.quarantined_groups >= 1, "step {s}");
            assert!(i.group_heals >= 1, "step {s}: quarantine not healed");
            assert_eq!(out.report.recovery.rollbacks, 0, "step {s}");
            assert_eq!(i.step_replays, 0, "step {s}: escalated past rung 1");
            detected += 1;
        }
        assert!(i.group_checks > 0, "full mode must audit every step");
    }
    // Every superstep that still moves messages must have fired the fault.
    assert!(
        detected >= steps as u64 - 1,
        "flips fired on only {detected}/{steps} supersteps"
    );
}

/// Rot a barrier value at every superstep of SSSP: the state-digest audit
/// against the barrier image must catch it and copy the image back.
#[test]
fn sssp_state_bitflip_at_every_superstep_heals_in_place() {
    let g = sweep_graph(73);
    let app = Sssp { source: 0 };
    let cfg = EngineConfig::locking().with_backoff_ms(0);
    let baseline = run_single(&app, &g, spec(), &cfg);
    let steps = baseline.report.steps.len();

    for s in 0..steps as u64 {
        let out = run_with_fault(&app, &g, &cfg, s, FaultKind::BitFlipState);
        assert_eq!(
            out.values, baseline.values,
            "divergence after state bit flip at superstep {s}"
        );
        assert_eq!(out.report.recovery.faults_injected, 1, "step {s}");
        let i = out.report.integrity;
        assert!(i.state_detections >= 1, "step {s}: rotted state missed");
        assert!(i.group_heals >= 1, "step {s}: state not healed");
        assert_eq!(out.report.recovery.rollbacks, 0, "step {s}");
    }
}

/// The same sweep for PageRank: an order-sensitive `f32` `Sum` combiner,
/// pinned to one host thread so both the baseline and the regeneration
/// insert in the same order — the healed run must be bit-exact.
#[test]
fn pagerank_bitflip_sweep_is_bit_identical() {
    let g = sweep_graph(79);
    let app = PageRank {
        damping: 0.85,
        iterations: 8,
    };
    let cfg = EngineConfig::locking()
        .with_host_threads(1)
        .with_backoff_ms(0);
    let baseline = run_single(&app, &g, spec(), &cfg);
    let steps = baseline.report.steps.len();
    assert!(steps >= 6);

    let kinds = [FaultKind::BitFlipMessage, FaultKind::BitFlipState];
    for s in 0..steps as u64 {
        let kind = kinds[s as usize % kinds.len()];
        let out = run_with_fault(&app, &g, &cfg, s, kind);
        let a: Vec<u32> = out.values.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = baseline.values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            a,
            b,
            "pagerank diverged after {} at superstep {s}",
            kind.name()
        );
        assert_eq!(out.report.recovery.rollbacks, 0, "step {s}");
    }
}

/// WCC label propagation under both SDC kinds.
#[test]
fn wcc_bitflip_sweep_is_bit_identical() {
    let g = sweep_graph(83);
    let app = Wcc::new(&g);
    let cfg = EngineConfig::locking().with_backoff_ms(0);
    let baseline = run_single(&app, &g, spec(), &cfg);
    let steps = baseline.report.steps.len();
    assert!(steps >= 4);

    let kinds = [FaultKind::BitFlipState, FaultKind::BitFlipMessage];
    for s in 0..steps as u64 {
        let kind = kinds[s as usize % kinds.len()];
        let out = run_with_fault(&app, &g, &cfg, s, kind);
        assert_eq!(
            out.values,
            baseline.values,
            "wcc diverged after {} at superstep {s}",
            kind.name()
        );
    }
}

/// Zero-overhead contract: integrity `off` performs no checks at all and
/// is bit-identical to the plain engine; `full` with no faults detects
/// nothing, heals nothing, and is *also* bit-identical.
#[test]
fn integrity_off_and_clean_full_are_bit_identical_to_plain_runs() {
    let g = sweep_graph(89);
    let app = Sssp { source: 0 };
    let cfg = EngineConfig::locking().with_backoff_ms(0);
    let plain = run_single(&app, &g, spec(), &cfg);

    // Off: the recoverable driver with integrity disabled.
    let mut store = MemStore::new();
    let off = run_recoverable(
        &app,
        &g,
        spec(),
        &cfg.clone().with_integrity(IntegrityMode::Off),
        &mut store,
        false,
    );
    assert_eq!(off.values, plain.values, "integrity off changed the result");
    assert!(
        !off.report.integrity.any(),
        "off mode did integrity work: {:?}",
        off.report.integrity
    );

    // Full, no faults: audits run, nothing fires, same answer.
    let mut store = MemStore::new();
    let full = run_recoverable(
        &app,
        &g,
        spec(),
        &cfg.clone().with_integrity(IntegrityMode::Full),
        &mut store,
        false,
    );
    assert_eq!(full.values, plain.values, "clean full-mode run diverged");
    let i = full.report.integrity;
    assert!(i.group_checks > 0 && i.state_checks > 0 && i.audits_run > 0);
    assert_eq!(i.detections(), 0, "clean run raised detections: {i:?}");
    assert_eq!(i.group_heals + i.step_replays, 0);
    assert_eq!(full.report.recovery.rollbacks, 0);
}

/// Background scrubbing: `--scrub-every N` audits the barrier digests on a
/// cadence even below `full`, and catches a state flip planted on (or
/// before) a scrub boundary.
#[test]
fn scrub_cadence_catches_state_rot_below_full_mode() {
    let g = sweep_graph(97);
    let app = Sssp { source: 0 };
    let baseline = run_single(&app, &g, spec(), &EngineConfig::locking());

    let mut store = MemStore::new();
    let cfg = EngineConfig::locking()
        .with_backoff_ms(0)
        .with_integrity(IntegrityMode::Frames)
        .with_scrub_every(2)
        .with_fault_plan(FaultPlan::single(4, FaultKind::BitFlipState).injector());
    let out = run_recoverable(&app, &g, spec(), &cfg, &mut store, false);
    assert_eq!(out.values, baseline.values, "scrub failed to heal the rot");
    let i = out.report.integrity;
    assert!(i.scrub_passes >= 1, "no scrub pass ran: {i:?}");
    assert!(i.state_detections >= 1, "scrub missed the rot: {i:?}");
    assert!(i.group_heals >= 1);
}

/// Frame integrity on the heterogeneous path: corrupt the wire (bit flip
/// and truncation), and the framed exchange must detect it on the receiver
/// and heal it with one lock-step re-exchange — same final values, no
/// whole-run retry.
#[test]
fn hetero_frame_corruption_heals_by_reexchange() {
    let g = sweep_graph(101);
    let p = partition(&g, PartitionScheme::RoundRobin, Ratio::even(), 0);
    let app = Sssp { source: 0 };
    let baseline = run_single(&app, &g, spec(), &EngineConfig::locking());

    for kind in [FaultKind::BitFlipMessage, FaultKind::TruncateFrame] {
        let plan = FaultPlan::single(3, kind);
        let inj = plan.injector();
        let mk = |cfg: EngineConfig| {
            cfg.with_integrity(IntegrityMode::Frames)
                .with_fault_plan(inj.clone())
        };
        let out = run_hetero(
            &app,
            &g,
            &p,
            [DeviceSpec::xeon_e5_2680(), DeviceSpec::xeon_phi_se10p()],
            [mk(EngineConfig::locking()), mk(EngineConfig::locking())],
            PcieLink::gen2_x16(),
        );
        assert_eq!(out.values, baseline.values, "{} not healed", kind.name());
        let i = out.report.integrity;
        assert!(i.frame_checks > 0, "{}", kind.name());
        assert!(i.frame_detections >= 1, "{} undetected", kind.name());
        assert!(i.frame_reexchanges >= 1, "{} not re-exchanged", kind.name());
    }
}
