//! Fault-tolerance sweeps: crash the engine at every superstep, recover,
//! and demand bit-identical results.
//!
//! The paper's execution model makes this cheap to state precisely: the
//! barrier after `update` is the only consistency point, so a run that is
//! killed at superstep `s` and replayed from the newest checkpoint must
//! reconverge to exactly the same vertex values as a fault-free run —
//! not merely "close". The sweeps below assert that for every superstep,
//! for several fault kinds, for both SSSP (order-independent `Min`
//! combiner, multithreaded) and PageRank (`f32` `Sum`, pinned to one host
//! thread so the reduction order is reproducible).
//!
//! Also here: the corrupt-checkpoint property test — seeded random byte
//! smears over stored snapshots must either decode to the identical state
//! or be rejected by the checksum; recovery then falls back to an older
//! valid snapshot and still reproduces the clean result.

use phigraph_apps::{PageRank, Sssp};
use phigraph_core::engine::{run_recoverable, run_single, EngineConfig};
use phigraph_device::DeviceSpec;
use phigraph_graph::{Csr, EdgeList, SplitMix64};
use phigraph_recover::{CheckpointStore, FaultKind, FaultPlan, MemStore, Snapshot};

/// Random small directed graph as CSR (same idiom as the property suite).
fn random_graph(rng: &mut SplitMix64, max_n: usize, max_m: usize) -> Csr {
    let n = rng.random_range(2..max_n);
    let m = rng.random_range(0..max_m);
    let mut el = EdgeList::new(n);
    for _ in 0..m {
        let s = rng.random_range(0..n as u32);
        let d = rng.random_range(0..n as u32);
        if s != d {
            el.push(s, d);
        }
    }
    el.sort_dedup();
    Csr::from_edge_list(&el)
}

/// A connected-ish graph big enough to run ~10 supersteps of SSSP.
fn sweep_graph(seed: u64) -> Csr {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let n = 600usize;
    let mut el = EdgeList::new(n);
    // Ring backbone guarantees long shortest-path chains (many supersteps).
    for v in 0..n as u32 {
        el.push(v, (v + 1) % n as u32);
    }
    for _ in 0..2_000 {
        let s = rng.random_range(0..n as u32);
        let d = rng.random_range(0..n as u32);
        if s != d {
            el.push(s, d);
        }
    }
    el.sort_dedup();
    Csr::from_edge_list(&el)
}

fn spec() -> DeviceSpec {
    DeviceSpec::xeon_e5_2680()
}

/// Crash SSSP at every superstep with a rotating fault kind; each recovered
/// run must match the fault-free baseline bit for bit.
#[test]
fn sssp_crash_at_every_superstep_is_bit_identical() {
    let g = sweep_graph(11);
    let app = Sssp { source: 0 };
    let cfg = EngineConfig::locking()
        .with_checkpoint_every(2)
        .with_backoff_ms(0);
    let baseline = run_single(&app, &g, spec(), &cfg);
    let steps = baseline.report.steps.len();
    assert!(steps >= 8, "sweep graph too shallow: {steps} supersteps");

    let kinds = [
        FaultKind::KillWorker,
        FaultKind::KillMover,
        FaultKind::PoisonInsert,
    ];
    for s in 0..steps as u64 {
        let kind = kinds[s as usize % kinds.len()];
        let mut store = MemStore::new();
        let cfg = cfg
            .clone()
            .with_fault_plan(FaultPlan::single(s, kind).injector());
        let out = run_recoverable(&app, &g, spec(), &cfg, &mut store, false);
        assert_eq!(
            out.values,
            baseline.values,
            "divergence after {} fault at superstep {s}",
            kind.name()
        );
        assert_eq!(out.report.recovery.faults_injected, 1, "fault at step {s}");
        assert_eq!(out.report.recovery.rollbacks, 1, "fault at step {s}");
        assert!(!out.report.recovery.degraded);
        // Step reports stay monotone through the rollback splice.
        let ids: Vec<usize> = out.report.steps.iter().map(|r| r.step).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "steps {ids:?}");
    }
}

/// Same sweep for PageRank: a floating-point `Sum` combiner, pinned to one
/// host thread so the fault-free baseline itself is deterministic.
#[test]
fn pagerank_crash_at_every_superstep_is_bit_identical() {
    let mut rng = SplitMix64::seed_from_u64(23);
    let g = random_graph(&mut rng, 300, 2_500);
    let app = PageRank {
        damping: 0.85,
        iterations: 8,
    };
    let cfg = EngineConfig::locking()
        .with_host_threads(1)
        .with_checkpoint_every(3)
        .with_backoff_ms(0);
    let baseline = run_single(&app, &g, spec(), &cfg);
    let steps = baseline.report.steps.len();
    assert!(steps >= 8);

    for s in 0..steps as u64 {
        let mut store = MemStore::new();
        let cfg = cfg
            .clone()
            .with_fault_plan(FaultPlan::single(s, FaultKind::KillWorker).injector());
        let out = run_recoverable(&app, &g, spec(), &cfg, &mut store, false);
        // f32 values compared bit-exactly via their LE encodings.
        let a: Vec<u32> = out.values.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = baseline.values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "pagerank diverged after crash at superstep {s}");
    }
}

/// Kill the run partway (superstep cap), then `resume = true` from the
/// surviving store — the true "process died" path, at every cut point.
#[test]
fn sssp_resume_after_truncation_at_every_superstep() {
    let g = sweep_graph(31);
    let app = Sssp { source: 0 };
    let cfg = EngineConfig::locking()
        .with_checkpoint_every(1)
        .with_backoff_ms(0);
    let baseline = run_single(&app, &g, spec(), &cfg);
    let steps = baseline.report.steps.len();

    for cut in 1..steps {
        let mut store = MemStore::new();
        let truncated = cfg.clone().with_max_supersteps(cut);
        let _ = run_recoverable(&app, &g, spec(), &truncated, &mut store, false);
        assert!(!store.list().is_empty(), "no snapshot survived cut {cut}");
        let out = run_recoverable(&app, &g, spec(), &cfg, &mut store, true);
        assert_eq!(
            out.values, baseline.values,
            "resume from cut {cut} diverged"
        );
    }
}

/// Seeded property test: smear random bytes over a stored snapshot. Either
/// the decoder still reproduces the identical state (the smear hit dead
/// bytes — only possible for a no-op XOR, which we exclude) or the checksum
/// rejects it; recovery must then fall back and still match the baseline.
#[test]
fn corrupt_checkpoint_smears_are_detected_and_survived() {
    let g = sweep_graph(47);
    let app = Sssp { source: 0 };
    let cfg = EngineConfig::locking()
        .with_checkpoint_every(2)
        .with_backoff_ms(0);
    let baseline = run_single(&app, &g, spec(), &cfg);
    let steps = baseline.report.steps.len() as u64;

    const CASES: u64 = 32;
    let mut rejected = 0usize;
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(9000 + case);
        // Fill a store by running with checkpoints, no faults.
        let mut store = MemStore::new();
        let _ = run_recoverable(&app, &g, spec(), &cfg, &mut store, false);
        let snaps = store.list();
        assert!(!snaps.is_empty());
        // Smear 1..8 random bytes of a random snapshot.
        let victim = snaps[rng.random_range(0..snaps.len())];
        let bytes = store.bytes_mut(victim).expect("victim snapshot exists");
        let smears = rng.random_range(1..8usize);
        for _ in 0..smears {
            let i = rng.random_range(0..bytes.len());
            let mask = (rng.random_range(1..256u32)) as u8; // never a no-op XOR
            bytes[i] ^= mask;
        }
        match Snapshot::decode(&store.load(victim).unwrap()) {
            Ok(_) => panic!("case {case}: corrupted snapshot {victim} decoded cleanly"),
            Err(_) => rejected += 1,
        }
        // Crash after the newest snapshot; recovery must skip any corrupt
        // snapshot it meets and still converge to the clean fixpoint.
        let crash_at = steps - 1;
        let cfg = cfg
            .clone()
            .with_fault_plan(FaultPlan::single(crash_at, FaultKind::KillWorker).injector());
        let out = run_recoverable(&app, &g, spec(), &cfg, &mut store, true);
        assert_eq!(out.values, baseline.values, "case {case} diverged");
    }
    assert_eq!(rejected as u64, CASES, "every smear must be caught");
}

/// The in-engine `CorruptCheckpoint` fault: the writer smears the bytes on
/// the way to the store. A later crash must reject that snapshot (counted
/// in `corrupt_snapshots_rejected`), roll further back, and still match.
#[test]
fn in_engine_checkpoint_corruption_rolls_back_further() {
    let g = sweep_graph(53);
    let app = Sssp { source: 0 };
    let cfg = EngineConfig::locking()
        .with_checkpoint_every(2)
        .with_backoff_ms(0);
    let baseline = run_single(&app, &g, spec(), &cfg);
    let steps = baseline.report.steps.len() as u64;
    assert!(steps >= 6);

    // Corrupt the snapshot written during step 3 (snapshot 4), crash at 5.
    let plan = FaultPlan::new()
        .with(3, FaultKind::CorruptCheckpoint, 0)
        .with(5, FaultKind::KillWorker, 0);
    let mut store = MemStore::new();
    let cfg = cfg.with_fault_plan(plan.injector());
    let out = run_recoverable(&app, &g, spec(), &cfg, &mut store, false);
    assert_eq!(out.values, baseline.values);
    let rec = out.report.recovery;
    assert_eq!(rec.faults_injected, 2);
    assert!(
        rec.corrupt_snapshots_rejected >= 1,
        "corrupt snapshot was never rejected: {rec:?}"
    );
    // The replay rewrites a clean snapshot 4: the store must end fully valid.
    for step in store.list() {
        Snapshot::decode(&store.load(step).unwrap())
            .unwrap_or_else(|e| panic!("snapshot {step} still invalid after replay: {e}"));
    }
}

/// Dropped remote exchanges are not silent: the hetero recovery driver
/// counts them into [`RunReport::failover`] and the one-line summary
/// surfaces them next to the recovery stats.
#[test]
fn dropped_exchanges_surface_in_the_run_summary() {
    use phigraph_comm::PcieLink;
    use phigraph_core::engine::run_hetero_recovering;
    use phigraph_partition::{partition, PartitionScheme, Ratio};

    let g = sweep_graph(61);
    let p = partition(&g, PartitionScheme::RoundRobin, Ratio::even(), 0);
    let app = Sssp { source: 0 };
    let baseline = run_single(&app, &g, spec(), &EngineConfig::locking());

    let plan = FaultPlan::new().with(3, FaultKind::DropExchange, 1);
    let inj = plan.injector();
    let out = run_hetero_recovering(
        &app,
        &g,
        &p,
        [DeviceSpec::xeon_e5_2680(), DeviceSpec::xeon_phi_se10p()],
        [
            EngineConfig::locking()
                .with_backoff_ms(0)
                .with_fault_plan(inj.clone()),
            EngineConfig::locking().with_fault_plan(inj),
        ],
        PcieLink::gen2_x16(),
    );
    assert_eq!(out.values, baseline.values);
    assert_eq!(out.report.failover.exchange_drops, 1);
    assert_eq!(out.report.total_exchange_drops(), 1);
    assert!(
        out.report.summary().contains("xchg drops=1"),
        "summary must surface the dropped exchange: {}",
        out.report.summary()
    );
    // A clean run keeps the summary free of exchange noise.
    let clean = run_hetero_recovering(
        &app,
        &g,
        &p,
        [DeviceSpec::xeon_e5_2680(), DeviceSpec::xeon_phi_se10p()],
        [EngineConfig::locking(), EngineConfig::locking()],
        PcieLink::gen2_x16(),
    );
    assert_eq!(clean.report.total_exchange_drops(), 0);
    assert!(!clean.report.summary().contains("xchg drops"));
}
