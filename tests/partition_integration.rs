//! Partitioning-module integration: scheme invariants on realistic
//! workloads, multilevel-partitioner quality, and file round-trips.

use phigraph_apps::workloads::{self, Scale};
use phigraph_partition::file::{read_partition, write_partition};
use phigraph_partition::mlp::kway::block_cut;
use phigraph_partition::mlp::partition_kway;
use phigraph_partition::{partition, PartitionScheme, PartitionStats, Ratio};

#[test]
fn every_scheme_covers_every_vertex_exactly_once() {
    let g = workloads::pokec_like(Scale::Tiny, 31);
    for scheme in [
        PartitionScheme::Continuous,
        PartitionScheme::RoundRobin,
        PartitionScheme::Hybrid { blocks: 64 },
    ] {
        let p = partition(&g, scheme, Ratio::new(3, 5), 1);
        assert_eq!(p.assign.len(), g.num_vertices());
        assert!(p.assign.iter().all(|&d| d < 2));
        let counts = p.counts();
        assert_eq!(counts[0] + counts[1], g.num_vertices());
    }
}

#[test]
fn fig6_shape_continuous_imbalanced_round_robin_high_cut_hybrid_both_good() {
    let g = workloads::pokec_like(Scale::Tiny, 32);
    let ratio = Ratio::new(3, 5);
    let stats = |scheme| PartitionStats::compute(&g, &partition(&g, scheme, ratio, 5));
    let cont = stats(PartitionScheme::Continuous);
    let rr = stats(PartitionScheme::RoundRobin);
    let hy = stats(PartitionScheme::Hybrid { blocks: 64 });

    // Continuous: badly imbalanced on front-loaded hubs.
    assert!(cont.edge_balance_error(ratio) > 3.0 * hy.edge_balance_error(ratio).max(0.01));
    // Round-robin: balanced but cut-heavy.
    assert!(rr.edge_balance_error(ratio) < 0.15);
    // Hybrid: balanced AND fewer cross edges than round-robin (the paper
    // reports round-robin with 2.27x more cross edges on Pokec; synthetic
    // RMAT graphs at test scale are near-expanders, so the gap is real but
    // smaller).
    assert!(hy.edge_balance_error(ratio) < 0.15);
    assert!(
        rr.cross_edges as f64 > 1.05 * hy.cross_edges as f64,
        "round-robin {} vs hybrid {} cross edges",
        rr.cross_edges,
        hy.cross_edges
    );
}

#[test]
fn hybrid_cut_advantage_is_large_on_community_structure() {
    // Where separators exist (the dblp-like workload), hybrid's cut
    // advantage over round-robin reaches paper-like factors.
    let (g, _) = workloads::dblp_like(Scale::Tiny, 37);
    let ratio = Ratio::new(2, 1);
    let rr = PartitionStats::compute(&g, &partition(&g, PartitionScheme::RoundRobin, ratio, 5));
    let hy = PartitionStats::compute(
        &g,
        &partition(&g, PartitionScheme::Hybrid { blocks: 32 }, ratio, 5),
    );
    assert!(
        rr.cross_edges as f64 > 1.5 * hy.cross_edges as f64,
        "round-robin {} vs hybrid {} cross edges",
        rr.cross_edges,
        hy.cross_edges
    );
}

#[test]
fn mlp_block_quality_on_community_graph() {
    let (g, labels) = workloads::dblp_like(Scale::Tiny, 33);
    let k = 10;
    let blocks = partition_kway(&g, k, 3);
    let cut = block_cut(&g, &blocks);
    // Random assignment cuts ~ (1 - 1/k) of edges; MLP on a community
    // graph must do much better.
    let frac = cut as f64 / g.num_edges() as f64;
    assert!(frac < 0.5, "cut fraction {frac}");
    // And blocks should be label-coherent more often than chance.
    let coherent = g
        .edge_iter()
        .filter(|&(s, d)| {
            blocks[s as usize] == blocks[d as usize] && labels[s as usize] == labels[d as usize]
        })
        .count();
    assert!(coherent * 2 > g.num_edges());
}

#[test]
fn hybrid_reuses_blocks_across_ratios() {
    // "the blocked partitioning result is reused for generating hybrid
    // partitioning results for different ratios": dealing the same blocks
    // at different ratios must track the requested share.
    let g = workloads::pokec_like(Scale::Tiny, 34);
    let blocks = partition_kway(&g, 64, 9);
    for ratio in [
        Ratio::new(1, 1),
        Ratio::new(3, 5),
        Ratio::new(1, 4),
        Ratio::new(4, 3),
    ] {
        let assign =
            phigraph_partition::scheme::hybrid_from_blocks(&g, &blocks, 64, &ratio.to_shares());
        let p = phigraph_partition::DevicePartition {
            assign,
            shares: ratio.to_shares(),
            scheme: PartitionScheme::Hybrid { blocks: 64 },
        };
        let s = PartitionStats::compute(&g, &p);
        assert!(
            s.edge_balance_error(ratio) < 0.2,
            "ratio {ratio}: balance error {}",
            s.edge_balance_error(ratio)
        );
    }
}

#[test]
fn partition_file_round_trip_on_workload() {
    let g = workloads::pokec_like(Scale::Tiny, 35);
    let p = partition(
        &g,
        PartitionScheme::Hybrid { blocks: 32 },
        Ratio::new(2, 3),
        1,
    );
    let mut buf = Vec::new();
    write_partition(&p, &mut buf).unwrap();
    let q = read_partition(&buf[..]).unwrap();
    assert_eq!(q.assign, p.assign);
}

#[test]
fn partitioning_is_deterministic() {
    let g = workloads::pokec_like(Scale::Tiny, 36);
    for scheme in [
        PartitionScheme::Continuous,
        PartitionScheme::RoundRobin,
        PartitionScheme::Hybrid { blocks: 16 },
    ] {
        let a = partition(&g, scheme, Ratio::new(3, 5), 42);
        let b = partition(&g, scheme, Ratio::new(3, 5), 42);
        assert_eq!(a.assign, b.assign, "{}", scheme.name());
    }
}
