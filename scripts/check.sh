#!/usr/bin/env sh
# The full offline verification gate: formatting, release build, test
# suite, and warning-free clippy. No network access is required — the workspace has
# no external dependencies (vendored PRNG + bench harness), so everything
# resolves from the local toolchain alone.
#
# Deeper concurrency checking (loom model checking of the SPSC protocol,
# ThreadSanitizer runs of tests/spsc_stress.rs) needs a nightly toolchain
# and is documented as a recipe in docs/pipeline.md rather than run here.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release (tier-1, offline)"
cargo build --release --workspace --offline

echo "==> cargo test -q (tier-1, offline)"
cargo test -q --workspace --offline

echo "==> cargo clippy -- -D warnings (offline)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> all checks passed"
