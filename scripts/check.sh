#!/usr/bin/env sh
# The full offline verification gate: formatting, release build, test
# suite, and warning-free clippy. No network access is required — the workspace has
# no external dependencies (vendored PRNG + bench harness), so everything
# resolves from the local toolchain alone.
#
# Deeper concurrency checking (loom model checking of the SPSC protocol,
# ThreadSanitizer runs of tests/spsc_stress.rs) needs a nightly toolchain
# and is documented as a recipe in docs/pipeline.md rather than run here.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release (tier-1, offline)"
cargo build --release --workspace --offline

echo "==> cargo test -q (tier-1, offline)"
cargo test -q --workspace --offline

echo "==> cargo clippy -- -D warnings (offline)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> observability smoke: run --trace-out + report on a toy graph"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
PHIGRAPH=./target/release/phigraph
"$PHIGRAPH" generate gnm "$SMOKE_DIR/g.bin" --scale tiny --seed 7 >/dev/null
"$PHIGRAPH" run sssp "$SMOKE_DIR/g.bin" --engine pipe \
    --trace-out "$SMOKE_DIR/trace.json" --trace-format chrome >/dev/null
grep -q '"thread_name"' "$SMOKE_DIR/trace.json"
"$PHIGRAPH" run sssp "$SMOKE_DIR/g.bin" --hetero \
    --trace-out "$SMOKE_DIR/report.json" --trace-format json >/dev/null
"$PHIGRAPH" report "$SMOKE_DIR/report.json" --steps | grep -q "phase decomposition"
"$PHIGRAPH" run pagerank "$SMOKE_DIR/g.bin" --iters 3 \
    --trace-out "$SMOKE_DIR/metrics.prom" --trace-format prom >/dev/null
grep -q "^phigraph_supersteps{" "$SMOKE_DIR/metrics.prom"
"$PHIGRAPH" run sssp "$SMOKE_DIR/g.bin" --engine lock \
    --checkpoint-every 4 --checkpoint-dir "$SMOKE_DIR/ckpt" >/dev/null
"$PHIGRAPH" recover "$SMOKE_DIR/ckpt" | grep -q "failover :"

echo "==> integrity smoke: seeded SDC chaos run heals bit-identically"
"$PHIGRAPH" run sssp "$SMOKE_DIR/g.bin" --engine lock \
    --out "$SMOKE_DIR/clean.txt" >/dev/null
"$PHIGRAPH" run sssp "$SMOKE_DIR/g.bin" --engine lock --integrity full \
    --faults 1:bitflip-msg,2:bitflip-state --checkpoint-dir "$SMOKE_DIR/sdc" \
    --out "$SMOKE_DIR/healed.txt" | grep -q "integrity"
cmp "$SMOKE_DIR/clean.txt" "$SMOKE_DIR/healed.txt"
"$PHIGRAPH" recover "$SMOKE_DIR/sdc" | grep -q "integrity:"

echo "==> fabric smoke: N=3 rank crash mid-run, survivors recover bit-identically"
# A clean 3-rank run fixes the expected checksum; the chaos run kills
# rank 1 at superstep 4, so the survivors must migrate its partition,
# replay from the newest common barrier, and land on the same bits.
WANT3="$("$PHIGRAPH" run sssp "$SMOKE_DIR/g.bin" --devices 3 --checksum \
    | sed -n 's/^checksum=//p')"
"$PHIGRAPH" run sssp "$SMOKE_DIR/g.bin" --devices 3 --checkpoint-every 2 \
    --checkpoint-dir "$SMOKE_DIR/fabric-ckpt" --faults 4:crash-rank:1 --checksum \
    | grep -q "checksum=$WANT3"
# The checkpoint dir uses the per-rank layout and records the eviction.
"$PHIGRAPH" recover "$SMOKE_DIR/fabric-ckpt" > "$SMOKE_DIR/fabric-recover.txt"
grep -q "rank2: " "$SMOKE_DIR/fabric-recover.txt"
grep -q "migrations=1" "$SMOKE_DIR/fabric-recover.txt"
echo "    (rank 1 killed at step 4 of 3-rank SSSP: checksum parity after migration: ok)"

echo "==> bench smoke: BENCH_*.json emission + regression gate"
# Smoke-measure every area into the repo root (the per-PR perf artifacts),
# then prove the gate both passes and trips. Numbers from smoke runs are
# for trend/gating only; full runs use 'phigraph bench run' without flags.
"$PHIGRAPH" bench run --out-dir . --smoke --seed 7 --samples 3 --warmup 1
for area in spsc csb superstep exchange integrity partition objmsg serve serve_degraded obs; do
    test -f "BENCH_$area.json" || { echo "missing BENCH_$area.json" >&2; exit 1; }
done
if [ -d bench-baseline ]; then
    # Generous threshold: CI machines vary wildly; the committed baseline
    # only guards against order-of-magnitude cliffs.
    "$PHIGRAPH" bench compare bench-baseline . --threshold 10
else
    echo "    (no bench-baseline/ yet; bootstrapping from this run)"
    mkdir -p bench-baseline
    cp BENCH_*.json bench-baseline/
fi
# The gate must exit nonzero against a baseline perturbed 100x faster.
"$PHIGRAPH" bench perturb BENCH_spsc.json "$SMOKE_DIR/fast.json" --factor 0.01
if "$PHIGRAPH" bench compare "$SMOKE_DIR/fast.json" BENCH_spsc.json >/dev/null 2>&1; then
    echo "bench gate FAILED to trip on a perturbed baseline" >&2
    exit 1
fi
echo "    (gate trips on perturbed baseline: ok)"

echo "==> serving smoke: concurrent multi-tenant daemon over stdin"
# ≥8 concurrent mixed-tenant queries through a live daemon; all must
# complete with correct answers (checksum parity with one-shot runs),
# the Prometheus dump must carry per-tenant counters, and the report
# must decompose the run by tenant.
SERVE_FIFO="$SMOKE_DIR/serve.fifo"
MSOCK="$SMOKE_DIR/metrics.sock"
mkfifo "$SERVE_FIFO"
"$PHIGRAPH" serve "$SMOKE_DIR/g.bin" --workers 2 --queue-cap 32 \
    --tenants gold:4:2,silver:2:1,bronze:1:1 \
    --report-out "$SMOKE_DIR/serve_report.json" \
    --prom-out "$SMOKE_DIR/serve.prom" \
    --metrics-sock "$MSOCK" \
    --events-out "$SMOKE_DIR/serve_events.jsonl" \
    < "$SERVE_FIFO" > "$SMOKE_DIR/serve_out.jsonl" 2>/dev/null &
SERVE_PID=$!
# Hold the write end open so every job is in flight before EOF.
exec 9> "$SERVE_FIFO"
printf '%s\n' \
    '{"id":"q1","tenant":"gold","app":"bfs","source":0}' \
    '{"id":"q2","tenant":"silver","app":"sssp","sources":[0,3]}' \
    '{"id":"q3","tenant":"bronze","app":"pagerank","iters":5}' \
    '{"id":"q4","tenant":"gold","app":"ppr","source":2,"iters":8}' \
    '{"id":"q5","tenant":"silver","app":"wcc"}' \
    '{"id":"q6","tenant":"bronze","app":"bfs","source":5}' \
    '{"id":"q7","tenant":"gold","app":"sssp","sources":[1]}' \
    '{"id":"q8","tenant":"silver","app":"bfs","source":9}' \
    >&9
# Mid-traffic scrape of the metrics socket while the daemon is live
# (stdin still open). Give the 1 Hz sampler a beat so the sliding
# windows have a baseline, then retry until the listener answers.
sleep 1.5
SCRAPED=""
for _ in 1 2 3 4 5 6 7 8 9 10; do
    if "$PHIGRAPH" top "$MSOCK" --raw --count 1 > "$SMOKE_DIR/scrape.prom" 2>/dev/null \
        && grep -q '^phigraph_serve_' "$SMOKE_DIR/scrape.prom"; then
        SCRAPED=yes
        break
    fi
    sleep 0.5
done
test -n "$SCRAPED" || { echo "metrics socket never answered" >&2; exit 1; }
# Prometheus exposition shape: paired HELP/TYPE, no malformed sample
# lines, live histogram buckets, and the sliding-window gauge families.
test "$(grep -c '^# HELP' "$SMOKE_DIR/scrape.prom")" \
    -eq "$(grep -c '^# TYPE' "$SMOKE_DIR/scrape.prom")"
if grep -v '^#' "$SMOKE_DIR/scrape.prom" | grep -q -v '^[a-zA-Z_][a-zA-Z0-9_]*\({[^}]*}\)\{0,1\} -\{0,1\}[0-9]'; then
    echo "malformed Prometheus sample line in mid-traffic scrape" >&2
    exit 1
fi
grep -q '_bucket{le=' "$SMOKE_DIR/scrape.prom"
grep -q 'phigraph_serve_window_jobs_per_sec{tenant="gold",window="10s"}' "$SMOKE_DIR/scrape.prom"
grep -q 'phigraph_serve_window_shed_level{window="10s"}' "$SMOKE_DIR/scrape.prom"
grep -q 'quantile="0.99"' "$SMOKE_DIR/scrape.prom"
# The rendered per-tenant table reads the same scrape.
"$PHIGRAPH" top "$MSOCK" --count 1 --window 10s | grep -q "gold"
# The same exposition is reachable in-protocol, mid-traffic.
printf '%s\n' '{"op":"stats","format":"prom"}' >&9
exec 9>&-                       # EOF: graceful drain, then exit
wait "$SERVE_PID"
test "$(grep -c '"status": "ok"' "$SMOKE_DIR/serve_out.jsonl")" -eq 9
grep '"format": "prom"' "$SMOKE_DIR/serve_out.jsonl" | grep -q 'phigraph_serve_window_queued'
test ! -e "$MSOCK" || { echo "stale metrics socket left behind" >&2; exit 1; }
# The JSONL event log threads trace ids admission -> reply, and the
# report command tallies it (degrading, never erroring, on partials).
grep -q '"ev": "admit"' "$SMOKE_DIR/serve_events.jsonl"
grep -q '"ev": "done"' "$SMOKE_DIR/serve_events.jsonl"
grep '"ev": "done"' "$SMOKE_DIR/serve_events.jsonl" | grep -q '"trace": "t'
"$PHIGRAPH" report "$SMOKE_DIR/serve_events.jsonl" 2>/dev/null | grep -q "^event log:"
# Correctness: the daemon's BFS answer equals a one-shot run bit for bit.
WANT="$("$PHIGRAPH" run bfs "$SMOKE_DIR/g.bin" --checksum | sed -n 's/^checksum=//p')"
grep '"id": "q1"' "$SMOKE_DIR/serve_out.jsonl" | grep -q "$WANT"
grep -q 'phigraph_serve_jobs_completed{tenant="gold"} 3' "$SMOKE_DIR/serve.prom"
grep -q 'phigraph_serve_jobs_completed{tenant="bronze"} 2' "$SMOKE_DIR/serve.prom"
# (capture, then grep: grep -q closing the pipe early would EPIPE the CLI)
"$PHIGRAPH" report "$SMOKE_DIR/serve_report.json" > "$SMOKE_DIR/serve_report.txt"
grep -q "per-tenant decomposition" "$SMOKE_DIR/serve_report.txt"
grep -q "gold" "$SMOKE_DIR/serve_report.txt"
# SIGTERM with stdin held open: clean exit 0 without leaking the pool.
SERVE_FIFO2="$SMOKE_DIR/serve2.fifo"
mkfifo "$SERVE_FIFO2"
"$PHIGRAPH" serve "$SMOKE_DIR/g.bin" --workers 2 \
    --report-out "$SMOKE_DIR/serve_report2.json" \
    --journal-dir "$SMOKE_DIR/sigterm-journal" \
    < "$SERVE_FIFO2" >/dev/null 2>&1 &
SERVE2_PID=$!
exec 8> "$SERVE_FIFO2"
sleep 1
kill -TERM "$SERVE2_PID"
wait "$SERVE2_PID"              # set -e: fails unless the daemon exits 0
exec 8>&-
# A SIGTERM'd daemon with a journal leaves its flight recording behind.
"$PHIGRAPH" report "$SMOKE_DIR/sigterm-journal/flight.json" \
    | grep -q 'flight recording: reason "sigterm"'
echo "    (8 mixed-tenant jobs + live scrape ok, checksum parity, clean SIGTERM + flight: ok)"

echo "==> chaos smoke: seeded kill/restart/reload soak at 2x admission capacity"
# 20 in-process daemon incarnations sharing one journal, faults drawn
# from the serving fault catalog (daemon-kill, worker-hang, slow-client,
# malformed-line), hot reloads mid-traffic. Exits nonzero unless every
# admitted job reached exactly one terminal outcome with a checksum
# bit-identical to a direct one-shot execution.
"$PHIGRAPH" serve-chaos --cycles 20 --seed 7 \
    --journal-dir "$SMOKE_DIR/chaos-journal" \
    > "$SMOKE_DIR/chaos.jsonl" 2>/dev/null
grep -q '"status": "ok"' "$SMOKE_DIR/chaos.jsonl"
# Every killed incarnation leaves a flight-recorder postmortem; the
# canonical flight.json must exist and parse whenever a kill fired.
if grep '"daemon-kill"' "$SMOKE_DIR/chaos.jsonl" | grep -q -v '"daemon-kill": 0'; then
    test -f "$SMOKE_DIR/chaos-journal/flight.json" \
        || { echo "chaos kill left no flight.json" >&2; exit 1; }
    "$PHIGRAPH" report "$SMOKE_DIR/chaos-journal/flight.json" \
        | grep -q 'flight recording: reason "chaos-kill"'
    ls "$SMOKE_DIR/chaos-journal"/flight-c*.json >/dev/null 2>&1 \
        || { echo "chaos kill left no per-cycle flight artifact" >&2; exit 1; }
fi
echo "    (20 kill/restart/reload cycles: zero lost, zero corrupted)"

echo "==> journal smoke: kill -9 mid-burst, restart replays bit-identically"
JDIR="$SMOKE_DIR/serve-journal"
JOBS_FIFO="$SMOKE_DIR/journal.fifo"
mkfifo "$JOBS_FIFO"
"$PHIGRAPH" serve "$SMOKE_DIR/g.bin" --workers 1 --journal-dir "$JDIR" \
    --report-out "$SMOKE_DIR/journal_report1.json" \
    < "$JOBS_FIFO" > "$SMOKE_DIR/journal_out1.jsonl" 2>/dev/null &
JPID=$!
exec 7> "$JOBS_FIFO"
printf '%s\n' \
    '{"id":"j1","tenant":"gold","app":"bfs","source":0}' \
    '{"id":"j2","tenant":"gold","app":"pagerank","iters":40}' \
    '{"id":"j3","tenant":"silver","app":"wcc"}' \
    '{"id":"j4","tenant":"silver","app":"sssp","sources":[3]}' \
    >&7
sleep 1
kill -9 "$JPID" 2>/dev/null || true
wait "$JPID" 2>/dev/null || true
exec 7>&-
# Restart on the same journal with an immediate EOF: recovery re-emits
# every finished result and replays the incomplete remainder to
# completion before exiting.
"$PHIGRAPH" serve "$SMOKE_DIR/g.bin" --workers 1 --journal-dir "$JDIR" \
    --report-out "$SMOKE_DIR/journal_report2.json" \
    < /dev/null > "$SMOKE_DIR/journal_out2.jsonl" 2>/dev/null
for id in j1 j2 j3 j4; do
    grep "\"id\": \"$id\"" "$SMOKE_DIR/journal_out2.jsonl" | grep -q '"status": "ok"' \
        || { echo "journal replay lost $id" >&2; exit 1; }
done
# Checksum parity: the replayed BFS answer equals the one-shot run.
grep '"id": "j1"' "$SMOKE_DIR/journal_out2.jsonl" | grep -q "$WANT"
echo "    (kill -9 -> restart -> 4/4 jobs ok, checksum parity: ok)"

echo "==> hot-swap smoke: reload mid-traffic drops no queries"
"$PHIGRAPH" generate gnm "$SMOKE_DIR/g2.bin" --scale tiny --seed 8 >/dev/null
printf '%s\n' \
    '{"id":"r1","app":"bfs","source":0}' \
    '{"id":"r2","app":"wcc"}' \
    "{\"op\":\"reload\",\"path\":\"$SMOKE_DIR/g2.bin\"}" \
    '{"id":"r3","app":"bfs","source":0}' \
    '{"id":"r4","app":"sssp","sources":[1]}' \
    | "$PHIGRAPH" serve "$SMOKE_DIR/g.bin" --workers 2 \
        --report-out "$SMOKE_DIR/reload_report.json" \
        > "$SMOKE_DIR/reload_out.jsonl" 2>/dev/null
grep '"op":"reload"' "$SMOKE_DIR/reload_out.jsonl" | grep -q '"epoch":2'
test "$(grep -c '"status": "ok"' "$SMOKE_DIR/reload_out.jsonl")" -eq 4
echo "    (reload to epoch 2 mid-traffic, 4/4 queries + reload ack ok)"

echo "==> all checks passed"
