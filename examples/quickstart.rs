//! Quickstart: define a vertex program (SSSP, the paper's running example),
//! build a small weighted graph, and run it on a modelled device.
//!
//! ```sh
//! cargo run --release -p phigraph-apps --example quickstart
//! ```

use phigraph_apps::Sssp;
use phigraph_core::engine::{run_single, EngineConfig};
use phigraph_device::DeviceSpec;
use phigraph_graph::GraphBuilder;

fn main() {
    // A small weighted road-network-ish graph.
    let mut b = GraphBuilder::new();
    for &(s, d, w) in &[
        (0u32, 1u32, 4.0f32),
        (0, 2, 1.0),
        (2, 1, 2.0),
        (1, 3, 5.0),
        (2, 3, 8.0),
        (3, 4, 3.0),
        (1, 4, 10.0),
    ] {
        b.add_weighted_edge(s, d, w);
    }
    let graph = b.build();
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Run single-source shortest paths on the modelled Xeon Phi with the
    // framework's pipelined engine.
    let out = run_single(
        &Sssp { source: 0 },
        &graph,
        DeviceSpec::xeon_phi_se10p(),
        &EngineConfig::pipelined(),
    );

    println!("\nshortest distances from vertex 0:");
    for (v, d) in out.values.iter().enumerate() {
        println!("  vertex {v}: {d}");
    }
    println!(
        "\nrun: {} supersteps, {} messages, simulated MIC time {:.6}s (host wall {:.4}s)",
        out.report.supersteps(),
        out.report.total_msgs(),
        out.report.sim_total(),
        out.report.wall,
    );

    assert_eq!(out.values, vec![0.0, 3.0, 1.0, 8.0, 11.0]);
    println!("distances verified ✓");
}
