//! Partition explorer: compare the three schemes of §IV.E on one graph and
//! print balance and cross-edge metrics for a sweep of ratios — the raw
//! material behind Fig. 6.
//!
//! ```sh
//! cargo run --release -p phigraph-apps --example partition_explorer [scale]
//! ```

use phigraph_apps::workloads::{self, Scale};
use phigraph_graph::DegreeStats;
use phigraph_partition::{partition, PartitionScheme, PartitionStats, Ratio};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Tiny);
    let graph = workloads::pokec_like(scale, 42);
    let deg = DegreeStats::out_degrees(&graph);
    println!(
        "graph: {} vertices / {} edges, degree skew cv={:.2} (hubs front-loaded)\n",
        graph.num_vertices(),
        graph.num_edges(),
        deg.cv
    );

    println!(
        "{:<12}{:<8}{:>12}{:>12}{:>14}{:>14}{:>12}",
        "scheme", "ratio", "CPU edges", "MIC edges", "balance err", "cross edges", "cross %"
    );
    for scheme in [
        PartitionScheme::Continuous,
        PartitionScheme::RoundRobin,
        PartitionScheme::hybrid_default(),
    ] {
        for ratio in [Ratio::new(1, 1), Ratio::new(3, 5), Ratio::new(1, 4)] {
            let p = partition(&graph, scheme, ratio, 7);
            let s = PartitionStats::compute(&graph, &p);
            println!(
                "{:<12}{:<8}{:>12}{:>12}{:>14.3}{:>14}{:>12.1}",
                scheme.name(),
                ratio.to_string(),
                s.edges[0],
                s.edges[1],
                s.edge_balance_error(ratio),
                s.cross_edges,
                s.cross_fraction() * 100.0,
            );
        }
        println!();
    }

    println!("reading the table:");
    println!("  * continuous keeps cross edges low but mis-balances the edge load");
    println!("    (hub vertices cluster at the front of the id space);");
    println!("  * round-robin balances perfectly but maximizes cross edges;");
    println!("  * hybrid (min-connectivity blocks dealt by ratio) achieves both.");
}
