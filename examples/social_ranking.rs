//! Social-network ranking: PageRank over a pokec-like power-law graph (the
//! paper's motivating workload), comparing the locking and pipelined
//! engines on both modelled devices and printing the top-ranked hubs.
//!
//! ```sh
//! cargo run --release -p phigraph-apps --example social_ranking [scale]
//! ```

use phigraph_apps::workloads::{self, Scale};
use phigraph_apps::PageRank;
use phigraph_core::engine::{run_single, EngineConfig};
use phigraph_device::DeviceSpec;
use phigraph_graph::DegreeStats;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Tiny);
    let graph = workloads::pokec_like(scale, 42);
    let stats = DegreeStats::out_degrees(&graph);
    println!(
        "pokec-like graph: {} vertices, {} edges, max degree {}, degree cv {:.2}, top-1% share {:.0}%",
        graph.num_vertices(),
        graph.num_edges(),
        stats.max,
        stats.cv,
        stats.top1pct_share * 100.0
    );

    let pr = PageRank {
        damping: 0.85,
        iterations: 15,
    };

    let mut values = None;
    for (spec, config, label) in [
        (
            DeviceSpec::xeon_e5_2680(),
            EngineConfig::locking(),
            "CPU lock",
        ),
        (
            DeviceSpec::xeon_e5_2680(),
            EngineConfig::pipelined(),
            "CPU pipe",
        ),
        (
            DeviceSpec::xeon_phi_se10p(),
            EngineConfig::locking(),
            "MIC lock",
        ),
        (
            DeviceSpec::xeon_phi_se10p(),
            EngineConfig::pipelined(),
            "MIC pipe",
        ),
    ] {
        let out = run_single(&pr, &graph, spec, &config);
        println!(
            "{label:<9} sim {:.4}s  ({} msgs/superstep, wall {:.3}s)",
            out.report.sim_total(),
            out.report.total_msgs() / out.report.supersteps().max(1) as u64,
            out.report.wall
        );
        if let Some(prev) = &values {
            assert_eq!(prev, &out.values, "engines disagree!");
        }
        values = Some(out.values);
    }

    // Top 10 ranked vertices.
    let values = values.unwrap();
    let mut ranked: Vec<(usize, f32)> = values.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop 10 vertices by PageRank:");
    for (v, score) in ranked.iter().take(10) {
        println!(
            "  vertex {v:>6}  rank {score:.3}  (out-degree {})",
            graph.out_degree(*v as u32)
        );
    }
}
