//! Auto-tuning demo — the paper's future work (§VII) in action: search the
//! worker/mover split for the MIC pipeline and the CPU:MIC partitioning
//! ratio by probing a few supersteps per candidate, then run the tuned
//! configuration end to end.
//!
//! ```sh
//! cargo run --release -p phigraph-apps --example autotune [scale]
//! ```

use phigraph_apps::workloads::{self, Scale};
use phigraph_apps::PageRank;
use phigraph_comm::PcieLink;
use phigraph_core::engine::{run_hetero, run_single, EngineConfig};
use phigraph_core::tune::{
    default_pipeline_candidates, default_ratio_candidates, suggest_ratio_from_throughput,
    tune_pipeline, tune_ratio,
};
use phigraph_device::DeviceSpec;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Tiny);
    let graph = workloads::pokec_like(scale, 21);
    let pr = PageRank {
        damping: 0.85,
        iterations: 10,
    };
    println!(
        "graph: {} vertices / {} edges\n",
        graph.num_vertices(),
        graph.num_edges()
    );

    // 1. Tune the MIC worker/mover split.
    let mic = DeviceSpec::xeon_phi_se10p();
    let candidates = default_pipeline_candidates(&mic);
    println!("probing worker/mover splits on the MIC: {candidates:?}");
    let split = tune_pipeline(&pr, &graph, &mic, &candidates, 2);
    println!(
        "-> best split: {} workers + {} movers (probe {:.5}s)\n",
        split.workers, split.movers, split.predicted
    );

    // 2. Quick analytic ratio suggestion from single-device probes.
    let probe_cfg = EngineConfig::locking().with_max_supersteps(2);
    let cpu_probe = run_single(&pr, &graph, DeviceSpec::xeon_e5_2680(), &probe_cfg)
        .report
        .sim_total();
    let mut mic_cfg = EngineConfig::pipelined().with_max_supersteps(2);
    mic_cfg.sim_workers = split.workers;
    mic_cfg.sim_movers = split.movers;
    let mic_probe = run_single(&pr, &graph, mic.clone(), &mic_cfg)
        .report
        .sim_total();
    let suggestion = suggest_ratio_from_throughput(cpu_probe, mic_probe);
    println!(
        "single-device probes: CPU {cpu_probe:.5}s, MIC {mic_probe:.5}s -> throughput suggests ratio {suggestion}"
    );

    // 3. Full ratio search with block reuse.
    let mut mic_full = EngineConfig::pipelined();
    mic_full.sim_workers = split.workers;
    mic_full.sim_movers = split.movers;
    let configs = [EngineConfig::locking(), mic_full];
    let tuned = tune_ratio(
        &pr,
        &graph,
        [DeviceSpec::xeon_e5_2680(), mic.clone()],
        configs.clone(),
        PcieLink::gen2_x16(),
        &default_ratio_candidates(),
        64,
        2,
    );
    println!(
        "probed ratios {:?} -> best {}\n",
        default_ratio_candidates(),
        tuned.ratio
    );

    // 4. Run the tuned configuration to completion.
    let out = run_hetero(
        &pr,
        &graph,
        &tuned.partition,
        [DeviceSpec::xeon_e5_2680(), mic],
        configs,
        PcieLink::gen2_x16(),
    );
    println!(
        "tuned CPU-MIC run: {} supersteps, exec {:.5}s + comm {:.5}s = {:.5}s",
        out.report.supersteps(),
        out.report.sim_exec(),
        out.report.sim_comm(),
        out.report.sim_total(),
    );
}
