//! Serving queries in-process: load one graph, share it across tenants,
//! and push concurrent jobs through the `phigraph-serve` pool — the same
//! machinery behind the `phigraph serve` daemon, minus the JSON protocol.
//!
//! ```sh
//! cargo run --release -p phigraph-serve --example serve_queries
//! ```
//!
//! For the wire-protocol version of the same flow, pipe line-delimited
//! JSON into `phigraph serve <graph>` (see `docs/serving.md`).

use phigraph_apps::workloads::{self, Scale};
use phigraph_apps::Bfs;
use phigraph_core::engine::{run_single, EngineConfig, ExecMode};
use phigraph_device::DeviceSpec;
use phigraph_serve::{values_checksum, JobKind, JobSpec, ServeConfig, ServePool};
use std::sync::Arc;

fn main() {
    // The daemon's contract: the graph is loaded ONCE into an immutable
    // CSR and shared by every job; only per-job message arenas and value
    // vectors are private.
    let graph = Arc::new(workloads::pokec_like_weighted(Scale::Tiny, 7));
    println!(
        "graph: {} vertices, {} edges (shared, immutable)",
        graph.num_vertices(),
        graph.num_edges()
    );

    let (pool, results) = ServePool::new(
        Arc::clone(&graph),
        ServeConfig {
            workers: 2,
            queue_cap: 64,
            ..ServeConfig::default()
        },
    );

    // Two tenants: "gold" gets 4x the scheduling weight of "bronze" and
    // may run two jobs at once; "bronze" is capped at one.
    pool.set_tenant("gold", 4, 2);
    pool.set_tenant("bronze", 1, 1);

    // A mixed batch: BFS frontiers, a landmark-SSSP batch, personalized
    // PageRank, and connected components, interleaved across tenants.
    let jobs = [
        ("q1", "gold", JobKind::Bfs { source: 0 }),
        (
            "q2",
            "bronze",
            JobKind::Sssp {
                sources: vec![0, 3, 9],
            },
        ),
        (
            "q3",
            "gold",
            JobKind::Ppr {
                source: 2,
                damping: 0.85,
                iterations: 10,
            },
        ),
        ("q4", "bronze", JobKind::Wcc),
        ("q5", "gold", JobKind::Bfs { source: 5 }),
        (
            "q6",
            "bronze",
            JobKind::PageRank {
                damping: 0.85,
                iterations: 8,
            },
        ),
    ];
    let n_jobs = jobs.len();
    for (id, tenant, kind) in jobs {
        pool.submit(JobSpec {
            id: id.to_string(),
            tenant: tenant.to_string(),
            kind,
            mode: ExecMode::Locking,
            deadline_ms: None,
            conn: 0,
            integrity: None,
            replay: false,
        })
        .expect("queue has room for the whole batch");
    }

    println!("\nresults (completion order — workers race):");
    let mut bfs_q1_checksum = 0u64;
    for _ in 0..n_jobs {
        let r = results.recv().expect("pool delivers every outcome");
        println!(
            "  {:<3} {:<7} {:<9} {:<9} checksum={:#018x} steps={} wait={}us exec={}us",
            r.id,
            r.tenant,
            r.app,
            r.status.name(),
            r.checksum,
            r.supersteps,
            r.wait_us,
            r.exec_us,
        );
        if r.id == "q1" {
            bfs_q1_checksum = r.checksum;
        }
    }

    // Bit-identity: a job through the concurrent pool must equal the same
    // computation run alone — same graph, same engine, same checksum.
    let solo = run_single(
        &Bfs { source: 0 },
        &graph,
        DeviceSpec::xeon_e5_2680(),
        &EngineConfig::locking(),
    );
    assert_eq!(bfs_q1_checksum, values_checksum(&solo.values));
    println!("\nq1 matches a one-shot run bit for bit ✓");

    let stats = pool.stats();
    println!("\nper-tenant accounting:");
    for (name, t) in &stats.tenants {
        println!(
            "  {:<7} weight={} cap={} submitted={} completed={} wait={}us exec={}us steps={}",
            name, t.weight, t.cap, t.submitted, t.completed, t.wait_us, t.exec_us, t.supersteps
        );
    }
}
