//! Heterogeneous CPU+MIC execution: SSSP over a weighted power-law graph,
//! split across both modelled devices with the paper's hybrid partitioning.
//! Prints the per-device timeline and the communication profile.
//!
//! ```sh
//! cargo run --release -p phigraph-apps --example heterogeneous_sssp [scale]
//! ```

use phigraph_apps::workloads::{self, Scale};
use phigraph_apps::Sssp;
use phigraph_comm::PcieLink;
use phigraph_core::engine::{run_hetero, run_single, EngineConfig};
use phigraph_device::DeviceSpec;
use phigraph_partition::{partition, PartitionScheme, PartitionStats, Ratio};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Tiny);
    let graph = workloads::pokec_like_weighted(scale, 7);
    println!(
        "weighted pokec-like graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Hybrid partitioning at the paper's SSSP ratio (1:1).
    let ratio = Ratio::new(1, 1);
    let p = partition(&graph, PartitionScheme::hybrid_default(), ratio, 7);
    let stats = PartitionStats::compute(&graph, &p);
    println!(
        "hybrid partition @ {ratio}: CPU {} edges / MIC {} edges, {} cross edges ({:.1}%)",
        stats.edges[0],
        stats.edges[1],
        stats.cross_edges,
        stats.cross_fraction() * 100.0
    );

    let program = Sssp { source: 0 };
    let specs = [DeviceSpec::xeon_e5_2680(), DeviceSpec::xeon_phi_se10p()];
    let configs = [EngineConfig::locking(), EngineConfig::pipelined()];
    let out = run_hetero(&program, &graph, &p, specs, configs, PcieLink::gen2_x16());

    println!("\nper-superstep timeline (simulated seconds):");
    println!(
        "{:<6}{:>12}{:>12}{:>10}{:>14}",
        "step", "CPU exec", "MIC exec", "comm", "remote msgs"
    );
    for (a, b) in out.device_reports[0]
        .steps
        .iter()
        .zip(&out.device_reports[1].steps)
    {
        println!(
            "{:<6}{:>12.6}{:>12.6}{:>10.6}{:>14}",
            a.step,
            a.times.total,
            b.times.total,
            a.comm_time,
            a.counters.remote_after_combine + b.counters.remote_after_combine,
        );
        if a.step >= 9 {
            println!(
                "  … ({} more steps)",
                out.device_reports[0].steps.len().saturating_sub(10)
            );
            break;
        }
    }

    println!(
        "\nCPU-MIC total: exec {:.4}s + comm {:.4}s = {:.4}s  ({} wire bytes moved)",
        out.report.sim_exec(),
        out.report.sim_comm(),
        out.report.sim_total(),
        out.report.total_comm_bytes(),
    );

    // Compare against the better single-device execution.
    let cpu = run_single(
        &program,
        &graph,
        DeviceSpec::xeon_e5_2680(),
        &EngineConfig::locking(),
    );
    let mic = run_single(
        &program,
        &graph,
        DeviceSpec::xeon_phi_se10p(),
        &EngineConfig::pipelined(),
    );
    let best = cpu.report.sim_total().min(mic.report.sim_total());
    println!(
        "single-device: CPU {:.4}s, MIC {:.4}s -> CPU-MIC speedup over best single: {:.2}x",
        cpu.report.sim_total(),
        mic.report.sim_total(),
        best / out.report.sim_total(),
    );
    assert_eq!(
        out.values, cpu.values,
        "heterogeneous result must match single device"
    );
    println!("results verified identical across configurations ✓");
}
