//! Figure 5 reproduction: panels (a)–(e) compare the seven execution
//! variants per application with execution and communication time; panel
//! (f) isolates the effect of SIMD message processing.

use crate::report::{ratio, secs, Table};
use crate::{AppId, Workbench, FIG5_VARIANTS};
use phigraph_core::engine::EngineConfig;
use phigraph_core::metrics::RunReport;
use phigraph_device::DeviceSpec;

/// One bar of a Fig. 5 panel.
#[derive(Clone, Debug)]
pub struct Fig5Bar {
    /// Variant label.
    pub label: &'static str,
    /// Simulated execution time (s).
    pub exec: f64,
    /// Simulated communication time (s; nonzero only for CPU-MIC).
    pub comm: f64,
}

impl Fig5Bar {
    /// Bar total.
    pub fn total(&self) -> f64 {
        self.exec + self.comm
    }
}

/// Run one Fig. 5 panel.
pub fn run_panel(wb: &Workbench, app: AppId) -> Vec<Fig5Bar> {
    FIG5_VARIANTS
        .iter()
        .map(|&v| {
            let r = wb.run(app, v);
            Fig5Bar {
                label: v.label(),
                exec: r.sim_exec(),
                comm: r.sim_comm(),
            }
        })
        .collect()
}

/// Build the panel's [`Table`] (used for both text and CSV output).
pub fn panel_as_table(app: AppId, bars: &[Fig5Bar]) -> Table {
    let mut t = Table::new(
        &format!("{} — {} total run time", app.fig5_panel(), app.name()),
        &["variant", "exec (s)", "comm (s)", "total (s)"],
    );
    for b in bars {
        t.row(vec![
            b.label.to_string(),
            secs(b.exec),
            secs(b.comm),
            secs(b.total()),
        ]);
    }
    t
}

/// Render a panel as a table plus the §V.C derived ratios.
pub fn panel_table(app: AppId, bars: &[Fig5Bar]) -> String {
    let t = panel_as_table(app, bars);
    let get = |label: &str| bars.iter().find(|b| b.label == label).unwrap().total();
    let mic_lock = get("MIC Lock");
    let mic_pipe = get("MIC Pipe");
    let mic_omp = get("MIC OMP");
    let cpu_lock = get("CPU Lock");
    let cpu_omp = get("CPU OMP");
    let best_single = bars[..6]
        .iter()
        .map(|b| b.total())
        .fold(f64::INFINITY, f64::min);
    let cpu_mic = get("CPU-MIC");
    let mut s = t.render();
    s.push_str(&format!(
        "derived: MIC pipe/lock speedup {}  |  MIC best-framework/OMP {}  |  CPU lock/OMP {}  |  CPU-MIC over best single {}\n",
        ratio(mic_lock / mic_pipe),
        ratio(mic_omp / mic_lock.min(mic_pipe)),
        ratio(cpu_omp / cpu_lock),
        ratio(best_single / cpu_mic),
    ));
    s
}

/// One row of Fig. 5(f): message-processing time with and without
/// vectorization on one device.
#[derive(Clone, Debug)]
pub struct Fig5fRow {
    /// Application.
    pub app: AppId,
    /// Device label ("CPU" / "MIC").
    pub device: &'static str,
    /// Processing-phase time, scalar path.
    pub proc_novec: f64,
    /// Processing-phase time, lane path.
    pub proc_vec: f64,
    /// Run total, scalar path.
    pub total_novec: f64,
    /// Run total, lane path.
    pub total_vec: f64,
}

impl Fig5fRow {
    /// Message-processing speedup from vectorization.
    pub fn proc_speedup(&self) -> f64 {
        self.proc_novec / self.proc_vec
    }
    /// Whole-run improvement from vectorization.
    pub fn total_speedup(&self) -> f64 {
        self.total_novec / self.total_vec
    }
}

/// Run Fig. 5(f): the three SIMD-reducible applications on both devices,
/// using each device's best framework strategy ("all reported data is from
/// execution strategies … that deliver the best results": locking on CPU,
/// pipelining on MIC).
pub fn run_fig5f(wb: &Workbench) -> Vec<Fig5fRow> {
    let apps = [AppId::PageRank, AppId::Sssp, AppId::TopoSort];
    let mut rows = Vec::new();
    for app in apps {
        let g = wb.graph(app);
        for (device, spec, base) in [
            ("CPU", DeviceSpec::xeon_e5_2680(), EngineConfig::locking()),
            (
                "MIC",
                DeviceSpec::xeon_phi_se10p(),
                EngineConfig::pipelined(),
            ),
        ] {
            let run = |vec: bool| -> RunReport {
                wb.run_single(app, g, spec.clone(), &base.clone().with_vectorized(vec))
            };
            let novec = run(false);
            let vec = run(true);
            rows.push(Fig5fRow {
                app,
                device,
                proc_novec: novec.sim_process(),
                proc_vec: vec.sim_process(),
                total_novec: novec.sim_total(),
                total_vec: vec.sim_total(),
            });
        }
    }
    rows
}

/// Build the Fig. 5(f) [`Table`].
pub fn fig5f_as_table(rows: &[Fig5fRow]) -> Table {
    let mut t = Table::new(
        "fig5f — effect of SIMD processing (vectorization) on execution times",
        &[
            "app",
            "device",
            "proc novec (s)",
            "proc vec (s)",
            "proc speedup",
            "total novec (s)",
            "total vec (s)",
            "total gain",
        ],
    );
    for r in rows {
        t.row(vec![
            r.app.name().to_string(),
            r.device.to_string(),
            secs(r.proc_novec),
            secs(r.proc_vec),
            ratio(r.proc_speedup()),
            secs(r.total_novec),
            secs(r.total_vec),
            format!("{:.0}%", (r.total_speedup() - 1.0) * 100.0),
        ]);
    }
    t
}

/// Render Fig. 5(f).
pub fn fig5f_table(rows: &[Fig5fRow]) -> String {
    fig5f_as_table(rows).render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_apps::workloads::Scale;

    #[test]
    fn panel_produces_seven_bars_with_comm_only_on_cpumic() {
        let wb = Workbench::new(Scale::Tiny);
        let bars = run_panel(&wb, AppId::Sssp);
        assert_eq!(bars.len(), 7);
        for b in &bars[..6] {
            assert_eq!(b.comm, 0.0, "{} must not communicate", b.label);
        }
        assert!(bars[6].comm > 0.0, "CPU-MIC must pay communication");
        let s = panel_table(AppId::Sssp, &bars);
        assert!(s.contains("fig5d"));
        assert!(s.contains("derived:"));
    }

    #[test]
    fn fig5f_simd_always_wins_processing() {
        let wb = Workbench::new(Scale::Tiny);
        let rows = run_fig5f(&wb);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(
                r.proc_speedup() > 1.0,
                "{} on {}: speedup {}",
                r.app.name(),
                r.device,
                r.proc_speedup()
            );
        }
        // Wider lanes help more: MIC speedups exceed CPU speedups per app.
        for pair in rows.chunks(2) {
            assert!(pair[1].proc_speedup() > pair[0].proc_speedup());
        }
    }
}
