//! Machine-readable perf trajectory: `BENCH_<area>.json` reports and the
//! regression comparator.
//!
//! Every PR that touches a hot path lands with its numbers in this format
//! (ROADMAP item 5): the `phigraph-bench` binary runs steady-state loops
//! over the measured areas ([`AREAS`]) and emits one schema-tagged
//! JSON file per area through [`BenchReport::emit`]; `compare` diffs two
//! such files with per-area thresholds and exits nonzero on regression.
//! Emission and parsing both go through the hand-rolled JSON layer in
//! `phigraph_trace::json`, so the files round-trip bit-identically
//! (emit → parse → re-emit is the identity — see `tests/perf_report.rs`).
//!
//! Policy mirrors `phigraph recover` on torn run reports: a file with an
//! unknown schema tag, a missing area, or degenerate numbers (NaN, zero
//! mean, zero throughput) degrades to a *warning*, never a panic — only a
//! confirmed over-threshold slowdown on a comparable entry fails the gate.

use crate::harness::BenchResult;
use phigraph_trace::json::{num, Json, JsonBuf};

/// Schema tag stamped into every report; bump on breaking layout changes.
pub const BENCH_SCHEMA: &str = "phigraph-bench-v1";

/// The measured areas, one `BENCH_<area>.json` each: the SPSC
/// worker→mover pipeline, CSB slice insertion, a full superstep per engine
/// mode, the hetero frame exchange, the integrity-switch overhead, the
/// device-partitioning schemes, the object-message (semi-clustering)
/// path, the multi-tenant serving pool, the serving pool held at
/// overload (the shed ladder + journal on the admission path), and the
/// observability plane's overhead on the serving hot path (off vs
/// windows vs windows+events).
pub const AREAS: [&str; 10] = [
    "spsc",
    "csb",
    "superstep",
    "exchange",
    "integrity",
    "partition",
    "objmsg",
    "serve",
    "serve_degraded",
    "obs",
];

/// Canonical file name for an area's report.
pub fn file_name(area: &str) -> String {
    format!("BENCH_{area}.json")
}

/// Allowed slowdown ratio (current mean ÷ baseline mean) before an entry
/// counts as a regression. Thread-scheduling-heavy areas get more slack.
pub fn default_threshold(area: &str) -> f64 {
    match area {
        // Cross-thread shuttles: scheduler noise dominates short runs, and
        // the serving pool adds queueing jitter on top (`obs` rides the
        // same pool, so it inherits the same slack).
        "spsc" | "exchange" | "serve" | "serve_degraded" | "obs" => 1.6,
        // Single-process compute loops are steadier.
        "csb" | "superstep" | "integrity" | "partition" | "objmsg" => 1.5,
        _ => 1.5,
    }
}

/// Where a report was measured — enough context to judge whether two
/// reports are comparable at all.
#[derive(Clone, Debug, PartialEq)]
pub struct EnvFingerprint {
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// Available host parallelism when the report was measured.
    pub host_threads: u64,
    /// True for CI smoke runs (tiny inputs, few samples): numbers are for
    /// trend and gating only, not absolute claims.
    pub smoke: bool,
    /// Seed that generated every input (fixed-seed runs are structurally
    /// deterministic: same labels, same element counts).
    pub seed: u64,
}

impl EnvFingerprint {
    /// Capture the current host.
    pub fn capture(smoke: bool, seed: u64) -> Self {
        EnvFingerprint {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            host_threads: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
            smoke,
            seed,
        }
    }
}

/// One benchmark's numbers inside a report.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchEntry {
    /// Harness label (`group/function/parameter`).
    pub label: String,
    /// Mean iteration time, nanoseconds.
    pub mean_ns: f64,
    /// Fastest iteration, nanoseconds.
    pub min_ns: f64,
    /// Median iteration, nanoseconds.
    pub p50_ns: f64,
    /// 99th-percentile iteration, nanoseconds (tail latency).
    pub p99_ns: f64,
    /// Untimed warmup iterations before sampling.
    pub warmup_iters: u64,
    /// Timed iterations recorded.
    pub samples: u64,
    /// Declared elements per iteration (0 = no throughput declared).
    pub elements: u64,
    /// Elements per second over the mean iteration (0 when unknown).
    pub elem_per_sec: f64,
}

impl BenchEntry {
    /// Convert a harness measurement.
    pub fn from_result(r: &BenchResult) -> Self {
        BenchEntry {
            label: r.label.clone(),
            mean_ns: r.mean.as_nanos() as f64,
            min_ns: r.min.as_nanos() as f64,
            p50_ns: r.p50.as_nanos() as f64,
            p99_ns: r.p99.as_nanos() as f64,
            warmup_iters: r.warmup_iters as u64,
            samples: r.samples as u64,
            elements: r.elements.unwrap_or(0),
            elem_per_sec: r.elem_per_sec().unwrap_or(0.0),
        }
    }
}

/// One area's machine-readable report: the content of `BENCH_<area>.json`.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Schema tag ([`BENCH_SCHEMA`]).
    pub schema: String,
    /// Measured area (one of [`AREAS`] for the shipped benches).
    pub area: String,
    /// Host fingerprint.
    pub env: EnvFingerprint,
    /// Per-benchmark numbers, in registration order.
    pub entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// Assemble a report from harness results.
    pub fn new(area: &str, env: EnvFingerprint, results: &[BenchResult]) -> Self {
        BenchReport {
            schema: BENCH_SCHEMA.to_string(),
            area: area.to_string(),
            env,
            entries: results.iter().map(BenchEntry::from_result).collect(),
        }
    }

    /// Render the report as pretty JSON (stable field order, so re-emitting
    /// a parsed report reproduces the input byte-for-byte).
    pub fn emit(&self) -> String {
        let mut b = JsonBuf::obj();
        b.str("schema", &self.schema);
        b.str("area", &self.area);
        b.begin_obj("env");
        b.str("os", &self.env.os);
        b.str("arch", &self.env.arch);
        b.int("host_threads", self.env.host_threads);
        b.bool("smoke", self.env.smoke);
        b.int("seed", self.env.seed);
        b.end();
        b.begin_arr("entries");
        for e in &self.entries {
            b.elem_obj();
            b.str("label", &e.label);
            b.num("mean_ns", e.mean_ns);
            b.num("min_ns", e.min_ns);
            b.num("p50_ns", e.p50_ns);
            b.num("p99_ns", e.p99_ns);
            b.int("warmup_iters", e.warmup_iters);
            b.int("samples", e.samples);
            b.int("elements", e.elements);
            b.num("elem_per_sec", e.elem_per_sec);
            b.end();
        }
        b.end();
        b.finish()
    }

    /// Parse a report. Unknown or missing schema tags are an `Err` (the
    /// callers warn and move on — same contract as `phigraph recover` on a
    /// torn `run_report.json`), as is anything that does not parse as JSON.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let j = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
        let schema = j.get("schema").and_then(Json::as_str).unwrap_or("<none>");
        if schema != BENCH_SCHEMA {
            return Err(format!(
                "unsupported bench schema {schema:?} (this build reads {BENCH_SCHEMA:?})"
            ));
        }
        let area = j
            .get("area")
            .and_then(Json::as_str)
            .ok_or("missing \"area\"")?
            .to_string();
        let env = j.get("env").ok_or("missing \"env\"")?;
        let env = EnvFingerprint {
            os: env
                .get("os")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            arch: env
                .get("arch")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            host_threads: env.u64_or_0("host_threads"),
            smoke: env.get("smoke").and_then(Json::as_bool).unwrap_or(false),
            seed: env.u64_or_0("seed"),
        };
        let mut entries = Vec::new();
        for e in j
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or("missing \"entries\"")?
        {
            entries.push(BenchEntry {
                label: e
                    .get("label")
                    .and_then(Json::as_str)
                    .ok_or("entry missing \"label\"")?
                    .to_string(),
                mean_ns: e.f64_or_0("mean_ns"),
                min_ns: e.f64_or_0("min_ns"),
                p50_ns: e.f64_or_0("p50_ns"),
                p99_ns: e.f64_or_0("p99_ns"),
                warmup_iters: e.u64_or_0("warmup_iters"),
                samples: e.u64_or_0("samples"),
                elements: e.u64_or_0("elements"),
                elem_per_sec: e.f64_or_0("elem_per_sec"),
            });
        }
        Ok(BenchReport {
            schema: schema.to_string(),
            area,
            env,
            entries,
        })
    }

    /// A copy with every timing scaled by `factor` (throughput re-derived).
    /// Factors below 1 fake a faster baseline; used by `perturb` to prove
    /// the regression gate trips, and by tests.
    pub fn perturbed(&self, factor: f64) -> BenchReport {
        let mut out = self.clone();
        for e in &mut out.entries {
            e.mean_ns *= factor;
            e.min_ns *= factor;
            e.p50_ns *= factor;
            e.p99_ns *= factor;
            e.elem_per_sec = if e.elements > 0 && e.mean_ns > 0.0 {
                e.elements as f64 / (e.mean_ns / 1e9)
            } else {
                0.0
            };
        }
        out
    }
}

/// Per-entry verdict from a comparison.
#[derive(Clone, Debug, PartialEq)]
pub enum Verdict {
    /// Within threshold; `ratio` is current mean ÷ baseline mean.
    Pass {
        /// Current mean ÷ baseline mean (1.0 = unchanged, <1 = faster).
        ratio: f64,
    },
    /// Over threshold: the entry got slower than the gate allows.
    Regression {
        /// Current mean ÷ baseline mean.
        ratio: f64,
    },
    /// Not comparable (degenerate numbers or one side missing); the gate
    /// warns instead of failing.
    Skipped {
        /// Why the entry could not be compared.
        reason: String,
    },
}

/// Outcome of comparing one area's baseline and current reports.
#[derive(Clone, Debug)]
pub struct CompareOutcome {
    /// Area compared.
    pub area: String,
    /// `(label, verdict)` per baseline entry plus current-only extras.
    pub verdicts: Vec<(String, Verdict)>,
    /// Threshold applied.
    pub threshold: f64,
}

impl CompareOutcome {
    /// Number of confirmed regressions.
    pub fn regressions(&self) -> usize {
        self.verdicts
            .iter()
            .filter(|(_, v)| matches!(v, Verdict::Regression { .. }))
            .count()
    }

    /// Human-readable per-entry lines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (label, v) in &self.verdicts {
            let line = match v {
                Verdict::Pass { ratio } => {
                    format!("  ok       {label:<44} {:.2}x", ratio)
                }
                Verdict::Regression { ratio } => {
                    format!(
                        "  REGRESS  {label:<44} {:.2}x (> {:.2}x allowed)",
                        ratio, self.threshold
                    )
                }
                Verdict::Skipped { reason } => {
                    format!("  skip     {label:<44} {reason}")
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

/// Compare `current` against `baseline` for one area. Every baseline entry
/// is matched to the current entry with the same label; unmatched entries
/// on either side and degenerate numbers become [`Verdict::Skipped`] with a
/// clear message, never a panic or a silent drop.
pub fn compare_reports(
    baseline: &BenchReport,
    current: &BenchReport,
    threshold: f64,
) -> CompareOutcome {
    let mut verdicts = Vec::new();
    if baseline.area != current.area {
        verdicts.push((
            format!("{} vs {}", baseline.area, current.area),
            Verdict::Skipped {
                reason: "area mismatch between baseline and current report".to_string(),
            },
        ));
        return CompareOutcome {
            area: current.area.clone(),
            verdicts,
            threshold,
        };
    }
    for b in &baseline.entries {
        let v = match current.entries.iter().find(|c| c.label == b.label) {
            None => Verdict::Skipped {
                reason: "entry missing in current report".to_string(),
            },
            Some(c) => judge(b, c, threshold),
        };
        verdicts.push((b.label.clone(), v));
    }
    for c in &current.entries {
        if !baseline.entries.iter().any(|b| b.label == c.label) {
            verdicts.push((
                c.label.clone(),
                Verdict::Skipped {
                    reason: "new entry (no baseline); will gate from the next baseline".to_string(),
                },
            ));
        }
    }
    CompareOutcome {
        area: current.area.clone(),
        verdicts,
        threshold,
    }
}

fn judge(b: &BenchEntry, c: &BenchEntry, threshold: f64) -> Verdict {
    // Degenerate baselines/currents cannot produce a trustworthy ratio.
    if !b.mean_ns.is_finite() || b.mean_ns <= 0.0 {
        return Verdict::Skipped {
            reason: format!("baseline mean is degenerate ({})", num(b.mean_ns)),
        };
    }
    if !c.mean_ns.is_finite() || c.mean_ns <= 0.0 {
        return Verdict::Skipped {
            reason: format!("current mean is degenerate ({})", num(c.mean_ns)),
        };
    }
    if b.elements > 0 && (b.elem_per_sec <= 0.0 || !b.elem_per_sec.is_finite()) {
        return Verdict::Skipped {
            reason: "baseline declares elements but zero/NaN throughput".to_string(),
        };
    }
    if b.elements > 0 && c.elements > 0 && b.elements != c.elements {
        return Verdict::Skipped {
            reason: format!(
                "element counts differ (baseline {}, current {}): inputs not comparable",
                b.elements, c.elements
            ),
        };
    }
    let ratio = c.mean_ns / b.mean_ns;
    if ratio > threshold {
        Verdict::Regression { ratio }
    } else {
        Verdict::Pass { ratio }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn result(label: &str, mean_ms: u64, elements: Option<u64>) -> BenchResult {
        let mean = Duration::from_millis(mean_ms);
        BenchResult {
            label: label.to_string(),
            mean,
            min: mean / 2,
            p50: mean,
            p99: mean * 2,
            warmup_iters: 1,
            samples: 5,
            elements,
        }
    }

    #[test]
    fn emit_parse_round_trip_is_identity() {
        let r = BenchReport::new(
            "spsc",
            EnvFingerprint::capture(true, 7),
            &[
                result("spsc/batched/64", 12, Some(100_000)),
                result("spsc/per_message", 30, None),
            ],
        );
        let text = r.emit();
        let back = BenchReport::parse(&text).expect("own emission parses");
        assert_eq!(back, r);
        assert_eq!(back.emit(), text, "re-emission is byte-identical");
    }

    #[test]
    fn unknown_schema_is_an_error_not_a_panic() {
        let mut r = BenchReport::new("csb", EnvFingerprint::capture(false, 1), &[]);
        r.schema = "phigraph-bench-v999".to_string();
        let err = BenchReport::parse(&r.emit()).unwrap_err();
        assert!(err.contains("phigraph-bench-v999"), "{err}");
        assert!(BenchReport::parse("{}").is_err());
        assert!(BenchReport::parse("not json").is_err());
    }

    #[test]
    fn regression_over_threshold_fails_improvement_passes() {
        let base = BenchReport::new(
            "csb",
            EnvFingerprint::capture(true, 7),
            &[result("csb/insert_slice/64", 10, Some(1000))],
        );
        // 3x slower than baseline: regression at a 1.5x threshold.
        let slow = base.perturbed(3.0);
        let out = compare_reports(&base, &slow, 1.5);
        assert_eq!(out.regressions(), 1);
        assert!(out.render().contains("REGRESS"));
        // 2x faster: passes.
        let fast = base.perturbed(0.5);
        let out = compare_reports(&base, &fast, 1.5);
        assert_eq!(out.regressions(), 0);
        assert!(matches!(out.verdicts[0].1, Verdict::Pass { ratio } if ratio < 1.0));
    }

    #[test]
    fn degenerate_and_missing_entries_skip_with_messages() {
        let base = BenchReport::new(
            "integrity",
            EnvFingerprint::capture(true, 7),
            &[
                result("integrity/off", 10, Some(1000)),
                result("integrity/frames", 12, Some(1000)),
            ],
        );
        let mut cur = base.clone();
        cur.entries[0].mean_ns = f64::NAN; // NaN current
        cur.entries.remove(1); // missing in current
        cur.entries.push(BenchEntry {
            label: "integrity/full".to_string(),
            ..BenchEntry::from_result(&result("integrity/full", 14, Some(1000)))
        });
        let out = compare_reports(&base, &cur, 1.5);
        assert_eq!(out.regressions(), 0, "nothing comparable regressed");
        let rendered = out.render();
        assert!(rendered.contains("degenerate"), "{rendered}");
        assert!(rendered.contains("missing in current"), "{rendered}");
        assert!(rendered.contains("new entry"), "{rendered}");
    }

    #[test]
    fn zero_throughput_baseline_skips() {
        let mut base = BenchReport::new(
            "spsc",
            EnvFingerprint::capture(true, 7),
            &[result("spsc/batched/64", 10, Some(1000))],
        );
        base.entries[0].elem_per_sec = 0.0;
        let out = compare_reports(&base, &base.clone(), 1.5);
        assert!(matches!(out.verdicts[0].1, Verdict::Skipped { .. }));
        assert!(out.render().contains("zero/NaN throughput"));
    }

    #[test]
    fn area_mismatch_skips_everything() {
        let a = BenchReport::new("spsc", EnvFingerprint::capture(true, 7), &[]);
        let b = BenchReport::new("csb", EnvFingerprint::capture(true, 7), &[]);
        let out = compare_reports(&a, &b, 1.5);
        assert_eq!(out.regressions(), 0);
        assert!(out.render().contains("area mismatch"));
    }

    #[test]
    fn perturbed_rescales_throughput_consistently() {
        let base = BenchReport::new(
            "exchange",
            EnvFingerprint::capture(true, 7),
            &[result("exchange/loopback/1024", 10, Some(2048))],
        );
        let p = base.perturbed(2.0);
        assert_eq!(p.entries[0].mean_ns, base.entries[0].mean_ns * 2.0);
        let expected = 2048.0 / (p.entries[0].mean_ns / 1e9);
        assert!((p.entries[0].elem_per_sec - expected).abs() < 1e-9);
    }

    #[test]
    fn file_names_and_thresholds_cover_all_areas() {
        for area in AREAS {
            assert_eq!(file_name(area), format!("BENCH_{area}.json"));
            assert!(default_threshold(area) > 1.0);
        }
    }
}
