//! Shared driver behind the `phigraph-bench` binary and the `phigraph
//! bench` CLI subcommand: argument parsing, area execution, `BENCH_*.json`
//! file I/O, and the regression gate's exit discipline.
//!
//! Both front ends call [`main`] with their remaining argv; a regression
//! (or a genuine usage/IO error) comes back as `Err`, which both map to a
//! nonzero exit code. Missing baselines and unreadable/unknown-schema
//! files are *warnings* on stderr, not errors — the gate only fails on a
//! confirmed over-threshold slowdown.

use crate::areas::{run_area, AreaOpts};
use crate::harness::Criterion;
use crate::perf::{
    compare_reports, default_threshold, file_name, BenchReport, EnvFingerprint, AREAS,
};
use std::path::{Path, PathBuf};

/// Usage text shared by both front ends.
pub const USAGE: &str = "phigraph-bench — machine-readable perf measurement and regression gating

commands:
  run     [--out-dir DIR] [--area A[,B...]] [--seed N] [--samples N] [--warmup N] [--smoke]
          run the bench areas and write one BENCH_<area>.json per area
  compare <baseline> <current> [--area A[,B...]] [--threshold X]
          diff two reports (file or directory holding BENCH_*.json);
          exits nonzero when any entry regresses beyond the threshold
  perturb <in.json> <out.json> --factor F
          rewrite a report with every timing scaled by F (gate self-tests)
  list    print the measured areas and their default thresholds

areas: spsc csb superstep exchange integrity partition objmsg serve
       serve_degraded obs";

/// Entry point for both the standalone binary and `phigraph bench`.
pub fn main(argv: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err(format!("missing bench command\n{USAGE}"));
    };
    match cmd.as_str() {
        "run" => cmd_run(rest),
        "compare" => cmd_compare(rest),
        "perturb" => cmd_perturb(rest),
        "list" => {
            for area in AREAS {
                println!(
                    "{area:<12} {:<22} threshold {:.2}x",
                    file_name(area),
                    default_threshold(area)
                );
            }
            Ok(())
        }
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown bench command {other:?}\n{USAGE}")),
    }
}

/// Measure `areas` and return one report per area (the library face of
/// `run`, used by the determinism tests).
pub fn measure(areas: &[String], opts: &AreaOpts) -> Result<Vec<BenchReport>, String> {
    let env = EnvFingerprint::capture(opts.smoke, opts.seed);
    let mut out = Vec::with_capacity(areas.len());
    for area in areas {
        let mut c = Criterion::default();
        run_area(area, &mut c, opts)?;
        out.push(BenchReport::new(area, env.clone(), c.results()));
    }
    Ok(out)
}

fn parse_areas(spec: Option<&str>) -> Result<Vec<String>, String> {
    match spec {
        None => Ok(AREAS.iter().map(|s| s.to_string()).collect()),
        Some(s) => {
            let areas: Vec<String> = s
                .split(',')
                .map(str::trim)
                .filter(|a| !a.is_empty())
                .map(str::to_string)
                .collect();
            if areas.is_empty() {
                return Err("--area given but empty".to_string());
            }
            for a in &areas {
                if !AREAS.contains(&a.as_str()) {
                    return Err(format!(
                        "unknown bench area {a:?} (valid: {})",
                        AREAS.join(", ")
                    ));
                }
            }
            Ok(areas)
        }
    }
}

/// Tiny flag walker: positionals in order, `--flag value` pairs, `--smoke`
/// style booleans.
struct Flags {
    positional: Vec<String>,
    pairs: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Flags {
    fn parse(argv: &[String], value_flags: &[&str], switch_flags: &[&str]) -> Result<Self, String> {
        let mut f = Flags {
            positional: Vec::new(),
            pairs: Vec::new(),
            switches: Vec::new(),
        };
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--") {
                if switch_flags.contains(&name) {
                    f.switches.push(name.to_string());
                } else if value_flags.contains(&name) {
                    i += 1;
                    let v = argv.get(i).ok_or(format!("--{name} needs a value"))?;
                    f.pairs.push((name.to_string(), v.clone()));
                } else {
                    return Err(format!("unknown flag --{name}\n{USAGE}"));
                }
            } else {
                f.positional.push(a.clone());
            }
            i += 1;
        }
        Ok(f)
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn get_parse<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("bad --{name} value {v:?}")),
        }
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

fn cmd_run(argv: &[String]) -> Result<(), String> {
    let f = Flags::parse(
        argv,
        &["out-dir", "area", "seed", "samples", "warmup"],
        &["smoke"],
    )?;
    if !f.positional.is_empty() {
        return Err(format!(
            "unexpected argument {:?}\n{USAGE}",
            f.positional[0]
        ));
    }
    let out_dir = PathBuf::from(f.get("out-dir").unwrap_or("."));
    let areas = parse_areas(f.get("area"))?;
    let opts = AreaOpts {
        smoke: f.has("smoke"),
        seed: f.get_parse("seed")?.unwrap_or(7),
        samples: f.get_parse("samples")?,
        warmup: f.get_parse("warmup")?,
    };
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;
    for report in measure(&areas, &opts)? {
        let path = out_dir.join(file_name(&report.area));
        std::fs::write(&path, report.emit())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    }
    Ok(())
}

/// Resolve a compare operand: a directory containing `BENCH_<area>.json`,
/// or a file (used as-is regardless of the area name).
fn resolve(operand: &Path, area: &str) -> PathBuf {
    if operand.is_dir() {
        operand.join(file_name(area))
    } else {
        operand.to_path_buf()
    }
}

/// Load a report, mapping every failure (absent file, bad JSON, unknown
/// schema) to a warning string the caller prints; `None` means "skip this
/// area, don't fail the gate".
fn load_report(path: &Path, side: &str) -> Result<Option<BenchReport>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "warning: {side} {} unreadable ({e}); skipping",
                path.display()
            );
            return Ok(None);
        }
    };
    match BenchReport::parse(&text) {
        Ok(r) => Ok(Some(r)),
        Err(e) => {
            eprintln!("warning: {side} {}: {e}; skipping", path.display());
            Ok(None)
        }
    }
}

fn cmd_compare(argv: &[String]) -> Result<(), String> {
    let f = Flags::parse(argv, &["area", "threshold"], &[])?;
    let [baseline, current] = f.positional.as_slice() else {
        return Err(format!(
            "compare needs exactly two operands (baseline, current)\n{USAGE}"
        ));
    };
    let (baseline, current) = (PathBuf::from(baseline), PathBuf::from(current));
    let threshold_override: Option<f64> = f.get_parse("threshold")?;
    // Comparing file-to-file covers exactly that file's area; dir-to-dir
    // covers the full (or --area-selected) set.
    let areas = if baseline.is_dir() || current.is_dir() {
        parse_areas(f.get("area"))?
    } else {
        match load_report(&baseline, "baseline")? {
            Some(r) => vec![r.area],
            None => Vec::new(),
        }
    };
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for area in &areas {
        let Some(base) = load_report(&resolve(&baseline, area), "baseline")? else {
            continue;
        };
        let Some(cur) = load_report(&resolve(&current, area), "current")? else {
            continue;
        };
        let threshold = threshold_override.unwrap_or_else(|| default_threshold(area));
        let outcome = compare_reports(&base, &cur, threshold);
        println!(
            "== {area} (threshold {threshold:.2}x, baseline {}{}) ==",
            base.env.arch,
            if base.env.smoke { ", smoke" } else { "" }
        );
        print!("{}", outcome.render());
        regressions += outcome.regressions();
        compared += 1;
    }
    if compared == 0 {
        eprintln!("warning: nothing compared (no readable baseline/current pair)");
        return Ok(());
    }
    if regressions > 0 {
        return Err(format!(
            "{regressions} benchmark entr{} regressed beyond threshold",
            if regressions == 1 { "y" } else { "ies" }
        ));
    }
    println!("bench compare: no regressions across {compared} area(s)");
    Ok(())
}

fn cmd_perturb(argv: &[String]) -> Result<(), String> {
    let f = Flags::parse(argv, &["factor"], &[])?;
    let [input, output] = f.positional.as_slice() else {
        return Err(format!("perturb needs <in.json> <out.json>\n{USAGE}"));
    };
    let factor: f64 = f
        .get_parse("factor")?
        .ok_or("perturb requires --factor F")?;
    if !factor.is_finite() || factor <= 0.0 {
        return Err(format!(
            "--factor must be finite and positive, got {factor}"
        ));
    }
    let text = std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let report = BenchReport::parse(&text)?;
    std::fs::write(output, report.perturbed(factor).emit())
        .map_err(|e| format!("cannot write {output}: {e}"))?;
    println!("wrote {output} (timings x{factor})");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn usage_and_unknowns() {
        assert!(main(&[]).is_err());
        assert!(main(&s(&["frobnicate"])).is_err());
        assert!(main(&s(&["help"])).is_ok());
        assert!(main(&s(&["list"])).is_ok());
    }

    #[test]
    fn area_lists_parse_and_reject() {
        assert_eq!(parse_areas(None).unwrap().len(), AREAS.len());
        assert_eq!(parse_areas(Some("spsc,csb")).unwrap(), vec!["spsc", "csb"]);
        assert!(parse_areas(Some("bogus")).is_err());
        assert!(parse_areas(Some(" ,")).is_err());
    }

    #[test]
    fn flags_walker_handles_pairs_switches_positionals() {
        let f = Flags::parse(
            &s(&["a", "--seed", "9", "--smoke", "b"]),
            &["seed"],
            &["smoke"],
        )
        .unwrap();
        assert_eq!(f.positional, vec!["a", "b"]);
        assert_eq!(f.get("seed"), Some("9"));
        assert!(f.has("smoke"));
        assert!(Flags::parse(&s(&["--nope"]), &[], &[]).is_err());
        assert!(Flags::parse(&s(&["--seed"]), &["seed"], &[]).is_err());
    }

    #[test]
    fn perturb_rejects_bad_factors() {
        assert!(cmd_perturb(&s(&["a.json", "b.json"])).is_err());
        assert!(cmd_perturb(&s(&["a.json", "b.json", "--factor", "0"])).is_err());
        assert!(cmd_perturb(&s(&["a.json", "b.json", "--factor", "nan"])).is_err());
    }
}
