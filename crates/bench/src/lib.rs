#![warn(missing_docs)]
//! Shared experiment harness for the paper reproduction.
//!
//! Every table and figure of the paper's §V maps to a function here (see
//! DESIGN.md §4 for the index); the `reproduce` binary and the micro-
//! benches are thin wrappers over these. All reported times are *simulated*
//! device times from the cost model (the real product of this
//! reproduction); the vendored [`harness`] additionally tracks host
//! wall-clock for regressions.

pub mod areas;
pub mod fig5;
pub mod fig6;
pub mod harness;
pub mod perf;
pub mod report;
pub mod runner;
pub mod tab2;

use phigraph_apps::workloads::{self, Scale};
use phigraph_apps::{Bfs, PageRank, SemiClustering, Sssp, TopoSort};
use phigraph_comm::PcieLink;
use phigraph_core::engine::obj::{run_obj_hetero, run_obj_single};
use phigraph_core::engine::{run_hetero, run_single, EngineConfig};
use phigraph_core::metrics::RunReport;
use phigraph_device::DeviceSpec;
use phigraph_graph::Csr;
use phigraph_partition::{partition, DevicePartition, PartitionScheme, Ratio};

/// The five evaluated applications.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AppId {
    /// PageRank on the pokec-like graph.
    PageRank,
    /// BFS on the pokec-like graph.
    Bfs,
    /// Semi-Clustering on the dblp-like graph.
    SemiCluster,
    /// SSSP on the weighted pokec-like graph.
    Sssp,
    /// Topological sort on the dense DAG.
    TopoSort,
}

/// All applications in the paper's figure order.
pub const ALL_APPS: [AppId; 5] = [
    AppId::PageRank,
    AppId::Bfs,
    AppId::SemiCluster,
    AppId::Sssp,
    AppId::TopoSort,
];

impl AppId {
    /// Application name.
    pub fn name(&self) -> &'static str {
        match self {
            AppId::PageRank => "pagerank",
            AppId::Bfs => "bfs",
            AppId::SemiCluster => "semicluster",
            AppId::Sssp => "sssp",
            AppId::TopoSort => "toposort",
        }
    }

    /// The CPU:MIC partitioning ratio the paper reports as best for this
    /// application (§V.C).
    pub fn paper_ratio(&self) -> Ratio {
        match self {
            AppId::PageRank => Ratio::new(3, 5),
            AppId::Bfs => Ratio::new(4, 3),
            AppId::SemiCluster => Ratio::new(2, 1),
            AppId::Sssp => Ratio::new(1, 1),
            AppId::TopoSort => Ratio::new(1, 4),
        }
    }

    /// The paper's figure id for the app's Fig. 5 panel.
    pub fn fig5_panel(&self) -> &'static str {
        match self {
            AppId::PageRank => "fig5a",
            AppId::Bfs => "fig5b",
            AppId::SemiCluster => "fig5c",
            AppId::Sssp => "fig5d",
            AppId::TopoSort => "fig5e",
        }
    }
}

/// Execution variants of Fig. 5 (plus the Table II sequential rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// OpenMP baseline on the CPU.
    CpuOmp,
    /// Framework, locking insertion, CPU.
    CpuLock,
    /// Framework, pipelined generation, CPU.
    CpuPipe,
    /// OpenMP baseline on the MIC.
    MicOmp,
    /// Framework, locking insertion, MIC.
    MicLock,
    /// Framework, pipelined generation, MIC.
    MicPipe,
    /// Heterogeneous CPU-MIC with hybrid partitioning at the paper ratio.
    CpuMic,
    /// One CPU core.
    CpuSeq,
    /// One MIC core.
    MicSeq,
}

/// The Fig. 5 bar order.
pub const FIG5_VARIANTS: [Variant; 7] = [
    Variant::CpuOmp,
    Variant::CpuLock,
    Variant::CpuPipe,
    Variant::MicOmp,
    Variant::MicLock,
    Variant::MicPipe,
    Variant::CpuMic,
];

impl Variant {
    /// Bar label as in the figures.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::CpuOmp => "CPU OMP",
            Variant::CpuLock => "CPU Lock",
            Variant::CpuPipe => "CPU Pipe",
            Variant::MicOmp => "MIC OMP",
            Variant::MicLock => "MIC Lock",
            Variant::MicPipe => "MIC Pipe",
            Variant::CpuMic => "CPU-MIC",
            Variant::CpuSeq => "CPU Seq",
            Variant::MicSeq => "MIC Seq",
        }
    }

    fn device(&self) -> DeviceSpec {
        match self {
            Variant::CpuOmp | Variant::CpuLock | Variant::CpuPipe | Variant::CpuSeq => {
                DeviceSpec::xeon_e5_2680()
            }
            _ => DeviceSpec::xeon_phi_se10p(),
        }
    }

    fn config(&self) -> EngineConfig {
        match self {
            Variant::CpuOmp | Variant::MicOmp => EngineConfig::flat(),
            Variant::CpuLock | Variant::MicLock => EngineConfig::locking(),
            Variant::CpuPipe | Variant::MicPipe => EngineConfig::pipelined(),
            Variant::CpuSeq | Variant::MicSeq => EngineConfig::sequential(),
            Variant::CpuMic => EngineConfig::locking(),
        }
    }
}

/// PageRank iterations used throughout the evaluation.
pub const PAGERANK_ITERS: usize = 10;

/// A prepared experiment environment: the per-app workloads at one scale.
pub struct Workbench {
    /// Workload scale.
    pub scale: Scale,
    /// Pokec-like graph (PageRank / BFS).
    pub pokec: Csr,
    /// Weighted pokec-like graph (SSSP).
    pub pokec_weighted: Csr,
    /// DBLP-like community graph (Semi-Clustering).
    pub dblp: Csr,
    /// Dense DAG (TopoSort).
    pub dag: Csr,
}

impl Workbench {
    /// Build all workloads at `scale`.
    pub fn new(scale: Scale) -> Self {
        Workbench {
            scale,
            pokec: workloads::pokec_like(scale, 1),
            pokec_weighted: workloads::pokec_like_weighted(scale, 1),
            dblp: workloads::dblp_like(scale, 2).0,
            dag: workloads::toposort_dag(scale, 3),
        }
    }

    /// The graph an application runs on.
    pub fn graph(&self, app: AppId) -> &Csr {
        match app {
            AppId::PageRank | AppId::Bfs => &self.pokec,
            AppId::Sssp => &self.pokec_weighted,
            AppId::SemiCluster => &self.dblp,
            AppId::TopoSort => &self.dag,
        }
    }

    /// Run one (app, variant) cell and return its report.
    pub fn run(&self, app: AppId, variant: Variant) -> RunReport {
        let g = self.graph(app);
        match variant {
            Variant::CpuMic => {
                let p = partition(g, PartitionScheme::hybrid_default(), app.paper_ratio(), 7);
                self.run_hetero(app, &p)
            }
            _ => self.run_single(app, g, variant.device(), &variant.config()),
        }
    }

    /// Run one app on one device with an explicit configuration.
    pub fn run_single(
        &self,
        app: AppId,
        g: &Csr,
        spec: DeviceSpec,
        config: &EngineConfig,
    ) -> RunReport {
        match app {
            AppId::PageRank => {
                run_single(
                    &PageRank {
                        damping: 0.85,
                        iterations: PAGERANK_ITERS,
                    },
                    g,
                    spec,
                    config,
                )
                .report
            }
            AppId::Bfs => run_single(&Bfs { source: 0 }, g, spec, config).report,
            AppId::Sssp => run_single(&Sssp { source: 0 }, g, spec, config).report,
            AppId::TopoSort => run_single(&TopoSort::new(g), g, spec, config).report,
            AppId::SemiCluster => {
                run_obj_single(&SemiClustering::default(), g, spec, config).report
            }
        }
    }

    /// Run one app heterogeneously over a given partition. The paper's best
    /// setup: locking on the CPU, pipelining on the MIC ("Locking-based
    /// execution was used for CPU … for MIC, pipelining execution was used
    /// except for BFS").
    pub fn run_hetero(&self, app: AppId, p: &DevicePartition) -> RunReport {
        let g = self.graph(app);
        let specs = [DeviceSpec::xeon_e5_2680(), DeviceSpec::xeon_phi_se10p()];
        let mic_cfg = if app == AppId::Bfs {
            EngineConfig::locking()
        } else {
            EngineConfig::pipelined()
        };
        let configs = [EngineConfig::locking(), mic_cfg];
        let link = PcieLink::gen2_x16();
        match app {
            AppId::PageRank => {
                run_hetero(
                    &PageRank {
                        damping: 0.85,
                        iterations: PAGERANK_ITERS,
                    },
                    g,
                    p,
                    specs,
                    configs,
                    link,
                )
                .report
            }
            AppId::Bfs => run_hetero(&Bfs { source: 0 }, g, p, specs, configs, link).report,
            AppId::Sssp => run_hetero(&Sssp { source: 0 }, g, p, specs, configs, link).report,
            AppId::TopoSort => run_hetero(&TopoSort::new(g), g, p, specs, configs, link).report,
            AppId::SemiCluster => {
                run_obj_hetero(&SemiClustering::default(), g, p, specs, configs, link).report
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workbench_builds_and_runs_each_cell_kind() {
        let wb = Workbench::new(Scale::Tiny);
        let lock = wb.run(AppId::Sssp, Variant::MicLock);
        assert!(lock.sim_total() > 0.0);
        let het = wb.run(AppId::Bfs, Variant::CpuMic);
        assert_eq!(het.device, "CPU-MIC");
        let seq = wb.run(AppId::PageRank, Variant::CpuSeq);
        assert_eq!(seq.mode, "seq");
    }

    #[test]
    fn paper_ratios_are_wired() {
        assert_eq!(AppId::PageRank.paper_ratio(), Ratio::new(3, 5));
        assert_eq!(AppId::TopoSort.paper_ratio(), Ratio::new(1, 4));
    }
}
