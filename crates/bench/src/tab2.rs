//! Table II reproduction: sequential execution times and the parallel
//! efficiency of the framework (CPU multicore, MIC manycore, and the
//! combined CPU-MIC execution, with speedups over the sequential runs).

use crate::report::{ratio, secs, Table};
use crate::{AppId, Variant, Workbench, ALL_APPS};

/// One application column of Table II.
#[derive(Clone, Debug)]
pub struct Tab2Col {
    /// Application.
    pub app: AppId,
    /// One CPU core (s).
    pub cpu_seq: f64,
    /// One MIC core (s).
    pub mic_seq: f64,
    /// Best CPU framework execution (s).
    pub cpu_multi: f64,
    /// Best MIC framework execution (s).
    pub mic_many: f64,
    /// Best heterogeneous execution (s).
    pub cpu_mic: f64,
}

impl Tab2Col {
    /// CPU multicore speedup over CPU sequential.
    pub fn cpu_speedup(&self) -> f64 {
        self.cpu_seq / self.cpu_multi
    }
    /// MIC manycore speedup over MIC sequential.
    pub fn mic_speedup(&self) -> f64 {
        self.mic_seq / self.mic_many
    }
    /// CPU-MIC speedup over CPU sequential.
    pub fn hetero_speedup(&self) -> f64 {
        self.cpu_seq / self.cpu_mic
    }
}

/// Run Table II for one application.
pub fn run_app(wb: &Workbench, app: AppId) -> Tab2Col {
    let best = |a: f64, b: f64| a.min(b);
    let cpu_lock = wb.run(app, Variant::CpuLock).sim_total();
    let cpu_pipe = wb.run(app, Variant::CpuPipe).sim_total();
    let mic_lock = wb.run(app, Variant::MicLock).sim_total();
    let mic_pipe = wb.run(app, Variant::MicPipe).sim_total();
    Tab2Col {
        app,
        cpu_seq: wb.run(app, Variant::CpuSeq).sim_total(),
        mic_seq: wb.run(app, Variant::MicSeq).sim_total(),
        cpu_multi: best(cpu_lock, cpu_pipe),
        mic_many: best(mic_lock, mic_pipe),
        cpu_mic: wb.run(app, Variant::CpuMic).sim_total(),
    }
}

/// Run all applications.
pub fn run_all(wb: &Workbench) -> Vec<Tab2Col> {
    ALL_APPS.iter().map(|&app| run_app(wb, app)).collect()
}

/// Build the Table II [`Table`].
pub fn as_table(cols: &[Tab2Col]) -> Table {
    let mut t = Table::new(
        "tab2 — parallel efficiency obtained from the framework",
        &["row", "pagerank", "bfs", "semicluster", "sssp", "toposort"],
    );
    let pick = |f: &dyn Fn(&Tab2Col) -> String| -> Vec<String> { cols.iter().map(f).collect() };
    let mut row = |name: &str, f: &dyn Fn(&Tab2Col) -> String| {
        let mut cells = vec![name.to_string()];
        cells.extend(pick(f));
        t.row(cells);
    };
    row("CPU Seq (s)", &|c| secs(c.cpu_seq));
    row("MIC Seq (s)", &|c| secs(c.mic_seq));
    row("CPU Multi-core (s)", &|c| secs(c.cpu_multi));
    row("  speedup/CPU Seq", &|c| ratio(c.cpu_speedup()));
    row("MIC Many-core (s)", &|c| secs(c.mic_many));
    row("  speedup/MIC Seq", &|c| ratio(c.mic_speedup()));
    row("CPU-MIC Best (s)", &|c| secs(c.cpu_mic));
    row("  speedup/CPU Seq", &|c| ratio(c.hetero_speedup()));
    t
}

/// Render Table II.
pub fn table(cols: &[Tab2Col]) -> String {
    as_table(cols).render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_apps::workloads::Scale;

    #[test]
    fn table2_shapes_hold_for_sssp() {
        let wb = Workbench::new(Scale::Tiny);
        let c = run_app(&wb, AppId::Sssp);
        // MIC sequential is much slower than CPU sequential (~11x per-core).
        assert!(
            c.mic_seq > 5.0 * c.cpu_seq,
            "{} vs {}",
            c.mic_seq,
            c.cpu_seq
        );
        // Parallel execution beats sequential on both devices.
        assert!(c.cpu_speedup() > 1.5, "CPU speedup {}", c.cpu_speedup());
        assert!(c.mic_speedup() > 3.0, "MIC speedup {}", c.mic_speedup());
        // MIC manycore speedup exceeds CPU multicore speedup (more cores).
        assert!(c.mic_speedup() > c.cpu_speedup());
    }

    #[test]
    fn render_includes_all_apps() {
        let wb = Workbench::new(Scale::Tiny);
        let cols = run_all(&wb);
        let s = table(&cols);
        for app in ALL_APPS {
            assert!(s.contains(app.name()) || s.contains("semicluster"));
        }
        assert!(s.contains("CPU-MIC Best"));
    }
}
