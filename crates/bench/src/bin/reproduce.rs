//! The reproduction harness: regenerates every table and figure of the
//! paper's evaluation section.
//!
//! ```text
//! reproduce <experiment> [--scale tiny|small|medium]
//!   experiments: fig5a fig5b fig5c fig5d fig5e fig5f fig6 tab1 tab2 all
//! ```
//!
//! Reported times are simulated device times from the calibrated cost model
//! (see DESIGN.md §5); the shapes — which variant wins, by roughly what
//! factor — are the reproduction target, not absolute values.

use phigraph_apps::workloads::Scale;
use phigraph_bench::report::Table;
use phigraph_bench::{fig5, fig6, tab2, AppId, Variant, Workbench, ALL_APPS};
use phigraph_graph::generators::small::{
    paper_example, paper_example_actives, paper_table1_messages,
};
use std::path::PathBuf;

/// Optional CSV output directory (set by --csv).
static mut CSV_DIR: Option<PathBuf> = None;

fn csv_dir() -> Option<PathBuf> {
    // SAFETY: written once during single-threaded arg parsing.
    unsafe { (*std::ptr::addr_of!(CSV_DIR)).clone() }
}

fn emit_csv(name: &str, table: &Table) {
    if let Some(dir) = csv_dir() {
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) = std::fs::write(&path, table.render_csv()) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        } else {
            println!("(csv -> {})", path.display());
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = String::from("all");
    let mut scale = Scale::Small;
    let mut variant_filter: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| usage("bad --scale value"));
            }
            "--csv" => {
                i += 1;
                let dir = PathBuf::from(args.get(i).unwrap_or_else(|| usage("missing --csv dir")));
                std::fs::create_dir_all(&dir).unwrap_or_else(|e| usage(&format!("--csv dir: {e}")));
                // SAFETY: single-threaded argument parsing.
                unsafe { CSV_DIR = Some(dir) };
            }
            "--variant" => {
                i += 1;
                variant_filter = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage("missing --variant"))
                        .clone(),
                );
            }
            other if !other.starts_with('-') => experiment = other.to_string(),
            _ => usage(&format!("unknown flag {}", args[i])),
        }
        i += 1;
    }

    println!("phigraph reproduction harness — scale {scale:?}");
    println!("(times are simulated device seconds from the calibrated cost model)\n");

    let needs_workbench = experiment != "tab1";
    let wb = if needs_workbench {
        let wb = Workbench::new(scale);
        println!(
            "workloads: pokec-like {}v/{}e  dblp-like {}v/{}e  dag {}v/{}e\n",
            wb.pokec.num_vertices(),
            wb.pokec.num_edges(),
            wb.dblp.num_vertices(),
            wb.dblp.num_edges(),
            wb.dag.num_vertices(),
            wb.dag.num_edges(),
        );
        Some(wb)
    } else {
        None
    };

    match experiment.as_str() {
        "fig5a" => panel(wb.as_ref().unwrap(), AppId::PageRank),
        "fig5b" => panel(wb.as_ref().unwrap(), AppId::Bfs),
        "fig5c" => panel(wb.as_ref().unwrap(), AppId::SemiCluster),
        "fig5d" => panel(wb.as_ref().unwrap(), AppId::Sssp),
        "fig5e" => panel(wb.as_ref().unwrap(), AppId::TopoSort),
        "fig5f" => fig5f(wb.as_ref().unwrap()),
        "fig6" => fig6_all(wb.as_ref().unwrap()),
        "tab1" => tab1(),
        "tab2" => tab2_all(wb.as_ref().unwrap()),
        "csb" => csb_memory(wb.as_ref().unwrap()),
        "scaling" => scaling(),
        "combiner" => combiner(wb.as_ref().unwrap()),
        "breakdown" => breakdown(wb.as_ref().unwrap()),
        "timeline" => timeline(wb.as_ref().unwrap(), variant_filter.as_deref()),
        "all" => {
            let wb = wb.as_ref().unwrap();
            for app in ALL_APPS {
                panel(wb, app);
            }
            fig5f(wb);
            fig6_all(wb);
            tab1();
            tab2_all(wb);
        }
        other => usage(&format!("unknown experiment {other:?}")),
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: reproduce [fig5a|fig5b|fig5c|fig5d|fig5e|fig5f|fig6|tab1|tab2|all|breakdown|timeline|csb|scaling|combiner] [--scale tiny|small|medium] [--csv DIR] [--variant LABEL]");
    std::process::exit(2);
}

fn panel(wb: &Workbench, app: AppId) {
    let bars = fig5::run_panel(wb, app);
    println!("{}", fig5::panel_table(app, &bars));
    emit_csv(app.fig5_panel(), &fig5::panel_as_table(app, &bars));
}

fn fig5f(wb: &Workbench) {
    let rows = fig5::run_fig5f(wb);
    println!("{}", fig5::fig5f_table(&rows));
    emit_csv("fig5f", &fig5::fig5f_as_table(&rows));
}

fn fig6_all(wb: &Workbench) {
    let bars = fig6::run_all(wb);
    println!("{}", fig6::table(&bars));
    emit_csv("fig6", &fig6::as_table(&bars));
}

fn tab2_all(wb: &Workbench) {
    let cols = tab2::run_all(wb);
    println!("{}", tab2::table(&cols));
    emit_csv("tab2", &tab2::as_table(&cols));
}

/// ASCII per-superstep timeline for one app (all variants, or one named
/// via --variant): each step's gen/proc/update/comm time as a scaled bar.
fn timeline(wb: &Workbench, variant: Option<&str>) {
    for app in ALL_APPS {
        for v in phigraph_bench::FIG5_VARIANTS {
            if let Some(f) = variant {
                if !v.label().eq_ignore_ascii_case(f) {
                    continue;
                }
            } else if v != Variant::MicPipe {
                continue; // default: the paper's best MIC strategy
            }
            let r = wb.run(app, v);
            println!("== timeline: {} / {} ==", app.name(), v.label());
            let max = r
                .steps
                .iter()
                .map(|s| s.sim_total())
                .fold(0.0f64, f64::max)
                .max(1e-12);
            for s in &r.steps {
                let scale = 50.0 / max;
                let seg = |t: f64, ch: char| -> String {
                    std::iter::repeat_n(ch, (t * scale).round() as usize).collect()
                };
                println!(
                    "step {:>3} {:>9.6}s |{}{}{}{}|",
                    s.step,
                    s.sim_total(),
                    seg(s.times.gen, 'g'),
                    seg(s.times.process, 'p'),
                    seg(s.times.update, 'u'),
                    seg(s.comm_time, 'c'),
                );
            }
            println!("legend: g=generation p=processing u=update c=communication\n");
        }
    }
}

/// What-if analysis of the remote-message combiner: measured communication
/// (combined, as the paper does) vs the hypothetical uncombined exchange
/// reconstructed from the pre-combine counters ("to reduce the
/// communication overhead, a combination is conducted").
fn combiner(wb: &Workbench) {
    use phigraph_comm::PcieLink;
    let link = PcieLink::gen2_x16();
    println!("== combiner — remote message combining (CPU-MIC, hybrid partition) ==");
    println!(
        "{:<12}{:>14}{:>14}{:>10}{:>14}{:>14}{:>10}",
        "app", "raw msgs", "sent msgs", "reduction", "comm (s)", "no-combine", "saving"
    );
    for app in ALL_APPS {
        let r = wb.run(app, Variant::CpuMic);
        let before: u64 = r
            .steps
            .iter()
            .map(|s| s.counters.remote_before_combine)
            .sum();
        let after: u64 = r
            .steps
            .iter()
            .map(|s| s.counters.remote_after_combine)
            .sum();
        let measured = r.sim_comm();
        // Hypothetical: every raw remote message crosses the bus (8 bytes
        // per POD pair; semicluster messages are bigger, so this is a
        // lower bound there).
        let hypothetical: f64 = r
            .steps
            .iter()
            .map(|s| {
                let raw = s.counters.remote_before_combine * 8;
                link.exchange_time(raw, raw)
            })
            .sum();
        println!(
            "{:<12}{:>14}{:>14}{:>9.1}x{:>14.5}{:>14.5}{:>9.2}x",
            app.name(),
            before,
            after,
            before.max(1) as f64 / after.max(1) as f64,
            measured,
            hypothetical,
            hypothetical / measured.max(1e-12),
        );
    }
}

/// Scale sweep: how the CPU-MIC speedup over the best single device grows
/// with workload size (per-superstep fixed costs — barriers, PCIe latency —
/// amortize as supersteps carry more work). Documents the scale dependence
/// discussed in EXPERIMENTS.md.
fn scaling() {
    println!("== scaling — CPU-MIC speedup over best single device vs workload size ==");
    println!(
        "{:<10}{:<12}{:>12}{:>12}{:>12}{:>12}{:>10}",
        "scale", "app", "CPU best", "MIC best", "CPU-MIC", "best-single", "speedup"
    );
    for scale in [Scale::Tiny, Scale::Small, Scale::Medium] {
        let wb = Workbench::new(scale);
        for app in [AppId::PageRank, AppId::Sssp, AppId::TopoSort] {
            let cpu = wb
                .run(app, Variant::CpuLock)
                .sim_total()
                .min(wb.run(app, Variant::CpuPipe).sim_total())
                .min(wb.run(app, Variant::CpuOmp).sim_total());
            let mic = wb
                .run(app, Variant::MicLock)
                .sim_total()
                .min(wb.run(app, Variant::MicPipe).sim_total());
            let both = wb.run(app, Variant::CpuMic).sim_total();
            let best = cpu.min(mic);
            println!(
                "{:<10}{:<12}{:>12.5}{:>12.5}{:>12.5}{:>12.5}{:>9.2}x",
                format!("{scale:?}"),
                app.name(),
                cpu,
                mic,
                both,
                best,
                best / both,
            );
        }
    }
}

/// The §IV.B memory claim: condensed static buffer vs a dense static
/// buffer (every vertex sized to the global maximum in-degree), for both
/// device lane widths.
fn csb_memory(wb: &Workbench) {
    use phigraph_core::csb::CsbLayout;
    println!("== csb — condensed static buffer memory (f32 messages, k=4) ==");
    println!(
        "{:<12}{:<8}{:>8}{:>16}{:>16}{:>12}",
        "workload", "device", "lanes", "CSB cells", "dense cells", "saving"
    );
    for (name, g) in [("pokec", &wb.pokec), ("dblp", &wb.dblp), ("dag", &wb.dag)] {
        let n = g.num_vertices();
        let owned: Vec<u32> = (0..n as u32).collect();
        let cap = g.in_degrees();
        for (device, lanes) in [("CPU", 4usize), ("MIC", 16)] {
            let layout = CsbLayout::build(n, &owned, &cap, lanes, 4);
            println!(
                "{:<12}{:<8}{:>8}{:>16}{:>16}{:>11.2}x",
                name,
                device,
                lanes,
                layout.total_cells,
                layout.dense_cells(),
                layout.condensation_factor(),
            );
        }
    }
    println!("\n(\"Such a buffer design significantly reduces the memory requirement\" — §IV.B)");
}

/// Calibration aid: per-phase simulated time for every (app, variant).
fn breakdown(wb: &Workbench) {
    use phigraph_bench::FIG5_VARIANTS;
    println!("== phase breakdown (gen / process / update / comm, seconds) ==");
    for app in ALL_APPS {
        for v in FIG5_VARIANTS {
            let r = wb.run(app, v);
            let gen: f64 = r.steps.iter().map(|s| s.times.gen).sum();
            let proc_: f64 = r.steps.iter().map(|s| s.times.process).sum();
            let upd: f64 = r.steps.iter().map(|s| s.times.update).sum();
            let (mover_max, mover_mean): (u64, f64) = {
                let maxes: Vec<u64> = r
                    .steps
                    .iter()
                    .map(|s| s.counters.mover_msgs.iter().copied().max().unwrap_or(0))
                    .collect();
                let max = maxes.iter().copied().max().unwrap_or(0);
                let mean = r
                    .steps
                    .iter()
                    .map(|s| {
                        let m = &s.counters.mover_msgs;
                        if m.is_empty() {
                            0.0
                        } else {
                            m.iter().sum::<u64>() as f64 / m.len() as f64
                        }
                    })
                    .fold(0.0f64, f64::max);
                (max, mean)
            };
            println!(
                "{:<12}{:<10} gen {:.5}  proc {:.5}  upd {:.5}  comm {:.5}  total {:.5}  imb {:.2}  mvr {}/{:.0}",
                app.name(),
                v.label(),
                gen,
                proc_,
                upd,
                r.sim_comm(),
                r.sim_total(),
                r.steps
                    .iter()
                    .map(|s| s.times.gen_balance.imbalance)
                    .fold(0.0f64, f64::max),
                mover_max,
                mover_mean,
            );
        }
        println!();
    }
}

/// Table I: the messages sent in the paper's worked example (Figure 1
/// graph, actives {6, 7, 11, 13, 14, 15}).
fn tab1() {
    let g = paper_example();
    println!("== tab1 — messages being sent in the example graph ==");
    println!("{:<8}Messages (dst)", "Source");
    println!("----------------------------");
    for v in paper_example_actives() {
        let dsts: Vec<String> = g
            .neighbors(v)
            .iter()
            .map(|d| format!("({d}, value)"))
            .collect();
        println!("{:<8}{}", v, dsts.join(", "));
    }
    // Sanity: matches the hard-coded Table I from the paper.
    let derived: Vec<(u32, u32)> = paper_example_actives()
        .into_iter()
        .flat_map(|v| g.neighbors(v).iter().map(move |&d| (v, d)))
        .collect();
    assert_eq!(derived, paper_table1_messages());
    println!("(verified identical to the paper's Table I)\n");
}
