//! Standalone perf-trajectory binary: measure the hot paths, write
//! `BENCH_<area>.json`, and gate regressions. All logic lives in
//! [`phigraph_bench::runner`]; this is the process shell.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = phigraph_bench::runner::main(&argv) {
        eprintln!("phigraph-bench: {e}");
        std::process::exit(2);
    }
}
