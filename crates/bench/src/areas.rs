//! The measured perf areas behind `phigraph-bench run`.
//!
//! Each area is a steady-state iteration loop over one hot path of the
//! runtime, with *fixed-seed deterministic inputs* (the fixtures in
//! `phigraph_core::benchable` and `phigraph_comm::loopback`): two runs at
//! the same seed and scale execute the same labels over the same element
//! counts, so diffs between two `BENCH_*.json` files isolate real perf
//! movement.
//!
//! | area        | hot path                                                  |
//! |-------------|-----------------------------------------------------------|
//! | `spsc`      | worker→mover `push_slice`/`pop_slices` pipeline transport |
//! | `csb`       | `Csb::insert_slice` mover drains (both column modes)      |
//! | `superstep` | a full run per engine mode (per-superstep mean derivable) |
//! | `exchange`  | hetero frame-exchange loopback, unframed vs framed        |
//! | `integrity` | the `off`/`frames`/`full` switch on the recovering driver |
//! | `partition` | the three §IV.E device-partitioning schemes               |
//! | `objmsg`    | the object-message path (semi-clustering merge/sort)      |
//! | `serve`     | serving-pool jobs/second at 1, 4, and 16 tenants          |
//! | `serve_degraded` | the pool held at 2× admission capacity: shed ladder, breaker, and journal on the admission path |
//! | `obs`       | serving throughput with the observability plane off / windows / windows+events |
//!
//! Smoke mode shrinks every input so the whole sweep finishes in seconds
//! inside `scripts/check.sh`; the fingerprint records which mode produced
//! a file, and `compare` refuses to judge entries whose element counts
//! differ, so a smoke file never silently gates against a full one.

use crate::harness::{BenchmarkId, Criterion, Throughput};
use phigraph_apps::workloads::{self, Scale};
use phigraph_apps::{SemiClustering, Sssp};
use phigraph_comm::{loopback_all_to_all, loopback_rounds, PcieLink};
use phigraph_core::benchable::{csb_fixture, shuttle_msgs, spsc_shuttle, superstep_work};
use phigraph_core::csb::ColumnMode;
use phigraph_core::engine::obj::run_obj_single;
use phigraph_core::engine::{run_ranks, run_recoverable, run_single, EngineConfig, ExecMode};
use phigraph_device::DeviceSpec;
use phigraph_partition::{partition, partition_n, PartitionScheme, Ratio, Shares};
use phigraph_recover::{IntegrityMode, MemStore};
use phigraph_serve::{
    EventSink, JobKind, JobSpec, Journal, MetricsHub, ServeConfig, ServePool, ShedPolicy,
};
use phigraph_trace::{Trace, TraceLevel};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Knobs shared by every area.
#[derive(Clone, Copy, Debug)]
pub struct AreaOpts {
    /// Shrink inputs to CI-smoke size (seconds, not minutes).
    pub smoke: bool,
    /// Seed for every generated input.
    pub seed: u64,
    /// Timed iterations per benchmark (`None` = harness default, which
    /// honors `PHIGRAPH_BENCH_SAMPLES`).
    pub samples: Option<usize>,
    /// Untimed warmup iterations (`None` = harness default, which honors
    /// `PHIGRAPH_BENCH_WARMUP`).
    pub warmup: Option<usize>,
}

impl Default for AreaOpts {
    fn default() -> Self {
        AreaOpts {
            smoke: false,
            seed: 7,
            samples: None,
            warmup: None,
        }
    }
}

/// Apply the sample/warmup overrides to a group.
fn tune(g: &mut crate::harness::BenchmarkGroup<'_>, opts: &AreaOpts) {
    if let Some(n) = opts.samples {
        g.sample_size(n);
    }
    if let Some(w) = opts.warmup {
        g.warmup_iters(w);
    }
}

/// Run one named area's benchmarks into `c`. Unknown areas are an `Err`
/// listing the valid names.
pub fn run_area(area: &str, c: &mut Criterion, opts: &AreaOpts) -> Result<(), String> {
    match area {
        "spsc" => bench_spsc(c, opts),
        "csb" => bench_csb(c, opts),
        "superstep" => bench_superstep(c, opts),
        "exchange" => bench_exchange(c, opts),
        "integrity" => bench_integrity(c, opts),
        "partition" => bench_partition(c, opts),
        "objmsg" => bench_objmsg(c, opts),
        "serve" => bench_serve(c, opts),
        "serve_degraded" => bench_serve_degraded(c, opts),
        "obs" => bench_obs(c, opts),
        other => {
            return Err(format!(
                "unknown bench area {other:?} (valid: {})",
                crate::perf::AREAS.join(", ")
            ))
        }
    }
    Ok(())
}

/// Worker→mover batched SPSC transport across a queue matrix: the PR 1
/// pipeline in isolation, at the batch sizes the engine actually uses.
fn bench_spsc(c: &mut Criterion, opts: &AreaOpts) {
    let (workers, movers, n_msgs) = if opts.smoke {
        (2, 2, 40_000)
    } else {
        (4, 2, 400_000)
    };
    let msgs = shuttle_msgs(n_msgs, 1024, opts.seed);
    let mut g = c.benchmark_group("spsc/pipeline");
    tune(&mut g, opts);
    g.throughput(Throughput::Elements(n_msgs as u64));
    for batch in [1usize, 64, 512] {
        g.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| spsc_shuttle(workers, movers, 4096, batch, &msgs))
        });
    }
    g.finish();
}

/// `Csb::insert_slice` steady state: seeded uniform destinations drained
/// in mover-sized slices, one full buffer fill + reset per iteration.
fn bench_csb(c: &mut Criterion, opts: &AreaOpts) {
    let (n_vertices, n_msgs) = if opts.smoke {
        (1024, 20_000)
    } else {
        (4096, 200_000)
    };
    let mut g = c.benchmark_group("csb/insert_slice");
    tune(&mut g, opts);
    g.throughput(Throughput::Elements(n_msgs as u64));
    for mode in [ColumnMode::OneToOne, ColumnMode::Dynamic] {
        let fx = csb_fixture(n_vertices, n_msgs, mode, opts.seed);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{mode:?}")),
            &mode,
            |b, _| {
                b.iter(|| {
                    fx.csb.reset();
                    for chunk in fx.msgs.chunks(256) {
                        fx.csb.insert_slice(chunk);
                    }
                })
            },
        );
    }
    g.finish();
}

/// A full SSSP run per engine mode on the seeded pokec-like graph. The
/// declared elements are the run's total generated messages (measured by a
/// priming run — deterministic for a fixed input), so the rate reads as
/// end-to-end messages/second; divide mean by the superstep count for a
/// per-superstep figure.
fn bench_superstep(c: &mut Criterion, opts: &AreaOpts) {
    let scale = if opts.smoke {
        Scale::Tiny
    } else {
        Scale::Small
    };
    let graph = workloads::pokec_like_weighted(scale, opts.seed);
    let spec = DeviceSpec::xeon_e5_2680();
    let mut g = c.benchmark_group("superstep/sssp");
    tune(&mut g, opts);
    for (name, config) in [
        ("lock", EngineConfig::locking()),
        ("pipe", EngineConfig::pipelined()),
        ("flat", EngineConfig::flat()),
    ] {
        let work = superstep_work(&Sssp { source: 0 }, &graph, spec.clone(), &config);
        g.throughput(Throughput::Elements(work.total_msgs));
        g.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| run_single(&Sssp { source: 0 }, &graph, spec.clone(), config))
        });
    }
    // The same run over an N-rank device fabric (rank 0 = CPU locking,
    // ranks 1.. = MIC pipelined): what the mesh exchange and per-rank
    // barriers add on top of the single-device superstep.
    let work = superstep_work(
        &Sssp { source: 0 },
        &graph,
        spec.clone(),
        &EngineConfig::locking(),
    );
    for n in [2usize, 4] {
        let p = partition_n(
            &graph,
            PartitionScheme::hybrid_default(),
            &Shares::even(n),
            opts.seed,
        );
        let specs: Vec<DeviceSpec> = (0..n)
            .map(|r| {
                if r == 0 {
                    DeviceSpec::xeon_e5_2680()
                } else {
                    DeviceSpec::xeon_phi_se10p()
                }
            })
            .collect();
        let mut configs = vec![EngineConfig::locking()];
        configs.resize(n, EngineConfig::pipelined());
        g.throughput(Throughput::Elements(work.total_msgs));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("fabric-n{n}")),
            &p,
            |b, p| {
                b.iter(|| {
                    run_ranks(
                        &Sssp { source: 0 },
                        &graph,
                        p,
                        &specs,
                        &configs,
                        PcieLink::gen2_x16(),
                    )
                })
            },
        );
    }
    g.finish();
}

/// Hetero frame-exchange loopback: lock-step rounds over the modelled
/// PCIe link, unframed vs sealed+verified frames (the per-exchange cost
/// the frames integrity mode pays).
fn bench_exchange(c: &mut Criterion, opts: &AreaOpts) {
    let (rounds, payload) = if opts.smoke { (50, 1024) } else { (400, 8192) };
    let mut g = c.benchmark_group("exchange/loopback");
    tune(&mut g, opts);
    // Both directions move `payload` messages per round.
    g.throughput(Throughput::Elements((rounds * payload * 2) as u64));
    for (name, framed) in [("unframed", false), ("framed", true)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &framed, |b, &framed| {
            b.iter(|| loopback_rounds(PcieLink::gen2_x16(), rounds, payload, framed, opts.seed))
        });
    }
    // All-to-all over an N-rank mesh (unframed): rank 0 moves
    // `payload × 2 × (N-1)` messages per round, so the per-link protocol
    // cost and the mesh fan-out cost read off the same scale.
    for ranks in [2usize, 4] {
        g.throughput(Throughput::Elements(
            (rounds * payload * 2 * (ranks - 1)) as u64,
        ));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("mesh-n{ranks}")),
            &ranks,
            |b, &ranks| {
                b.iter(|| {
                    loopback_all_to_all(
                        PcieLink::gen2_x16(),
                        ranks,
                        rounds,
                        payload,
                        false,
                        opts.seed,
                    )
                })
            },
        );
    }
    g.finish();
}

/// The integrity switch on the recovering driver: the same SSSP run at
/// `off`, `frames`, and `full`. `off` must track the PR 5 zero-overhead
/// contract (one relaxed load per insert batch); `full` buys the message/
/// state-digest lattice.
fn bench_integrity(c: &mut Criterion, opts: &AreaOpts) {
    let scale = if opts.smoke {
        Scale::Tiny
    } else {
        Scale::Small
    };
    let graph = workloads::pokec_like_weighted(scale, opts.seed);
    let spec = DeviceSpec::xeon_e5_2680();
    let base = EngineConfig::locking();
    let work = superstep_work(&Sssp { source: 0 }, &graph, spec.clone(), &base);
    let mut g = c.benchmark_group("integrity");
    tune(&mut g, opts);
    g.throughput(Throughput::Elements(work.total_msgs));
    for mode in [
        IntegrityMode::Off,
        IntegrityMode::Frames,
        IntegrityMode::Full,
    ] {
        let config = base.clone().with_integrity(mode);
        g.bench_with_input(
            BenchmarkId::from_parameter(mode.name()),
            &config,
            |b, config| {
                b.iter(|| {
                    let mut store = MemStore::new();
                    run_recoverable(
                        &Sssp { source: 0 },
                        &graph,
                        spec.clone(),
                        config,
                        &mut store,
                        false,
                    )
                })
            },
        );
    }
    g.finish();
}

/// The three §IV.E device-partitioning schemes on the seeded pokec-like
/// graph: what a driver pays to produce a `DevicePartition` before any
/// superstep runs. Elements are vertices assigned per call.
fn bench_partition(c: &mut Criterion, opts: &AreaOpts) {
    let scale = if opts.smoke {
        Scale::Tiny
    } else {
        Scale::Small
    };
    let graph = workloads::pokec_like(scale, opts.seed);
    let blocks = if opts.smoke { 32 } else { 256 };
    let mut g = c.benchmark_group("partition/schemes");
    tune(&mut g, opts);
    g.throughput(Throughput::Elements(graph.num_vertices() as u64));
    for (name, scheme) in [
        ("continuous", PartitionScheme::Continuous),
        ("round-robin", PartitionScheme::RoundRobin),
        ("hybrid", PartitionScheme::Hybrid { blocks }),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &scheme, |b, &scheme| {
            b.iter(|| partition(&graph, scheme, Ratio::new(7, 3), opts.seed))
        });
    }
    g.finish();
}

/// The object-message path: a full semi-clustering run per engine mode.
/// Its merge/sort reduction is branch-heavy code the SIMD lanes never
/// touch, so it moves independently of the `superstep` area. Elements are
/// vertex-iterations (vertices × superstep cap) — deterministic for a
/// fixed input.
fn bench_objmsg(c: &mut Criterion, opts: &AreaOpts) {
    let scale = if opts.smoke {
        Scale::Tiny
    } else {
        Scale::Small
    };
    let graph = workloads::pokec_like(scale, opts.seed);
    let spec = DeviceSpec::xeon_e5_2680();
    let iterations = if opts.smoke { 3 } else { 6 };
    let sc = SemiClustering {
        iterations,
        ..Default::default()
    };
    let mut g = c.benchmark_group("objmsg/semicluster");
    tune(&mut g, opts);
    g.throughput(Throughput::Elements(
        (graph.num_vertices() * iterations) as u64,
    ));
    for (name, config) in [
        ("lock", EngineConfig::locking()),
        ("flat", EngineConfig::flat()),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| run_obj_single(&sc, &graph, spec.clone(), config))
        });
    }
    g.finish();
}

/// The serving pool end to end: submit a fixed batch of BFS jobs spread
/// across 1, 4, and 16 tenants and wait for every result, so the mean
/// iteration time reads directly as jobs/second through admission,
/// stride scheduling, and the worker pool. One pool (and one graph load)
/// per tenant count, reused across iterations — matching the daemon's
/// load-once contract.
fn bench_serve(c: &mut Criterion, opts: &AreaOpts) {
    let scale = if opts.smoke {
        Scale::Tiny
    } else {
        Scale::Small
    };
    let graph = Arc::new(workloads::pokec_like_weighted(scale, opts.seed));
    let jobs_per_iter: usize = if opts.smoke { 8 } else { 32 };
    let mut g = c.benchmark_group("serve/jobs");
    tune(&mut g, opts);
    g.throughput(Throughput::Elements(jobs_per_iter as u64));
    for tenants in [1usize, 4, 16] {
        let cfg = ServeConfig {
            workers: 2,
            // Must exceed the in-flight batch so admission never rejects.
            queue_cap: jobs_per_iter.max(64),
            ..ServeConfig::default()
        };
        let (pool, rx) = ServePool::new(Arc::clone(&graph), cfg);
        g.bench_with_input(
            BenchmarkId::from_parameter(tenants),
            &tenants,
            |b, &tenants| {
                b.iter(|| {
                    for i in 0..jobs_per_iter {
                        let spec = JobSpec {
                            id: format!("j{i}"),
                            tenant: format!("t{}", i % tenants),
                            kind: JobKind::Bfs {
                                source: (i % 7) as u32,
                            },
                            mode: ExecMode::Locking,
                            deadline_ms: None,
                            integrity: None,
                            replay: false,
                            conn: 0,
                        };
                        pool.submit(spec).expect("bench job admitted");
                    }
                    for _ in 0..jobs_per_iter {
                        rx.recv().expect("bench job result");
                    }
                })
            },
        );
        drop(pool);
    }
    g.finish();
}

/// The serving pool held *at overload*: every iteration pushes twice the
/// admission capacity through three unevenly weighted tenants, so the
/// shed ladder, the circuit breakers, and (in the `+journal` variant)
/// the journal appends all sit on the measured path. Throughput counts
/// *submissions* — admitted or shed — so the number reads as sustained
/// intake under pressure, which is exactly what degrades if the
/// admission ladder gets slower.
fn bench_serve_degraded(c: &mut Criterion, opts: &AreaOpts) {
    let scale = if opts.smoke {
        Scale::Tiny
    } else {
        Scale::Small
    };
    let graph = Arc::new(workloads::pokec_like_weighted(scale, opts.seed));
    let queue_cap: usize = if opts.smoke { 8 } else { 16 };
    let submissions = queue_cap * 2; // the chaos harness's overload factor
    let mut g = c.benchmark_group("serve_degraded/overload");
    tune(&mut g, opts);
    g.throughput(Throughput::Elements(submissions as u64));
    let journal_dir = std::env::temp_dir().join(format!(
        "phigraph-bench-serve-degraded-{}",
        std::process::id()
    ));
    for (label, shed, journalled) in [
        ("off", ShedPolicy::Off, false),
        ("ladder", ShedPolicy::Ladder, false),
        ("ladder+journal", ShedPolicy::Ladder, true),
    ] {
        let journal = if journalled {
            let (j, _) = Journal::open(&journal_dir, ExecMode::Locking).expect("bench journal");
            Some(Arc::new(j))
        } else {
            None
        };
        let cfg = ServeConfig {
            workers: 2,
            queue_cap,
            shed,
            journal,
            ..ServeConfig::default()
        };
        let (pool, rx) = ServePool::new(Arc::clone(&graph), cfg);
        for (tenant, weight, cap) in [("gold", 4u64, 4usize), ("silver", 2, 2), ("bronze", 1, 2)] {
            pool.set_tenant(tenant, weight, cap);
        }
        g.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, ()| {
            b.iter(|| {
                let mut accepted = 0usize;
                for i in 0..submissions {
                    let tenant = ["gold", "silver", "bronze"][i % 3];
                    let spec = JobSpec {
                        id: format!("d{i}"),
                        tenant: tenant.to_string(),
                        kind: JobKind::Bfs {
                            source: (i % 7) as u32,
                        },
                        mode: ExecMode::Locking,
                        deadline_ms: None,
                        integrity: None,
                        replay: false,
                        conn: 0,
                    };
                    if pool.submit(spec).is_ok() {
                        accepted += 1;
                    }
                }
                // Drain so the next iteration starts from an empty queue.
                for _ in 0..accepted {
                    rx.recv().expect("bench job result");
                }
            })
        });
        drop(pool);
    }
    let _ = std::fs::remove_dir_all(&journal_dir);
    g.finish();
}

/// Observability overhead on the serving hot path: the same fixed BFS
/// batch as `serve` (4 tenants), measured three ways —
///
/// - `off`: no trace, no sink — the PR 4 zero-cost baseline;
/// - `windows`: phase-level histograms plus a live [`MetricsHub`]
///   sampled at 1 Hz by a background thread, exactly the daemon's
///   steady-state scrape plane;
/// - `windows+events`: the above plus an armed [`EventSink`] writing
///   per-job admit/start/done JSONL — every hot-path hook live.
///
/// The acceptance pin (windows ≤ 2% over off) is documented by the
/// committed full-run `BENCH_obs.json`; the compare gate holds the
/// trajectory.
fn bench_obs(c: &mut Criterion, opts: &AreaOpts) {
    let scale = if opts.smoke {
        Scale::Tiny
    } else {
        Scale::Small
    };
    let graph = Arc::new(workloads::pokec_like_weighted(scale, opts.seed));
    let jobs_per_iter: usize = if opts.smoke { 8 } else { 32 };
    let tenants = 4usize;
    let events_path =
        std::env::temp_dir().join(format!("phigraph-bench-obs-{}.jsonl", std::process::id()));
    let mut g = c.benchmark_group("obs/serve");
    tune(&mut g, opts);
    g.throughput(Throughput::Elements(jobs_per_iter as u64));
    for label in ["off", "windows", "windows+events"] {
        let trace = (label != "off").then(|| Trace::new(TraceLevel::Phase));
        let events = (label == "windows+events").then(|| {
            EventSink::with_file(&events_path.display().to_string()).expect("bench event log")
        });
        let cfg = ServeConfig {
            workers: 2,
            queue_cap: jobs_per_iter.max(64),
            trace: trace.clone(),
            events,
            ..ServeConfig::default()
        };
        let (pool, rx) = ServePool::new(Arc::clone(&graph), cfg);
        // The daemon's 1 Hz sampler, concurrent with the measured loop:
        // windows maintenance must contend with hot-path recording, not
        // run in a vacuum.
        let stop = Arc::new(AtomicBool::new(false));
        let sampler = trace.clone().map(|trace| {
            let hub = MetricsHub::new();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    hub.sample(Default::default(), trace.snapshot().hists);
                    for _ in 0..10 {
                        if stop.load(Ordering::Acquire) {
                            return;
                        }
                        std::thread::sleep(std::time::Duration::from_millis(100));
                    }
                }
            })
        });
        g.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, ()| {
            b.iter(|| {
                for i in 0..jobs_per_iter {
                    let spec = JobSpec {
                        id: format!("o{i}"),
                        tenant: format!("t{}", i % tenants),
                        kind: JobKind::Bfs {
                            source: (i % 7) as u32,
                        },
                        mode: ExecMode::Locking,
                        deadline_ms: None,
                        integrity: None,
                        replay: false,
                        conn: 0,
                    };
                    pool.submit(spec).expect("bench job admitted");
                }
                for _ in 0..jobs_per_iter {
                    rx.recv().expect("bench job result");
                }
            })
        });
        stop.store(true, Ordering::Release);
        if let Some(h) = sampler {
            let _ = h.join();
        }
        drop(pool);
    }
    let _ = std::fs::remove_file(&events_path);
    g.finish();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::AREAS;

    #[test]
    fn every_declared_area_runs_in_smoke_mode() {
        // One timed sample per bench keeps this a seconds-scale test while
        // still driving every area end to end.
        let opts = AreaOpts {
            smoke: true,
            seed: 7,
            samples: Some(1),
            warmup: Some(0),
        };
        for area in AREAS {
            let mut c = Criterion::default();
            run_area(area, &mut c, &opts).expect(area);
            assert!(!c.results().is_empty(), "area {area} produced no results");
            for r in c.results() {
                assert!(
                    r.label.starts_with(area),
                    "label {:?} not under area {area}",
                    r.label
                );
            }
        }
    }

    #[test]
    fn unknown_area_is_rejected_with_the_valid_list() {
        let mut c = Criterion::default();
        let err = run_area("warp-drive", &mut c, &AreaOpts::default()).unwrap_err();
        assert!(err.contains("superstep"), "{err}");
    }
}
