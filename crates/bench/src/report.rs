//! Plain-text table formatting for the reproduction harness.

/// A formatted results table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title (figure/table id + description).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "ragged row");
        self.rows.push(cells);
    }

    /// Render as CSV (header row + data rows, comma-separated with quotes
    /// only where needed).
    pub fn render_csv(&self) -> String {
        let esc = |c: &str| -> String {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Render as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format seconds with 4 significant decimals.
pub fn secs(t: f64) -> String {
    format!("{t:.4}")
}

/// Format a speedup ratio.
pub fn ratio(r: f64) -> String {
    format!("{r:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.lines().count() >= 5);
        // Columns aligned: both data lines have 'value' column at the same
        // offset.
        let lines: Vec<&str> = s.lines().collect();
        let off = lines[3].find('1').unwrap();
        assert_eq!(lines[4].find('2').unwrap(), off);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_rendering_escapes() {
        let mut t = Table::new("csv", &["a", "b"]);
        t.row(vec!["plain".into(), "with,comma".into()]);
        t.row(vec!["with\"quote".into(), "x".into()]);
        let csv = t.render_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,\"with,comma\"");
        assert_eq!(lines[2], "\"with\"\"quote\",x");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(1.23456), "1.2346");
        assert_eq!(ratio(2.0), "2.00x");
    }
}
