//! Figure 6 reproduction: continuous vs round-robin vs hybrid graph
//! partitioning, execution + communication time per application, plus the
//! partition-quality metrics explaining the differences.

use crate::report::{ratio, secs, Table};
use crate::{AppId, Workbench, ALL_APPS};
use phigraph_partition::{partition, PartitionScheme, PartitionStats};

/// One bar of Fig. 6.
#[derive(Clone, Debug)]
pub struct Fig6Bar {
    /// Application.
    pub app: AppId,
    /// Scheme label.
    pub scheme: &'static str,
    /// Simulated execution time (slower device per superstep).
    pub exec: f64,
    /// Simulated communication time.
    pub comm: f64,
    /// Cross edges of the partition.
    pub cross_edges: u64,
    /// Edge-balance error vs the requested ratio.
    pub balance_error: f64,
}

impl Fig6Bar {
    /// Bar total.
    pub fn total(&self) -> f64 {
        self.exec + self.comm
    }
}

/// The schemes in figure order.
pub fn schemes() -> [PartitionScheme; 3] {
    [
        PartitionScheme::Continuous,
        PartitionScheme::RoundRobin,
        PartitionScheme::hybrid_default(),
    ]
}

/// Run Fig. 6 for one application ("the partitioning ratio used for each
/// application is the same as that … for achieving the best CPU-MIC
/// execution").
pub fn run_app(wb: &Workbench, app: AppId) -> Vec<Fig6Bar> {
    let g = wb.graph(app);
    let ratio = app.paper_ratio();
    schemes()
        .into_iter()
        .map(|scheme| {
            let p = partition(g, scheme, ratio, 7);
            let stats = PartitionStats::compute(g, &p);
            let r = wb.run_hetero(app, &p);
            Fig6Bar {
                app,
                scheme: scheme.name(),
                exec: r.sim_exec(),
                comm: r.sim_comm(),
                cross_edges: stats.cross_edges,
                balance_error: stats.edge_balance_error(ratio),
            }
        })
        .collect()
}

/// Run all five applications.
pub fn run_all(wb: &Workbench) -> Vec<Fig6Bar> {
    ALL_APPS.iter().flat_map(|&app| run_app(wb, app)).collect()
}

/// Build the Fig. 6 [`Table`].
pub fn as_table(bars: &[Fig6Bar]) -> Table {
    let mut t = Table::new(
        "fig6 — impact of graph partitioning methods (CPU-MIC execution)",
        &[
            "app",
            "scheme",
            "exec (s)",
            "comm (s)",
            "total (s)",
            "cross edges",
            "balance err",
        ],
    );
    for b in bars {
        t.row(vec![
            b.app.name().to_string(),
            b.scheme.to_string(),
            secs(b.exec),
            secs(b.comm),
            secs(b.total()),
            b.cross_edges.to_string(),
            format!("{:.3}", b.balance_error),
        ]);
    }
    t
}

/// Render Fig. 6.
pub fn table(bars: &[Fig6Bar]) -> String {
    let t = as_table(bars);
    let mut s = t.render();
    // Derived hybrid speedups per app (the paper's 1.72x/1.13x etc.).
    for chunk in bars.chunks(3) {
        if chunk.len() == 3 {
            s.push_str(&format!(
                "derived {}: hybrid vs continuous {}  |  hybrid vs round-robin {}\n",
                chunk[0].app.name(),
                ratio(chunk[0].total() / chunk[2].total()),
                ratio(chunk[1].total() / chunk[2].total()),
            ));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_apps::workloads::Scale;

    #[test]
    fn hybrid_wins_on_the_power_law_workload() {
        // At Tiny scale per-superstep fixed costs (barriers, PCIe latency)
        // dominate, so the *time* ordering of Fig. 6 only emerges at
        // small/medium scale (see EXPERIMENTS.md); the structural
        // properties that cause it are scale-independent and asserted here.
        let wb = Workbench::new(Scale::Tiny);
        let bars = run_app(&wb, AppId::PageRank);
        assert_eq!(bars.len(), 3);
        let (cont, rr, hy) = (&bars[0], &bars[1], &bars[2]);
        // Continuous is badly imbalanced; hybrid is not.
        assert!(cont.balance_error > 5.0 * hy.balance_error.max(0.01));
        // Round-robin pays more communication than hybrid.
        assert!(
            rr.comm > hy.comm,
            "rr comm {} vs hybrid {}",
            rr.comm,
            hy.comm
        );
        assert!(rr.cross_edges > hy.cross_edges);
        let s = table(&bars);
        assert!(s.contains("hybrid vs continuous"));
    }
}
