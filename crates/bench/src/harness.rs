//! Vendored micro-benchmark harness (criterion-compatible subset).
//!
//! The workspace builds hermetically offline, so the benches cannot pull
//! `criterion` from a registry. This module provides the small slice of its
//! API the benches actually use — `Criterion`, benchmark groups, per-input
//! benches, element throughput — with a simple measurement loop:
//! `warmup_iters` untimed iterations, then `sample_size` timed iterations,
//! reporting the mean, min, p50, p99 and (when a throughput was declared)
//! elements per second. The per-sample durations feed the `BENCH_*.json`
//! emission in [`crate::perf`].
//!
//! Results print as one line per benchmark:
//!
//! ```text
//! csb/insert/Dynamic        mean 12.281ms  min 11.902ms  p99 13.020ms  (16.3 Melem/s)
//! ```

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value (stable-Rust
/// equivalent of `criterion::black_box`).
#[inline]
pub fn black_box<T>(x: T) -> T {
    // `read_volatile` of the pointer forces the value to materialize.
    // SAFETY: `&x` is a valid, initialized, aligned pointer; the value is
    // returned and `x` is forgotten so no double-drop occurs.
    unsafe {
        let ret = std::ptr::read_volatile(&x);
        std::mem::forget(x);
        ret
    }
}

/// Top-level driver handed to each registered bench function.
#[derive(Default)]
pub struct Criterion {
    /// Results accumulated over the run (label, mean, min, throughput).
    results: Vec<BenchResult>,
}

/// One benchmark's measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Full benchmark label (`group/function/parameter`).
    pub label: String,
    /// Mean iteration time.
    pub mean: Duration,
    /// Fastest iteration.
    pub min: Duration,
    /// Median iteration time (nearest-rank).
    pub p50: Duration,
    /// 99th-percentile iteration time (nearest-rank; equals the slowest
    /// sample for small sample counts — it is the tail-latency signal the
    /// mean/min pair hides).
    pub p99: Duration,
    /// Untimed warmup iterations that ran before sampling.
    pub warmup_iters: usize,
    /// Timed iterations actually recorded.
    pub samples: usize,
    /// Declared elements per iteration, if any.
    pub elements: Option<u64>,
}

impl BenchResult {
    /// Elements per second over the mean iteration, when a throughput was
    /// declared and the mean is nonzero.
    pub fn elem_per_sec(&self) -> Option<f64> {
        match self.elements {
            Some(e) if self.mean.as_secs_f64() > 0.0 => Some(e as f64 / self.mean.as_secs_f64()),
            _ => None,
        }
    }

    fn report(&self) {
        let thr = match self.elem_per_sec() {
            Some(eps) => format!("  ({} elem/s)", human_rate(eps)),
            None => String::new(),
        };
        println!(
            "{:<44} mean {:>10}  min {:>10}  p99 {:>10}{}",
            self.label,
            human_time(self.mean),
            human_time(self.min),
            human_time(self.p99),
            thr
        );
    }
}

/// Nearest-rank percentile over an ascending-sorted sample set; `q` in
/// `0.0..=100.0`. Empty input maps to zero.
pub fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn human_time(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3}us", s * 1e6)
    } else {
        format!("{:.0}ns", s * 1e9)
    }
}

fn human_rate(r: f64) -> String {
    if r >= 1e9 {
        format!("{:.2}G", r / 1e9)
    } else if r >= 1e6 {
        format!("{:.2}M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.2}K", r / 1e3)
    } else {
        format!("{r:.1}")
    }
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: default_sample_size(),
            warmup_iters: default_warmup_iters(),
            throughput: None,
        }
    }

    /// Benchmark a single function under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let r = run_bench(
            name,
            default_sample_size(),
            default_warmup_iters(),
            None,
            |b| f(b),
        );
        r.report();
        self.results.push(r);
        self
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// Samples per benchmark; `PHIGRAPH_BENCH_SAMPLES` overrides (CI smoke runs
/// set it to 1).
fn default_sample_size() -> usize {
    std::env::var("PHIGRAPH_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// Untimed warmup iterations per benchmark; `PHIGRAPH_BENCH_WARMUP`
/// overrides (0 is allowed — the first timed sample then pays the
/// cold-cache cost, visible as a fat p99).
fn default_warmup_iters() -> usize {
    std::env::var("PHIGRAPH_BENCH_WARMUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Declared per-iteration work, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (messages, edges, …) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warmup_iters: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the number of untimed warmup iterations (0 allowed).
    pub fn warmup_iters(&mut self, n: usize) -> &mut Self {
        self.warmup_iters = n;
        self
    }

    /// Declare per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark `f` with `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let elements = match self.throughput {
            Some(Throughput::Elements(e)) => Some(e),
            _ => None,
        };
        let r = run_bench(&label, self.sample_size, self.warmup_iters, elements, |b| {
            f(b, input)
        });
        r.report();
        self.parent.results.push(r);
        self
    }

    /// Benchmark a plain function under `name` within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        let elements = match self.throughput {
            Some(Throughput::Elements(e)) => Some(e),
            _ => None,
        };
        let r = run_bench(&label, self.sample_size, self.warmup_iters, elements, |b| {
            f(b)
        });
        r.report();
        self.parent.results.push(r);
        self
    }

    /// End the group (kept for criterion API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmarked closure; call [`Bencher::iter`] with the body.
pub struct Bencher {
    samples: usize,
    warmup: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Measure `body`: `warmup` untimed calls (pre-faulting allocations and
    /// caches), then `samples` timed calls, each recorded individually so
    /// percentiles can be computed.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        for _ in 0..self.warmup {
            black_box(body());
        }
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(body());
            self.durations.push(t0.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    warmup: usize,
    elements: Option<u64>,
    mut f: F,
) -> BenchResult {
    let mut b = Bencher {
        samples,
        warmup,
        durations: Vec::with_capacity(samples),
    };
    f(&mut b);
    let recorded = b.durations.len();
    let total: Duration = b.durations.iter().sum();
    let mean = total / recorded.max(1) as u32;
    let mut sorted = b.durations;
    sorted.sort_unstable();
    BenchResult {
        label: label.to_string(),
        mean,
        min: sorted.first().copied().unwrap_or(Duration::ZERO),
        p50: percentile(&sorted, 50.0),
        p99: percentile(&sorted, 99.0),
        warmup_iters: warmup,
        samples: recorded,
        elements,
    }
}

/// Register bench functions under a group name (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::harness::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Emit `main` running the given groups (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::default();
            $( $group(&mut c); )+
            eprintln!("\n{} benchmarks completed", c.results().len());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_counts() {
        let r = run_bench("t", 3, 1, Some(300), |b| {
            b.iter(|| {
                let mut s = 0u64;
                for i in 0..1000u64 {
                    s = s.wrapping_add(black_box(i));
                }
                s
            })
        });
        assert_eq!(r.label, "t");
        assert!(r.min <= r.mean);
        assert_eq!(r.elements, Some(300));
        assert_eq!(r.warmup_iters, 1);
        assert_eq!(r.samples, 3);
        assert!(r.min <= r.p50 && r.p50 <= r.p99);
        assert!(r.elem_per_sec().unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn warmup_iterations_run_untimed() {
        // 2 warmup + 4 timed calls: the body must run exactly 6 times but
        // only 4 samples are recorded.
        let mut calls = 0u32;
        let r = run_bench("w", 4, 2, None, |b| b.iter(|| calls += 1));
        assert_eq!(calls, 6);
        assert_eq!(r.samples, 4);
        assert_eq!(r.warmup_iters, 2);
        // Zero warmup is allowed (cold first sample).
        let mut calls = 0u32;
        let r = run_bench("w0", 3, 0, None, |b| b.iter(|| calls += 1));
        assert_eq!(calls, 3);
        assert_eq!(r.warmup_iters, 0);
    }

    #[test]
    fn percentiles_capture_tail_of_known_duration_workload() {
        // Synthetic workload with known per-iteration durations: 9 fast
        // (~1 ms) iterations and 1 slow (~15 ms) outlier. sleep() only
        // guarantees a lower bound, which is exactly what the assertions
        // need: p99 must surface the outlier that mean/min smooth over.
        let mut i = 0u32;
        let r = run_bench("tail", 10, 0, None, |b| {
            b.iter(|| {
                i += 1;
                let ms = if i == 5 { 15 } else { 1 };
                std::thread::sleep(Duration::from_millis(ms));
            })
        });
        assert_eq!(r.samples, 10);
        assert!(r.p99 >= Duration::from_millis(15), "p99 {:?}", r.p99);
        assert!(r.p50 < Duration::from_millis(15), "p50 {:?}", r.p50);
        assert!(r.min >= Duration::from_millis(1));
        assert!(r.min <= r.p50 && r.p50 <= r.p99);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let ms = |n: u64| Duration::from_millis(n);
        let sorted: Vec<Duration> = (1..=10).map(ms).collect();
        assert_eq!(percentile(&sorted, 50.0), ms(5));
        assert_eq!(percentile(&sorted, 99.0), ms(10));
        assert_eq!(percentile(&sorted, 100.0), ms(10));
        assert_eq!(percentile(&sorted, 0.0), ms(1));
        assert_eq!(percentile(&[ms(7)], 50.0), ms(7));
        assert_eq!(percentile(&[], 99.0), Duration::ZERO);
    }

    #[test]
    fn group_warmup_knob_is_plumbed() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("k");
            g.sample_size(3).warmup_iters(4);
            g.bench_function("f", |b| b.iter(|| calls += 1));
            g.finish();
        }
        assert_eq!(calls, 7);
        assert_eq!(c.results()[0].warmup_iters, 4);
        assert_eq!(c.results()[0].samples, 3);
    }

    #[test]
    fn group_accumulates_results() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2).throughput(Throughput::Elements(10));
            g.bench_with_input(BenchmarkId::from_parameter(1), &1, |b, &x| {
                b.iter(|| black_box(x + 1))
            });
            g.bench_function("plain", |b| b.iter(|| black_box(2)));
            g.finish();
        }
        c.bench_function("top", |b| b.iter(|| black_box(3)));
        assert_eq!(c.results().len(), 3);
        assert_eq!(c.results()[0].label, "g/1");
        assert_eq!(c.results()[1].label, "g/plain");
        assert_eq!(c.results()[2].label, "top");
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
        let v = vec![1, 2, 3];
        assert_eq!(black_box(v.clone()), v);
    }
}
