//! Vendored micro-benchmark harness (criterion-compatible subset).
//!
//! The workspace builds hermetically offline, so the benches cannot pull
//! `criterion` from a registry. This module provides the small slice of its
//! API the benches actually use — `Criterion`, benchmark groups, per-input
//! benches, element throughput — with a simple measurement loop: one warmup
//! iteration, then `sample_size` timed iterations, reporting the mean,
//! min, and (when a throughput was declared) elements per second.
//!
//! Results print as one line per benchmark:
//!
//! ```text
//! csb/insert/Dynamic        mean 12.281ms  min 11.902ms  (16.3 Melem/s)
//! ```

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value (stable-Rust
/// equivalent of `criterion::black_box`).
#[inline]
pub fn black_box<T>(x: T) -> T {
    // `read_volatile` of the pointer forces the value to materialize.
    // SAFETY: `&x` is a valid, initialized, aligned pointer; the value is
    // returned and `x` is forgotten so no double-drop occurs.
    unsafe {
        let ret = std::ptr::read_volatile(&x);
        std::mem::forget(x);
        ret
    }
}

/// Top-level driver handed to each registered bench function.
#[derive(Default)]
pub struct Criterion {
    /// Results accumulated over the run (label, mean, min, throughput).
    results: Vec<BenchResult>,
}

/// One benchmark's measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Full benchmark label (`group/function/parameter`).
    pub label: String,
    /// Mean iteration time.
    pub mean: Duration,
    /// Fastest iteration.
    pub min: Duration,
    /// Declared elements per iteration, if any.
    pub elements: Option<u64>,
}

impl BenchResult {
    fn report(&self) {
        let thr = match self.elements {
            Some(e) if self.mean.as_secs_f64() > 0.0 => {
                let eps = e as f64 / self.mean.as_secs_f64();
                format!("  ({} elem/s)", human_rate(eps))
            }
            _ => String::new(),
        };
        println!(
            "{:<44} mean {:>10}  min {:>10}{}",
            self.label,
            human_time(self.mean),
            human_time(self.min),
            thr
        );
    }
}

fn human_time(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3}us", s * 1e6)
    } else {
        format!("{:.0}ns", s * 1e9)
    }
}

fn human_rate(r: f64) -> String {
    if r >= 1e9 {
        format!("{:.2}G", r / 1e9)
    } else if r >= 1e6 {
        format!("{:.2}M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.2}K", r / 1e3)
    } else {
        format!("{r:.1}")
    }
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: default_sample_size(),
            throughput: None,
        }
    }

    /// Benchmark a single function under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let r = run_bench(name, default_sample_size(), None, |b| f(b));
        r.report();
        self.results.push(r);
        self
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// Samples per benchmark; `PHIGRAPH_BENCH_SAMPLES` overrides (CI smoke runs
/// set it to 1).
fn default_sample_size() -> usize {
    std::env::var("PHIGRAPH_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// Declared per-iteration work, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (messages, edges, …) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark `f` with `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let elements = match self.throughput {
            Some(Throughput::Elements(e)) => Some(e),
            _ => None,
        };
        let r = run_bench(&label, self.sample_size, elements, |b| f(b, input));
        r.report();
        self.parent.results.push(r);
        self
    }

    /// Benchmark a plain function under `name` within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        let elements = match self.throughput {
            Some(Throughput::Elements(e)) => Some(e),
            _ => None,
        };
        let r = run_bench(&label, self.sample_size, elements, |b| f(b));
        r.report();
        self.parent.results.push(r);
        self
    }

    /// End the group (kept for criterion API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmarked closure; call [`Bencher::iter`] with the body.
pub struct Bencher {
    samples: usize,
    total: Duration,
    min: Duration,
    iters: u64,
}

impl Bencher {
    /// Measure `body`: one untimed warmup call, then `samples` timed calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        black_box(body()); // warmup (also pre-faults allocations)
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(body());
            let dt = t0.elapsed();
            self.total += dt;
            self.min = self.min.min(dt);
            self.iters += 1;
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    elements: Option<u64>,
    mut f: F,
) -> BenchResult {
    let mut b = Bencher {
        samples,
        total: Duration::ZERO,
        min: Duration::MAX,
        iters: 0,
    };
    f(&mut b);
    let iters = b.iters.max(1);
    BenchResult {
        label: label.to_string(),
        mean: b.total / iters as u32,
        min: if b.min == Duration::MAX {
            Duration::ZERO
        } else {
            b.min
        },
        elements,
    }
}

/// Register bench functions under a group name (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::harness::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Emit `main` running the given groups (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::default();
            $( $group(&mut c); )+
            eprintln!("\n{} benchmarks completed", c.results().len());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_counts() {
        let r = run_bench("t", 3, Some(300), |b| {
            b.iter(|| {
                let mut s = 0u64;
                for i in 0..1000u64 {
                    s = s.wrapping_add(black_box(i));
                }
                s
            })
        });
        assert_eq!(r.label, "t");
        assert!(r.min <= r.mean);
        assert_eq!(r.elements, Some(300));
    }

    #[test]
    fn group_accumulates_results() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2).throughput(Throughput::Elements(10));
            g.bench_with_input(BenchmarkId::from_parameter(1), &1, |b, &x| {
                b.iter(|| black_box(x + 1))
            });
            g.bench_function("plain", |b| b.iter(|| black_box(2)));
            g.finish();
        }
        c.bench_function("top", |b| b.iter(|| black_box(3)));
        assert_eq!(c.results().len(), 3);
        assert_eq!(c.results()[0].label, "g/1");
        assert_eq!(c.results()[1].label, "g/plain");
        assert_eq!(c.results()[2].label, "top");
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
        let v = vec![1, 2, 3];
        assert_eq!(black_box(v.clone()), v);
    }
}
