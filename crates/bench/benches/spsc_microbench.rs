//! SPSC pipeline transport microbenchmark: per-message vs batched.
//!
//! Reproduces the worker→mover message transport of the pipelined engine
//! in isolation — a 4-worker × 2-mover queue matrix moving `(dst, value)`
//! pairs — and compares the per-message protocol (`push` + `pop_batch`,
//! one Release publish per message) against the batched protocol
//! (`push_slice` + `pop_slices`, one publish per batch). The reported rate
//! is end-to-end messages per second across the whole matrix.

use phigraph_bench::harness::{black_box, BenchmarkId, Criterion, Throughput};
use phigraph_bench::{criterion_group, criterion_main};
use phigraph_core::queues::QueueMatrix;

const WORKERS: usize = 4;
const MOVERS: usize = 2;
const MSGS_PER_WORKER: usize = 200_000;
const QUEUE_CAP: usize = 4096;

/// One worker's message stream: destinations cycle so both movers stay fed.
#[inline]
fn msg(worker: usize, i: usize) -> (u32, f32) {
    (((worker * MSGS_PER_WORKER + i) % 1024) as u32, i as f32)
}

/// Transfer every message through the matrix with per-message `push` and
/// `pop_batch` on the consumer side. Returns a checksum so the work cannot
/// be optimized away.
fn run_per_message() -> u64 {
    let queues = QueueMatrix::<(u32, f32)>::new(WORKERS, MOVERS, QUEUE_CAP);
    let queues = &queues;
    std::thread::scope(|s| {
        for w in 0..WORKERS {
            s.spawn(move || {
                for i in 0..MSGS_PER_WORKER {
                    let (dst, v) = msg(w, i);
                    // SAFETY: worker w is the sole producer of row w.
                    unsafe { queues.queue(w, dst as usize % MOVERS).push((dst, v)) };
                }
                queues.close_worker(w);
            });
        }
        let sums: Vec<_> = (0..MOVERS)
            .map(|m| {
                s.spawn(move || {
                    let mut sum = 0u64;
                    let mut buf: Vec<(u32, f32)> = Vec::with_capacity(256);
                    loop {
                        let mut moved = false;
                        for w in 0..WORKERS {
                            buf.clear();
                            // SAFETY: mover m is the sole consumer of (w, m).
                            if unsafe { queues.queue(w, m).pop_batch(&mut buf, 256) } > 0 {
                                moved = true;
                                for &(dst, _) in &buf {
                                    sum = sum.wrapping_add(dst as u64);
                                }
                            }
                        }
                        if !moved {
                            if queues.mover_done(m) {
                                break;
                            }
                            std::hint::spin_loop();
                            std::thread::yield_now();
                        }
                    }
                    sum
                })
            })
            .collect();
        sums.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

/// Transfer every message with producer-side batch buffers flushed via
/// `push_slice` and consumer-side `pop_slices` slice drains.
fn run_batched(batch: usize) -> u64 {
    let queues = QueueMatrix::<(u32, f32)>::new(WORKERS, MOVERS, QUEUE_CAP);
    let queues = &queues;
    std::thread::scope(|s| {
        for w in 0..WORKERS {
            s.spawn(move || {
                let mut bufs: Vec<Vec<(u32, f32)>> =
                    (0..MOVERS).map(|_| Vec::with_capacity(batch)).collect();
                for i in 0..MSGS_PER_WORKER {
                    let (dst, v) = msg(w, i);
                    let m = dst as usize % MOVERS;
                    bufs[m].push((dst, v));
                    if bufs[m].len() >= batch {
                        // SAFETY: worker w is the sole producer of row w.
                        unsafe { queues.queue(w, m).push_slice(&bufs[m]) };
                        bufs[m].clear();
                    }
                }
                for (m, buf) in bufs.iter().enumerate() {
                    if !buf.is_empty() {
                        // SAFETY: as above.
                        unsafe { queues.queue(w, m).push_slice(buf) };
                    }
                }
                queues.close_worker(w);
            });
        }
        let sums: Vec<_> = (0..MOVERS)
            .map(|m| {
                s.spawn(move || {
                    let mut sum = 0u64;
                    loop {
                        let mut moved = false;
                        for w in 0..WORKERS {
                            // SAFETY: mover m is the sole consumer of (w, m).
                            let n = unsafe {
                                queues.queue(w, m).pop_slices(QUEUE_CAP, |slice| {
                                    for &(dst, _) in slice {
                                        sum = sum.wrapping_add(dst as u64);
                                    }
                                })
                            };
                            if n > 0 {
                                moved = true;
                            }
                        }
                        if !moved {
                            if queues.mover_done(m) {
                                break;
                            }
                            std::hint::spin_loop();
                            std::thread::yield_now();
                        }
                    }
                    sum
                })
            })
            .collect();
        sums.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

/// Protocol-isolation variant: one thread alternates fill/drain phases on
/// a single queue, so the measurement captures pure per-message protocol
/// cost (publication stores, index probes, staging copies) with no thread
/// scheduling noise. On single-core hosts this is the meaningful
/// comparison; the threaded matrix above additionally shows the cache-line
/// transfer savings once real parallelism exists.
fn run_solo(total: usize, batch: Option<usize>) -> u64 {
    use phigraph_core::queues::SpscQueue;
    let q = SpscQueue::<(u32, f32)>::new(QUEUE_CAP);
    let mut sum = 0u64;
    let mut produced = 0usize;
    let mut staged: Vec<(u32, f32)> = Vec::with_capacity(batch.unwrap_or(1));
    while produced < total {
        let fill = QUEUE_CAP.min(total - produced);
        match batch {
            None => {
                for i in 0..fill {
                    // SAFETY: single thread is trivially the one producer.
                    unsafe { q.push(msg(0, produced + i)) };
                }
            }
            Some(b) => {
                let mut i = 0;
                while i < fill {
                    staged.clear();
                    let n = b.min(fill - i);
                    staged.extend((0..n).map(|k| msg(0, produced + i + k)));
                    // SAFETY: as above.
                    unsafe { q.push_slice(&staged) };
                    i += n;
                }
            }
        }
        produced += fill;
        match batch {
            None => {
                let mut buf: Vec<(u32, f32)> = Vec::with_capacity(256);
                let mut left = fill;
                while left > 0 {
                    buf.clear();
                    // SAFETY: single thread is trivially the one consumer.
                    let n = unsafe { q.pop_batch(&mut buf, 256) };
                    for &(dst, _) in &buf {
                        sum = sum.wrapping_add(dst as u64);
                    }
                    left -= n;
                }
            }
            Some(_) => {
                let mut left = fill;
                while left > 0 {
                    // SAFETY: as above.
                    left -= unsafe {
                        q.pop_slices(QUEUE_CAP, |slice| {
                            for &(dst, _) in slice {
                                sum = sum.wrapping_add(dst as u64);
                            }
                        })
                    };
                }
            }
        }
    }
    sum
}

fn bench_spsc(c: &mut Criterion) {
    let total = (WORKERS * MSGS_PER_WORKER) as u64;
    let expect: u64 = (0..WORKERS)
        .map(|w| {
            (0..MSGS_PER_WORKER)
                .map(|i| msg(w, i).0 as u64)
                .sum::<u64>()
        })
        .sum();
    let mut g = c.benchmark_group("spsc");
    g.throughput(Throughput::Elements(total));
    g.bench_function("per_message", |b| {
        b.iter(|| {
            let s = run_per_message();
            assert_eq!(s, expect, "lost or duplicated messages");
            black_box(s)
        })
    });
    for batch in [16usize, 64, 256] {
        g.bench_with_input(BenchmarkId::new("batched", batch), &batch, |b, &batch| {
            b.iter(|| {
                let s = run_batched(batch);
                assert_eq!(s, expect, "lost or duplicated messages");
                black_box(s)
            })
        });
    }
    g.finish();

    let solo_total = WORKERS * MSGS_PER_WORKER;
    let solo_expect: u64 = (0..solo_total).map(|i| msg(0, i).0 as u64).sum();
    let mut g = c.benchmark_group("spsc_solo");
    g.throughput(Throughput::Elements(solo_total as u64));
    g.bench_function("per_message", |b| {
        b.iter(|| {
            let s = run_solo(solo_total, None);
            assert_eq!(s, solo_expect, "lost or duplicated messages");
            black_box(s)
        })
    });
    for batch in [16usize, 64, 256] {
        g.bench_with_input(BenchmarkId::new("batched", batch), &batch, |b, &batch| {
            b.iter(|| {
                let s = run_solo(solo_total, Some(batch));
                assert_eq!(s, solo_expect, "lost or duplicated messages");
                black_box(s)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_spsc);
criterion_main!(benches);
