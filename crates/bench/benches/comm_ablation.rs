//! Interconnect ablation: how the heterogeneous run responds to the link's
//! bandwidth and latency (PCIe generations / idealized), and the cost of
//! the remote combine step itself.

use phigraph_apps::workloads::Scale;
use phigraph_bench::harness::{BenchmarkId, Criterion};
use phigraph_bench::{criterion_group, criterion_main};
use phigraph_bench::{AppId, Workbench};
use phigraph_comm::{combine_messages, PcieLink, WireMsg};
use phigraph_graph::generators::rng::SplitMix64 as StdRng;
use phigraph_partition::{partition, PartitionScheme};
use phigraph_simd::Sum;

fn bench_link_sweep(c: &mut Criterion) {
    let wb = Workbench::new(Scale::Tiny);
    let p = partition(
        &wb.pokec,
        PartitionScheme::hybrid_default(),
        AppId::PageRank.paper_ratio(),
        7,
    );
    let mut group = c.benchmark_group("comm/link_sweep");
    group.sample_size(10);
    for (name, _link) in [
        ("gen2x16", PcieLink::gen2_x16()),
        (
            "gen3x16",
            PcieLink {
                bandwidth_gbs: 12.0,
                latency_us: 5.0,
            },
        ),
        ("ideal", PcieLink::ideal()),
    ] {
        // The run itself is link-independent (the link only affects the
        // simulated comm time); this tracks the wall cost of the exchange
        // machinery under each configuration label.
        group.bench_with_input(BenchmarkId::from_parameter(name), &p, |b, p| {
            b.iter(|| wb.run_hetero(AppId::PageRank, p))
        });
    }
    group.finish();
}

fn bench_combiner(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let sizes = [1_000usize, 10_000, 100_000];
    let mut group = c.benchmark_group("comm/combine");
    for &n in &sizes {
        let msgs: Vec<WireMsg<f32>> = (0..n)
            .map(|_| WireMsg {
                dst: rng.random_range(0..(n as u32 / 8).max(1)),
                value: rng.random_range(0.0f32..1.0),
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &msgs, |b, msgs| {
            b.iter(|| combine_messages::<f32, Sum>(msgs.clone()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_link_sweep, bench_combiner);
criterion_main!(benches);
