//! CSB ablations (design choices from DESIGN.md): one-to-one vs dynamic
//! column allocation, group width factor `k`, and raw insertion throughput
//! under the locking and pipelined disciplines.

use phigraph_apps::workloads::{self, Scale};
use phigraph_apps::Sssp;
use phigraph_bench::harness::{BenchmarkId, Criterion, Throughput};
use phigraph_bench::{criterion_group, criterion_main};
use phigraph_core::csb::{ColumnMode, Csb, CsbLayout};
use phigraph_core::engine::{run_single, EngineConfig};
use phigraph_device::pool::run_parallel;
use phigraph_device::DeviceSpec;
use phigraph_graph::generators::rng::SplitMix64 as StdRng;

fn bench_column_modes(c: &mut Criterion) {
    let g = workloads::pokec_like_weighted(Scale::Tiny, 5);
    let mut group = c.benchmark_group("csb/column_mode");
    group.sample_size(10);
    for mode in [ColumnMode::OneToOne, ColumnMode::Dynamic] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{mode:?}")),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    run_single(
                        &Sssp { source: 0 },
                        &g,
                        DeviceSpec::xeon_phi_se10p(),
                        &EngineConfig::locking().with_column_mode(mode),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_k_sweep(c: &mut Criterion) {
    let g = workloads::pokec_like_weighted(Scale::Tiny, 5);
    let mut group = c.benchmark_group("csb/k_sweep");
    group.sample_size(10);
    for k in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                run_single(
                    &Sssp { source: 0 },
                    &g,
                    DeviceSpec::xeon_phi_se10p(),
                    &EngineConfig::locking().with_k(k),
                )
            })
        });
    }
    group.finish();
}

fn bench_insert_throughput(c: &mut Criterion) {
    // Raw concurrent insertion, uniform destinations. Every thread inserts
    // the same destination stream, so the exact per-vertex capacity is
    // `threads x occurrences`.
    let n = 4096usize;
    let msgs_per_thread = 50_000usize;
    let threads = 4;
    let dsts: Vec<u32> = {
        let mut rng = StdRng::seed_from_u64(9);
        (0..msgs_per_thread)
            .map(|_| rng.random_range(0..n as u32))
            .collect()
    };
    let mut cap = vec![0u32; n];
    for &d in &dsts {
        cap[d as usize] += threads as u32;
    }
    let owned: Vec<u32> = (0..n as u32).collect();
    let mut group = c.benchmark_group("csb/insert");
    group.throughput(Throughput::Elements((threads * msgs_per_thread) as u64));
    group.sample_size(10);
    for mode in [ColumnMode::OneToOne, ColumnMode::Dynamic] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{mode:?}")),
            &mode,
            |b, &mode| {
                let layout = CsbLayout::build(n, &owned, &cap, 16, 4);
                let csb = Csb::<f32>::new(layout, mode);
                b.iter(|| {
                    csb.reset();
                    run_parallel(threads, |_| {
                        for &d in &dsts {
                            csb.insert(d, 1.0);
                        }
                    });
                });
            },
        );
    }
    group.finish();
}

fn bench_layout_build(c: &mut Criterion) {
    let g = workloads::pokec_like(Scale::Tiny, 5);
    let n = g.num_vertices();
    let owned: Vec<u32> = (0..n as u32).collect();
    let cap = g.in_degrees();
    c.bench_function("csb/layout_build", |b| {
        b.iter(|| CsbLayout::build(n, &owned, &cap, 16, 4))
    });
}

criterion_group!(
    benches,
    bench_column_modes,
    bench_k_sweep,
    bench_insert_throughput,
    bench_layout_build
);
criterion_main!(benches);
