//! Fig. 6 benches: the cost of computing each partitioning scheme and the
//! heterogeneous run under each scheme.

use phigraph_apps::workloads::Scale;
use phigraph_bench::harness::{BenchmarkId, Criterion};
use phigraph_bench::{criterion_group, criterion_main};
use phigraph_bench::{AppId, Workbench};
use phigraph_partition::{partition, PartitionScheme, Ratio};

fn bench_partition_computation(c: &mut Criterion) {
    let wb = Workbench::new(Scale::Tiny);
    let mut group = c.benchmark_group("fig6/partition_compute");
    group.sample_size(10);
    for scheme in [
        PartitionScheme::Continuous,
        PartitionScheme::RoundRobin,
        PartitionScheme::Hybrid { blocks: 64 },
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.name()),
            &scheme,
            |b, &scheme| b.iter(|| partition(&wb.pokec, scheme, Ratio::new(3, 5), 7)),
        );
    }
    group.finish();
}

fn bench_hetero_under_schemes(c: &mut Criterion) {
    let wb = Workbench::new(Scale::Tiny);
    let mut group = c.benchmark_group("fig6/hetero_run");
    group.sample_size(10);
    for scheme in [
        PartitionScheme::Continuous,
        PartitionScheme::RoundRobin,
        PartitionScheme::Hybrid { blocks: 64 },
    ] {
        let p = partition(&wb.pokec, scheme, AppId::PageRank.paper_ratio(), 7);
        group.bench_with_input(BenchmarkId::new("pagerank", scheme.name()), &p, |b, p| {
            b.iter(|| wb.run_hetero(AppId::PageRank, p))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_partition_computation,
    bench_hetero_under_schemes
);
criterion_main!(benches);
