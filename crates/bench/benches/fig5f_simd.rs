//! Fig. 5(f) benches: SIMD vs scalar message processing, both as a
//! row-reduction microbenchmark (real host vector units!) and as the full
//! message-processing phase of the three reducible applications.

use phigraph_apps::workloads::Scale;
use phigraph_bench::harness::{BenchmarkId, Criterion, Throughput};
use phigraph_bench::{criterion_group, criterion_main};
use phigraph_bench::{AppId, Workbench};
use phigraph_core::engine::EngineConfig;
use phigraph_device::DeviceSpec;
use phigraph_simd::{reduce_rows, reduce_rows_scalar, AVec, Sum};

fn bench_reduce_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5f/reduce_kernel");
    for &lanes in &[4usize, 16] {
        let rows = 64;
        let blocks = 1024;
        let mut buf = AVec::<f32>::new_filled(blocks * rows * lanes, 1.5);
        group.throughput(Throughput::Elements((blocks * rows * lanes) as u64));
        group.bench_with_input(BenchmarkId::new("vector", lanes), &lanes, |b, &lanes| {
            b.iter(|| {
                for blk in 0..blocks {
                    let s = &mut buf[blk * rows * lanes..(blk + 1) * rows * lanes];
                    reduce_rows::<f32, Sum>(s, rows, lanes);
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("scalar", lanes), &lanes, |b, &lanes| {
            b.iter(|| {
                for blk in 0..blocks {
                    let s = &mut buf[blk * rows * lanes..(blk + 1) * rows * lanes];
                    reduce_rows_scalar::<f32, Sum>(s, rows, lanes);
                }
            })
        });
    }
    group.finish();
}

fn bench_app_processing(c: &mut Criterion) {
    let wb = Workbench::new(Scale::Tiny);
    let mut group = c.benchmark_group("fig5f/app");
    group.sample_size(10);
    for app in [AppId::PageRank, AppId::Sssp, AppId::TopoSort] {
        for vectorized in [false, true] {
            let label = if vectorized { "vec" } else { "novec" };
            group.bench_with_input(
                BenchmarkId::new(app.name(), label),
                &vectorized,
                |b, &vectorized| {
                    b.iter(|| {
                        wb.run_single(
                            app,
                            wb.graph(app),
                            DeviceSpec::xeon_e5_2680(),
                            &EngineConfig::locking().with_vectorized(vectorized),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_reduce_kernels, bench_app_processing);
criterion_main!(benches);
