//! Intra-device scheduling ablations: generation chunk-size sweep ("a
//! thread can obtain multiple tasks each time" — too small thrashes the
//! scheduling offset, too large imbalances), and the analytic makespan
//! replay itself.

use phigraph_apps::workloads::{self, Scale};
use phigraph_apps::PageRank;
use phigraph_bench::harness::{BenchmarkId, Criterion};
use phigraph_bench::{criterion_group, criterion_main};
use phigraph_core::engine::{run_single, EngineConfig};
use phigraph_device::{makespan, DeviceSpec};
use phigraph_graph::generators::rng::SplitMix64 as StdRng;

fn bench_gen_chunk_sweep(c: &mut Criterion) {
    let g = workloads::pokec_like(Scale::Tiny, 5);
    let pr = PageRank {
        damping: 0.85,
        iterations: 3,
    };
    let mut group = c.benchmark_group("sched/gen_chunk");
    group.sample_size(10);
    for chunk in [16usize, 64, 256, 1024, 8192] {
        group.bench_with_input(BenchmarkId::from_parameter(chunk), &chunk, |b, &chunk| {
            b.iter(|| {
                run_single(
                    &pr,
                    &g,
                    DeviceSpec::xeon_e5_2680(),
                    &EngineConfig::locking().with_gen_chunk(chunk),
                )
            })
        });
    }
    group.finish();
}

fn bench_makespan_replay(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let chunks: Vec<f64> = (0..10_000).map(|_| rng.random_range(1.0..100.0)).collect();
    let mut group = c.benchmark_group("sched/makespan");
    for workers in [16usize, 240] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| b.iter(|| makespan(&chunks, workers)),
        );
    }
    group.finish();

    // Sanity: chunk granularity affects predicted balance the right way.
    let coarse: Vec<f64> = chunks.chunks(100).map(|c| c.iter().sum()).collect();
    let fine = makespan(&chunks, 240);
    let lumpy = makespan(&coarse, 240);
    assert!(fine.imbalance <= lumpy.imbalance + 1e-9);
}

criterion_group!(benches, bench_gen_chunk_sweep, bench_makespan_replay);
criterion_main!(benches);
