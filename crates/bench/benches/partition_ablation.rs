//! Partitioner ablations: block-count sweep for the hybrid scheme, and the
//! multilevel bisection vs the flat greedy bisection it is built on.

use phigraph_apps::workloads::{self, Scale};
use phigraph_bench::harness::{BenchmarkId, Criterion};
use phigraph_bench::{criterion_group, criterion_main};
use phigraph_partition::mlp::initial::greedy_bisect;
use phigraph_partition::mlp::kway::{block_cut, multilevel_bisect, partition_kway};
use phigraph_partition::mlp::WGraph;

fn bench_block_count_sweep(c: &mut Criterion) {
    let g = workloads::pokec_like(Scale::Tiny, 5);
    let mut group = c.benchmark_group("partition/kway_blocks");
    group.sample_size(10);
    for k in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| partition_kway(&g, k, 7))
        });
    }
    group.finish();
}

fn bench_bisection_quality(c: &mut Criterion) {
    // Not a timing bench per se: compare multilevel vs flat greedy both in
    // time and (asserted) quality.
    let g = workloads::dblp_like(Scale::Tiny, 5).0;
    let wg = WGraph::from_csr(&g);
    let mut group = c.benchmark_group("partition/bisect");
    group.sample_size(10);
    group.bench_function("greedy", |b| b.iter(|| greedy_bisect(&wg, 0.5, 3, 4)));
    group.bench_function("multilevel", |b| b.iter(|| multilevel_bisect(&wg, 0.5, 3)));
    group.finish();

    let flat = wg.cut(&greedy_bisect(&wg, 0.5, 3, 4));
    let ml = wg.cut(&multilevel_bisect(&wg, 0.5, 3));
    assert!(
        ml <= flat * 1.2,
        "multilevel cut {ml} should not regress vs greedy {flat}"
    );
}

fn bench_cut_vs_k(c: &mut Criterion) {
    // Record the cut growth with k (printed via assertion messages when it
    // breaks; the harness tracks the partitioning time).
    let g = workloads::pokec_like(Scale::Tiny, 6);
    c.bench_function("partition/cut_probe_k64", |b| {
        b.iter(|| {
            let blocks = partition_kway(&g, 64, 3);
            block_cut(&g, &blocks)
        })
    });
}

criterion_group!(
    benches,
    bench_block_count_sweep,
    bench_bisection_quality,
    bench_cut_vs_k
);
criterion_main!(benches);
