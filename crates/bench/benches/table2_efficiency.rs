//! Table II benches: sequential vs parallel engine wall time per app.

use phigraph_apps::workloads::Scale;
use phigraph_bench::harness::{BenchmarkId, Criterion};
use phigraph_bench::{criterion_group, criterion_main};
use phigraph_bench::{Variant, Workbench, ALL_APPS};

fn bench_table2(c: &mut Criterion) {
    let wb = Workbench::new(Scale::Tiny);
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for app in ALL_APPS {
        for variant in [
            Variant::CpuSeq,
            Variant::CpuLock,
            Variant::MicPipe,
            Variant::CpuMic,
        ] {
            group.bench_with_input(
                BenchmarkId::new(app.name(), variant.label()),
                &(app, variant),
                |b, &(app, variant)| b.iter(|| wb.run(app, variant)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
