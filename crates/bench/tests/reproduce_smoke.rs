//! Smoke tests driving the `reproduce` binary: every experiment entry must
//! run and print its table at tiny scale, and the CSV export must produce
//! parseable files.

use std::process::{Command, Output};

fn reproduce(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

#[test]
fn tab1_is_self_verifying() {
    let o = reproduce(&["tab1"]);
    assert!(o.status.success());
    let out = stdout(&o);
    assert!(out.contains("verified identical to the paper's Table I"));
}

#[test]
fn every_experiment_runs_at_tiny_scale() {
    for exp in [
        "fig5a", "fig5b", "fig5c", "fig5d", "fig5e", "fig5f", "fig6", "tab2", "csb", "combiner",
    ] {
        let o = reproduce(&[exp, "--scale", "tiny"]);
        assert!(
            o.status.success(),
            "{exp} failed: {}",
            String::from_utf8_lossy(&o.stderr)
        );
        let out = stdout(&o);
        assert!(
            out.contains(&format!("== {exp}")),
            "{exp} header missing:\n{out}"
        );
    }
}

#[test]
fn timeline_draws_bars() {
    let o = reproduce(&["timeline", "--scale", "tiny", "--variant", "MIC Pipe"]);
    assert!(o.status.success());
    let out = stdout(&o);
    assert!(out.contains("timeline: pagerank / MIC Pipe"));
    assert!(out.contains("legend: g=generation"));
    assert!(out.lines().any(|l| l.contains('|') && l.contains('g')));
}

#[test]
fn csv_export_writes_parseable_files() {
    let dir = std::env::temp_dir().join(format!("phigraph-csv-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let o = reproduce(&["fig5d", "--scale", "tiny", "--csv", dir.to_str().unwrap()]);
    assert!(o.status.success());
    let csv = std::fs::read_to_string(dir.join("fig5d.csv")).expect("csv written");
    let mut lines = csv.lines();
    let header = lines.next().unwrap();
    assert_eq!(header.split(',').count(), 4, "header: {header}");
    let rows: Vec<&str> = lines.collect();
    assert_eq!(rows.len(), 7, "seven Fig.5 bars");
    for row in rows {
        let cells: Vec<&str> = row.split(',').collect();
        assert_eq!(cells.len(), 4, "row: {row}");
        // Time columns parse as floats.
        for c in &cells[1..] {
            c.parse::<f64>()
                .unwrap_or_else(|_| panic!("bad number {c:?} in {row}"));
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_experiment_fails_cleanly() {
    let o = reproduce(&["fig99"]);
    assert!(!o.status.success());
    assert!(String::from_utf8_lossy(&o.stderr).contains("unknown experiment"));
}
