//! Property tests for the `BENCH_*.json` format and the regression gate.
//!
//! The trajectory only works if a report written by one PR parses
//! bit-identically under the next: emit → parse → re-emit must be the
//! identity for *any* report the harness can produce, not just the two
//! hand-picked ones in the unit tests. These tests fuzz that property with
//! seeded random reports, then drive the gate end to end through the same
//! `runner::main` entry the binary and `phigraph bench` use.

use phigraph_bench::harness::BenchResult;
use phigraph_bench::perf::{
    compare_reports, BenchReport, EnvFingerprint, Verdict, AREAS, BENCH_SCHEMA,
};
use phigraph_bench::runner;
use phigraph_graph::generators::rng::SplitMix64;
use std::time::Duration;

/// A random-but-seeded report: arbitrary labels, timings from ns to
/// seconds, a mix of with/without declared throughput, zero-sample edge
/// cases included.
fn random_report(seed: u64) -> BenchReport {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let area = AREAS[rng.random_range(0..AREAS.len() as u32) as usize];
    let n_entries = rng.random_range(0..6) as usize;
    let results: Vec<BenchResult> = (0..n_entries)
        .map(|i| {
            let mean_ns = 1 + rng.random_range(0..2_000_000_000) as u64;
            let spread = 1 + rng.random_range(0..mean_ns.max(2) as u32) as u64;
            let mean = Duration::from_nanos(mean_ns);
            BenchResult {
                label: format!("{area}/case-{i}/p{}", rng.random_range(0..512)),
                mean,
                min: Duration::from_nanos(mean_ns.saturating_sub(spread)),
                p50: mean,
                p99: Duration::from_nanos(mean_ns + spread),
                warmup_iters: rng.random_range(0..4) as usize,
                samples: rng.random_range(0..64) as usize,
                elements: if rng.random_range(0..2) == 0 {
                    Some(rng.random_range(0..1_000_000) as u64)
                } else {
                    None
                },
            }
        })
        .collect();
    let mut env = EnvFingerprint::capture(rng.random_range(0..2) == 0, seed);
    env.host_threads = 1 + rng.random_range(0..256) as u64;
    BenchReport::new(area, env, &results)
}

#[test]
fn emit_parse_reemit_is_identity_over_seeded_random_reports() {
    for seed in 0..200u64 {
        let r = random_report(seed);
        let text = r.emit();
        let back = BenchReport::parse(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: own emission failed to parse: {e}"));
        assert_eq!(back, r, "seed {seed}: parsed report differs");
        assert_eq!(
            back.emit(),
            text,
            "seed {seed}: re-emission not byte-identical"
        );
    }
}

#[test]
fn unknown_schema_is_rejected_gracefully() {
    let mut r = random_report(1);
    r.schema = "phigraph-bench-v0-from-the-future".to_string();
    let err = BenchReport::parse(&r.emit()).expect_err("future schema must not parse");
    assert!(err.contains("phigraph-bench-v0-from-the-future"), "{err}");
    assert!(
        err.contains(BENCH_SCHEMA),
        "error names the supported tag: {err}"
    );
    // Truncated/corrupt files are errors too, never panics.
    let text = random_report(2).emit();
    for cut in [0, 1, text.len() / 2, text.len() - 1] {
        let _ = BenchReport::parse(&text[..cut]);
    }
}

#[test]
fn self_comparison_never_regresses() {
    for seed in 0..50u64 {
        let r = random_report(seed);
        let out = compare_reports(&r, &r, 1.01);
        assert_eq!(
            out.regressions(),
            0,
            "seed {seed}: report regressed against itself"
        );
        for (label, v) in &out.verdicts {
            if let Verdict::Pass { ratio } = v {
                assert!((ratio - 1.0).abs() < 1e-9, "{label}: self-ratio {ratio}");
            }
        }
    }
}

/// Gate end to end through `runner::main`, exactly as check.sh drives it:
/// run (smoke, 1 sample) → compare same-vs-same passes → perturb the
/// baseline faster → compare fails.
#[test]
fn runner_gate_trips_on_perturbed_baseline_and_passes_identity() {
    let dir = std::env::temp_dir().join(format!("phigraph-bench-gate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let d = dir.to_str().expect("utf-8 temp dir");
    let s = |v: &[&str]| -> Vec<String> { v.iter().map(|x| x.to_string()).collect() };

    // Smoke-measure one cheap area.
    runner::main(&s(&[
        "run",
        "--out-dir",
        d,
        "--area",
        "csb",
        "--smoke",
        "--samples",
        "1",
        "--warmup",
        "0",
    ]))
    .expect("smoke run");
    let bench_file = dir.join("BENCH_csb.json");
    assert!(bench_file.is_file(), "run must write BENCH_csb.json");
    let bf = bench_file.to_str().unwrap();

    // Identity comparison passes.
    runner::main(&s(&["compare", bf, bf])).expect("self-compare passes");

    // A baseline perturbed 100x faster makes the current run a regression.
    let fast = dir.join("fast.json");
    runner::main(&s(&[
        "perturb",
        bf,
        fast.to_str().unwrap(),
        "--factor",
        "0.01",
    ]))
    .expect("perturb");
    let err = runner::main(&s(&["compare", fast.to_str().unwrap(), bf]))
        .expect_err("gate must trip against the perturbed baseline");
    assert!(err.contains("regressed"), "{err}");

    // Missing baseline file: warning, not failure.
    runner::main(&s(&[
        "compare",
        dir.join("absent.json").to_str().unwrap(),
        bf,
    ]))
    .expect("missing baseline degrades to a warning");

    let _ = std::fs::remove_dir_all(&dir);
}
