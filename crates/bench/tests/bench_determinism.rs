//! Fixed-seed determinism of the bench areas.
//!
//! The regression gate judges `current mean ÷ baseline mean` per label, so
//! two runs at the same seed and scale must execute the *same work*: same
//! labels in the same order, same declared element counts, same sample
//! structure. Only the timings may differ. If this test breaks, BENCH
//! diffs stop isolating perf movement and start reflecting input drift.

use phigraph_bench::areas::AreaOpts;
use phigraph_bench::perf::AREAS;
use phigraph_bench::runner::measure;

#[test]
fn two_same_seed_smoke_runs_have_identical_structure() {
    let areas: Vec<String> = AREAS.iter().map(|s| s.to_string()).collect();
    let opts = AreaOpts {
        smoke: true,
        seed: 42,
        samples: Some(1),
        warmup: Some(0),
    };
    let a = measure(&areas, &opts).expect("first run");
    let b = measure(&areas, &opts).expect("second run");
    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra.area, rb.area);
        assert_eq!(ra.env, rb.env, "fingerprints match on one host");
        assert_eq!(
            ra.entries.len(),
            rb.entries.len(),
            "area {}: entry counts differ",
            ra.area
        );
        for (ea, eb) in ra.entries.iter().zip(&rb.entries) {
            assert_eq!(ea.label, eb.label, "area {}: labels diverge", ra.area);
            assert_eq!(
                ea.elements, eb.elements,
                "{}: element counts diverge across same-seed runs",
                ea.label
            );
            assert_eq!(
                ea.samples, eb.samples,
                "{}: sample counts diverge",
                ea.label
            );
            assert_eq!(ea.warmup_iters, eb.warmup_iters);
        }
    }
}

#[test]
fn different_seeds_still_produce_the_same_labels() {
    // Labels and entry structure are scale-derived, not seed-derived: a
    // re-seeded baseline still lines up label-for-label in `compare`.
    let areas = vec!["spsc".to_string(), "csb".to_string()];
    let mk = |seed| AreaOpts {
        smoke: true,
        seed,
        samples: Some(1),
        warmup: Some(0),
    };
    let a = measure(&areas, &mk(1)).expect("seed 1");
    let b = measure(&areas, &mk(2)).expect("seed 2");
    for (ra, rb) in a.iter().zip(&b) {
        let la: Vec<_> = ra.entries.iter().map(|e| &e.label).collect();
        let lb: Vec<_> = rb.entries.iter().map(|e| &e.label).collect();
        assert_eq!(la, lb, "area {}", ra.area);
    }
}
