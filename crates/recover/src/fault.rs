//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is plain data: a list of `(superstep, kind, device)`
//! triples, built explicitly or drawn from the vendored PRNG so sweeps are
//! reproducible per seed. The plan compiles into a [`FaultInjector`] — a
//! cheaply clonable handle with shared fire-once state — which is threaded
//! through `EngineConfig` and consulted by the engines at well-defined
//! injection sites. A fault fires exactly once across all clones: after the
//! engine rolls back and replays the same superstep, the injector stays
//! quiet, modelling a transient fail-stop failure.

use phigraph_graph::SplitMix64;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// What breaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A worker thread dies before message generation completes.
    KillWorker,
    /// A mover thread dies while draining its SPSC queues.
    KillMover,
    /// A CSB insert lands a corrupted cell (detected fail-stop at
    /// insertion-stat finalization).
    PoisonInsert,
    /// The checkpoint writer corrupts the snapshot bytes on their way to
    /// the store (detected later by the snapshot checksum).
    CorruptCheckpoint,
    /// The heterogeneous remote-message exchange is dropped on the link;
    /// both devices observe the failure at the barrier.
    DropExchange,
    /// A whole device dies at the start of a superstep (fail-stop): its
    /// engine loop exits and its link endpoint is torn down, so the peer
    /// observes a dead channel at the next exchange.
    CrashDevice,
    /// A whole device hangs at the start of a superstep: its engine loop
    /// stalls forever *without* tearing down the link, so only a deadline
    /// (watchdog / exchange timeout) can detect it.
    HangDevice,
    /// A device becomes a straggler from this superstep on: it keeps making
    /// progress but its per-step time inflates, which should trigger ratio
    /// re-balancing rather than migration.
    SlowDevice,
    /// Silent data corruption: a single bit flips in an in-flight message
    /// (a CSB cell after the drain, modelling a flipped queue slot or
    /// column write). Nothing crashes — only an integrity audit can see it.
    BitFlipMessage,
    /// Silent data corruption: a single bit flips in the per-vertex state
    /// at a superstep boundary (a rotted barrier value). Nothing crashes.
    BitFlipState,
    /// Silent data corruption on the link: an exchange frame arrives
    /// truncated (payload shorter than its header claims). Only frame
    /// length/checksum validation can see it.
    TruncateFrame,
    /// The serving daemon process dies abruptly (kill -9): no drain, no
    /// final reports — only the job journal survives. The chaos harness
    /// restarts the daemon and asserts replay loses/duplicates nothing.
    KillDaemon,
    /// A serving-pool worker wedges on one job (modelled as a runaway job
    /// with a tight deadline): only the watchdog's cancel token frees the
    /// slot.
    HangWorkerJob,
    /// A serving client stalls mid-stream: long gaps between request
    /// lines while earlier jobs are still in flight.
    SlowClient,
    /// A serving client sends a malformed / smeared protocol line; the
    /// daemon must answer with a typed error, never drop the connection
    /// or panic.
    MalformedLine,
    /// A specific rank of the N-device fabric dies at the start of a
    /// superstep (fail-stop, like [`CrashDevice`](FaultKind::CrashDevice)
    /// but addressing the rank in the kind itself so plans read
    /// `step:crash-rank:k`). The membership machine evicts the rank and
    /// re-splits its partition over the survivors.
    CrashRank(u8),
    /// The link between two ranks is severed at a superstep boundary: both
    /// ends observe a dropped exchange, but *neither rank is dead*. The
    /// membership machine must evict exactly one deterministic side (the
    /// higher rank id — survivors re-anchor on the smallest live rank)
    /// rather than both. Always stored with `i < j`.
    PartitionLink(u8, u8),
}

impl FaultKind {
    /// All *fieldless* kinds, for seeded sampling. The parameterized
    /// multi-rank kinds ([`CrashRank`](FaultKind::CrashRank),
    /// [`PartitionLink`](FaultKind::PartitionLink)) are excluded — they
    /// address concrete rank ids, so random sweeps construct them
    /// explicitly from the live topology.
    pub const ALL: [FaultKind; 15] = [
        FaultKind::KillWorker,
        FaultKind::KillMover,
        FaultKind::PoisonInsert,
        FaultKind::CorruptCheckpoint,
        FaultKind::DropExchange,
        FaultKind::CrashDevice,
        FaultKind::HangDevice,
        FaultKind::SlowDevice,
        FaultKind::BitFlipMessage,
        FaultKind::BitFlipState,
        FaultKind::TruncateFrame,
        FaultKind::KillDaemon,
        FaultKind::HangWorkerJob,
        FaultKind::SlowClient,
        FaultKind::MalformedLine,
    ];

    /// The serving-chaos subset (`phigraph serve-chaos` draws its seeded
    /// event plan from these; the batch engines never see them).
    pub const SERVE: [FaultKind; 4] = [
        FaultKind::KillDaemon,
        FaultKind::HangWorkerJob,
        FaultKind::SlowClient,
        FaultKind::MalformedLine,
    ];

    /// The silent-data-corruption subset (nothing fail-stops; only the
    /// integrity subsystem can observe these).
    pub const SDC: [FaultKind; 3] = [
        FaultKind::BitFlipMessage,
        FaultKind::BitFlipState,
        FaultKind::TruncateFrame,
    ];

    /// Build a normalized link-partition kind (`i < j` always).
    pub fn partition_link(a: u8, b: u8) -> Self {
        assert!(a != b, "a link needs two distinct ranks");
        FaultKind::PartitionLink(a.min(b), a.max(b))
    }

    /// Short stable name (CLI flag values, report lines). Parameterized
    /// kinds return their base name; `Display` carries the parameters.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::KillWorker => "worker",
            FaultKind::KillMover => "mover",
            FaultKind::PoisonInsert => "insert",
            FaultKind::CorruptCheckpoint => "checkpoint",
            FaultKind::DropExchange => "exchange",
            FaultKind::CrashDevice => "crash",
            FaultKind::HangDevice => "hang",
            FaultKind::SlowDevice => "slow",
            FaultKind::BitFlipMessage => "bitflip-msg",
            FaultKind::BitFlipState => "bitflip-state",
            FaultKind::TruncateFrame => "truncate-frame",
            FaultKind::KillDaemon => "daemon-kill",
            FaultKind::HangWorkerJob => "worker-hang",
            FaultKind::SlowClient => "slow-client",
            FaultKind::MalformedLine => "malformed-line",
            FaultKind::CrashRank(_) => "crash-rank",
            FaultKind::PartitionLink(_, _) => "partition-link",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::CrashRank(r) => write!(f, "crash-rank:{r}"),
            FaultKind::PartitionLink(i, j) => write!(f, "partition-link:{i}-{j}"),
            _ => f.write_str(self.name()),
        }
    }
}

impl std::str::FromStr for FaultKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        if let Some(k) = FaultKind::ALL.iter().copied().find(|k| k.name() == s) {
            return Ok(k);
        }
        if let Some(rest) = s.strip_prefix("crash-rank:") {
            let r: u8 = rest
                .parse()
                .map_err(|_| format!("bad rank {rest:?} in fault kind {s:?}"))?;
            return Ok(FaultKind::CrashRank(r));
        }
        if let Some(rest) = s.strip_prefix("partition-link:") {
            let (a, b) = rest
                .split_once('-')
                .ok_or_else(|| format!("fault kind {s:?} needs two ranks (i-j)"))?;
            let a: u8 = a
                .parse()
                .map_err(|_| format!("bad rank {a:?} in fault kind {s:?}"))?;
            let b: u8 = b
                .parse()
                .map_err(|_| format!("bad rank {b:?} in fault kind {s:?}"))?;
            if a == b {
                return Err(format!("fault kind {s:?} links a rank to itself"));
            }
            return Ok(FaultKind::partition_link(a, b));
        }
        let names: Vec<&str> = FaultKind::ALL.iter().map(|k| k.name()).collect();
        Err(format!(
            "unknown fault kind {s:?} (expected one of {}|crash-rank:k|partition-link:i-j)",
            names.join("|")
        ))
    }
}

/// One planned failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Superstep at which the fault strikes.
    pub superstep: u64,
    /// Failure mode.
    pub kind: FaultKind,
    /// Device the fault strikes (0 = CPU, 1 = MIC; single-device runs are
    /// device 0).
    pub device: u8,
}

impl std::fmt::Display for FaultSpec {
    /// The canonical spec-string form `step:kind:device` (device elided
    /// when 0, matching the CLI shorthand).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.device == 0 {
            write!(f, "{}:{}", self.superstep, self.kind)
        } else {
            write!(f, "{}:{}:{}", self.superstep, self.kind, self.device)
        }
    }
}

impl std::str::FromStr for FaultSpec {
    type Err = String;

    /// Parse `step:kind` or `step:kind:device`, where `kind` itself may
    /// carry colon-separated parameters (`crash-rank:k`,
    /// `partition-link:i-j`). Never panics: every malformed field becomes
    /// a descriptive error.
    fn from_str(s: &str) -> Result<Self, String> {
        let Some((first, rest)) = s.split_once(':') else {
            return Err(format!(
                "bad fault spec {s:?} (expected step:kind or step:kind:device)"
            ));
        };
        let superstep: u64 = first
            .parse()
            .map_err(|_| format!("bad superstep {first:?} in fault spec {s:?}"))?;
        // The whole remainder as one (possibly parameterized) kind first,
        // then the legacy `kind:device` split.
        match rest.parse::<FaultKind>() {
            Ok(kind) => Ok(FaultSpec {
                superstep,
                kind,
                device: 0,
            }),
            Err(kind_err) => {
                if let Some((k, d)) = rest.rsplit_once(':') {
                    if let Ok(kind) = k.parse::<FaultKind>() {
                        let device: u8 = d
                            .parse()
                            .map_err(|_| format!("bad device {d:?} in fault spec {s:?}"))?;
                        return Ok(FaultSpec {
                            superstep,
                            kind,
                            device,
                        });
                    }
                }
                Err(kind_err)
            }
        }
    }
}

/// A deterministic list of planned failures.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The planned faults.
    pub faults: Vec<FaultSpec>,
}

impl std::fmt::Display for FaultPlan {
    /// Comma-joined [`FaultSpec`] spec strings (the `--faults` flag value).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, spec) in self.faults.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{spec}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for FaultPlan {
    type Err = String;

    /// Parse a comma-separated list of `step:kind[:device]` specs. The
    /// empty string is the empty plan.
    fn from_str(s: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            plan.faults.push(part.parse()?);
        }
        Ok(plan)
    }
}

impl FaultPlan {
    /// Empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// A plan with a single fault on device 0.
    pub fn single(superstep: u64, kind: FaultKind) -> Self {
        FaultPlan {
            faults: vec![FaultSpec {
                superstep,
                kind,
                device: 0,
            }],
        }
    }

    /// Add a fault (builder style).
    pub fn with(mut self, superstep: u64, kind: FaultKind, device: u8) -> Self {
        self.faults.push(FaultSpec {
            superstep,
            kind,
            device,
        });
        self
    }

    /// Draw `count` faults uniformly over supersteps `0..max_step`, kinds
    /// `kinds`, and devices `0..devices`, from the vendored PRNG. Fully
    /// deterministic per seed.
    pub fn random(
        seed: u64,
        count: usize,
        max_step: u64,
        kinds: &[FaultKind],
        devices: u8,
    ) -> Self {
        assert!(!kinds.is_empty() && max_step > 0 && devices > 0);
        let mut rng = SplitMix64::seed_from_u64(seed);
        let faults = (0..count)
            .map(|_| FaultSpec {
                superstep: rng.random_range(0u64..max_step),
                kind: kinds[rng.random_range(0usize..kinds.len())],
                device: rng.random_range(0u8..devices),
            })
            .collect();
        FaultPlan { faults }
    }

    /// Compile into the shared fire-once injector handed to engines.
    pub fn injector(&self) -> FaultInjector {
        FaultInjector {
            inner: Arc::new(Inner {
                faults: self.faults.clone(),
                fired: self.faults.iter().map(|_| AtomicBool::new(false)).collect(),
                fired_total: AtomicU64::new(0),
            }),
        }
    }
}

#[derive(Debug)]
struct Inner {
    faults: Vec<FaultSpec>,
    fired: Vec<AtomicBool>,
    fired_total: AtomicU64,
}

/// Shared fire-once view of a [`FaultPlan`]. Clones share state, so a fault
/// consumed on one device/config clone stays consumed everywhere.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    inner: Arc<Inner>,
}

impl FaultInjector {
    /// Consume and fire the matching planned fault, if any. Returns `true`
    /// exactly once per matching [`FaultSpec`]; replays of the same
    /// superstep after rollback see `false`.
    pub fn fire(&self, superstep: u64, kind: FaultKind, device: u8) -> bool {
        for (spec, fired) in self.inner.faults.iter().zip(&self.inner.fired) {
            if spec.superstep == superstep
                && spec.kind == kind
                && spec.device == device
                && fired
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                self.inner.fired_total.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Peek whether an un-fired fault of `kind` is planned for `superstep`
    /// on `device` without consuming it.
    pub fn pending(&self, superstep: u64, kind: FaultKind, device: u8) -> bool {
        self.inner
            .faults
            .iter()
            .zip(&self.inner.fired)
            .any(|(spec, fired)| {
                spec.superstep == superstep
                    && spec.kind == kind
                    && spec.device == device
                    && !fired.load(Ordering::Acquire)
            })
    }

    /// Total faults fired so far across all clones.
    pub fn fired_count(&self) -> u64 {
        self.inner.fired_total.load(Ordering::Relaxed)
    }

    /// The underlying plan.
    pub fn plan(&self) -> &[FaultSpec] {
        &self.inner.faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_once() {
        let inj = FaultPlan::single(3, FaultKind::KillWorker).injector();
        assert!(!inj.fire(2, FaultKind::KillWorker, 0));
        assert!(!inj.fire(3, FaultKind::KillMover, 0));
        assert!(!inj.fire(3, FaultKind::KillWorker, 1));
        assert!(inj.pending(3, FaultKind::KillWorker, 0));
        assert!(inj.fire(3, FaultKind::KillWorker, 0));
        // Replay of the same superstep after rollback: quiet.
        assert!(!inj.fire(3, FaultKind::KillWorker, 0));
        assert!(!inj.pending(3, FaultKind::KillWorker, 0));
        assert_eq!(inj.fired_count(), 1);
    }

    #[test]
    fn clones_share_fired_state() {
        let inj = FaultPlan::single(0, FaultKind::PoisonInsert).injector();
        let clone = inj.clone();
        assert!(clone.fire(0, FaultKind::PoisonInsert, 0));
        assert!(!inj.fire(0, FaultKind::PoisonInsert, 0));
        assert_eq!(inj.fired_count(), 1);
    }

    #[test]
    fn duplicate_specs_fire_independently() {
        let plan =
            FaultPlan::new()
                .with(5, FaultKind::KillMover, 0)
                .with(5, FaultKind::KillMover, 0);
        let inj = plan.injector();
        assert!(inj.fire(5, FaultKind::KillMover, 0));
        assert!(inj.fire(5, FaultKind::KillMover, 0));
        assert!(!inj.fire(5, FaultKind::KillMover, 0));
    }

    #[test]
    fn random_plans_are_deterministic_per_seed() {
        let a = FaultPlan::random(9, 16, 10, &FaultKind::ALL, 2);
        let b = FaultPlan::random(9, 16, 10, &FaultKind::ALL, 2);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 16);
        assert!(a.faults.iter().all(|f| f.superstep < 10 && f.device < 2));
        let c = FaultPlan::random(10, 16, 10, &FaultKind::ALL, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn kind_names_round_trip() {
        for k in FaultKind::ALL {
            assert_eq!(k.name().parse::<FaultKind>().unwrap(), k);
            assert_eq!(k.to_string(), k.name());
        }
        assert!("bogus".parse::<FaultKind>().is_err());
    }

    #[test]
    fn spec_strings_round_trip_all_kinds() {
        // Property: Display → FromStr is the identity for every kind,
        // every device form, over randomized supersteps.
        let mut rng = SplitMix64::seed_from_u64(42);
        for kind in FaultKind::ALL {
            for device in [0u8, 1, 7] {
                let spec = FaultSpec {
                    superstep: rng.random_range(0u64..1_000_000),
                    kind,
                    device,
                };
                let s = spec.to_string();
                assert_eq!(s.parse::<FaultSpec>().unwrap(), spec, "spec {s:?}");
            }
        }
    }

    #[test]
    fn multi_rank_kind_strings_round_trip() {
        // Property: Display → FromStr is the identity for the
        // parameterized multi-rank kinds over randomized rank ids,
        // standalone and embedded in specs/plans with random supersteps
        // and device forms — alongside the fieldless catalog.
        let mut rng = SplitMix64::seed_from_u64(1234);
        let mut plan = FaultPlan::new();
        for _ in 0..64 {
            let i = rng.random_range(0u8..63);
            let j = rng.random_range(i + 1..64u8);
            for kind in [
                FaultKind::CrashRank(rng.random_range(0u8..64)),
                FaultKind::partition_link(i, j),
            ] {
                assert_eq!(kind.to_string().parse::<FaultKind>().unwrap(), kind);
                for device in [0u8, 1, 5] {
                    let spec = FaultSpec {
                        superstep: rng.random_range(0u64..1_000_000),
                        kind,
                        device,
                    };
                    let s = spec.to_string();
                    assert_eq!(s.parse::<FaultSpec>().unwrap(), spec, "spec {s:?}");
                    plan.faults.push(spec);
                }
            }
        }
        // Whole plans mixing parameterized and fieldless kinds.
        plan.faults
            .extend(FaultPlan::random(5, 8, 20, &FaultKind::ALL, 3).faults);
        let s = plan.to_string();
        assert_eq!(s.parse::<FaultPlan>().unwrap(), plan);
    }

    #[test]
    fn multi_rank_kind_parsing_is_strict() {
        // partition-link is normalized to i < j on both construction and
        // parse, so injector equality matches however the user spells it.
        assert_eq!(
            "partition-link:2-1".parse::<FaultKind>().unwrap(),
            FaultKind::PartitionLink(1, 2)
        );
        assert_eq!(
            FaultKind::partition_link(5, 3),
            FaultKind::PartitionLink(3, 5)
        );
        assert_eq!(FaultKind::CrashRank(2).name(), "crash-rank");
        assert_eq!(FaultKind::PartitionLink(0, 1).name(), "partition-link");
        for bad in [
            "crash-rank:",
            "crash-rank:x",
            "crash-rank:300",
            "partition-link:1",
            "partition-link:1-1",
            "partition-link:a-2",
        ] {
            assert!(bad.parse::<FaultKind>().is_err(), "{bad:?} should fail");
        }
        // Spec forms: the kind's own parameters win the first colon; a
        // trailing device still parses.
        assert_eq!(
            "7:crash-rank:3".parse::<FaultSpec>().unwrap(),
            FaultSpec {
                superstep: 7,
                kind: FaultKind::CrashRank(3),
                device: 0
            }
        );
        assert_eq!(
            "4:partition-link:0-2".parse::<FaultSpec>().unwrap(),
            FaultSpec {
                superstep: 4,
                kind: FaultKind::PartitionLink(0, 2),
                device: 0
            }
        );
    }

    #[test]
    fn plan_strings_round_trip() {
        // Random plans of every size round-trip through the flag syntax.
        for seed in 0..8 {
            let plan = FaultPlan::random(seed, 11, 40, &FaultKind::ALL, 3);
            let s = plan.to_string();
            assert_eq!(s.parse::<FaultPlan>().unwrap(), plan, "plan {s:?}");
        }
        assert_eq!("".parse::<FaultPlan>().unwrap(), FaultPlan::new());
        assert_eq!(
            " 3:crash , 4:bitflip-msg:1 ".parse::<FaultPlan>().unwrap(),
            FaultPlan::new().with(3, FaultKind::CrashDevice, 0).with(
                4,
                FaultKind::BitFlipMessage,
                1
            )
        );
    }

    #[test]
    fn parse_errors_are_descriptive_not_panics() {
        let e = "2:warp-core".parse::<FaultPlan>().unwrap_err();
        assert!(e.contains("unknown fault kind"), "got {e:?}");
        assert!(e.contains("bitflip-msg"), "kind list missing: {e:?}");
        let e = "abc:crash".parse::<FaultPlan>().unwrap_err();
        assert!(e.contains("bad superstep"), "got {e:?}");
        let e = "1:crash:x".parse::<FaultPlan>().unwrap_err();
        assert!(e.contains("bad device"), "got {e:?}");
        let e = "1".parse::<FaultPlan>().unwrap_err();
        assert!(e.contains("bad fault spec"), "got {e:?}");
    }

    #[test]
    fn concurrent_fire_is_exclusive() {
        let inj = FaultPlan::single(1, FaultKind::KillWorker).injector();
        let hits: u32 = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let inj = inj.clone();
                    s.spawn(move || u32::from(inj.fire(1, FaultKind::KillWorker, 0)))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(hits, 1);
    }
}
