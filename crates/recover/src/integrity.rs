//! Integrity mode, accounting, and the group-checksum primitive.
//!
//! PRs 2–3 made the engines survive *fail-stop* faults; this module is the
//! data-plane half of the defense against *silent* corruption: a bit flip
//! in a queue slot, a CSB column, a barrier value, or an exchange frame
//! that crashes nothing and converges to a wrong answer. The engine-side
//! detection/healing driver lives in `phigraph_core::engine::integrity`;
//! this crate keeps the policy enum, the run accounting, and the
//! order-independent checksum that both sides fold.
//!
//! Design constraints (mirroring `TraceLevel`):
//! * the kill switch is one relaxed atomic load on the hot path, and the
//!   `Off` path performs *no* other work, so disabled runs stay
//!   bit-identical to pre-integrity builds;
//! * group checksums must be **commutative** (a wrapping sum of
//!   per-message hashes) because CSB insertion order is racy by design —
//!   the audit must not depend on which mover drained first.

use std::sync::atomic::{AtomicU8, Ordering};

/// How much of the integrity lattice is armed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum IntegrityMode {
    /// No checks at all. The data path is bit-identical to builds that
    /// predate the integrity subsystem.
    #[default]
    Off = 0,
    /// Frame-level only: exchange payloads carry length/epoch/FNV headers
    /// and are re-exchanged on mismatch. Near-zero cost (one hash pass per
    /// frame, nothing per message).
    Frames = 1,
    /// Everything: frames, per-vertex-group message checksums folded
    /// during drains, state digests at barriers, and sampled per-app
    /// invariant audits, all feeding the quarantine-and-recompute driver.
    Full = 2,
}

impl IntegrityMode {
    /// All modes, for flag validation and docs.
    pub const ALL: [IntegrityMode; 3] = [
        IntegrityMode::Off,
        IntegrityMode::Frames,
        IntegrityMode::Full,
    ];

    /// Short stable name (CLI flag values).
    pub fn name(&self) -> &'static str {
        match self {
            IntegrityMode::Off => "off",
            IntegrityMode::Frames => "frames",
            IntegrityMode::Full => "full",
        }
    }

    /// Whether exchange frames are checksummed.
    #[inline]
    pub fn frames(&self) -> bool {
        *self >= IntegrityMode::Frames
    }

    /// Whether group/state/audit checks are armed.
    #[inline]
    pub fn full(&self) -> bool {
        *self >= IntegrityMode::Full
    }
}

impl std::fmt::Display for IntegrityMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for IntegrityMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "off" => Ok(IntegrityMode::Off),
            "frames" => Ok(IntegrityMode::Frames),
            "full" => Ok(IntegrityMode::Full),
            other => Err(format!(
                "unknown integrity mode {other:?} (expected off|frames|full)"
            )),
        }
    }
}

/// A shareable one-atomic-load kill switch, the `TraceLevel` pattern: the
/// hot paths (CSB inserts, drains) load this once per batch with relaxed
/// ordering and skip every integrity branch when it reads `Off`.
#[derive(Debug, Default)]
pub struct IntegritySwitch(AtomicU8);

impl IntegritySwitch {
    /// A switch preset to `mode`.
    pub fn new(mode: IntegrityMode) -> Self {
        IntegritySwitch(AtomicU8::new(mode as u8))
    }

    /// Current mode (one relaxed load).
    #[inline(always)]
    pub fn mode(&self) -> IntegrityMode {
        match self.0.load(Ordering::Relaxed) {
            0 => IntegrityMode::Off,
            1 => IntegrityMode::Frames,
            _ => IntegrityMode::Full,
        }
    }

    /// Re-arm or disarm at runtime.
    pub fn set(&self, mode: IntegrityMode) {
        self.0.store(mode as u8, Ordering::Relaxed);
    }
}

/// FNV-1a 64-bit — the same tiny hash the snapshot codec uses; duplicated
/// as a `pub fn` here so the comm and core crates can fold the identical
/// function without new dependency edges.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hash `bytes` with FNV-1a 64 starting from `seed` (pass [`FNV_OFFSET`]
/// for a fresh hash; pass a previous result to chain fields).
#[inline]
pub fn fnv1a64_seeded(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The order-independent per-message contribution to a group checksum:
/// hash `(dst, value-bytes)` to one u64. Contributions are folded with
/// `wrapping_add`, which is commutative + associative, so any interleaving
/// of movers/workers produces the same group sum. `0` is the empty-group
/// identity.
#[inline]
pub fn message_digest(dst: u32, value_bytes: &[u8]) -> u64 {
    let h = fnv1a64_seeded(FNV_OFFSET, &dst.to_le_bytes());
    // Never contribute 0 so "one message" is distinguishable from "none".
    fnv1a64_seeded(h, value_bytes) | 1
}

/// Everything the integrity subsystem observed during one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntegrityStats {
    /// Exchange frames whose header/checksum was validated.
    pub frame_checks: u64,
    /// Frames that failed validation (truncation or checksum mismatch).
    pub frame_detections: u64,
    /// In-place re-exchanges that healed a corrupt frame.
    pub frame_reexchanges: u64,
    /// Vertex-group checksum audits performed after message insertion.
    pub group_checks: u64,
    /// Group checksum mismatches detected (corrupt message path).
    pub group_detections: u64,
    /// Barrier state-digest audits performed.
    pub state_checks: u64,
    /// State digest mismatches detected (rotted barrier values).
    pub state_detections: u64,
    /// Per-app invariant audits run (sampled stride).
    pub audits_run: u64,
    /// Invariant violations the auditors flagged.
    pub audit_violations: u64,
    /// Audit alarms that a full-step replay reproduced bit-identically —
    /// i.e. the invariant tolerance fired on clean data.
    pub false_positive_audits: u64,
    /// Vertex groups quarantined for targeted recompute.
    pub quarantined_groups: u64,
    /// Groups healed by targeted regeneration (rung 1, no rollback).
    pub group_heals: u64,
    /// Full single-step replays (rung 2).
    pub step_replays: u64,
    /// Background scrub passes completed between supersteps.
    pub scrub_passes: u64,
}

impl IntegrityStats {
    /// Fold another run's stats into this one (hetero runs sum devices).
    pub fn accumulate(&mut self, other: &IntegrityStats) {
        self.frame_checks += other.frame_checks;
        self.frame_detections += other.frame_detections;
        self.frame_reexchanges += other.frame_reexchanges;
        self.group_checks += other.group_checks;
        self.group_detections += other.group_detections;
        self.state_checks += other.state_checks;
        self.state_detections += other.state_detections;
        self.audits_run += other.audits_run;
        self.audit_violations += other.audit_violations;
        self.false_positive_audits += other.false_positive_audits;
        self.quarantined_groups += other.quarantined_groups;
        self.group_heals += other.group_heals;
        self.step_replays += other.step_replays;
        self.scrub_passes += other.scrub_passes;
    }

    /// Total corruptions detected on any rung of the lattice.
    pub fn detections(&self) -> u64 {
        self.frame_detections + self.group_detections + self.state_detections
    }

    /// One-line summary (appended to run summaries when anything happened).
    pub fn summary(&self) -> String {
        format!(
            "checks={} detections={} quarantined={} heals={} replays={} \
             reexch={} audits={} false_pos={} scrubs={}",
            self.frame_checks + self.group_checks + self.state_checks,
            self.detections(),
            self.quarantined_groups,
            self.group_heals,
            self.step_replays,
            self.frame_reexchanges,
            self.audits_run,
            self.false_positive_audits,
            self.scrub_passes,
        )
    }

    /// Whether any integrity-relevant event happened at all.
    pub fn any(&self) -> bool {
        *self != IntegrityStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_round_trip() {
        for m in IntegrityMode::ALL {
            assert_eq!(m.name().parse::<IntegrityMode>().unwrap(), m);
            assert_eq!(m.to_string(), m.name());
        }
        let e = "paranoid".parse::<IntegrityMode>().unwrap_err();
        assert!(e.contains("off|frames|full"));
    }

    #[test]
    fn mode_lattice_is_ordered() {
        assert!(!IntegrityMode::Off.frames());
        assert!(!IntegrityMode::Off.full());
        assert!(IntegrityMode::Frames.frames());
        assert!(!IntegrityMode::Frames.full());
        assert!(IntegrityMode::Full.frames());
        assert!(IntegrityMode::Full.full());
    }

    #[test]
    fn switch_round_trips_all_modes() {
        let sw = IntegritySwitch::default();
        assert_eq!(sw.mode(), IntegrityMode::Off);
        for m in IntegrityMode::ALL {
            sw.set(m);
            assert_eq!(sw.mode(), m);
        }
    }

    #[test]
    fn message_digest_is_order_independent_under_wrapping_add() {
        let msgs: [(u32, f32); 4] = [(3, 1.5), (9, -0.25), (3, 1.5), (7, f32::INFINITY)];
        let digest = |perm: &[usize]| -> u64 {
            perm.iter().fold(0u64, |acc, &i| {
                let (d, v) = msgs[i];
                acc.wrapping_add(message_digest(d, &v.to_le_bytes()))
            })
        };
        let a = digest(&[0, 1, 2, 3]);
        let b = digest(&[3, 2, 1, 0]);
        let c = digest(&[1, 3, 0, 2]);
        assert_eq!(a, b);
        assert_eq!(a, c);
        // And a single flipped bit moves the sum.
        let mut bytes = 1.5f32.to_le_bytes();
        bytes[0] ^= 0x10;
        let flipped = a
            .wrapping_sub(message_digest(3, &1.5f32.to_le_bytes()))
            .wrapping_add(message_digest(3, &bytes));
        assert_ne!(a, flipped);
    }

    #[test]
    fn message_digest_never_contributes_zero() {
        assert_ne!(message_digest(0, &[]), 0);
        assert_ne!(message_digest(0, &[0, 0, 0, 0]), 0);
    }

    #[test]
    fn stats_accumulate_and_summarize() {
        let mut a = IntegrityStats {
            frame_checks: 4,
            frame_detections: 1,
            ..Default::default()
        };
        let b = IntegrityStats {
            group_checks: 10,
            group_detections: 2,
            quarantined_groups: 2,
            group_heals: 2,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.detections(), 3);
        assert_eq!(a.group_heals, 2);
        assert!(a.any());
        assert!(a.summary().contains("detections=3"));
        assert!(!IntegrityStats::default().any());
    }
}
