//! The checkpoint wire format: a versioned, checksummed binary snapshot of
//! one device run's barrier state.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "PHGS"
//! 4       2     format version (= SNAPSHOT_VERSION)
//! 6       2     value_size   bytes per encoded vertex value
//! 8       8     superstep    next superstep index to execute on resume
//! 16      8     n            vertex count
//! 24      2     app_len      application-name byte length
//! 26      a     app          UTF-8 application name
//! 26+a    n*vs  values       per-vertex state, little-endian PodState
//! ...     n     active       per-vertex active flags (0/1)
//! ...     8     checksum     FNV-1a 64 over every preceding byte
//! ```
//!
//! The trailing checksum makes torn writes and bit flips detectable: decode
//! recomputes FNV-1a over the body and rejects on mismatch, which is what
//! lets the recovery policy skip a corrupt snapshot in favor of the
//! previous valid one.

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u16 = 1;

/// Magic prefix of every snapshot ("PHGS").
pub const MAGIC: [u8; 4] = *b"PHGS";

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of `bytes` — the snapshot checksum. Public so tests
/// and tools can verify integrity independently.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A decoded (or to-be-encoded) barrier snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Next superstep index to execute when resuming from this snapshot.
    pub superstep: u64,
    /// Application name (sanity-checked on resume so a PageRank run cannot
    /// resume from an SSSP checkpoint).
    pub app: String,
    /// Bytes per encoded vertex value.
    pub value_size: u16,
    /// Raw little-endian vertex values (`n * value_size` bytes; decode with
    /// `phigraph_graph::state::decode_state_slice`).
    pub values: Vec<u8>,
    /// Per-vertex active flags (`n` bytes of 0/1).
    pub active: Vec<u8>,
}

/// Why a snapshot failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// Fewer bytes than the header or declared payload requires.
    Truncated,
    /// The magic prefix is not `PHGS`.
    BadMagic,
    /// Unknown format version.
    BadVersion(u16),
    /// The trailing FNV-1a checksum does not match the body.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed over the body.
        computed: u64,
    },
    /// Internal lengths disagree (e.g. value payload not `n * value_size`).
    Inconsistent,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a phigraph snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            SnapshotError::Inconsistent => write!(f, "snapshot internal lengths disagree"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl Snapshot {
    /// Number of vertices covered by this snapshot.
    pub fn num_vertices(&self) -> usize {
        self.active.len()
    }

    /// Encode to the versioned, checksummed binary format.
    pub fn encode(&self) -> Vec<u8> {
        assert!(
            self.values.len() == self.active.len() * self.value_size as usize,
            "values payload must be n * value_size bytes"
        );
        let app = self.app.as_bytes();
        assert!(app.len() <= u16::MAX as usize, "app name too long");
        let mut out = Vec::with_capacity(34 + app.len() + self.values.len() + self.active.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.value_size.to_le_bytes());
        out.extend_from_slice(&self.superstep.to_le_bytes());
        out.extend_from_slice(&(self.active.len() as u64).to_le_bytes());
        out.extend_from_slice(&(app.len() as u16).to_le_bytes());
        out.extend_from_slice(app);
        out.extend_from_slice(&self.values);
        out.extend_from_slice(&self.active);
        let sum = fnv1a64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decode and fully validate a snapshot.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        const HEADER: usize = 26; // magic..=app_len
        if bytes.len() < HEADER + 8 {
            return Err(SnapshotError::Truncated);
        }
        if bytes[0..4] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let le16 = |off: usize| u16::from_le_bytes(bytes[off..off + 2].try_into().unwrap());
        let le64 = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
        let version = le16(4);
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let value_size = le16(6);
        let superstep = le64(8);
        let n = le64(16) as usize;
        let app_len = le16(24) as usize;
        let values_len = n
            .checked_mul(value_size as usize)
            .ok_or(SnapshotError::Inconsistent)?;
        let total = HEADER
            .checked_add(app_len)
            .and_then(|t| t.checked_add(values_len))
            .and_then(|t| t.checked_add(n))
            .and_then(|t| t.checked_add(8))
            .ok_or(SnapshotError::Inconsistent)?;
        if bytes.len() != total {
            return Err(SnapshotError::Truncated);
        }
        let body = &bytes[..total - 8];
        let stored = le64(total - 8);
        let computed = fnv1a64(body);
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }
        let app = std::str::from_utf8(&bytes[HEADER..HEADER + app_len])
            .map_err(|_| SnapshotError::Inconsistent)?
            .to_string();
        let values_off = HEADER + app_len;
        Ok(Snapshot {
            superstep,
            app,
            value_size,
            values: bytes[values_off..values_off + values_len].to_vec(),
            active: bytes[values_off + values_len..values_off + values_len + n].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            superstep: 7,
            app: "sssp".into(),
            value_size: 4,
            values: vec![1, 2, 3, 4, 5, 6, 7, 8],
            active: vec![1, 0],
        }
    }

    #[test]
    fn round_trip() {
        let s = sample();
        let bytes = s.encode();
        assert_eq!(Snapshot::decode(&bytes).unwrap(), s);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xA5;
            assert!(
                Snapshot::decode(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(Snapshot::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bad_magic_and_version() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert_eq!(Snapshot::decode(&bytes), Err(SnapshotError::BadMagic));
        let mut v2 = sample().encode();
        v2[4] = 99;
        // Version is covered by the checksum too, but the version check
        // fires first.
        assert_eq!(Snapshot::decode(&v2), Err(SnapshotError::BadVersion(99)));
    }

    #[test]
    fn checksum_mismatch_reports_both_sums() {
        let mut bytes = sample().encode();
        // Flip a byte inside the values payload (header 26 + app 4 = 30)
        // so the length checks pass and the checksum check fires.
        bytes[30] ^= 0xFF;
        match Snapshot::decode(&bytes) {
            Err(SnapshotError::ChecksumMismatch { stored, computed }) => {
                assert_ne!(stored, computed)
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn empty_graph_snapshot_round_trips() {
        let s = Snapshot {
            superstep: 0,
            app: String::new(),
            value_size: 8,
            values: vec![],
            active: vec![],
        };
        assert_eq!(Snapshot::decode(&s.encode()).unwrap(), s);
    }
}
