//! Pluggable checkpoint storage.
//!
//! The engine writes encoded snapshots through the [`CheckpointStore`]
//! trait; recovery reads them back newest-first. Two implementations ship:
//! [`MemStore`] (tests, fault-injection sweeps) and [`DirStore`] (one file
//! per snapshot under a directory — what the CLI's `--checkpoint-dir` and
//! the `recover` inspection subcommand use).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Where encoded snapshots live. Implementations are keyed by the snapshot's
/// resume superstep; storage is opaque bytes so stores never depend on the
/// snapshot format version.
pub trait CheckpointStore: Send {
    /// Persist `bytes` as the snapshot for `superstep` (overwrites).
    fn save(&mut self, superstep: u64, bytes: &[u8]) -> Result<(), String>;

    /// Superstep keys present, ascending.
    fn list(&self) -> Vec<u64>;

    /// Load the raw bytes for `superstep`.
    fn load(&self, superstep: u64) -> Result<Vec<u8>, String>;

    /// Remove the snapshot for `superstep` (missing is not an error).
    fn remove(&mut self, superstep: u64) -> Result<(), String>;

    /// Keep only the newest `keep` snapshots (bounded storage).
    fn retain_newest(&mut self, keep: usize) -> Result<(), String> {
        let steps = self.list();
        if steps.len() > keep {
            for &s in &steps[..steps.len() - keep] {
                self.remove(s)?;
            }
        }
        Ok(())
    }
}

/// In-memory store for tests and deterministic fault sweeps.
#[derive(Debug, Default)]
pub struct MemStore {
    snaps: BTreeMap<u64, Vec<u8>>,
}

impl MemStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mutable access to a stored snapshot's bytes (tests corrupt
    /// checkpoints in place with this).
    pub fn bytes_mut(&mut self, superstep: u64) -> Option<&mut Vec<u8>> {
        self.snaps.get_mut(&superstep)
    }
}

impl CheckpointStore for MemStore {
    fn save(&mut self, superstep: u64, bytes: &[u8]) -> Result<(), String> {
        self.snaps.insert(superstep, bytes.to_vec());
        Ok(())
    }

    fn list(&self) -> Vec<u64> {
        self.snaps.keys().copied().collect()
    }

    fn load(&self, superstep: u64) -> Result<Vec<u8>, String> {
        self.snaps
            .get(&superstep)
            .cloned()
            .ok_or_else(|| format!("no snapshot for superstep {superstep}"))
    }

    fn remove(&mut self, superstep: u64) -> Result<(), String> {
        self.snaps.remove(&superstep);
        Ok(())
    }
}

/// File-backed store: one `ckpt_<superstep>.phgs` file per snapshot under a
/// directory. Writes go through a temporary file + rename so a crash during
/// `save` never leaves a half-written file under the canonical name (and a
/// torn rename is still caught by the snapshot checksum).
#[derive(Debug)]
pub struct DirStore {
    dir: PathBuf,
}

impl DirStore {
    /// Open (creating if needed) the directory `dir`.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, String> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        Ok(DirStore { dir })
    }

    /// Path of the snapshot file for `superstep`.
    pub fn path_for(&self, superstep: u64) -> PathBuf {
        self.dir.join(format!("ckpt_{superstep:08}.phgs"))
    }

    /// Parse a snapshot filename back into its superstep key.
    fn parse_name(name: &str) -> Option<u64> {
        name.strip_prefix("ckpt_")?
            .strip_suffix(".phgs")?
            .parse()
            .ok()
    }
}

impl CheckpointStore for DirStore {
    fn save(&mut self, superstep: u64, bytes: &[u8]) -> Result<(), String> {
        let tmp = self.dir.join(format!(".ckpt_{superstep:08}.tmp"));
        std::fs::write(&tmp, bytes).map_err(|e| format!("write {}: {e}", tmp.display()))?;
        let dst = self.path_for(superstep);
        std::fs::rename(&tmp, &dst).map_err(|e| format!("rename to {}: {e}", dst.display()))
    }

    fn list(&self) -> Vec<u64> {
        let mut steps: Vec<u64> = match std::fs::read_dir(&self.dir) {
            Err(_) => return Vec::new(),
            Ok(rd) => rd
                .filter_map(|e| e.ok())
                .filter_map(|e| Self::parse_name(&e.file_name().to_string_lossy()))
                .collect(),
        };
        steps.sort_unstable();
        steps
    }

    fn load(&self, superstep: u64) -> Result<Vec<u8>, String> {
        let p = self.path_for(superstep);
        std::fs::read(&p).map_err(|e| format!("read {}: {e}", p.display()))
    }

    fn remove(&mut self, superstep: u64) -> Result<(), String> {
        let p = self.path_for(superstep);
        match std::fs::remove_file(&p) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(format!("remove {}: {e}", p.display())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &mut dyn CheckpointStore) {
        assert!(store.list().is_empty());
        store.save(4, b"four").unwrap();
        store.save(2, b"two").unwrap();
        store.save(8, b"eight").unwrap();
        assert_eq!(store.list(), vec![2, 4, 8]);
        assert_eq!(store.load(4).unwrap(), b"four");
        assert!(store.load(5).is_err());
        store.save(4, b"four-v2").unwrap();
        assert_eq!(store.load(4).unwrap(), b"four-v2");
        store.retain_newest(2).unwrap();
        assert_eq!(store.list(), vec![4, 8]);
        store.remove(8).unwrap();
        store.remove(8).unwrap(); // idempotent
        assert_eq!(store.list(), vec![4]);
    }

    #[test]
    fn mem_store_contract() {
        exercise(&mut MemStore::new());
    }

    #[test]
    fn dir_store_contract() {
        let dir = std::env::temp_dir().join(format!("phgs-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        exercise(&mut DirStore::open(&dir).unwrap());
        // Re-opening sees the surviving snapshot.
        let reopened = DirStore::open(&dir).unwrap();
        assert_eq!(reopened.list(), vec![4]);
        assert_eq!(reopened.load(4).unwrap(), b"four-v2");
        // Foreign files are ignored by list().
        std::fs::write(dir.join("notes.txt"), b"x").unwrap();
        std::fs::write(dir.join("ckpt_bad.phgs"), b"x").unwrap();
        assert_eq!(reopened.list(), vec![4]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Newest-first scan over a store, skipping snapshots whose bytes no
    /// longer decode — the exact discipline the recovery drivers use.
    fn newest_valid(store: &dyn CheckpointStore) -> Option<u64> {
        use crate::snapshot::Snapshot;
        store.list().into_iter().rev().find_map(|k| {
            let bytes = store.load(k).ok()?;
            Snapshot::decode(&bytes).ok().map(|s| s.superstep)
        })
    }

    #[test]
    fn torn_dir_snapshots_fall_back_to_previous() {
        use crate::snapshot::Snapshot;
        let dir = std::env::temp_dir().join(format!("phgs-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = DirStore::open(&dir).unwrap();
        let snap = |k: u64| {
            Snapshot {
                superstep: k,
                app: "sssp".to_string(),
                value_size: 4,
                values: vec![7u8; 16],
                active: vec![1u8; 4],
            }
            .encode()
        };
        store.save(2, &snap(2)).unwrap();
        store.save(4, &snap(4)).unwrap();
        assert_eq!(newest_valid(&store), Some(4));

        let full = store.load(4).unwrap();
        // Torn mid-header: only a few magic/version bytes made it to disk.
        std::fs::write(store.path_for(4), &full[..6]).unwrap();
        assert_eq!(newest_valid(&store), Some(2), "mid-header tear");
        // Torn mid-body: the payload is cut short of the checksum.
        std::fs::write(store.path_for(4), &full[..full.len() - 3]).unwrap();
        assert_eq!(newest_valid(&store), Some(2), "mid-body tear");
        // An empty file (open() crashed before any write) is also skipped.
        std::fs::write(store.path_for(4), b"").unwrap();
        assert_eq!(newest_valid(&store), Some(2), "empty file");
        // Restoring the full bytes makes step 4 the newest again.
        std::fs::write(store.path_for(4), &full).unwrap();
        assert_eq!(newest_valid(&store), Some(4));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_keeps_exactly_the_newest() {
        let dir = std::env::temp_dir().join(format!("phgs-retain-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut dirs = DirStore::open(&dir).unwrap();
        let mut mems = MemStore::new();
        let stores: [&mut dyn CheckpointStore; 2] = [&mut dirs, &mut mems];
        for store in stores {
            for k in 1..=5u64 {
                store.save(k, &[k as u8]).unwrap();
            }
            store.retain_newest(3).unwrap();
            assert_eq!(store.list(), vec![3, 4, 5]);
            // A keep window larger than the population is a no-op.
            store.retain_newest(10).unwrap();
            assert_eq!(store.list(), vec![3, 4, 5]);
            // keep = 0 empties the store.
            store.retain_newest(0).unwrap();
            assert!(store.list().is_empty());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_store_bytes_mut_corrupts_in_place() {
        let mut m = MemStore::new();
        m.save(1, b"hello").unwrap();
        m.bytes_mut(1).unwrap()[0] = b'X';
        assert_eq!(m.load(1).unwrap(), b"Xello");
        assert!(m.bytes_mut(9).is_none());
    }
}
