#![warn(missing_docs)]
//! Fault tolerance for phigraph: superstep checkpointing, deterministic
//! fault injection, and crash-recovery policy.
//!
//! The paper's BSP engine gives natural consistency points — the barrier
//! after every superstep's update phase, where the *only* live state is the
//! vertex value array, the active-vertex flags, and the superstep index
//! (message buffers are reset at the start of each step). This crate turns
//! those barriers into recovery points, Pregel-style:
//!
//! * [`snapshot`] — a versioned, checksummed binary snapshot of vertex
//!   state + active set + superstep index ([`Snapshot`]).
//! * [`store`] — the pluggable [`CheckpointStore`] trait with an in-memory
//!   implementation for tests ([`MemStore`]) and a file-backed one for the
//!   CLI ([`DirStore`]).
//! * [`fault`] — a deterministic, seeded [`FaultPlan`] compiled into a
//!   fire-once [`FaultInjector`] that the engines consult at well-defined
//!   injection sites (worker/mover death, poisoned CSB insert, corrupted
//!   checkpoint, dropped hetero exchange).
//! * [`policy`] — [`RecoveryPolicy`] (checkpoint interval, retry budget,
//!   exponential backoff) and [`RecoveryStats`] (checkpoints written/bytes,
//!   rollbacks, retries, corrupt-snapshot rejections, degradation).
//! * [`failover`] — [`FailoverPolicy`]/[`FailoverConfig`] (watchdog
//!   deadline, lost-device policy, straggler thresholds) and
//!   [`FailoverStats`] for the hetero engine's live device failover.
//! * [`integrity`] — [`IntegrityMode`] (the `off|frames|full` lattice),
//!   the one-atomic-load [`IntegritySwitch`], the commutative group
//!   checksum primitive, and [`IntegrityStats`] for silent-data-corruption
//!   detection and targeted self-healing.
//!
//! The engine integration lives in `phigraph_core::engine::recover` (and
//! `engine::failover` for the hetero liveness layer); this crate is
//! deliberately engine-agnostic so the CLI `recover` subcommand can inspect
//! snapshot files without dragging in the runtime.

pub mod failover;
pub mod fault;
pub mod integrity;
pub mod policy;
pub mod snapshot;
pub mod store;

pub use failover::{FailoverConfig, FailoverPolicy, FailoverStats};
pub use fault::{FaultInjector, FaultKind, FaultPlan, FaultSpec};
pub use integrity::{IntegrityMode, IntegrityStats, IntegritySwitch};
pub use policy::{latest_valid_snapshot, RecoveryPolicy, RecoveryStats};
pub use snapshot::{Snapshot, SnapshotError, SNAPSHOT_VERSION};
pub use store::{CheckpointStore, DirStore, MemStore};
