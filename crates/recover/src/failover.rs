//! Failover policy, configuration, and accounting for the hetero engine.
//!
//! PR 2's recovery treats any hetero fault as a whole-run retry. This module
//! holds the data types for the finer-grained story: a watchdog detects a
//! dead (crashed) or silent (hung) device via heartbeats and exchange
//! deadlines, and the driver then either *migrates* the lost device's
//! partition onto the survivor (replaying from the last barrier snapshot),
//! falls back to lock-step *retry*, or degrades to sequential execution.
//! Stragglers — devices that slow down but keep making progress — instead
//! trigger a one-shot partition *rebalance* driven by per-superstep device
//! timings.

use std::time::Duration;

/// What the hetero driver does when the watchdog declares a device lost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FailoverPolicy {
    /// Migrate the lost device's partition onto the survivor and replay
    /// from the newest valid barrier snapshot (the default).
    #[default]
    Migrate,
    /// Roll both devices back to the newest common snapshot and retry in
    /// lock-step (PR 2's behaviour, bounded by the retry budget).
    Retry,
    /// No failover: degrade straight to sequential execution from the last
    /// barrier on the surviving device.
    Off,
}

impl FailoverPolicy {
    /// Stable short name (CLI flag values, report lines).
    pub fn name(&self) -> &'static str {
        match self {
            FailoverPolicy::Migrate => "migrate",
            FailoverPolicy::Retry => "retry",
            FailoverPolicy::Off => "off",
        }
    }
}

impl std::str::FromStr for FailoverPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "migrate" => Ok(FailoverPolicy::Migrate),
            "retry" => Ok(FailoverPolicy::Retry),
            "off" => Ok(FailoverPolicy::Off),
            other => Err(format!(
                "unknown failover policy {other:?} (expected migrate|retry|off)"
            )),
        }
    }
}

/// Tunable knobs for the liveness layer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FailoverConfig {
    /// Watchdog / exchange deadline in milliseconds: a device silent for
    /// longer than this is declared lost.
    pub watchdog_ms: u64,
    /// What to do about a lost device.
    pub policy: FailoverPolicy,
    /// Declare a straggler after this many *consecutive* supersteps in
    /// which the CPU/MIC step-time ratio drifts more than
    /// [`FailoverConfig::slow_factor`] away from its calibrated healthy
    /// value (0 disables rebalancing).
    pub rebalance_after: u32,
    /// Drift factor of the per-superstep CPU/MIC time ratio, relative to
    /// the ratio observed at the first comparable barrier, above which a
    /// superstep counts toward the straggler threshold. Comparing drift
    /// rather than raw times keeps the naturally asymmetric CPU + MIC pair
    /// from being misread as a permanent straggler.
    pub slow_factor: f64,
    /// How much an injected `SlowDevice` fault inflates the victim's
    /// simulated step time (test/experiment knob).
    pub slow_time_factor: f64,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            watchdog_ms: 2_000,
            policy: FailoverPolicy::Migrate,
            rebalance_after: 3,
            slow_factor: 3.0,
            slow_time_factor: 8.0,
        }
    }
}

impl FailoverConfig {
    /// The watchdog deadline as a [`Duration`].
    pub fn deadline(&self) -> Duration {
        Duration::from_millis(self.watchdog_ms)
    }

    /// Builder: set the watchdog deadline in milliseconds.
    pub fn with_watchdog_ms(mut self, ms: u64) -> Self {
        self.watchdog_ms = ms;
        self
    }

    /// Builder: set the lost-device policy.
    pub fn with_policy(mut self, policy: FailoverPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Builder: set the straggler threshold (0 disables rebalancing).
    pub fn with_rebalance_after(mut self, steps: u32) -> Self {
        self.rebalance_after = steps;
        self
    }

    /// Builder: set the step-time ratio that flags a straggler step.
    pub fn with_slow_factor(mut self, factor: f64) -> Self {
        self.slow_factor = factor;
        self
    }
}

/// Everything that happened on the failover path of one run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FailoverStats {
    /// Devices declared lost because their link endpoint disappeared.
    pub crash_detections: u64,
    /// Devices declared lost because they went silent past the deadline.
    pub hang_detections: u64,
    /// Partition migrations onto the survivor.
    pub migrations: u64,
    /// Straggler-driven partition rebalances.
    pub rebalances: u64,
    /// Exchanges lost on the link (both sides observe these).
    pub exchange_drops: u64,
    /// Exchanges that hit the deadline waiting for the peer.
    pub exchange_timeouts: u64,
    /// Worst observed latency between a device going silent and the
    /// watchdog (or exchange deadline) noticing, in milliseconds.
    pub watchdog_latency_ms: u64,
    /// Barrier superstep the post-failover replay resumed from.
    pub resume_step: u64,
    /// Supersteps re-executed after the failover (strictly fewer than
    /// [`FailoverStats::supersteps_total`] whenever a snapshot existed).
    pub supersteps_replayed: u64,
    /// Total supersteps of the fault-free execution.
    pub supersteps_total: u64,
    /// Whether the run finished on a single device after migration.
    pub degraded_single: bool,
    /// Link partitions observed (both ends alive, one link severed): the
    /// membership machine evicts exactly one side per event.
    pub link_partitions: u64,
    /// Bitmask of ranks evicted from the fabric (bit `r` set = rank `r`
    /// was voted out and its partition re-split over the survivors).
    pub evicted_ranks: u64,
}

impl FailoverStats {
    /// Fold another run's stats into this one.
    pub fn accumulate(&mut self, other: &FailoverStats) {
        self.crash_detections += other.crash_detections;
        self.hang_detections += other.hang_detections;
        self.migrations += other.migrations;
        self.rebalances += other.rebalances;
        self.exchange_drops += other.exchange_drops;
        self.exchange_timeouts += other.exchange_timeouts;
        self.watchdog_latency_ms = self.watchdog_latency_ms.max(other.watchdog_latency_ms);
        self.resume_step = self.resume_step.max(other.resume_step);
        self.supersteps_replayed += other.supersteps_replayed;
        self.supersteps_total = self.supersteps_total.max(other.supersteps_total);
        self.degraded_single |= other.degraded_single;
        self.link_partitions += other.link_partitions;
        self.evicted_ranks |= other.evicted_ranks;
    }

    /// Ranks named by [`FailoverStats::evicted_ranks`], ascending.
    pub fn evicted_rank_list(&self) -> Vec<u8> {
        (0..64)
            .filter(|r| self.evicted_ranks & (1 << r) != 0)
            .collect()
    }

    /// Whether any failover-relevant *event* happened at all. Bookkeeping
    /// fields that are populated even on clean runs (`supersteps_total`) do
    /// not count.
    pub fn any(&self) -> bool {
        self.crash_detections
            + self.hang_detections
            + self.migrations
            + self.rebalances
            + self.exchange_drops
            + self.exchange_timeouts
            + self.supersteps_replayed
            + self.link_partitions
            > 0
            || self.degraded_single
            || self.evicted_ranks != 0
    }

    /// One-line summary (appended to run summaries when anything happened).
    pub fn summary(&self) -> String {
        let mut line = format!(
            "crash_det={} hang_det={} migrations={} rebalances={} drops={} timeouts={} \
             wd_latency={}ms resume@{} replayed={}/{}",
            self.crash_detections,
            self.hang_detections,
            self.migrations,
            self.rebalances,
            self.exchange_drops,
            self.exchange_timeouts,
            self.watchdog_latency_ms,
            self.resume_step,
            self.supersteps_replayed,
            self.supersteps_total,
        );
        if self.link_partitions > 0 {
            line.push_str(&format!(" link_partitions={}", self.link_partitions));
        }
        if self.evicted_ranks != 0 {
            line.push_str(&format!(" evicted={:?}", self.evicted_rank_list()));
        }
        if self.degraded_single {
            line.push_str(" DEGRADED->single");
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_round_trip() {
        for p in [
            FailoverPolicy::Migrate,
            FailoverPolicy::Retry,
            FailoverPolicy::Off,
        ] {
            assert_eq!(p.name().parse::<FailoverPolicy>().unwrap(), p);
        }
        assert!("bogus".parse::<FailoverPolicy>().is_err());
    }

    #[test]
    fn config_defaults_and_builders() {
        let c = FailoverConfig::default();
        assert_eq!(c.watchdog_ms, 2_000);
        assert_eq!(c.policy, FailoverPolicy::Migrate);
        assert_eq!(c.deadline(), Duration::from_millis(2_000));
        let c = c
            .with_watchdog_ms(50)
            .with_policy(FailoverPolicy::Off)
            .with_rebalance_after(0)
            .with_slow_factor(2.0);
        assert_eq!(c.watchdog_ms, 50);
        assert_eq!(c.policy, FailoverPolicy::Off);
        assert_eq!(c.rebalance_after, 0);
        assert_eq!(c.slow_factor, 2.0);
    }

    #[test]
    fn stats_accumulate_and_summarize() {
        let mut a = FailoverStats {
            hang_detections: 1,
            migrations: 1,
            watchdog_latency_ms: 12,
            resume_step: 4,
            supersteps_replayed: 3,
            supersteps_total: 7,
            degraded_single: true,
            ..Default::default()
        };
        let b = FailoverStats {
            crash_detections: 1,
            watchdog_latency_ms: 30,
            supersteps_total: 7,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.crash_detections, 1);
        assert_eq!(a.hang_detections, 1);
        assert_eq!(a.watchdog_latency_ms, 30);
        assert_eq!(a.supersteps_total, 7);
        assert!(a.any());
        assert!(a.summary().contains("DEGRADED->single"));
        assert!(a.summary().contains("replayed=3/7"));
        assert!(!FailoverStats::default().any());
    }
}
