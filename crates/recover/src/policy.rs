//! Recovery policy and accounting.
//!
//! On a detected failure the engine rolls back to the newest *valid*
//! checkpoint (corrupt snapshots are rejected by checksum and skipped in
//! favor of the previous one) and replays, with bounded retries and
//! exponential backoff. When the retry budget is exhausted the engine
//! degrades gracefully to sequential execution from the last good barrier
//! instead of failing the whole computation.

use crate::snapshot::Snapshot;
use crate::store::CheckpointStore;

/// Tunable recovery knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Write a checkpoint every `k` supersteps (0 disables checkpointing).
    pub checkpoint_every: usize,
    /// Keep at most this many snapshots in the store (0 = unbounded).
    pub keep_snapshots: usize,
    /// Rollback/replay attempts before degrading to sequential execution.
    pub max_retries: u32,
    /// Base of the exponential backoff, in milliseconds (retry `r` sleeps
    /// `base * 2^r` ms, capped by [`RecoveryPolicy::backoff_cap_ms`]).
    pub backoff_base_ms: u64,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap_ms: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            checkpoint_every: 4,
            keep_snapshots: 3,
            max_retries: 3,
            backoff_base_ms: 1,
            backoff_cap_ms: 1000,
        }
    }
}

impl RecoveryPolicy {
    /// Backoff delay before retry number `retry` (0-based).
    pub fn backoff_ms(&self, retry: u32) -> u64 {
        let exp = self
            .backoff_base_ms
            .saturating_mul(1u64.checked_shl(retry).unwrap_or(u64::MAX));
        exp.min(self.backoff_cap_ms)
    }

    /// Whether the step index `next_step` (the step *about to start*) is a
    /// checkpoint boundary under this policy.
    pub fn is_checkpoint_step(&self, next_step: u64) -> bool {
        self.checkpoint_every > 0
            && next_step > 0
            && next_step.is_multiple_of(self.checkpoint_every as u64)
    }
}

/// Everything that happened on the recovery path of one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Snapshots written to the store.
    pub checkpoints_written: u64,
    /// Encoded bytes of those snapshots.
    pub checkpoint_bytes: u64,
    /// Rollbacks to an earlier barrier (including restarts from step 0 when
    /// no checkpoint existed).
    pub rollbacks: u64,
    /// Replay attempts consumed from the retry budget.
    pub retries: u64,
    /// Snapshots rejected during recovery because their checksum (or
    /// format) did not validate.
    pub corrupt_snapshots_rejected: u64,
    /// Faults the injector actually fired during the run.
    pub faults_injected: u64,
    /// Whether the run fell back to sequential graceful degradation after
    /// exhausting the retry budget.
    pub degraded: bool,
}

impl RecoveryStats {
    /// Fold another run's stats into this one (hetero runs sum both sides).
    pub fn accumulate(&mut self, other: &RecoveryStats) {
        self.checkpoints_written += other.checkpoints_written;
        self.checkpoint_bytes += other.checkpoint_bytes;
        self.rollbacks += other.rollbacks;
        self.retries += other.retries;
        self.corrupt_snapshots_rejected += other.corrupt_snapshots_rejected;
        self.faults_injected += other.faults_injected;
        self.degraded |= other.degraded;
    }

    /// One-line summary (appended to run summaries when anything happened).
    pub fn summary(&self) -> String {
        format!(
            "ckpts={} ({} B) rollbacks={} retries={} corrupt_rejected={} faults={}{}",
            self.checkpoints_written,
            self.checkpoint_bytes,
            self.rollbacks,
            self.retries,
            self.corrupt_snapshots_rejected,
            self.faults_injected,
            if self.degraded { " DEGRADED->seq" } else { "" },
        )
    }

    /// Whether any recovery-relevant event happened at all.
    pub fn any(&self) -> bool {
        *self != RecoveryStats::default()
    }
}

/// Walk the store newest-first and return the first snapshot that decodes
/// and checksums cleanly, counting rejected ones into `stats`. Returns
/// `None` when no valid snapshot exists (recovery then restarts from
/// superstep 0).
pub fn latest_valid_snapshot(
    store: &dyn CheckpointStore,
    stats: &mut RecoveryStats,
) -> Option<Snapshot> {
    for step in store.list().into_iter().rev() {
        match store.load(step) {
            Err(_) => {
                stats.corrupt_snapshots_rejected += 1;
            }
            Ok(bytes) => match Snapshot::decode(&bytes) {
                Ok(snap) => return Some(snap),
                Err(_) => {
                    stats.corrupt_snapshots_rejected += 1;
                }
            },
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn snap(step: u64) -> Snapshot {
        Snapshot {
            superstep: step,
            app: "t".into(),
            value_size: 4,
            values: vec![0; 8],
            active: vec![1, 0],
        }
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RecoveryPolicy {
            backoff_base_ms: 10,
            backoff_cap_ms: 100,
            ..Default::default()
        };
        assert_eq!(p.backoff_ms(0), 10);
        assert_eq!(p.backoff_ms(1), 20);
        assert_eq!(p.backoff_ms(2), 40);
        assert_eq!(p.backoff_ms(4), 100); // capped
        assert_eq!(p.backoff_ms(63), 100);
        assert_eq!(p.backoff_ms(64), 100); // shift overflow saturates
    }

    #[test]
    fn checkpoint_boundaries() {
        let p = RecoveryPolicy {
            checkpoint_every: 3,
            ..Default::default()
        };
        assert!(!p.is_checkpoint_step(0));
        assert!(!p.is_checkpoint_step(2));
        assert!(p.is_checkpoint_step(3));
        assert!(p.is_checkpoint_step(6));
        let off = RecoveryPolicy {
            checkpoint_every: 0,
            ..Default::default()
        };
        assert!(!off.is_checkpoint_step(3));
    }

    #[test]
    fn latest_valid_skips_corrupt_newest() {
        let mut store = MemStore::new();
        store.save(2, &snap(2).encode()).unwrap();
        store.save(4, &snap(4).encode()).unwrap();
        // Corrupt the newest snapshot.
        store.bytes_mut(4).unwrap()[10] ^= 0xFF;
        let mut stats = RecoveryStats::default();
        let got = latest_valid_snapshot(&store, &mut stats).unwrap();
        assert_eq!(got.superstep, 2);
        assert_eq!(stats.corrupt_snapshots_rejected, 1);
    }

    #[test]
    fn latest_valid_none_when_all_corrupt() {
        let mut store = MemStore::new();
        store.save(1, b"junk").unwrap();
        let mut stats = RecoveryStats::default();
        assert!(latest_valid_snapshot(&store, &mut stats).is_none());
        assert_eq!(stats.corrupt_snapshots_rejected, 1);
    }

    #[test]
    fn stats_accumulate_and_summarize() {
        let mut a = RecoveryStats {
            checkpoints_written: 2,
            checkpoint_bytes: 100,
            rollbacks: 1,
            ..Default::default()
        };
        let b = RecoveryStats {
            retries: 3,
            degraded: true,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.checkpoints_written, 2);
        assert_eq!(a.retries, 3);
        assert!(a.degraded);
        assert!(a.any());
        assert!(a.summary().contains("DEGRADED"));
        assert!(!RecoveryStats::default().any());
    }
}
