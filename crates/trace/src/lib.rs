//! Structured tracing and metrics for the phigraph engines.
//!
//! Dependency-free by design (the workspace builds hermetically offline):
//! no `tracing`, no `serde` — JSON is hand-rolled in [`json`], the Chrome
//! trace-event exporter lives in [`chrome`], and log2-bucketed histograms
//! in [`hist`].
//!
//! ## Design
//!
//! A [`Trace`] is a cheaply-clonable handle (an `Arc`) shared by every
//! thread of a run. Each *logical* thread — "dev0/worker-3", "watchdog" —
//! registers a [`ThreadTracer`] against it and records [`Span`]s into a
//! fixed-capacity ring owned by that logical thread. Recording is
//! lock-free: a single-writer cursor published with one `Release` store
//! per span; the registry `Mutex` is only touched when a tracer is
//! (re-)attached at superstep boundaries, never per span. When the ring
//! fills, further spans are counted in a `dropped` tally instead of
//! reallocating — the recorder never blocks or grows on the hot path.
//!
//! Worker and mover OS threads are respawned every superstep inside
//! `std::thread::scope`, so a logical thread's buffer is written by many
//! OS threads *over time* but never concurrently: the scope's join barrier
//! orders superstep N's writes before superstep N+1's. Each span cell is a
//! triple of relaxed atomics, so even a buggy double-writer produces
//! garbage data, not undefined behaviour.
//!
//! Disabled tracing is ~free: every span site first loads one atomic
//! level (`Relaxed`) and bails before touching the clock or the ring, and
//! engines that were handed no `Trace` at all skip even that.

pub mod chrome;
pub mod hist;
pub mod json;

pub use hist::{Hist, HistKind, HistSnapshot};

use std::cell::Cell as StdCell;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How much the recorders capture.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TraceLevel {
    /// Record nothing; span sites cost one relaxed atomic load.
    #[default]
    Off = 0,
    /// Record engine phase spans (generate/insert/process/update/exchange/
    /// checkpoint/migrate and friends) and histograms.
    Phase = 1,
    /// Additionally record fine-grained spans (per-batch flushes, per-queue
    /// drains). Noticeably heavier; for deep dives only.
    Fine = 2,
}

impl TraceLevel {
    /// Stable short name (CLI flag values).
    pub fn name(&self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Phase => "phase",
            TraceLevel::Fine => "fine",
        }
    }
}

impl std::str::FromStr for TraceLevel {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "off" => Ok(TraceLevel::Off),
            "phase" => Ok(TraceLevel::Phase),
            "fine" => Ok(TraceLevel::Fine),
            other => Err(format!(
                "unknown trace level {other:?} (expected off|phase|fine)"
            )),
        }
    }
}

/// The named phases a span can cover. A closed set (rather than free-form
/// strings) keeps the recorder cell a plain `u64` pack and the exporters
/// allocation-free.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Phase {
    /// One whole superstep on one device.
    Superstep = 0,
    /// Message generation (scanning active vertices, producing messages).
    Generate = 1,
    /// Message insertion into the condensed static buffer (the mover side
    /// of the pipeline; folded into generation for the locking engine).
    Insert = 2,
    /// Message processing (lane reduction).
    Process = 3,
    /// Vertex update.
    Update = 4,
    /// Remote exchange with the peer device.
    Exchange = 5,
    /// Barrier checkpoint write.
    Checkpoint = 6,
    /// Partition migration onto the survivor after a device loss.
    Migrate = 7,
    /// One worker→mover batch flush (fine level).
    Flush = 8,
    /// One mover drain pass over a queue (fine level).
    Drain = 9,
    /// One watchdog poll round.
    Watchdog = 10,
    /// Straggler-driven partition rebalance.
    Rebalance = 11,
    /// Post-failover lockstep replay of missed supersteps.
    Replay = 12,
    /// One serving-daemon job, admission to completion (the worker-side
    /// envelope around that job's supersteps).
    Job = 13,
}

/// Every phase, in discriminant order (exporters and tests iterate this).
pub const ALL_PHASES: [Phase; 14] = [
    Phase::Superstep,
    Phase::Generate,
    Phase::Insert,
    Phase::Process,
    Phase::Update,
    Phase::Exchange,
    Phase::Checkpoint,
    Phase::Migrate,
    Phase::Flush,
    Phase::Drain,
    Phase::Watchdog,
    Phase::Rebalance,
    Phase::Replay,
    Phase::Job,
];

impl Phase {
    /// Stable name used in every exporter.
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Superstep => "superstep",
            Phase::Generate => "generate",
            Phase::Insert => "insert",
            Phase::Process => "process",
            Phase::Update => "update",
            Phase::Exchange => "exchange",
            Phase::Checkpoint => "checkpoint",
            Phase::Migrate => "migrate",
            Phase::Flush => "flush",
            Phase::Drain => "drain",
            Phase::Watchdog => "watchdog",
            Phase::Rebalance => "rebalance",
            Phase::Replay => "replay",
            Phase::Job => "job",
        }
    }

    /// The minimum [`TraceLevel`] at which spans of this phase record.
    pub fn level(&self) -> TraceLevel {
        match self {
            Phase::Flush | Phase::Drain => TraceLevel::Fine,
            _ => TraceLevel::Phase,
        }
    }

    fn from_u8(v: u8) -> Phase {
        ALL_PHASES
            .get(v as usize)
            .copied()
            .unwrap_or(Phase::Superstep)
    }
}

/// One recorded interval on one logical thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// What the interval covered.
    pub phase: Phase,
    /// Superstep the span belongs to (0 for out-of-step activity such as
    /// watchdog polls).
    pub step: u32,
    /// Nesting depth at record time (0 = top level on its thread).
    pub depth: u8,
    /// Start, nanoseconds since the trace origin.
    pub t0_ns: u64,
    /// End, nanoseconds since the trace origin.
    pub t1_ns: u64,
}

impl Span {
    /// Span duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.t1_ns.saturating_sub(self.t0_ns)
    }
}

// meta pack: bits 0..8 phase, 8..16 depth, 16..48 step.
fn pack_meta(phase: Phase, depth: u8, step: u32) -> u64 {
    (phase as u64) | ((depth as u64) << 8) | ((step as u64 & 0xffff_ffff) << 16)
}

fn unpack_meta(meta: u64) -> (Phase, u8, u32) {
    (
        Phase::from_u8((meta & 0xff) as u8),
        ((meta >> 8) & 0xff) as u8,
        ((meta >> 16) & 0xffff_ffff) as u32,
    )
}

/// One span cell: three relaxed atomics, published by the ring cursor.
#[derive(Default)]
struct SpanCell {
    t0: AtomicU64,
    t1: AtomicU64,
    meta: AtomicU64,
}

/// The fixed-capacity recording ring of one logical thread.
struct ThreadBuf {
    name: String,
    sort: u32,
    cells: Box<[SpanCell]>,
    /// Published span count; the single writer stores `Release`, readers
    /// load `Acquire`.
    len: AtomicUsize,
    /// Spans lost to a full ring.
    dropped: AtomicU64,
}

impl ThreadBuf {
    fn new(name: String, sort: u32, capacity: usize) -> Self {
        let mut cells = Vec::with_capacity(capacity);
        cells.resize_with(capacity, SpanCell::default);
        ThreadBuf {
            name,
            sort,
            cells: cells.into_boxed_slice(),
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    #[inline]
    fn push(&self, phase: Phase, depth: u8, step: u32, t0: u64, t1: u64) {
        let i = self.len.load(Ordering::Relaxed);
        if i >= self.cells.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let c = &self.cells[i];
        c.t0.store(t0, Ordering::Relaxed);
        c.t1.store(t1, Ordering::Relaxed);
        c.meta
            .store(pack_meta(phase, depth, step), Ordering::Relaxed);
        self.len.store(i + 1, Ordering::Release);
    }

    fn spans(&self) -> Vec<Span> {
        let n = self.len.load(Ordering::Acquire).min(self.cells.len());
        (0..n)
            .map(|i| {
                let c = &self.cells[i];
                let (phase, depth, step) = unpack_meta(c.meta.load(Ordering::Relaxed));
                Span {
                    phase,
                    step,
                    depth,
                    t0_ns: c.t0.load(Ordering::Relaxed),
                    t1_ns: c.t1.load(Ordering::Relaxed),
                }
            })
            .collect()
    }
}

struct TraceShared {
    level: AtomicU8,
    origin: Instant,
    capacity: usize,
    threads: Mutex<Vec<Arc<ThreadBuf>>>,
    hists: hist::HistSet,
}

/// Snapshot of one logical thread's recorded spans.
#[derive(Clone, Debug)]
pub struct ThreadSpans {
    /// Logical thread name ("dev0/worker-3", "watchdog", ...).
    pub name: String,
    /// Track ordering hint for exporters (lower = higher in the UI).
    pub sort: u32,
    /// Recorded spans in completion order.
    pub spans: Vec<Span>,
    /// Spans lost to ring overflow.
    pub dropped: u64,
}

/// A consistent copy of everything a trace recorded.
#[derive(Clone, Debug)]
pub struct TraceSnapshot {
    /// Per logical thread, ordered by sort key then name.
    pub threads: Vec<ThreadSpans>,
    /// Histogram snapshots (all kinds, including empty ones).
    pub hists: Vec<HistSnapshot>,
}

impl TraceSnapshot {
    /// Total spans recorded across all threads.
    pub fn total_spans(&self) -> usize {
        self.threads.iter().map(|t| t.spans.len()).sum()
    }

    /// Total spans dropped to ring overflow across all threads.
    pub fn total_dropped(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped).sum()
    }

    /// Sum of durations of all spans of `phase`, in seconds.
    pub fn phase_seconds(&self, phase: Phase) -> f64 {
        self.threads
            .iter()
            .flat_map(|t| &t.spans)
            .filter(|s| s.phase == phase)
            .map(|s| s.dur_ns() as f64 * 1e-9)
            .sum()
    }
}

/// Shared tracing handle; clone freely, all clones record into the same
/// buffers. See the [module docs](self) for the design.
#[derive(Clone)]
pub struct Trace {
    shared: Arc<TraceShared>,
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace")
            .field("level", &self.level())
            .field("capacity", &self.shared.capacity)
            .finish()
    }
}

/// Default per-thread span capacity (~1.5 MiB of cells per logical thread).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

impl Trace {
    /// New trace with the default per-thread capacity.
    pub fn new(level: TraceLevel) -> Self {
        Trace::with_capacity(level, DEFAULT_CAPACITY)
    }

    /// New trace with an explicit per-thread span capacity.
    pub fn with_capacity(level: TraceLevel, capacity: usize) -> Self {
        Trace {
            shared: Arc::new(TraceShared {
                level: AtomicU8::new(level as u8),
                origin: Instant::now(),
                capacity: capacity.max(1),
                threads: Mutex::new(Vec::new()),
                hists: hist::HistSet::new(),
            }),
        }
    }

    /// Current level.
    pub fn level(&self) -> TraceLevel {
        match self.shared.level.load(Ordering::Relaxed) {
            0 => TraceLevel::Off,
            1 => TraceLevel::Phase,
            _ => TraceLevel::Fine,
        }
    }

    /// Change the level at runtime (affects all clones).
    pub fn set_level(&self, level: TraceLevel) {
        self.shared.level.store(level as u8, Ordering::Relaxed);
    }

    /// Whether spans at `at` currently record. One relaxed load.
    #[inline]
    pub fn enabled(&self, at: TraceLevel) -> bool {
        self.shared.level.load(Ordering::Relaxed) >= at as u8
    }

    /// Nanoseconds since the trace origin.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.shared.origin.elapsed().as_nanos() as u64
    }

    /// Attach a tracer for the logical thread `name`. Reuses the buffer if
    /// the name registered before (workers respawned each superstep keep
    /// one track); `sort` orders tracks in exporters. Returns a disabled
    /// tracer when the level is [`TraceLevel::Off`].
    pub fn thread(&self, name: &str, sort: u32) -> ThreadTracer {
        if !self.enabled(TraceLevel::Phase) {
            return ThreadTracer::disabled();
        }
        let buf = {
            let mut reg = self.shared.threads.lock().unwrap();
            match reg.iter().find(|b| b.name == name) {
                Some(b) => Arc::clone(b),
                None => {
                    let b = Arc::new(ThreadBuf::new(name.to_string(), sort, self.shared.capacity));
                    reg.push(Arc::clone(&b));
                    b
                }
            }
        };
        ThreadTracer {
            inner: Some(TracerInner {
                buf,
                shared: Arc::clone(&self.shared),
            }),
            depth: StdCell::new(0),
        }
    }

    /// Record `v` into the histogram `kind` (no-op when tracing is off).
    #[inline]
    pub fn record_hist(&self, kind: HistKind, v: u64) {
        if self.enabled(TraceLevel::Phase) {
            self.shared.hists.get(kind).record(v);
        }
    }

    /// Take a consistent snapshot of everything recorded so far.
    pub fn snapshot(&self) -> TraceSnapshot {
        let mut threads: Vec<ThreadSpans> = self
            .shared
            .threads
            .lock()
            .unwrap()
            .iter()
            .map(|b| ThreadSpans {
                name: b.name.clone(),
                sort: b.sort,
                spans: b.spans(),
                dropped: b.dropped.load(Ordering::Relaxed),
            })
            .collect();
        threads.sort_by(|a, b| a.sort.cmp(&b.sort).then_with(|| a.name.cmp(&b.name)));
        TraceSnapshot {
            threads,
            hists: HistKind::ALL
                .iter()
                .map(|&k| self.shared.hists.get(k).snapshot(k))
                .collect(),
        }
    }

    /// Export the recorded spans as Chrome trace-event JSON (open in
    /// Perfetto / `chrome://tracing`): one track per logical thread.
    pub fn export_chrome(&self) -> String {
        chrome::export(&self.snapshot())
    }
}

struct TracerInner {
    buf: Arc<ThreadBuf>,
    shared: Arc<TraceShared>,
}

/// Per-logical-thread recording handle. Not `Sync`: each OS thread uses
/// its own tracer. Obtained from [`Trace::thread`].
pub struct ThreadTracer {
    inner: Option<TracerInner>,
    depth: StdCell<u8>,
}

impl ThreadTracer {
    /// A tracer that records nothing (what engines without a trace use).
    pub fn disabled() -> Self {
        ThreadTracer {
            inner: None,
            depth: StdCell::new(0),
        }
    }

    /// Whether this tracer records anything at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        match &self.inner {
            Some(t) => t.shared.level.load(Ordering::Relaxed) >= TraceLevel::Phase as u8,
            None => false,
        }
    }

    /// Whether fine-grained spans currently record on this tracer.
    #[inline]
    pub fn enabled_fine(&self) -> bool {
        match &self.inner {
            Some(t) => t.shared.level.load(Ordering::Relaxed) >= TraceLevel::Fine as u8,
            None => false,
        }
    }

    /// Nanoseconds since the trace origin (0 when disabled). Pair with
    /// [`ThreadTracer::record_closing`] for sites that only know after the
    /// fact whether a span is worth keeping.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(t) => t.shared.origin.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Record a closed span that started at `t0_ns` (from
    /// [`ThreadTracer::now_ns`]) and ends now — for conditional sites like
    /// mover drains, where empty polls should leave no span behind.
    pub fn record_closing(&self, phase: Phase, step: u32, t0_ns: u64) {
        if let Some(t) = &self.inner {
            if t.shared.level.load(Ordering::Relaxed) >= phase.level() as u8 {
                let t1 = t.shared.origin.elapsed().as_nanos() as u64;
                t.buf.push(phase, self.depth.get(), step, t0_ns, t1);
            }
        }
    }

    /// Open a span for `phase` in superstep `step`; it records when the
    /// returned guard drops. Disabled (cost: one relaxed load) when the
    /// trace level is below the phase's level.
    #[inline]
    pub fn span(&self, phase: Phase, step: u32) -> SpanGuard<'_> {
        let armed = match &self.inner {
            Some(t) => t.shared.level.load(Ordering::Relaxed) >= phase.level() as u8,
            None => false,
        };
        if !armed {
            return SpanGuard {
                tracer: None,
                phase,
                step,
                depth: 0,
                t0_ns: 0,
            };
        }
        let t = self.inner.as_ref().unwrap();
        let depth = self.depth.get();
        self.depth.set(depth.saturating_add(1));
        SpanGuard {
            tracer: Some(self),
            phase,
            step,
            depth,
            t0_ns: t.shared.origin.elapsed().as_nanos() as u64,
        }
    }
}

/// RAII guard: records its span into the owning tracer's ring on drop.
pub struct SpanGuard<'a> {
    tracer: Option<&'a ThreadTracer>,
    phase: Phase,
    step: u32,
    depth: u8,
    t0_ns: u64,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(tr) = self.tracer {
            // `tracer` is only Some when inner was Some at creation.
            if let Some(t) = &tr.inner {
                let t1 = t.shared.origin.elapsed().as_nanos() as u64;
                t.buf
                    .push(self.phase, self.depth, self.step, self.t0_ns, t1);
                tr.depth.set(tr.depth.get().saturating_sub(1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(TraceLevel::Off < TraceLevel::Phase);
        assert!(TraceLevel::Phase < TraceLevel::Fine);
        for l in [TraceLevel::Off, TraceLevel::Phase, TraceLevel::Fine] {
            assert_eq!(l.name().parse::<TraceLevel>().unwrap(), l);
        }
        assert!("loud".parse::<TraceLevel>().is_err());
    }

    #[test]
    fn phase_names_unique_and_packed() {
        let mut names: Vec<&str> = ALL_PHASES.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL_PHASES.len());
        for (i, p) in ALL_PHASES.iter().enumerate() {
            assert_eq!(*p as u8 as usize, i);
            let (q, d, s) = unpack_meta(pack_meta(*p, 3, 123_456));
            assert_eq!(q, *p);
            assert_eq!(d, 3);
            assert_eq!(s, 123_456);
        }
    }

    #[test]
    fn spans_record_with_nesting_and_steps() {
        let tr = Trace::new(TraceLevel::Phase);
        let t = tr.thread("main", 0);
        {
            let _outer = t.span(Phase::Superstep, 0);
            {
                let _g = t.span(Phase::Generate, 0);
            }
            {
                let _u = t.span(Phase::Update, 0);
            }
        }
        {
            let _outer = t.span(Phase::Superstep, 1);
        }
        let snap = tr.snapshot();
        assert_eq!(snap.threads.len(), 1);
        let spans = &snap.threads[0].spans;
        // Completion order: generate, update, superstep0, superstep1.
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].phase, Phase::Generate);
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[2].phase, Phase::Superstep);
        assert_eq!(spans[2].depth, 0);
        assert_eq!(spans[3].step, 1);
        // Nesting: children inside parents.
        assert!(spans[2].t0_ns <= spans[0].t0_ns && spans[0].t1_ns <= spans[2].t1_ns);
        assert!(spans[0].t1_ns <= spans[1].t0_ns, "siblings don't overlap");
        assert_eq!(snap.total_dropped(), 0);
    }

    #[test]
    fn off_level_records_nothing() {
        let tr = Trace::new(TraceLevel::Off);
        let t = tr.thread("main", 0);
        assert!(!t.enabled());
        let _s = t.span(Phase::Generate, 0);
        drop(_s);
        tr.record_hist(HistKind::FlushBatch, 10);
        let snap = tr.snapshot();
        assert_eq!(snap.total_spans(), 0);
        assert!(snap.threads.is_empty(), "off traces register no threads");
        assert!(snap.hists.iter().all(|h| h.count == 0));
    }

    #[test]
    fn fine_spans_gated_by_level() {
        let tr = Trace::new(TraceLevel::Phase);
        let t = tr.thread("m", 0);
        drop(t.span(Phase::Flush, 0));
        drop(t.span(Phase::Generate, 0));
        assert_eq!(tr.snapshot().total_spans(), 1);
        tr.set_level(TraceLevel::Fine);
        drop(t.span(Phase::Flush, 0));
        assert_eq!(tr.snapshot().total_spans(), 2);
    }

    #[test]
    fn ring_overflow_counts_drops() {
        let tr = Trace::with_capacity(TraceLevel::Phase, 4);
        let t = tr.thread("m", 0);
        for i in 0..10 {
            drop(t.span(Phase::Generate, i));
        }
        let snap = tr.snapshot();
        assert_eq!(snap.threads[0].spans.len(), 4);
        assert_eq!(snap.threads[0].dropped, 6);
    }

    #[test]
    fn thread_registry_reuses_buffers_by_name() {
        let tr = Trace::new(TraceLevel::Phase);
        for step in 0..3 {
            let t = tr.thread("worker-0", 1);
            drop(t.span(Phase::Generate, step));
        }
        let snap = tr.snapshot();
        assert_eq!(snap.threads.len(), 1);
        assert_eq!(snap.threads[0].spans.len(), 3);
        // Timestamps across re-attachments stay monotonic.
        let s = &snap.threads[0].spans;
        assert!(s.windows(2).all(|w| w[0].t1_ns <= w[1].t0_ns));
    }

    #[test]
    fn snapshot_sorts_tracks() {
        let tr = Trace::new(TraceLevel::Phase);
        tr.thread("z-late", 5);
        tr.thread("a-main", 0);
        tr.thread("b-main", 0);
        let names: Vec<String> = tr.snapshot().threads.into_iter().map(|t| t.name).collect();
        assert_eq!(names, ["a-main", "b-main", "z-late"]);
    }

    #[test]
    fn phase_seconds_sums_durations() {
        let tr = Trace::new(TraceLevel::Phase);
        let t = tr.thread("m", 0);
        {
            let _s = t.span(Phase::Process, 0);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = tr.snapshot();
        assert!(snap.phase_seconds(Phase::Process) >= 0.002);
        assert_eq!(snap.phase_seconds(Phase::Migrate), 0.0);
    }

    #[test]
    fn hist_roundtrip_through_trace() {
        let tr = Trace::new(TraceLevel::Phase);
        tr.record_hist(HistKind::InsertSlice, 5);
        tr.record_hist(HistKind::InsertSlice, 9);
        let snap = tr.snapshot();
        let h = snap
            .hists
            .iter()
            .find(|h| h.name == "insert_slice_len")
            .unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 14);
    }
}
