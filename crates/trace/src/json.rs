//! Hand-rolled JSON: escape/format helpers for the exporters and a small
//! recursive-descent parser for the `report` tooling and tests.
//!
//! The workspace builds hermetically offline, so there is no `serde`;
//! every exporter writes strings through these helpers and every consumer
//! reads them back through [`Json::parse`].

/// Escape `s` into a JSON string literal (with surrounding quotes).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an `f64` as a JSON number. JSON has no NaN/Inf, so those map to
/// `0` (they only arise from degenerate zero-length runs).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        // Shortest round-trip formatting Rust gives us.
        let s = format!("{v}");
        // `{}` on f64 never produces exponents for sane magnitudes and
        // always includes a digit; valid JSON as-is.
        s
    } else {
        "0".to_string()
    }
}

/// A parsed JSON value. Object fields keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if numeric.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// `get(key)` then `as_f64`, defaulting to 0.0 — the common case when
    /// reading report dumps whose older versions may lack a field.
    pub fn f64_or_0(&self, key: &str) -> f64 {
        self.get(key).and_then(Json::as_f64).unwrap_or(0.0)
    }

    /// `get(key)` then `as_u64`, defaulting to 0.
    pub fn u64_or_0(&self, key: &str) -> u64 {
        self.get(key).and_then(Json::as_u64).unwrap_or(0)
    }
}

/// Incremental pretty-printed JSON builder: the write-side complement of
/// [`Json::parse`]. Exporters that assemble nested documents (the bench
/// `BENCH_*.json` reports, future structured dumps) push keyed fields and
/// containers instead of hand-concatenating braces; indentation and comma
/// placement are handled here so the output is stable and diff-friendly.
///
/// ```
/// use phigraph_trace::json::{Json, JsonBuf};
/// let mut b = JsonBuf::obj();
/// b.str("name", "spsc");
/// b.num("mean_ns", 12.5);
/// b.begin_arr("entries");
/// b.elem_num(1.0);
/// b.elem_num(2.0);
/// b.end();
/// let text = b.finish();
/// assert!(Json::parse(&text).is_ok());
/// ```
pub struct JsonBuf {
    out: String,
    /// Open containers: closing byte + "has at least one item" flag.
    stack: Vec<(u8, bool)>,
}

impl JsonBuf {
    /// Start a document whose root is an object.
    pub fn obj() -> Self {
        JsonBuf {
            out: String::from("{"),
            stack: vec![(b'}', false)],
        }
    }

    /// Newline + indent + comma bookkeeping before the next item.
    fn item(&mut self) {
        if let Some(top) = self.stack.last_mut() {
            if top.1 {
                self.out.push(',');
            }
            top.1 = true;
        }
        self.out.push('\n');
        for _ in 0..self.stack.len() {
            self.out.push_str("  ");
        }
    }

    fn keyed(&mut self, key: &str) {
        self.item();
        self.out.push_str(&quote(key));
        self.out.push_str(": ");
    }

    /// `"key": "value"`.
    pub fn str(&mut self, key: &str, v: &str) {
        self.keyed(key);
        self.out.push_str(&quote(v));
    }

    /// `"key": <number>` (NaN/Inf map to 0, as in [`num`]).
    pub fn num(&mut self, key: &str, v: f64) {
        self.keyed(key);
        self.out.push_str(&num(v));
    }

    /// `"key": <integer>`.
    pub fn int(&mut self, key: &str, v: u64) {
        self.keyed(key);
        self.out.push_str(&v.to_string());
    }

    /// `"key": true|false`.
    pub fn bool(&mut self, key: &str, v: bool) {
        self.keyed(key);
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Open `"key": {`; close with [`JsonBuf::end`].
    pub fn begin_obj(&mut self, key: &str) {
        self.keyed(key);
        self.out.push('{');
        self.stack.push((b'}', false));
    }

    /// Open `"key": [`; close with [`JsonBuf::end`].
    pub fn begin_arr(&mut self, key: &str) {
        self.keyed(key);
        self.out.push('[');
        self.stack.push((b']', false));
    }

    /// Open an object as the next *array element*.
    pub fn elem_obj(&mut self) {
        self.item();
        self.out.push('{');
        self.stack.push((b'}', false));
    }

    /// Push a number as the next *array element*.
    pub fn elem_num(&mut self, v: f64) {
        self.item();
        self.out.push_str(&num(v));
    }

    /// Push a string as the next *array element*.
    pub fn elem_str(&mut self, v: &str) {
        self.item();
        self.out.push_str(&quote(v));
    }

    /// Close the innermost open container (the root closes in `finish`).
    pub fn end(&mut self) {
        debug_assert!(self.stack.len() > 1, "end() would close the root");
        if self.stack.len() > 1 {
            let (closer, had_items) = self.stack.pop().expect("non-empty stack");
            if had_items {
                self.out.push('\n');
                for _ in 0..self.stack.len() {
                    self.out.push_str("  ");
                }
            }
            self.out.push(closer as char);
        }
    }

    /// Close every open container and return the document (trailing
    /// newline included, so files end POSIX-clean).
    pub fn finish(mut self) -> String {
        while self.stack.len() > 1 {
            self.end();
        }
        let (closer, had_items) = self.stack.pop().expect("root container");
        if had_items {
            self.out.push('\n');
        }
        self.out.push(closer as char);
        self.out.push('\n');
        self.out
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte aware).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoting_escapes() {
        assert_eq!(quote("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(quote("tab\tcr\r"), "\"tab\\tcr\\r\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
        assert_eq!(quote("héllo"), "\"héllo\"");
    }

    #[test]
    fn numbers_are_json_safe() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(0.0), "0");
        assert_eq!(num(f64::NAN), "0");
        assert_eq!(num(f64::INFINITY), "0");
        // Round trip.
        for v in [0.1, 123456.789, 1e-9, -2.5] {
            let j = Json::parse(&num(v)).unwrap();
            assert!((j.as_f64().unwrap() - v).abs() < 1e-12);
        }
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            Json::parse(r#""a\nbA""#).unwrap(),
            Json::Str("a\nbA".to_string())
        );
    }

    #[test]
    fn parse_nested_and_accessors() {
        let j = Json::parse(r#"{"a": [1, 2, {"b": "x"}], "c": {"d": 4.5}, "e": null}"#).unwrap();
        assert_eq!(j.get("c").unwrap().f64_or_0("d"), 4.5);
        assert_eq!(j.f64_or_0("missing"), 0.0);
        assert_eq!(j.u64_or_0("missing"), 0);
        let arr = j.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(j.get("e"), Some(&Json::Null));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn jsonbuf_builds_parseable_nested_documents() {
        let mut b = JsonBuf::obj();
        b.str("schema", "v1");
        b.int("count", 3);
        b.bool("smoke", true);
        b.begin_obj("env");
        b.str("os", "linux");
        b.num("load", 0.5);
        b.end();
        b.begin_arr("entries");
        b.elem_obj();
        b.str("label", "a/b");
        b.num("mean_ns", 1250.0);
        b.end();
        b.elem_num(7.0);
        b.elem_str("tail");
        b.end();
        let text = b.finish();
        let j = Json::parse(&text).expect("builder output parses");
        assert_eq!(j.get("schema").unwrap().as_str(), Some("v1"));
        assert_eq!(j.u64_or_0("count"), 3);
        assert_eq!(j.get("smoke").unwrap().as_bool(), Some(true));
        assert_eq!(j.get("env").unwrap().f64_or_0("load"), 0.5);
        let entries = j.get("entries").unwrap().as_arr().unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].f64_or_0("mean_ns"), 1250.0);
        assert_eq!(entries[2].as_str(), Some("tail"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn jsonbuf_empty_and_unclosed_containers() {
        // Empty root object.
        assert_eq!(JsonBuf::obj().finish(), "{}\n");
        // finish() auto-closes whatever is still open.
        let mut b = JsonBuf::obj();
        b.begin_arr("xs");
        b.elem_num(1.0);
        let j = Json::parse(&b.finish()).unwrap();
        assert_eq!(j.get("xs").unwrap().as_arr().unwrap().len(), 1);
        // Empty nested containers render inline.
        let mut b = JsonBuf::obj();
        b.begin_obj("o");
        b.end();
        b.begin_arr("a");
        b.end();
        let text = b.finish();
        let j = Json::parse(&text).unwrap();
        assert_eq!(j.get("o"), Some(&Json::Obj(vec![])));
        assert_eq!(j.get("a"), Some(&Json::Arr(vec![])));
    }

    #[test]
    fn quote_parse_round_trip() {
        for s in [
            "",
            "plain",
            "with \"quotes\" and \\slashes\\",
            "newline\nhere",
            "unicode ✓",
        ] {
            let parsed = Json::parse(&quote(s)).unwrap();
            assert_eq!(parsed.as_str(), Some(s));
        }
    }
}
