//! Log2-bucketed histograms for engine distributions.
//!
//! Bucket `0` counts the value `0`; bucket `i ≥ 1` counts values `v` with
//! `2^(i-1) ≤ v < 2^i` — i.e. the bucket index is the bit length of `v`.
//! 33 buckets cover `0 ..= u32::MAX`-ish ranges; anything wider saturates
//! into the last bucket. Recording is one `fetch_add` per value plus the
//! count/sum tallies, so histograms are cheap enough to leave on for every
//! traced run.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets (0 plus bit lengths 1..=32).
pub const BUCKETS: usize = 33;

/// The distributions the engines feed. A closed set so the registry is a
/// fixed array with no locking or allocation on the record path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum HistKind {
    /// SPSC queue occupancy (messages) observed at each mover drain pass.
    QueueOccupancy = 0,
    /// Messages per worker→mover flush batch.
    FlushBatch = 1,
    /// Slice length per CSB `insert_slice` call on the mover path.
    InsertSlice = 2,
    /// Remote exchange round-trip latency in microseconds.
    ExchangeRttUs = 3,
    /// Barrier checkpoint write time in microseconds.
    CheckpointWriteUs = 4,
    /// Latency between a device going silent and the watchdog noticing,
    /// in milliseconds.
    WatchdogLatencyMs = 5,
    /// Serving daemon: time a job spent queued before a worker picked it
    /// up, in microseconds.
    JobWaitUs = 6,
    /// Serving daemon: job execution time on a worker, in microseconds.
    JobExecUs = 7,
    /// Serving daemon: one append to the crash-recovery job journal
    /// (serialize + write + flush), in microseconds.
    JournalAppendUs = 8,
    /// Serving daemon: hot graph reload time (load + validate + swap the
    /// shared CSR), in microseconds.
    GraphSwapUs = 9,
    /// Serving daemon: load-shedding ladder level observed at each
    /// admission decision (0 = normal, 3 = max shedding).
    ShedLevel = 10,
}

impl HistKind {
    /// Every kind, in discriminant order.
    pub const ALL: [HistKind; 11] = [
        HistKind::QueueOccupancy,
        HistKind::FlushBatch,
        HistKind::InsertSlice,
        HistKind::ExchangeRttUs,
        HistKind::CheckpointWriteUs,
        HistKind::WatchdogLatencyMs,
        HistKind::JobWaitUs,
        HistKind::JobExecUs,
        HistKind::JournalAppendUs,
        HistKind::GraphSwapUs,
        HistKind::ShedLevel,
    ];

    /// Stable metric name (Prometheus/JSON exports).
    pub fn name(&self) -> &'static str {
        match self {
            HistKind::QueueOccupancy => "queue_occupancy",
            HistKind::FlushBatch => "flush_batch_msgs",
            HistKind::InsertSlice => "insert_slice_len",
            HistKind::ExchangeRttUs => "exchange_rtt_us",
            HistKind::CheckpointWriteUs => "checkpoint_write_us",
            HistKind::WatchdogLatencyMs => "watchdog_latency_ms",
            HistKind::JobWaitUs => "job_wait_us",
            HistKind::JobExecUs => "job_exec_us",
            HistKind::JournalAppendUs => "journal_append_us",
            HistKind::GraphSwapUs => "graph_swap_us",
            HistKind::ShedLevel => "shed_level",
        }
    }
}

/// Bucket index for a value: 0 for 0, else bit length clamped to the last
/// bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the saturating
/// last bucket).
pub fn bucket_upper(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// One lock-free log2 histogram.
#[derive(Debug)]
pub struct Hist {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Hist {
    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Copy out the current state.
    pub fn snapshot(&self, kind: HistKind) -> HistSnapshot {
        HistSnapshot {
            name: kind.name(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Plain copied-out histogram state.
#[derive(Clone, Debug)]
pub struct HistSnapshot {
    /// Metric name from [`HistKind::name`].
    pub name: &'static str,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Per-bucket (non-cumulative) counts, length [`BUCKETS`].
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    /// An all-zero snapshot for `kind` — the identity for [`merge`] and
    /// the baseline for [`delta`] when no earlier sample exists.
    ///
    /// [`merge`]: HistSnapshot::merge
    /// [`delta`]: HistSnapshot::delta
    pub fn empty(kind: HistKind) -> Self {
        HistSnapshot {
            name: kind.name(),
            count: 0,
            sum: 0,
            buckets: vec![0; BUCKETS],
        }
    }

    /// Fold `other` into `self` bucket-by-bucket (plus count and sum).
    /// Merging snapshots of different kinds is a logic error and panics.
    pub fn merge(&mut self, other: &HistSnapshot) {
        assert_eq!(self.name, other.name, "merging mismatched histograms");
        self.count += other.count;
        self.sum += other.sum;
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// The difference `self − earlier`, saturating per bucket: the
    /// histogram of values recorded *between* the two snapshots. Because
    /// snapshots of a live histogram are not atomic across buckets, a
    /// bucket incremented mid-snapshot can appear in `earlier` but not
    /// yet in `self`; saturation keeps such windows non-negative instead
    /// of wrapping.
    pub fn delta(&self, earlier: &HistSnapshot) -> HistSnapshot {
        assert_eq!(self.name, earlier.name, "delta over mismatched histograms");
        HistSnapshot {
            name: self.name,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
        }
    }

    /// Mean recorded value (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Smallest bucket upper bound covering at least `q` (0..=1) of the
    /// recorded values — a log2-resolution quantile (`None` when empty).
    pub fn quantile_upper(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target.max(1) {
                return Some(bucket_upper(i));
            }
        }
        Some(u64::MAX)
    }

    /// Non-empty `(upper_bound, count)` pairs, for compact export.
    pub fn nonzero(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (bucket_upper(i), *c))
            .collect()
    }
}

/// The fixed registry of all histogram kinds.
#[derive(Debug, Default)]
pub struct HistSet {
    hists: [Hist; HistKind::ALL.len()],
}

impl HistSet {
    /// Empty set.
    pub fn new() -> Self {
        HistSet::default()
    }

    /// The histogram for `kind`.
    #[inline]
    pub fn get(&self, kind: HistKind) -> &Hist {
        &self.hists[kind as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
        // Every value sits at or below its bucket's upper bound.
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1000, 1 << 40] {
            assert!(v <= bucket_upper(bucket_index(v)), "v={v}");
        }
    }

    #[test]
    fn record_and_snapshot() {
        let h = Hist::default();
        for v in [0u64, 1, 2, 3, 8, 8, 1 << 40] {
            h.record(v);
        }
        let s = h.snapshot(HistKind::FlushBatch);
        assert_eq!(s.name, "flush_batch_msgs");
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 22 + (1 << 40));
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets[4], 2);
        // 1<<40 has bit length 41: saturates into the last bucket.
        assert_eq!(s.buckets[BUCKETS - 1], 1);
        assert_eq!(s.nonzero().len(), 5);
    }

    #[test]
    fn mean_and_quantiles() {
        let h = Hist::default();
        assert_eq!(h.snapshot(HistKind::FlushBatch).mean(), None);
        assert_eq!(h.snapshot(HistKind::FlushBatch).quantile_upper(0.5), None);
        for _ in 0..99 {
            h.record(4);
        }
        h.record(1 << 20);
        let s = h.snapshot(HistKind::FlushBatch);
        assert_eq!(s.quantile_upper(0.5), Some(7));
        assert_eq!(s.quantile_upper(1.0), Some((1 << 21) - 1));
        assert!((s.mean().unwrap() - (99.0 * 4.0 + (1 << 20) as f64) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Hist::default();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for v in 0..1000u64 {
                        h.record(v);
                    }
                });
            }
        });
        let s = h.snapshot(HistKind::QueueOccupancy);
        assert_eq!(s.count, 4000);
        assert_eq!(s.sum, 4 * (999 * 1000 / 2));
        assert_eq!(s.buckets.iter().sum::<u64>(), 4000);
    }

    #[test]
    fn empty_snapshot_merges_and_deltas_as_identity() {
        let empty = HistSnapshot::empty(HistKind::JobWaitUs);
        assert_eq!(empty.name, "job_wait_us");
        assert_eq!(empty.count, 0);
        assert_eq!(empty.buckets.len(), BUCKETS);
        assert_eq!(empty.mean(), None);
        assert_eq!(empty.quantile_upper(0.99), None);
        assert!(empty.nonzero().is_empty());

        let h = Hist::default();
        h.record(5);
        h.record(9);
        let s = h.snapshot(HistKind::JobWaitUs);

        // empty is the additive identity for merge …
        let mut merged = s.clone();
        merged.merge(&HistSnapshot::empty(HistKind::JobWaitUs));
        assert_eq!(merged.count, s.count);
        assert_eq!(merged.sum, s.sum);
        assert_eq!(merged.buckets, s.buckets);
        // … and the zero baseline for delta.
        let d = s.delta(&HistSnapshot::empty(HistKind::JobWaitUs));
        assert_eq!(d.count, s.count);
        assert_eq!(d.sum, s.sum);
        assert_eq!(d.buckets, s.buckets);
        // Delta of a snapshot against itself is empty.
        let z = s.delta(&s);
        assert_eq!(z.count, 0);
        assert_eq!(z.sum, 0);
        assert!(z.nonzero().is_empty());
    }

    #[test]
    fn single_bucket_snapshot_quantiles_collapse() {
        let h = Hist::default();
        for _ in 0..17 {
            h.record(6); // bit length 3 → bucket 3, upper bound 7.
        }
        let s = h.snapshot(HistKind::JobExecUs);
        assert_eq!(s.nonzero(), vec![(7, 17)]);
        // Every quantile of a one-bucket histogram is that bucket's
        // upper bound.
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile_upper(q), Some(7), "q={q}");
        }
        assert!((s.mean().unwrap() - 6.0).abs() < 1e-9);
        // Merging two copies doubles counts but leaves quantiles fixed.
        let mut m = s.clone();
        m.merge(&s);
        assert_eq!(m.count, 34);
        assert_eq!(m.quantile_upper(0.5), Some(7));
    }

    #[test]
    fn overflow_bucket_saturates_merge_and_delta() {
        let h = Hist::default();
        h.record(u64::MAX); // saturates into the last bucket …
        h.record(1 << 60); // … as does anything past bucket 32.
        let s = h.snapshot(HistKind::ExchangeRttUs);
        assert_eq!(s.buckets[BUCKETS - 1], 2);
        assert_eq!(s.quantile_upper(0.5), Some(u64::MAX));
        assert_eq!(s.quantile_upper(1.0), Some(u64::MAX));
        // The sum wrapped (u64::MAX + 2^60 overflows); count stays exact
        // and delta/merge stay well-defined on the buckets.
        let mut doubled = s.clone();
        doubled.merge(&s);
        assert_eq!(doubled.buckets[BUCKETS - 1], 4);
        let back = doubled.delta(&s);
        assert_eq!(back.buckets[BUCKETS - 1], 2);
        assert_eq!(back.count, 2);
        // Torn windows (earlier ahead of later in one bucket) saturate
        // to zero rather than wrapping to u64::MAX.
        let torn = s.delta(&doubled);
        assert_eq!(torn.count, 0);
        assert_eq!(torn.buckets[BUCKETS - 1], 0);
    }

    #[test]
    fn concurrent_record_during_snapshot_stays_consistent() {
        let h = std::sync::Arc::new(Hist::default());
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    while !stop.load(Ordering::Relaxed) {
                        for v in [1u64, 3, 200, 70_000] {
                            h.record(v);
                        }
                    }
                });
            }
            let mut last_total = 0u64;
            for _ in 0..200 {
                let snap = h.snapshot(HistKind::JournalAppendUs);
                let total: u64 = snap.buckets.iter().sum();
                // Bucket totals never regress across snapshots, and every
                // windowed delta against the previous snapshot is
                // non-negative in every bucket (the saturating contract).
                assert!(total >= last_total);
                last_total = total;
                // count is loaded before the buckets and bumped after
                // the bucket on the record path, so a mid-record
                // snapshot sees buckets at or ahead of the count —
                // never behind it.
                assert!(total >= snap.count);
            }
            stop.store(true, Ordering::Relaxed);
        });
        let fin = h.snapshot(HistKind::JournalAppendUs);
        assert_eq!(fin.buckets.iter().sum::<u64>(), fin.count);
    }

    #[test]
    fn kind_names_unique() {
        let mut names: Vec<&str> = HistKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), HistKind::ALL.len());
    }
}
