//! Chrome trace-event JSON export (the format Perfetto and
//! `chrome://tracing` load).
//!
//! One track (`tid`) per logical thread, named via `thread_name` metadata
//! events and ordered via `thread_sort_index`. Every span becomes a `"X"`
//! (complete) event with microsecond `ts`/`dur`; the superstep index rides
//! along in `args.step` so the UI can filter by superstep.

use crate::json::{num, quote};
use crate::TraceSnapshot;

/// Render a snapshot as a Chrome trace-event JSON object.
pub fn export(snap: &TraceSnapshot) -> String {
    let mut out = String::with_capacity(4096 + snap.total_spans() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let push = |s: String, first: &mut bool| -> String {
        let sep = if *first { "" } else { "," };
        *first = false;
        format!("{sep}\n{s}")
    };
    let mut body = String::new();
    for (tid, t) in snap.threads.iter().enumerate() {
        body.push_str(&push(
            format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":{}}}}}",
                quote(&t.name)
            ),
            &mut first,
        ));
        body.push_str(&push(
            format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_sort_index\",\
                 \"args\":{{\"sort_index\":{}}}}}",
                t.sort
            ),
            &mut first,
        ));
        for s in &t.spans {
            body.push_str(&push(
                format!(
                    "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"dur\":{},\
                     \"name\":{},\"args\":{{\"step\":{}}}}}",
                    num(s.t0_ns as f64 / 1_000.0),
                    num(s.dur_ns() as f64 / 1_000.0),
                    quote(s.phase.name()),
                    s.step
                ),
                &mut first,
            ));
        }
    }
    out.push_str(&body);
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use crate::json::Json;
    use crate::{Phase, Trace, TraceLevel};

    #[test]
    fn export_parses_and_names_tracks() {
        let tr = Trace::new(TraceLevel::Phase);
        let main = tr.thread("dev0", 0);
        let w = tr.thread("dev0/worker-0", 1);
        {
            let _s = main.span(Phase::Superstep, 0);
            let _g = w.span(Phase::Generate, 0);
        }
        let text = tr.export_chrome();
        let j = Json::parse(&text).expect("chrome export must be valid JSON");
        let events = j.get("traceEvents").unwrap().as_arr().unwrap();
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .filter(|e| e.get("name").unwrap().as_str() == Some("thread_name"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
            })
            .collect();
        assert_eq!(names, ["dev0", "dev0/worker-0"]);
        let spans: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        assert_eq!(spans.len(), 2);
        for s in spans {
            assert!(s.get("ts").unwrap().as_f64().unwrap() >= 0.0);
            assert!(s.get("dur").unwrap().as_f64().unwrap() >= 0.0);
            assert_eq!(s.get("args").unwrap().u64_or_0("step"), 0);
        }
    }

    #[test]
    fn empty_trace_exports_empty_event_list() {
        let tr = Trace::new(TraceLevel::Phase);
        let j = Json::parse(&tr.export_chrome()).unwrap();
        assert_eq!(j.get("traceEvents").unwrap().as_arr().unwrap().len(), 0);
    }
}
