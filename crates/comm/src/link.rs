//! PCIe link transfer model.
//!
//! The Xeon Phi SE10P sits on PCIe 2.0 x16: ~8 GB/s raw, ~6 GB/s achievable
//! with MPI over the bus, and a per-message latency in the tens of
//! microseconds. The exchange layer measures real byte volumes and converts
//! them to simulated transfer time here.

/// Bandwidth/latency model of the CPU↔MIC interconnect.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PcieLink {
    /// Achievable bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Per-transfer latency in microseconds (MPI rendezvous + DMA setup).
    pub latency_us: f64,
}

impl PcieLink {
    /// PCIe 2.0 x16 as used by the paper's testbed.
    pub fn gen2_x16() -> Self {
        PcieLink {
            bandwidth_gbs: 6.0,
            latency_us: 10.0,
        }
    }

    /// An idealized infinitely-fast link (for ablations isolating compute).
    pub fn ideal() -> Self {
        PcieLink {
            bandwidth_gbs: f64::INFINITY,
            latency_us: 0.0,
        }
    }

    /// Simulated seconds to transfer `bytes` in one message.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency_us * 1e-6 + bytes as f64 / (self.bandwidth_gbs * 1e9)
    }

    /// Simulated seconds for a bidirectional exchange where both directions
    /// share the bus (PCIe is full duplex, but MPI symmetric-mode exchanges
    /// through the host serialize partially; the model charges the larger
    /// direction plus half the smaller).
    pub fn exchange_time(&self, bytes_out: u64, bytes_in: u64) -> f64 {
        let big = bytes_out.max(bytes_in) as f64;
        let small = bytes_out.min(bytes_in) as f64;
        self.latency_us * 1e-6 + (big + 0.5 * small) / (self.bandwidth_gbs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_has_latency_floor() {
        let l = PcieLink::gen2_x16();
        assert!((l.transfer_time(0) - 10e-6).abs() < 1e-12);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let l = PcieLink::gen2_x16();
        let t = l.transfer_time(6_000_000_000);
        assert!((t - (10e-6 + 1.0)).abs() < 1e-6);
    }

    #[test]
    fn exchange_charges_larger_direction() {
        let l = PcieLink {
            bandwidth_gbs: 1.0,
            latency_us: 0.0,
        };
        let t = l.exchange_time(1_000_000_000, 0);
        assert!((t - 1.0).abs() < 1e-9);
        let t2 = l.exchange_time(1_000_000_000, 1_000_000_000);
        assert!((t2 - 1.5).abs() < 1e-9);
    }

    #[test]
    fn ideal_link_is_free() {
        assert_eq!(PcieLink::ideal().transfer_time(u64::MAX), 0.0);
    }
}
