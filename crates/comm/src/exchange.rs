//! Lock-step superstep exchange between the two device runtimes.
//!
//! Each superstep performs one "implicit remote message exchange step …
//! between devices": both ranks send their combined remote buffer and
//! receive the peer's, together with an `any_active` flag used for global
//! termination. The payload type is generic so both the POD message path
//! and the semi-clustering object-message path share the protocol; callers
//! supply the wire byte count for the transfer-time model.

use crate::link::PcieLink;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};

/// Statistics for one exchange.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ExchangeStats {
    /// Messages sent to the peer.
    pub msgs_sent: u64,
    /// Messages received from the peer.
    pub msgs_recv: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// Bytes received.
    pub bytes_recv: u64,
    /// Simulated transfer time for this exchange (seconds).
    pub sim_time: f64,
}

/// A detected exchange failure: the transfer for this superstep was lost on
/// the link. Both endpoints observe it at the same barrier (the poisoned
/// packet still crosses, carrying the failure flag), so the two device
/// runtimes abort the superstep consistently and recovery can roll both
/// sides back together.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExchangeDropped {
    /// Rank whose outgoing transfer was dropped.
    pub dropped_by: usize,
}

impl std::fmt::Display for ExchangeDropped {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "remote message exchange dropped (injected at rank {})",
            self.dropped_by
        )
    }
}

impl std::error::Error for ExchangeDropped {}

struct Packet<M> {
    msgs: Vec<M>,
    bytes: u64,
    any_active: bool,
    /// Failure signal: when set, this superstep's transfer is considered
    /// lost and both sides fail the exchange.
    poisoned: bool,
}

/// One side of the CPU↔MIC link.
pub struct Endpoint<M> {
    tx: SyncSender<Packet<M>>,
    rx: Receiver<Packet<M>>,
    /// Armed by [`Endpoint::inject_fault`]: the next exchange transmits a
    /// poisoned packet and fails on both sides.
    drop_next: AtomicBool,
    /// The link model used for simulated transfer time.
    pub link: PcieLink,
    /// 0 = CPU ("Rank 0"), 1 = MIC ("Rank 1").
    pub rank: usize,
}

/// Create a connected pair of endpoints over `link`.
pub fn duplex_pair<M: Send>(link: PcieLink) -> (Endpoint<M>, Endpoint<M>) {
    let (tx0, rx1) = sync_channel(1);
    let (tx1, rx0) = sync_channel(1);
    (
        Endpoint {
            tx: tx0,
            rx: rx0,
            drop_next: AtomicBool::new(false),
            link,
            rank: 0,
        },
        Endpoint {
            tx: tx1,
            rx: rx1,
            drop_next: AtomicBool::new(false),
            link,
            rank: 1,
        },
    )
}

impl<M: Send> Endpoint<M> {
    /// Exchange one superstep's remote messages with the peer. Blocks until
    /// the peer also exchanges. Returns the peer's messages, whether the
    /// peer still has active vertices, and the stats for this direction
    /// pair.
    pub fn exchange(
        &self,
        outgoing: Vec<M>,
        bytes_out: u64,
        any_active: bool,
    ) -> (Vec<M>, bool, ExchangeStats) {
        self.try_exchange(outgoing, bytes_out, any_active)
            .expect("exchange dropped with no recovery driver installed")
    }

    /// Arm a one-shot link failure: the next exchange on this endpoint
    /// transmits a poisoned packet, and both sides' `try_exchange` returns
    /// [`ExchangeDropped`] at the same barrier.
    pub fn inject_fault(&self) {
        self.drop_next.store(true, Ordering::Release);
    }

    /// Fallible exchange used by recovery-aware drivers. Behaves exactly
    /// like [`Endpoint::exchange`] unless a fault was injected on either
    /// side, in which case both sides get `Err(ExchangeDropped)` for this
    /// superstep and no payload is delivered.
    pub fn try_exchange(
        &self,
        outgoing: Vec<M>,
        bytes_out: u64,
        any_active: bool,
    ) -> Result<(Vec<M>, bool, ExchangeStats), ExchangeDropped> {
        let poisoned = self.drop_next.swap(false, Ordering::AcqRel);
        let msgs_sent = outgoing.len() as u64;
        self.tx
            .send(Packet {
                msgs: outgoing,
                bytes: bytes_out,
                any_active,
                poisoned,
            })
            .expect("peer endpoint dropped before exchange");
        let pkt = self.rx.recv().expect("peer endpoint dropped mid-exchange");
        if poisoned || pkt.poisoned {
            return Err(ExchangeDropped {
                dropped_by: if poisoned { self.rank } else { 1 - self.rank },
            });
        }
        let stats = ExchangeStats {
            msgs_sent,
            msgs_recv: pkt.msgs.len() as u64,
            bytes_sent: bytes_out,
            bytes_recv: pkt.bytes,
            sim_time: self.link.exchange_time(bytes_out, pkt.bytes),
        };
        Ok((pkt.msgs, pkt.any_active, stats))
    }

    /// Barrier-style exchange with no payload (used for the final halt
    /// handshake). Returns the peer's flag.
    pub fn sync_flag(&self, flag: bool) -> bool {
        let (_, peer, _) = self.exchange(Vec::new(), 0, flag);
        peer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::WireMsg;

    #[test]
    fn exchange_swaps_payloads() {
        let (a, b) = duplex_pair::<WireMsg<f32>>(PcieLink::gen2_x16());
        let t = std::thread::spawn(move || {
            let out = vec![WireMsg { dst: 1, value: 1.0 }];
            let (incoming, peer_active, stats) = b.exchange(out, 8, false);
            assert_eq!(incoming.len(), 2);
            assert!(peer_active);
            assert_eq!(stats.msgs_sent, 1);
            assert_eq!(stats.msgs_recv, 2);
            assert_eq!(stats.bytes_recv, 16);
        });
        let out = vec![
            WireMsg { dst: 5, value: 2.0 },
            WireMsg { dst: 6, value: 3.0 },
        ];
        let (incoming, peer_active, stats) = a.exchange(out, 16, true);
        assert_eq!(incoming.len(), 1);
        assert_eq!(incoming[0].dst, 1);
        assert!(!peer_active);
        assert_eq!(stats.bytes_sent, 16);
        assert!(stats.sim_time > 0.0);
        t.join().unwrap();
    }

    #[test]
    fn repeated_exchanges_stay_in_lockstep() {
        let (a, b) = duplex_pair::<u32>(PcieLink::ideal());
        let t = std::thread::spawn(move || {
            for i in 0..100u32 {
                let (incoming, _, _) = b.exchange(vec![i], 4, true);
                assert_eq!(incoming, vec![i * 2]);
            }
        });
        for i in 0..100u32 {
            let (incoming, _, _) = a.exchange(vec![i * 2], 4, true);
            assert_eq!(incoming, vec![i]);
        }
        t.join().unwrap();
    }

    #[test]
    fn sync_flag_round_trip() {
        let (a, b) = duplex_pair::<()>(PcieLink::ideal());
        let t = std::thread::spawn(move || b.sync_flag(true));
        assert!(a.sync_flag(false));
        assert!(!t.join().unwrap());
    }

    #[test]
    fn injected_fault_fails_both_sides_once() {
        let (a, b) = duplex_pair::<u32>(PcieLink::ideal());
        a.inject_fault();
        let t = std::thread::spawn(move || {
            // Peer did not inject, but observes the same failure.
            let err = b.try_exchange(vec![7], 4, true).unwrap_err();
            assert_eq!(err.dropped_by, 0);
            // Next superstep works again (one-shot fault).
            let (got, _, _) = b.try_exchange(vec![8], 4, true).unwrap();
            assert_eq!(got, vec![9]);
            b
        });
        let err = a.try_exchange(vec![1], 4, true).unwrap_err();
        assert_eq!(err.dropped_by, 0);
        let (got, _, _) = a.try_exchange(vec![9], 4, true).unwrap();
        assert_eq!(got, vec![8]);
        t.join().unwrap();
    }

    #[test]
    fn ranks_are_assigned() {
        let (a, b) = duplex_pair::<()>(PcieLink::ideal());
        assert_eq!(a.rank, 0);
        assert_eq!(b.rank, 1);
    }
}
