//! Lock-step superstep exchange between the two device runtimes.
//!
//! Each superstep performs one "implicit remote message exchange step …
//! between devices": both ranks send their combined remote buffer and
//! receive the peer's, together with an `any_active` flag used for global
//! termination. The payload type is generic so both the POD message path
//! and the semi-clustering object-message path share the protocol; callers
//! supply the wire byte count for the transfer-time model.

use crate::frame::FrameHeader;
use crate::link::PcieLink;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::time::{Duration, Instant};

/// Statistics for one exchange.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ExchangeStats {
    /// Messages sent to the peer.
    pub msgs_sent: u64,
    /// Messages received from the peer.
    pub msgs_recv: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// Bytes received.
    pub bytes_recv: u64,
    /// Simulated transfer time for this exchange (seconds).
    pub sim_time: f64,
}

/// A detected exchange failure: the transfer for this superstep was lost on
/// the link. Both endpoints observe it at the same barrier (the poisoned
/// packet still crosses, carrying the failure flag), so the two device
/// runtimes abort the superstep consistently and recovery can roll both
/// sides back together.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExchangeDropped {
    /// Rank whose outgoing transfer was dropped.
    pub dropped_by: usize,
}

impl std::fmt::Display for ExchangeDropped {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "remote message exchange dropped (injected at rank {})",
            self.dropped_by
        )
    }
}

impl std::error::Error for ExchangeDropped {}

/// The peer did not complete the exchange within the caller's deadline.
/// Unlike [`ExchangeDropped`] this is *asymmetric*: only the surviving rank
/// observes it (the peer is hung or wedged), so it is the watchdog signal
/// that drives failover rather than lock-step rollback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExchangeTimeout {
    /// Rank that timed out waiting.
    pub rank: usize,
    /// How long this rank waited before giving up, in milliseconds.
    pub waited_ms: u64,
}

impl std::fmt::Display for ExchangeTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "remote message exchange timed out at rank {} after {} ms",
            self.rank, self.waited_ms
        )
    }
}

impl std::error::Error for ExchangeTimeout {}

/// Every way a deadline-capable exchange can fail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExchangeError {
    /// The transfer was lost on the link; both sides observe this at the
    /// same barrier and can roll back together.
    Dropped(ExchangeDropped),
    /// The peer did not show up within the deadline (hung device).
    Timeout(ExchangeTimeout),
    /// The peer's endpoint no longer exists (crashed device): its side of
    /// the channel is disconnected.
    PeerDead,
}

impl std::fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExchangeError::Dropped(e) => e.fmt(f),
            ExchangeError::Timeout(e) => e.fmt(f),
            ExchangeError::PeerDead => write!(f, "peer endpoint is gone (device crashed)"),
        }
    }
}

impl std::error::Error for ExchangeError {}

/// What the peer reported alongside its payload.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PeerInfo {
    /// Whether the peer still has active vertices (global termination).
    pub any_active: bool,
    /// The peer's previous-superstep simulated compute time in seconds
    /// (straggler detection input; 0.0 before the first completed step).
    pub step_time: f64,
}

struct Packet<M> {
    msgs: Vec<M>,
    bytes: u64,
    any_active: bool,
    /// Sender's previous-superstep simulated compute time (seconds).
    step_time: f64,
    /// Failure signal: when set, this superstep's transfer is considered
    /// lost and both sides fail the exchange.
    poisoned: bool,
    /// Integrity seal over `msgs`, present when the sender runs with
    /// frame integrity enabled. Validation is the *caller's* job (the
    /// engine knows the wire format); the endpoint only carries the seal.
    frame: Option<FrameHeader>,
}

/// One side of a rank↔rank link. In the paper's 2-device topology this is
/// the CPU↔MIC PCIe link; the N-rank fabric holds one endpoint per
/// (rank, peer) pair.
pub struct Endpoint<M> {
    tx: SyncSender<Packet<M>>,
    rx: Receiver<Packet<M>>,
    /// Armed by [`Endpoint::inject_fault`]: the next exchange transmits a
    /// poisoned packet and fails on both sides.
    drop_next: AtomicBool,
    /// The link model used for simulated transfer time.
    pub link: PcieLink,
    /// This side's rank id (0 = CPU in the 2-device topology).
    pub rank: usize,
    /// The rank id on the other side of the link.
    pub peer: usize,
}

/// Deadline applied when a caller does not supply one: long enough that no
/// healthy lock-step run ever hits it, short enough that nothing blocks
/// forever when a peer is truly gone.
pub const DEFAULT_EXCHANGE_DEADLINE: Duration = Duration::from_secs(30);

/// Create a connected pair of endpoints over `link` (ranks 0 and 1).
pub fn duplex_pair<M: Send>(link: PcieLink) -> (Endpoint<M>, Endpoint<M>) {
    duplex_pair_ranked(link, 0, 1)
}

/// Create a connected pair of endpoints over `link` between two arbitrary
/// ranks: the first returned endpoint belongs to `rank_a`, the second to
/// `rank_b`. Building an all-to-all fabric is one call per rank pair.
pub fn duplex_pair_ranked<M: Send>(
    link: PcieLink,
    rank_a: usize,
    rank_b: usize,
) -> (Endpoint<M>, Endpoint<M>) {
    assert!(rank_a != rank_b, "a link needs two distinct ranks");
    let (tx0, rx1) = sync_channel(1);
    let (tx1, rx0) = sync_channel(1);
    (
        Endpoint {
            tx: tx0,
            rx: rx0,
            drop_next: AtomicBool::new(false),
            link,
            rank: rank_a,
            peer: rank_b,
        },
        Endpoint {
            tx: tx1,
            rx: rx1,
            drop_next: AtomicBool::new(false),
            link,
            rank: rank_b,
            peer: rank_a,
        },
    )
}

/// Build the full N-rank mesh: one duplex link per unordered rank pair.
/// Returns, for each rank, its endpoints sorted by ascending peer id. The
/// engines iterate peers in exactly that order, which is deadlock-free
/// because sends never block (each link's channel has capacity 1 and is
/// empty at the start of a round).
pub fn mesh<M: Send>(link: PcieLink, ranks: &[usize]) -> Vec<Vec<Endpoint<M>>> {
    let mut eps: Vec<Vec<Endpoint<M>>> = ranks.iter().map(|_| Vec::new()).collect();
    for i in 0..ranks.len() {
        for j in (i + 1)..ranks.len() {
            let (a, b) = duplex_pair_ranked(link, ranks[i], ranks[j]);
            eps[i].push(a);
            eps[j].push(b);
        }
    }
    for side in &mut eps {
        side.sort_by_key(|e| e.peer);
    }
    eps
}

impl<M: Send> Endpoint<M> {
    /// Exchange one superstep's remote messages with the peer. Blocks until
    /// the peer also exchanges. Returns the peer's messages, whether the
    /// peer still has active vertices, and the stats for this direction
    /// pair.
    pub fn exchange(
        &self,
        outgoing: Vec<M>,
        bytes_out: u64,
        any_active: bool,
    ) -> (Vec<M>, bool, ExchangeStats) {
        self.try_exchange(outgoing, bytes_out, any_active)
            .expect("exchange dropped with no recovery driver installed")
    }

    /// Arm a one-shot link failure: the next exchange on this endpoint
    /// transmits a poisoned packet, and both sides' `try_exchange` returns
    /// [`ExchangeDropped`] at the same barrier.
    pub fn inject_fault(&self) {
        self.drop_next.store(true, Ordering::Release);
    }

    /// Fallible exchange used by recovery-aware drivers. Behaves exactly
    /// like [`Endpoint::exchange`] unless a fault was injected on either
    /// side, in which case both sides get `Err(ExchangeDropped)` for this
    /// superstep and no payload is delivered.
    ///
    /// Waits for the peer with a generous internal deadline
    /// ([`DEFAULT_EXCHANGE_DEADLINE`]) rather than blocking forever; a peer
    /// that is gone or silent past that deadline is a bug in a lock-step
    /// caller and panics. Failover-aware callers should use
    /// [`Endpoint::try_exchange_deadline`] instead.
    pub fn try_exchange(
        &self,
        outgoing: Vec<M>,
        bytes_out: u64,
        any_active: bool,
    ) -> Result<(Vec<M>, bool, ExchangeStats), ExchangeDropped> {
        match self.try_exchange_deadline(
            outgoing,
            bytes_out,
            any_active,
            0.0,
            Some(DEFAULT_EXCHANGE_DEADLINE),
        ) {
            Ok((msgs, peer, stats)) => Ok((msgs, peer.any_active, stats)),
            Err(ExchangeError::Dropped(e)) => Err(e),
            Err(ExchangeError::Timeout(t)) => {
                panic!("lock-step exchange stalled: {t} (no failover driver installed)")
            }
            Err(ExchangeError::PeerDead) => {
                panic!("peer endpoint dropped mid-exchange (no failover driver installed)")
            }
        }
    }

    /// Deadline-capable exchange for failover-aware drivers. Sends this
    /// rank's payload (plus its previous-step simulated compute time for
    /// straggler detection) and waits at most `deadline` for the peer's.
    ///
    /// Outcomes:
    /// - `Ok((msgs, peer_info, stats))` — normal lock-step exchange.
    /// - `Err(Dropped)` — a fault was injected on either side; *both* ranks
    ///   observe this at the same barrier.
    /// - `Err(Timeout)` — the peer did not show up within `deadline`
    ///   (hung); only this rank observes it.
    /// - `Err(PeerDead)` — the peer's endpoint was dropped (crashed); only
    ///   this rank observes it.
    ///
    /// `deadline = None` waits with [`DEFAULT_EXCHANGE_DEADLINE`] so no
    /// caller can block unboundedly.
    pub fn try_exchange_deadline(
        &self,
        outgoing: Vec<M>,
        bytes_out: u64,
        any_active: bool,
        step_time: f64,
        deadline: Option<Duration>,
    ) -> Result<(Vec<M>, PeerInfo, ExchangeStats), ExchangeError> {
        self.try_exchange_framed(outgoing, None, bytes_out, any_active, step_time, deadline)
            .map(|(msgs, _frame, peer, stats)| (msgs, peer, stats))
    }

    /// Like [`Endpoint::try_exchange_deadline`] but carrying an integrity
    /// seal ([`FrameHeader`]) alongside the payload. The endpoint is a dumb
    /// pipe for the seal: sealing before send and validating after receive
    /// are the caller's job (the engine knows the wire format and owns the
    /// re-exchange policy on mismatch). Callers running with integrity off
    /// pass `None` and receive whatever the peer attached (also `None` for
    /// a peer with integrity off).
    pub fn try_exchange_framed(
        &self,
        outgoing: Vec<M>,
        frame: Option<FrameHeader>,
        bytes_out: u64,
        any_active: bool,
        step_time: f64,
        deadline: Option<Duration>,
    ) -> Result<(Vec<M>, Option<FrameHeader>, PeerInfo, ExchangeStats), ExchangeError> {
        let poisoned = self.drop_next.swap(false, Ordering::AcqRel);
        let msgs_sent = outgoing.len() as u64;
        if self
            .tx
            .send(Packet {
                msgs: outgoing,
                bytes: bytes_out,
                any_active,
                step_time,
                poisoned,
                frame,
            })
            .is_err()
        {
            return Err(ExchangeError::PeerDead);
        }
        let wait = deadline.unwrap_or(DEFAULT_EXCHANGE_DEADLINE);
        let start = Instant::now();
        let pkt = match self.rx.recv_timeout(wait) {
            Ok(pkt) => pkt,
            Err(RecvTimeoutError::Timeout) => {
                return Err(ExchangeError::Timeout(ExchangeTimeout {
                    rank: self.rank,
                    waited_ms: start.elapsed().as_millis() as u64,
                }))
            }
            Err(RecvTimeoutError::Disconnected) => return Err(ExchangeError::PeerDead),
        };
        if poisoned || pkt.poisoned {
            return Err(ExchangeError::Dropped(ExchangeDropped {
                dropped_by: if poisoned { self.rank } else { self.peer },
            }));
        }
        let stats = ExchangeStats {
            msgs_sent,
            msgs_recv: pkt.msgs.len() as u64,
            bytes_sent: bytes_out,
            bytes_recv: pkt.bytes,
            sim_time: self.link.exchange_time(bytes_out, pkt.bytes),
        };
        Ok((
            pkt.msgs,
            pkt.frame,
            PeerInfo {
                any_active: pkt.any_active,
                step_time: pkt.step_time,
            },
            stats,
        ))
    }

    /// Barrier-style exchange with no payload (used for the final halt
    /// handshake). Returns the peer's flag.
    pub fn sync_flag(&self, flag: bool) -> bool {
        let (_, peer, _) = self.exchange(Vec::new(), 0, flag);
        peer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::WireMsg;

    #[test]
    fn exchange_swaps_payloads() {
        let (a, b) = duplex_pair::<WireMsg<f32>>(PcieLink::gen2_x16());
        let t = std::thread::spawn(move || {
            let out = vec![WireMsg { dst: 1, value: 1.0 }];
            let (incoming, peer_active, stats) = b.exchange(out, 8, false);
            assert_eq!(incoming.len(), 2);
            assert!(peer_active);
            assert_eq!(stats.msgs_sent, 1);
            assert_eq!(stats.msgs_recv, 2);
            assert_eq!(stats.bytes_recv, 16);
        });
        let out = vec![
            WireMsg { dst: 5, value: 2.0 },
            WireMsg { dst: 6, value: 3.0 },
        ];
        let (incoming, peer_active, stats) = a.exchange(out, 16, true);
        assert_eq!(incoming.len(), 1);
        assert_eq!(incoming[0].dst, 1);
        assert!(!peer_active);
        assert_eq!(stats.bytes_sent, 16);
        assert!(stats.sim_time > 0.0);
        t.join().unwrap();
    }

    #[test]
    fn repeated_exchanges_stay_in_lockstep() {
        let (a, b) = duplex_pair::<u32>(PcieLink::ideal());
        let t = std::thread::spawn(move || {
            for i in 0..100u32 {
                let (incoming, _, _) = b.exchange(vec![i], 4, true);
                assert_eq!(incoming, vec![i * 2]);
            }
        });
        for i in 0..100u32 {
            let (incoming, _, _) = a.exchange(vec![i * 2], 4, true);
            assert_eq!(incoming, vec![i]);
        }
        t.join().unwrap();
    }

    #[test]
    fn sync_flag_round_trip() {
        let (a, b) = duplex_pair::<()>(PcieLink::ideal());
        let t = std::thread::spawn(move || b.sync_flag(true));
        assert!(a.sync_flag(false));
        assert!(!t.join().unwrap());
    }

    #[test]
    fn injected_fault_fails_both_sides_once() {
        let (a, b) = duplex_pair::<u32>(PcieLink::ideal());
        a.inject_fault();
        let t = std::thread::spawn(move || {
            // Peer did not inject, but observes the same failure.
            let err = b.try_exchange(vec![7], 4, true).unwrap_err();
            assert_eq!(err.dropped_by, 0);
            // Next superstep works again (one-shot fault).
            let (got, _, _) = b.try_exchange(vec![8], 4, true).unwrap();
            assert_eq!(got, vec![9]);
            b
        });
        let err = a.try_exchange(vec![1], 4, true).unwrap_err();
        assert_eq!(err.dropped_by, 0);
        let (got, _, _) = a.try_exchange(vec![9], 4, true).unwrap();
        assert_eq!(got, vec![8]);
        t.join().unwrap();
    }

    #[test]
    fn ranks_are_assigned() {
        let (a, b) = duplex_pair::<()>(PcieLink::ideal());
        assert_eq!(a.rank, 0);
        assert_eq!(a.peer, 1);
        assert_eq!(b.rank, 1);
        assert_eq!(b.peer, 0);
    }

    #[test]
    fn ranked_pairs_carry_arbitrary_ids() {
        let (a, b) = duplex_pair_ranked::<u32>(PcieLink::ideal(), 2, 5);
        assert_eq!((a.rank, a.peer), (2, 5));
        assert_eq!((b.rank, b.peer), (5, 2));
        // dropped_by names the injecting side by its real rank id.
        a.inject_fault();
        let t = std::thread::spawn(move || {
            let err = b.try_exchange(vec![1], 4, true).unwrap_err();
            assert_eq!(err.dropped_by, 2);
        });
        let err = a.try_exchange(vec![1], 4, true).unwrap_err();
        assert_eq!(err.dropped_by, 2);
        t.join().unwrap();
    }

    #[test]
    fn mesh_connects_every_pair_in_peer_order() {
        let eps = mesh::<u32>(PcieLink::ideal(), &[0, 1, 2, 3]);
        assert_eq!(eps.len(), 4);
        for (i, side) in eps.iter().enumerate() {
            let peers: Vec<usize> = side.iter().map(|e| e.peer).collect();
            let want: Vec<usize> = (0..4).filter(|&j| j != i).collect();
            assert_eq!(peers, want, "rank {i}");
            assert!(side.iter().all(|e| e.rank == i));
        }
        // All-to-all round: every rank sends its id to every peer.
        let handles: Vec<_> = eps
            .into_iter()
            .enumerate()
            .map(|(i, side)| {
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    for ep in &side {
                        let (incoming, _, _) = ep.exchange(vec![i as u32], 4, true);
                        got.extend(incoming);
                    }
                    got
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let got = h.join().unwrap();
            let want: Vec<u32> = (0..4u32).filter(|&j| j != i as u32).collect();
            assert_eq!(got, want, "rank {i}");
        }
    }

    #[test]
    fn deadline_exchange_times_out_on_silent_peer() {
        let (a, b) = duplex_pair::<u32>(PcieLink::ideal());
        // Peer exists but never exchanges (hung device).
        let err = a
            .try_exchange_deadline(vec![1], 4, true, 0.5, Some(Duration::from_millis(20)))
            .unwrap_err();
        match err {
            ExchangeError::Timeout(t) => {
                assert_eq!(t.rank, 0);
                assert!(t.waited_ms >= 20, "waited only {} ms", t.waited_ms);
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
        drop(b);
    }

    #[test]
    fn deadline_exchange_reports_dead_peer() {
        let (a, b) = duplex_pair::<u32>(PcieLink::ideal());
        drop(b); // crashed device: endpoint torn down
        let err = a
            .try_exchange_deadline(vec![1], 4, true, 0.0, Some(Duration::from_millis(50)))
            .unwrap_err();
        assert_eq!(err, ExchangeError::PeerDead);
    }

    #[test]
    fn deadline_exchange_carries_step_time() {
        let (a, b) = duplex_pair::<u32>(PcieLink::ideal());
        let t = std::thread::spawn(move || {
            let (_, info, _) = b
                .try_exchange_deadline(vec![2], 4, false, 7.5, None)
                .unwrap();
            assert!(info.any_active);
            assert_eq!(info.step_time, 3.25);
        });
        let (got, info, _) = a
            .try_exchange_deadline(vec![9], 4, true, 3.25, None)
            .unwrap();
        assert_eq!(got, vec![2]);
        assert!(!info.any_active);
        assert_eq!(info.step_time, 7.5);
        t.join().unwrap();
    }

    #[test]
    fn deadline_exchange_sees_injected_drop_on_both_sides() {
        let (a, b) = duplex_pair::<u32>(PcieLink::ideal());
        b.inject_fault();
        let t = std::thread::spawn(move || {
            let err = b
                .try_exchange_deadline(vec![1], 4, true, 0.0, None)
                .unwrap_err();
            assert_eq!(
                err,
                ExchangeError::Dropped(ExchangeDropped { dropped_by: 1 })
            );
        });
        let err = a
            .try_exchange_deadline(vec![2], 4, true, 0.0, None)
            .unwrap_err();
        assert_eq!(
            err,
            ExchangeError::Dropped(ExchangeDropped { dropped_by: 1 })
        );
        t.join().unwrap();
    }
}
