//! Per-destination message combining.
//!
//! "To reduce the communication overhead, a combination is conducted to the
//! remote message buffer. The combination result is sent to the other device
//! as a single MPI message. [The] runtime system invokes the user-defined
//! function `process_messages` for message combination."
//!
//! The combiner sorts by destination and folds runs with the program's
//! reduction operator, so at most one message per destination crosses the
//! link.

use crate::message::WireMsg;
use phigraph_simd::{MsgValue, ReduceOp};

/// Combine `msgs` in place by destination using reduction `Op`. Returns the
/// combined vector (sorted by destination) and the pre-combine count.
///
/// # Examples
///
/// ```
/// use phigraph_comm::{combine_messages, WireMsg};
/// use phigraph_simd::Sum;
/// let msgs = vec![
///     WireMsg { dst: 7, value: 1.0f32 },
///     WireMsg { dst: 7, value: 2.0 },
///     WireMsg { dst: 3, value: 5.0 },
/// ];
/// let (combined, before) = combine_messages::<f32, Sum>(msgs);
/// assert_eq!(before, 3);
/// assert_eq!(combined, vec![
///     WireMsg { dst: 3, value: 5.0 },
///     WireMsg { dst: 7, value: 3.0 },
/// ]);
/// ```
pub fn combine_messages<T: MsgValue, Op: ReduceOp<T>>(
    mut msgs: Vec<WireMsg<T>>,
) -> (Vec<WireMsg<T>>, usize) {
    let before = msgs.len();
    if msgs.len() <= 1 {
        return (msgs, before);
    }
    msgs.sort_unstable_by_key(|m| m.dst);
    let mut out: Vec<WireMsg<T>> = Vec::with_capacity(msgs.len());
    for m in msgs {
        match out.last_mut() {
            Some(last) if last.dst == m.dst => {
                last.value = Op::apply(last.value, m.value);
            }
            _ => out.push(m),
        }
    }
    (out, before)
}

/// Combine without reducing values: keep only the first message per
/// destination (for programs like BFS where any one message suffices).
pub fn combine_first<T: MsgValue>(msgs: Vec<WireMsg<T>>) -> (Vec<WireMsg<T>>, usize) {
    combine_messages::<T, phigraph_simd::NoReduce>(msgs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_simd::{Min, Sum};

    fn msg<T>(dst: u32, value: T) -> WireMsg<T> {
        WireMsg { dst, value }
    }

    #[test]
    fn sums_per_destination() {
        let (out, before) =
            combine_messages::<f32, Sum>(vec![msg(2, 1.0), msg(1, 5.0), msg(2, 2.5), msg(2, 0.5)]);
        assert_eq!(before, 4);
        assert_eq!(out, vec![msg(1, 5.0), msg(2, 4.0)]);
    }

    #[test]
    fn min_per_destination() {
        let (out, _) = combine_messages::<i32, Min>(vec![msg(7, 9), msg(7, 3), msg(7, 5)]);
        assert_eq!(out, vec![msg(7, 3)]);
    }

    #[test]
    fn distinct_destinations_untouched() {
        let input = vec![msg(3, 1.0f32), msg(1, 2.0), msg(2, 3.0)];
        let (out, before) = combine_messages::<f32, Sum>(input);
        assert_eq!(before, 3);
        assert_eq!(out.len(), 3);
        assert!(out.windows(2).all(|w| w[0].dst < w[1].dst));
    }

    #[test]
    fn empty_and_singleton() {
        let (out, before) = combine_messages::<f32, Sum>(vec![]);
        assert!(out.is_empty());
        assert_eq!(before, 0);
        let (out, _) = combine_messages::<f32, Sum>(vec![msg(0, 1.0)]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn combine_first_keeps_earliest() {
        // Stable for equal dst: first-in-input wins after the stable sort?
        // sort_unstable_by_key is not stable, but combine_first only
        // guarantees *some* single message per dst — check that contract.
        let (out, before) = combine_first(vec![msg(4, 10i32), msg(4, 20), msg(5, 1)]);
        assert_eq!(before, 3);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1], msg(5, 1));
        assert!(out[0].value == 10 || out[0].value == 20);
    }
}
