//! Loopback bench hook for the exchange path.
//!
//! The `phigraph-bench` exchange area needs a steady-state frame-exchange
//! loop without standing up two full device engines: this module runs N
//! lock-step rounds over a [`duplex_pair`](crate::exchange::duplex_pair)
//! with a peer thread echoing a same-sized payload back, optionally sealing
//! and verifying a [`FrameHeader`] per round (the frames-only integrity
//! cost). It lives in `phigraph-comm` rather than the bench crate so the
//! loop stays next to the endpoint implementation it measures and the
//! crate's own tests can assert on it.

use crate::exchange::duplex_pair;
use crate::frame::FrameHeader;
use crate::link::PcieLink;
use crate::message::WireMsg;

/// What one loopback run moved.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LoopbackStats {
    /// Lock-step rounds completed.
    pub rounds: u64,
    /// Messages moved across the link, both directions summed.
    pub msgs_moved: u64,
    /// Accumulated simulated transfer time (seconds) from the link model.
    pub sim_time: f64,
    /// Frames sealed+verified (0 when running unframed).
    pub frames_verified: u64,
}

/// Drive `rounds` lock-step exchanges of `msgs_per_round` messages each
/// way over `link`. With `framed`, each direction seals its payload with a
/// [`FrameHeader`] and verifies the peer's — the per-exchange cost of the
/// frames integrity mode. The payload is deterministic in `seed`, so two
/// runs move identical bytes.
///
/// Panics if a frame fails to verify (the loopback link is lossless; a
/// mismatch is a bug, not an injected fault).
pub fn loopback_rounds(
    link: PcieLink,
    rounds: usize,
    msgs_per_round: usize,
    framed: bool,
    seed: u64,
) -> LoopbackStats {
    let (a, b) = duplex_pair::<WireMsg<f32>>(link);
    let payload = move |rank: u64| -> Vec<WireMsg<f32>> {
        (0..msgs_per_round as u64)
            .map(|i| WireMsg {
                dst: (seed.wrapping_add(rank).wrapping_add(i) % 1024) as u32,
                value: (i % 97) as f32,
            })
            .collect()
    };
    let bytes = (msgs_per_round * std::mem::size_of::<WireMsg<f32>>()) as u64;
    let peer = std::thread::spawn(move || {
        let out = payload(1);
        for step in 0..rounds {
            let frame = framed.then(|| FrameHeader::seal(step as u64, &out));
            let (msgs, peer_frame, _, _) = b
                .try_exchange_framed(out.clone(), frame, bytes, true, 0.0, None)
                .expect("loopback exchange cannot fail");
            if let Some(f) = peer_frame {
                f.verify(step as u64, &msgs).expect("loopback frame intact");
            }
        }
    });
    let out = payload(0);
    let mut stats = LoopbackStats::default();
    for step in 0..rounds {
        let frame = framed.then(|| FrameHeader::seal(step as u64, &out));
        let (msgs, peer_frame, _, xstats) = a
            .try_exchange_framed(out.clone(), frame, bytes, true, 0.0, None)
            .expect("loopback exchange cannot fail");
        if let Some(f) = peer_frame {
            f.verify(step as u64, &msgs).expect("loopback frame intact");
            stats.frames_verified += 1;
        }
        stats.rounds += 1;
        stats.msgs_moved += xstats.msgs_sent + xstats.msgs_recv;
        stats.sim_time += xstats.sim_time;
    }
    peer.join().expect("loopback peer thread");
    stats
}

/// Drive `rounds` lock-step all-to-all rounds over an N-rank
/// [`mesh`](crate::exchange::mesh): every rank exchanges `msgs_per_round`
/// messages with every peer (ascending peer order, the engines' order) per
/// round, optionally sealing/verifying a [`FrameHeader`] per link. Returns
/// rank 0's stats; `ranks = 2` measures the same protocol as
/// [`loopback_rounds`] over the pairwise link.
pub fn loopback_all_to_all(
    link: PcieLink,
    ranks: usize,
    rounds: usize,
    msgs_per_round: usize,
    framed: bool,
    seed: u64,
) -> LoopbackStats {
    assert!(ranks >= 2, "all-to-all needs at least two ranks");
    let ids: Vec<usize> = (0..ranks).collect();
    let mut eps = crate::exchange::mesh::<WireMsg<f32>>(link, &ids);
    let payload = move |rank: u64| -> Vec<WireMsg<f32>> {
        (0..msgs_per_round as u64)
            .map(|i| WireMsg {
                dst: (seed.wrapping_add(rank).wrapping_add(i) % 1024) as u32,
                value: (i % 97) as f32,
            })
            .collect()
    };
    let bytes = (msgs_per_round * std::mem::size_of::<WireMsg<f32>>()) as u64;
    let run_rank = move |rank: usize, side: Vec<crate::exchange::Endpoint<WireMsg<f32>>>| {
        let out = payload(rank as u64);
        let mut stats = LoopbackStats::default();
        for step in 0..rounds {
            for ep in &side {
                let frame = framed.then(|| FrameHeader::seal(step as u64, &out));
                let (msgs, peer_frame, _, xstats) = ep
                    .try_exchange_framed(out.clone(), frame, bytes, true, 0.0, None)
                    .expect("loopback exchange cannot fail");
                if let Some(f) = peer_frame {
                    f.verify(step as u64, &msgs).expect("loopback frame intact");
                    stats.frames_verified += 1;
                }
                stats.msgs_moved += xstats.msgs_sent + xstats.msgs_recv;
                stats.sim_time += xstats.sim_time;
            }
            stats.rounds += 1;
        }
        stats
    };
    let mine = eps.remove(0);
    let peers: Vec<_> = eps
        .into_iter()
        .enumerate()
        .map(|(i, side)| std::thread::spawn(move || run_rank(i + 1, side)))
        .collect();
    let stats = run_rank(0, mine);
    for p in peers {
        p.join().expect("loopback peer thread");
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_moves_every_message_both_ways() {
        let s = loopback_rounds(PcieLink::ideal(), 10, 64, false, 7);
        assert_eq!(s.rounds, 10);
        assert_eq!(s.msgs_moved, 10 * 64 * 2);
        assert_eq!(s.frames_verified, 0);
    }

    #[test]
    fn framed_loopback_seals_and_verifies_every_round() {
        let s = loopback_rounds(PcieLink::gen2_x16(), 8, 32, true, 7);
        assert_eq!(s.rounds, 8);
        assert_eq!(s.frames_verified, 8);
        assert!(s.sim_time > 0.0, "link model accumulates transfer time");
    }

    #[test]
    fn loopback_is_deterministic_in_structure() {
        let a = loopback_rounds(PcieLink::ideal(), 5, 16, true, 42);
        let b = loopback_rounds(PcieLink::ideal(), 5, 16, true, 42);
        assert_eq!(a.msgs_moved, b.msgs_moved);
        assert_eq!(a.frames_verified, b.frames_verified);
    }

    #[test]
    fn empty_payload_rounds_are_fine() {
        let s = loopback_rounds(PcieLink::ideal(), 3, 0, true, 1);
        assert_eq!(s.rounds, 3);
        assert_eq!(s.msgs_moved, 0);
    }

    #[test]
    fn all_to_all_two_ranks_matches_pairwise_accounting() {
        let pair = loopback_rounds(PcieLink::ideal(), 10, 64, false, 7);
        let mesh = loopback_all_to_all(PcieLink::ideal(), 2, 10, 64, false, 7);
        assert_eq!(mesh.rounds, pair.rounds);
        assert_eq!(mesh.msgs_moved, pair.msgs_moved);
        assert_eq!(mesh.frames_verified, pair.frames_verified);
    }

    #[test]
    fn all_to_all_four_ranks_moves_messages_over_every_link() {
        let s = loopback_all_to_all(PcieLink::gen2_x16(), 4, 6, 32, true, 11);
        assert_eq!(s.rounds, 6);
        // Rank 0 has 3 links, each moving 32 messages out and 32 back.
        assert_eq!(s.msgs_moved, 6 * 3 * 32 * 2);
        assert_eq!(s.frames_verified, 6 * 3);
        assert!(s.sim_time > 0.0);
    }

    #[test]
    fn all_to_all_is_deterministic_in_structure() {
        let a = loopback_all_to_all(PcieLink::ideal(), 3, 4, 16, true, 42);
        let b = loopback_all_to_all(PcieLink::ideal(), 3, 4, 16, true, 42);
        assert_eq!(a, b);
    }
}
