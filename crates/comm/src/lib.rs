#![warn(missing_docs)]
//! Simulated PCIe interconnect between the CPU and MIC runtimes.
//!
//! The paper runs "MPI symmetric computing, with CPU being Rank 0, and MIC
//! being Rank 1", exchanging one combined message buffer per superstep over
//! the PCIe bus. With the MIC toolchain gone, the two ranks here are two
//! in-process device runtimes joined by bounded std channels; what remains
//! faithful is everything the paper actually studies:
//!
//! * the wire format and byte accounting ([`message`]),
//! * per-destination message combining before the exchange ([`combiner`] —
//!   "a combination is conducted to the remote message buffer"),
//! * the lock-step superstep exchange protocol ([`exchange`]),
//! * and the transfer-time model ([`link::PcieLink`]) that converts the
//!   measured byte volume into simulated communication time.

pub mod combiner;
pub mod exchange;
pub mod frame;
pub mod link;
pub mod loopback;
pub mod message;

pub use combiner::combine_messages;
pub use exchange::{
    duplex_pair, duplex_pair_ranked, mesh, Endpoint, ExchangeDropped, ExchangeError, ExchangeStats,
    ExchangeTimeout, PeerInfo, DEFAULT_EXCHANGE_DEADLINE,
};
pub use frame::{FrameError, FrameHeader};
pub use link::PcieLink;
pub use loopback::{loopback_all_to_all, loopback_rounds, LoopbackStats};
pub use message::WireMsg;
