//! Wire message format.
//!
//! "A message is a data unit containing a value pair, in the form of
//! `<dst_id, msg_value>`." The wire encoding is a 4-byte little-endian
//! destination id followed by the value's little-endian bytes — the same
//! density an MPI byte buffer of packed pairs would have, so byte-volume
//! accounting matches what the paper's PCIe transfers would carry.

use phigraph_simd::MsgValue;

/// One message on the wire: destination vertex and value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WireMsg<T> {
    /// Destination vertex id (global id space).
    pub dst: u32,
    /// Message value.
    pub value: T,
}

impl<T: MsgValue> WireMsg<T> {
    /// Encoded size in bytes.
    pub const WIRE_SIZE: usize = 4 + T::SIZE;

    /// Encode into `out` (must be at least [`Self::WIRE_SIZE`] bytes).
    pub fn encode(&self, out: &mut [u8]) {
        out[..4].copy_from_slice(&self.dst.to_le_bytes());
        self.value.write_le(&mut out[4..]);
    }

    /// Decode from `input` (must be at least [`Self::WIRE_SIZE`] bytes).
    pub fn decode(input: &[u8]) -> Self {
        let mut dst_bytes = [0u8; 4];
        dst_bytes.copy_from_slice(&input[..4]);
        WireMsg {
            dst: u32::from_le_bytes(dst_bytes),
            value: T::read_le(&input[4..]),
        }
    }
}

/// Encode a batch of messages into a contiguous byte buffer.
pub fn encode_batch<T: MsgValue>(msgs: &[WireMsg<T>]) -> Vec<u8> {
    let mut out = vec![0u8; msgs.len() * WireMsg::<T>::WIRE_SIZE];
    for (i, m) in msgs.iter().enumerate() {
        m.encode(&mut out[i * WireMsg::<T>::WIRE_SIZE..]);
    }
    out
}

/// Decode a contiguous byte buffer back into messages.
///
/// # Panics
/// Panics if the buffer length is not a multiple of the wire size.
pub fn decode_batch<T: MsgValue>(bytes: &[u8]) -> Vec<WireMsg<T>> {
    let sz = WireMsg::<T>::WIRE_SIZE;
    assert_eq!(bytes.len() % sz, 0, "ragged wire buffer");
    bytes.chunks_exact(sz).map(WireMsg::<T>::decode).collect()
}

/// Byte volume of `n` messages of value type `T`.
pub fn wire_bytes<T: MsgValue>(n: usize) -> u64 {
    (n * WireMsg::<T>::WIRE_SIZE) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_matches_pair_layout() {
        assert_eq!(WireMsg::<f32>::WIRE_SIZE, 8);
        assert_eq!(WireMsg::<f64>::WIRE_SIZE, 12);
        assert_eq!(WireMsg::<i32>::WIRE_SIZE, 8);
    }

    #[test]
    fn encode_decode_round_trip() {
        let m = WireMsg {
            dst: 123_456,
            value: -2.75f32,
        };
        let mut buf = [0u8; 8];
        m.encode(&mut buf);
        assert_eq!(WireMsg::<f32>::decode(&buf), m);
    }

    #[test]
    fn batch_round_trip() {
        let msgs: Vec<WireMsg<i64>> = (0..17)
            .map(|i| WireMsg {
                dst: i,
                value: i as i64 * -3,
            })
            .collect();
        let bytes = encode_batch(&msgs);
        assert_eq!(bytes.len() as u64, wire_bytes::<i64>(17));
        assert_eq!(decode_batch::<i64>(&bytes), msgs);
    }

    #[test]
    fn empty_batch() {
        let bytes = encode_batch::<f32>(&[]);
        assert!(bytes.is_empty());
        assert!(decode_batch::<f32>(&bytes).is_empty());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_buffer_panics() {
        decode_batch::<f32>(&[0u8; 7]);
    }
}
