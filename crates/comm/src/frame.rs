//! Exchange frame integrity: length/epoch headers + FNV checksums.
//!
//! A frame is one superstep's combined remote-message payload. Without a
//! header, a bit flipped on the link (or a truncated transfer) flows
//! silently into the peer's CSB and converges to a wrong answer. A
//! [`FrameHeader`] seals the payload with three fields the receiver can
//! validate in one linear pass:
//!
//! * `len` — message count; catches truncation/extension instantly,
//! * `epoch` — the sender's superstep index; catches cross-step frame
//!   replay or lock-step desync,
//! * `checksum` — FNV-1a 64 over every message's wire bytes, in order;
//!   catches bit flips anywhere in the payload.
//!
//! The hash is the same FNV-1a 64 the snapshot codec uses, re-derived here
//! so `phigraph-comm` stays free of a recovery-crate dependency. Sealing is
//! one pass over bytes that are about to cross the link anyway — the cost
//! the frames-only integrity mode pays per exchange, and nothing per
//! message on the intra-device path.

use crate::message::WireMsg;
use phigraph_simd::MsgValue;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv1a64_step(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Why a received frame failed validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Payload message count differs from the sealed count (truncated or
    /// extended frame).
    LengthMismatch {
        /// Message count the header promised.
        sealed: u64,
        /// Message count actually received.
        got: u64,
    },
    /// The frame was sealed at a different superstep than the receiver is
    /// executing (replayed or desynced frame).
    EpochMismatch {
        /// Epoch in the header.
        sealed: u64,
        /// Epoch the receiver expected.
        expected: u64,
    },
    /// Payload bytes do not hash to the sealed checksum (bit flip).
    ChecksumMismatch {
        /// Checksum in the header.
        sealed: u64,
        /// Checksum recomputed over the received payload.
        got: u64,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::LengthMismatch { sealed, got } => {
                write!(f, "frame length mismatch: sealed {sealed} msgs, got {got}")
            }
            FrameError::EpochMismatch { sealed, expected } => {
                write!(
                    f,
                    "frame epoch mismatch: sealed at step {sealed}, expected {expected}"
                )
            }
            FrameError::ChecksumMismatch { sealed, got } => {
                write!(
                    f,
                    "frame checksum mismatch: sealed {sealed:#018x}, got {got:#018x}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// The integrity seal carried alongside a framed exchange payload.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrameHeader {
    /// Superstep the frame was sealed at.
    pub epoch: u64,
    /// Number of messages sealed.
    pub len: u64,
    /// FNV-1a 64 over every message's wire bytes, in payload order.
    pub checksum: u64,
}

/// Hash a payload exactly as [`FrameHeader::seal`] does (exposed so tests
/// and fault injectors can forge/verify frames byte-for-byte).
pub fn payload_checksum<T: MsgValue>(msgs: &[WireMsg<T>]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut buf = [0u8; 4 + 16];
    for m in msgs {
        let wire = &mut buf[..WireMsg::<T>::WIRE_SIZE];
        m.encode(wire);
        h = fnv1a64_step(h, wire);
    }
    h
}

impl FrameHeader {
    /// Seal `msgs` for superstep `epoch`: one linear pass over the wire
    /// bytes, no allocation.
    pub fn seal<T: MsgValue>(epoch: u64, msgs: &[WireMsg<T>]) -> Self {
        FrameHeader {
            epoch,
            len: msgs.len() as u64,
            checksum: payload_checksum(msgs),
        }
    }

    /// Validate a received payload against this header at the receiver's
    /// `expected_epoch`. Checks cheapest-first: length, epoch, checksum.
    pub fn verify<T: MsgValue>(
        &self,
        expected_epoch: u64,
        msgs: &[WireMsg<T>],
    ) -> Result<(), FrameError> {
        if self.len != msgs.len() as u64 {
            return Err(FrameError::LengthMismatch {
                sealed: self.len,
                got: msgs.len() as u64,
            });
        }
        if self.epoch != expected_epoch {
            return Err(FrameError::EpochMismatch {
                sealed: self.epoch,
                expected: expected_epoch,
            });
        }
        let got = payload_checksum(msgs);
        if self.checksum != got {
            return Err(FrameError::ChecksumMismatch {
                sealed: self.checksum,
                got,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: u32) -> Vec<WireMsg<f32>> {
        (0..n)
            .map(|i| WireMsg {
                dst: i * 3,
                value: i as f32 * 0.5 - 1.0,
            })
            .collect()
    }

    #[test]
    fn clean_frames_verify() {
        for n in [0u32, 1, 7, 100] {
            let msgs = payload(n);
            let h = FrameHeader::seal(5, &msgs);
            assert_eq!(h.len, n as u64);
            h.verify(5, &msgs).unwrap();
        }
    }

    #[test]
    fn truncation_is_length_mismatch() {
        let mut msgs = payload(9);
        let h = FrameHeader::seal(2, &msgs);
        msgs.truncate(4);
        assert_eq!(
            h.verify(2, &msgs),
            Err(FrameError::LengthMismatch { sealed: 9, got: 4 })
        );
    }

    #[test]
    fn wrong_epoch_is_epoch_mismatch() {
        let msgs = payload(3);
        let h = FrameHeader::seal(7, &msgs);
        assert_eq!(
            h.verify(8, &msgs),
            Err(FrameError::EpochMismatch {
                sealed: 7,
                expected: 8
            })
        );
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        // Exhaustive: flip each bit of each message (dst and value) and
        // assert the checksum catches it. This is the 100%-detection
        // property the sweep tests rely on.
        let msgs = payload(4);
        let h = FrameHeader::seal(0, &msgs);
        for i in 0..msgs.len() {
            for bit in 0..64 {
                let mut corrupt = msgs.clone();
                if bit < 32 {
                    corrupt[i].dst ^= 1 << bit;
                } else {
                    corrupt[i].value =
                        f32::from_bits(corrupt[i].value.to_bits() ^ (1 << (bit - 32)));
                }
                assert!(
                    matches!(
                        h.verify(0, &corrupt),
                        Err(FrameError::ChecksumMismatch { .. })
                    ),
                    "msg {i} bit {bit} slipped through"
                );
            }
        }
    }

    #[test]
    fn errors_display_cleanly() {
        let msgs = payload(2);
        let h = FrameHeader::seal(1, &msgs);
        let e = h.verify(1, &msgs[..1]).unwrap_err();
        assert!(e.to_string().contains("length mismatch"));
        let e = h.verify(3, &msgs).unwrap_err();
        assert!(e.to_string().contains("epoch mismatch"));
    }
}
