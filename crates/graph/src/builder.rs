//! Incremental graph construction.

use crate::csr::Csr;
use crate::edge_list::EdgeList;
use crate::types::VertexId;

/// A convenience builder that grows the vertex set automatically and can
/// deduplicate edges before producing a [`Csr`].
/// # Examples
///
/// ```
/// use phigraph_graph::GraphBuilder;
/// let mut b = GraphBuilder::new().dedup(true);
/// b.add_edge(0, 3).add_edge(3, 1).add_edge(0, 3);
/// let g = b.build();
/// assert_eq!(g.num_vertices(), 4);
/// assert_eq!(g.num_edges(), 2); // duplicate removed
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    edges: Vec<(VertexId, VertexId)>,
    weights: Vec<f32>,
    weighted: bool,
    max_vertex: Option<VertexId>,
    dedup: bool,
}

impl GraphBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable duplicate-edge removal at build time.
    pub fn dedup(mut self, yes: bool) -> Self {
        self.dedup = yes;
        self
    }

    /// Reserve space for `n` edges.
    pub fn with_edge_capacity(mut self, n: usize) -> Self {
        self.edges.reserve(n);
        self
    }

    /// Force the vertex count to at least `n` (isolated trailing vertices
    /// are otherwise dropped).
    pub fn ensure_vertices(&mut self, n: usize) -> &mut Self {
        if n > 0 {
            let id = (n - 1) as VertexId;
            self.max_vertex = Some(self.max_vertex.map_or(id, |m| m.max(id)));
        }
        self
    }

    /// Add an unweighted directed edge.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId) -> &mut Self {
        assert!(!self.weighted, "builder already holds weighted edges");
        self.track(src, dst);
        self.edges.push((src, dst));
        self
    }

    /// Add a weighted directed edge.
    pub fn add_weighted_edge(&mut self, src: VertexId, dst: VertexId, w: f32) -> &mut Self {
        assert!(
            self.weighted || self.edges.is_empty(),
            "builder already holds unweighted edges"
        );
        self.weighted = true;
        self.track(src, dst);
        self.edges.push((src, dst));
        self.weights.push(w);
        self
    }

    fn track(&mut self, src: VertexId, dst: VertexId) {
        let hi = src.max(dst);
        self.max_vertex = Some(self.max_vertex.map_or(hi, |m| m.max(hi)));
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Produce the CSR graph.
    pub fn build(self) -> Csr {
        let n = self.max_vertex.map_or(0, |m| m as usize + 1);
        let mut el = EdgeList {
            num_vertices: n,
            edges: self.edges,
            weights: if self.weighted {
                Some(self.weights)
            } else {
                None
            },
        };
        if self.dedup {
            el.sort_dedup();
        }
        Csr::from_edge_list(&el)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_infers_vertex_count() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 5).add_edge(5, 2);
        let g = b.build();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn dedup_removes_duplicates() {
        let mut b = GraphBuilder::new().dedup(true);
        b.add_edge(0, 1).add_edge(0, 1).add_edge(1, 0);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn ensure_vertices_keeps_isolated_tail() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.ensure_vertices(10);
        let g = b.build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.out_degree(9), 0);
    }

    #[test]
    fn weighted_edges_carry_through() {
        let mut b = GraphBuilder::new();
        b.add_weighted_edge(0, 1, 3.5);
        b.add_weighted_edge(1, 2, 1.5);
        let g = b.build();
        assert_eq!(g.weight(g.edge_range(0).start), 3.5);
        assert_eq!(g.weight(g.edge_range(1).start), 1.5);
    }

    #[test]
    #[should_panic(expected = "weighted")]
    fn mixing_weighted_and_unweighted_panics() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_weighted_edge(1, 2, 1.0);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.validate().is_ok());
    }
}
