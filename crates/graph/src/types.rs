//! Core identifier types.

/// Vertex identifier. `u32` keeps index arrays and message headers compact
/// (the paper's graphs top out in the tens of millions of vertices).
pub type VertexId = u32;

/// Edge index into the CSR target/weight arrays.
pub type EdgeIdx = usize;

/// Sentinel for "no vertex".
pub const INVALID_VERTEX: VertexId = VertexId::MAX;
