//! Compressed Sparse Row graph storage.
//!
//! Mirrors the paper's Figure 1: a `vertices` offset array with a trailing
//! "dummy vertex, offset = num_edges", and a flat `edges` target array.
//! Optional per-edge weights ride alongside (SSSP). [`Csr::transpose`]
//! produces the in-edge view needed to size the condensed static buffer
//! (which is laid out by in-degree).

use crate::edge_list::EdgeList;
use crate::types::{EdgeIdx, VertexId};

/// A directed graph in CSR form.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` indexes `targets` for vertex `v`'s
    /// out-edges; `offsets[num_vertices] == num_edges` (the dummy vertex).
    pub offsets: Vec<EdgeIdx>,
    /// Edge targets, grouped by source.
    pub targets: Vec<VertexId>,
    /// Optional edge weights, parallel to `targets`.
    pub weights: Option<Vec<f32>>,
}

impl Csr {
    /// Build from an edge list. Edges are counting-sorted by source (stable,
    /// O(V + E)); duplicates are kept as-is.
    ///
    /// # Examples
    ///
    /// ```
    /// use phigraph_graph::{Csr, EdgeList};
    /// let mut el = EdgeList::new(3);
    /// el.push(0, 1);
    /// el.push(0, 2);
    /// el.push(2, 1);
    /// let g = Csr::from_edge_list(&el);
    /// assert_eq!(g.neighbors(0), &[1, 2]);
    /// assert_eq!(g.in_degrees(), vec![0, 2, 1]);
    /// ```
    pub fn from_edge_list(el: &EdgeList) -> Self {
        let n = el.num_vertices;
        let m = el.edges.len();
        let mut offsets = vec![0usize; n + 1];
        for &(s, _) in &el.edges {
            offsets[s as usize + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as VertexId; m];
        let mut weights = el.weights.as_ref().map(|_| vec![0f32; m]);
        for (i, &(s, d)) in el.edges.iter().enumerate() {
            let slot = cursor[s as usize];
            cursor[s as usize] += 1;
            targets[slot] = d;
            if let (Some(w_out), Some(w_in)) = (&mut weights, &el.weights) {
                w_out[slot] = w_in[i];
            }
        }
        Csr {
            offsets,
            targets,
            weights,
        }
    }

    /// Build an unweighted CSR directly from parts. Panics if the offsets
    /// are malformed.
    pub fn from_parts(offsets: Vec<EdgeIdx>, targets: Vec<VertexId>) -> Self {
        let csr = Csr {
            offsets,
            targets,
            weights: None,
        };
        csr.validate().expect("invalid CSR parts");
        csr
    }

    /// Number of vertices.
    #[inline(always)]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    #[inline(always)]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    #[inline(always)]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Out-neighbors of `v`.
    #[inline(always)]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Edge index range of `v`'s out-edges (for weight lookups).
    #[inline(always)]
    pub fn edge_range(&self, v: VertexId) -> std::ops::Range<EdgeIdx> {
        self.offsets[v as usize]..self.offsets[v as usize + 1]
    }

    /// Weight of edge index `e` (1.0 when the graph is unweighted).
    #[inline(always)]
    pub fn weight(&self, e: EdgeIdx) -> f32 {
        match &self.weights {
            Some(w) => w[e],
            None => 1.0,
        }
    }

    /// Iterate all `(src, dst)` pairs.
    pub fn edge_iter(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices() as VertexId)
            .flat_map(move |v| self.neighbors(v).iter().map(move |&d| (v, d)))
    }

    /// In-degree of every vertex (one counting pass over the targets).
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices()];
        for &d in &self.targets {
            deg[d as usize] += 1;
        }
        deg
    }

    /// Out-degree of every vertex.
    pub fn out_degrees(&self) -> Vec<u32> {
        (0..self.num_vertices())
            .map(|v| (self.offsets[v + 1] - self.offsets[v]) as u32)
            .collect()
    }

    /// The transposed graph (edge directions reversed, weights carried).
    pub fn transpose(&self) -> Csr {
        let n = self.num_vertices();
        let mut offsets = vec![0usize; n + 1];
        for &d in &self.targets {
            offsets[d as usize + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as VertexId; self.num_edges()];
        let mut weights = self.weights.as_ref().map(|_| vec![0f32; self.num_edges()]);
        for s in 0..n as VertexId {
            for e in self.edge_range(s) {
                let d = self.targets[e] as usize;
                let slot = cursor[d];
                cursor[d] += 1;
                targets[slot] = s;
                if let (Some(w_out), Some(w_in)) = (&mut weights, &self.weights) {
                    w_out[slot] = w_in[e];
                }
            }
        }
        Csr {
            offsets,
            targets,
            weights,
        }
    }

    /// An undirected (symmetrized) version with unit weights collapsed:
    /// used by the multilevel partitioner, which operates on undirected
    /// connectivity. Parallel edges between the same pair are merged and
    /// their multiplicity returned as edge weights.
    pub fn symmetrized_weighted(&self) -> (Csr, Vec<f32>) {
        let n = self.num_vertices();
        let mut pairs: Vec<(VertexId, VertexId)> = Vec::with_capacity(self.num_edges() * 2);
        for (s, d) in self.edge_iter() {
            if s != d {
                pairs.push((s.min(d), s.max(d)));
            }
        }
        pairs.sort_unstable();
        // Merge multiplicities.
        let mut merged: Vec<((VertexId, VertexId), f32)> = Vec::new();
        for p in pairs {
            match merged.last_mut() {
                Some((q, w)) if *q == p => *w += 1.0,
                _ => merged.push((p, 1.0)),
            }
        }
        let mut el = EdgeList::new(n);
        for &((a, b), w) in &merged {
            el.push_weighted(a, b, w);
            el.push_weighted(b, a, w);
        }
        let csr = Csr::from_edge_list(&el);
        let w = csr.weights.clone().unwrap_or_default();
        (
            Csr {
                offsets: csr.offsets,
                targets: csr.targets,
                weights: None,
            },
            w,
        )
    }

    /// Structural validation: monotone offsets, in-range targets, dummy
    /// offset equals edge count.
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.is_empty() {
            return Err("offsets must contain at least the dummy entry".into());
        }
        if self.offsets[0] != 0 {
            return Err("offsets[0] must be 0".into());
        }
        for v in 0..self.offsets.len() - 1 {
            if self.offsets[v] > self.offsets[v + 1] {
                return Err(format!("offsets not monotone at vertex {v}"));
            }
        }
        if *self.offsets.last().unwrap() != self.targets.len() {
            return Err(format!(
                "dummy offset {} != num_edges {}",
                self.offsets.last().unwrap(),
                self.targets.len()
            ));
        }
        let n = self.num_vertices() as u64;
        for &t in &self.targets {
            if t as u64 >= n {
                return Err(format!("target {t} out of range for {n} vertices"));
            }
        }
        if let Some(w) = &self.weights {
            if w.len() != self.targets.len() {
                return Err("weights length mismatch".into());
            }
        }
        Ok(())
    }

    /// Convert back to an edge list.
    pub fn to_edge_list(&self) -> EdgeList {
        EdgeList {
            num_vertices: self.num_vertices(),
            edges: self.edge_iter().collect(),
            weights: self.weights.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::small::paper_example;

    fn small() -> Csr {
        let mut el = EdgeList::new(4);
        el.push(0, 1);
        el.push(0, 2);
        el.push(2, 3);
        el.push(3, 0);
        Csr::from_edge_list(&el)
    }

    #[test]
    fn from_edge_list_basic() {
        let g = small();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[] as &[VertexId]);
        assert_eq!(g.neighbors(2), &[3]);
        assert_eq!(g.out_degree(0), 2);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn paper_example_matches_figure_1() {
        let g = paper_example();
        // Figure 1's arrays, verbatim.
        assert_eq!(
            g.offsets,
            vec![0, 2, 5, 8, 8, 11, 12, 13, 14, 15, 19, 20, 22, 24, 26, 27, 28]
        );
        assert_eq!(
            g.targets,
            vec![
                4, 5, 0, 2, 5, 3, 5, 7, 5, 8, 9, 2, 2, 2, 0, 4, 5, 6, 8, 11, 6, 9, 8, 13, 9, 12,
                10, 7
            ]
        );
        assert!(g.validate().is_ok());
    }

    #[test]
    fn paper_example_in_degrees_match_figure_3() {
        let g = paper_example();
        let indeg = g.in_degrees();
        // Figure 3: sorted ids 5,2,8,9,0,4,6,7,3,10,11,12,13,1,14,15 with
        // in-degrees 5,4,3,3,2,2,2,2,1,1,1,1,1,0,0,0.
        assert_eq!(indeg[5], 5);
        assert_eq!(indeg[2], 4);
        assert_eq!(indeg[8], 3);
        assert_eq!(indeg[9], 3);
        assert_eq!(indeg[0], 2);
        assert_eq!(indeg[1], 0);
        assert_eq!(indeg[14], 0);
        assert_eq!(indeg[15], 0);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = small();
        let t = g.transpose();
        assert_eq!(t.neighbors(0), &[3]);
        assert_eq!(t.neighbors(1), &[0]);
        assert_eq!(t.neighbors(2), &[0]);
        assert_eq!(t.neighbors(3), &[2]);
        let tt = t.transpose();
        // Transposing twice restores the edge multiset per vertex.
        for v in 0..4 {
            let mut a = g.neighbors(v).to_vec();
            let mut b = tt.neighbors(v).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn transpose_carries_weights() {
        let mut el = EdgeList::new(3);
        el.push_weighted(0, 1, 2.5);
        el.push_weighted(1, 2, 7.0);
        let g = Csr::from_edge_list(&el);
        let t = g.transpose();
        assert_eq!(t.neighbors(1), &[0]);
        assert_eq!(t.weight(t.edge_range(1).start), 2.5);
        assert_eq!(t.weight(t.edge_range(2).start), 7.0);
    }

    #[test]
    fn symmetrized_merges_parallel_edges() {
        let mut el = EdgeList::new(3);
        el.push(0, 1);
        el.push(1, 0);
        el.push(1, 2);
        let g = Csr::from_edge_list(&el);
        let (u, w) = g.symmetrized_weighted();
        assert_eq!(u.num_edges(), 4); // (0,1),(1,0),(1,2),(2,1)
                                      // The 0<->1 pair had multiplicity 2.
        let e01 = u.edge_range(0).start;
        assert_eq!(w[e01], 2.0);
    }

    #[test]
    fn validate_catches_bad_offsets() {
        let bad = Csr {
            offsets: vec![0, 2, 1],
            targets: vec![0, 1],
            weights: None,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn edge_iter_round_trips_through_edge_list() {
        let g = paper_example();
        let el = g.to_edge_list();
        let g2 = Csr::from_edge_list(&el);
        assert_eq!(g, g2);
    }

    #[test]
    fn unweighted_weight_is_one() {
        let g = small();
        assert_eq!(g.weight(0), 1.0);
    }
}
