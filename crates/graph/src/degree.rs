//! Degree statistics.
//!
//! The partitioning experiments hinge on degree skew ("most graph datasets
//! are power-law graphs … vertices with high out-degrees are together in a
//! short range"), so the workload builders and benches report these
//! statistics to demonstrate the synthetic graphs reproduce the property.

use crate::csr::Csr;

/// Summary statistics for a degree sequence.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: u32,
    /// Largest degree.
    pub max: u32,
    /// Mean degree.
    pub mean: f64,
    /// Coefficient of variation (stddev / mean); >1 indicates heavy skew.
    pub cv: f64,
    /// Fraction of total degree mass held by the top 1% of vertices.
    pub top1pct_share: f64,
    /// Gini coefficient of the degree distribution (0 = uniform).
    pub gini: f64,
}

impl DegreeStats {
    /// Compute statistics for an arbitrary degree sequence.
    pub fn from_degrees(degrees: &[u32]) -> Self {
        if degrees.is_empty() {
            return DegreeStats {
                min: 0,
                max: 0,
                mean: 0.0,
                cv: 0.0,
                top1pct_share: 0.0,
                gini: 0.0,
            };
        }
        let n = degrees.len();
        let total: u64 = degrees.iter().map(|&d| d as u64).sum();
        let mean = total as f64 / n as f64;
        let var = degrees
            .iter()
            .map(|&d| {
                let x = d as f64 - mean;
                x * x
            })
            .sum::<f64>()
            / n as f64;
        let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };

        let mut sorted: Vec<u32> = degrees.to_vec();
        sorted.sort_unstable();
        let top = (n / 100).max(1);
        let top_mass: u64 = sorted[n - top..].iter().map(|&d| d as u64).sum();
        let top1pct_share = if total > 0 {
            top_mass as f64 / total as f64
        } else {
            0.0
        };

        // Gini via the sorted-rank formula.
        let gini = if total > 0 {
            let weighted: f64 = sorted
                .iter()
                .enumerate()
                .map(|(i, &d)| (i as f64 + 1.0) * d as f64)
                .sum();
            (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
        } else {
            0.0
        };

        DegreeStats {
            min: *sorted.first().unwrap(),
            max: *sorted.last().unwrap(),
            mean,
            cv,
            top1pct_share,
            gini,
        }
    }

    /// Out-degree statistics of a graph.
    pub fn out_degrees(g: &Csr) -> Self {
        Self::from_degrees(&g.out_degrees())
    }

    /// In-degree statistics of a graph.
    pub fn in_degrees(g: &Csr) -> Self {
        Self::from_degrees(&g.in_degrees())
    }
}

/// Histogram of degrees in log2 buckets: `bucket[i]` counts vertices with
/// degree in `[2^i, 2^(i+1))`; bucket 0 also counts degree-0 vertices.
pub fn log2_histogram(degrees: &[u32]) -> Vec<usize> {
    let mut hist = Vec::new();
    for &d in degrees {
        let b = if d <= 1 {
            0
        } else {
            (32 - (d - 1).leading_zeros()) as usize
        };
        if b >= hist.len() {
            hist.resize(b + 1, 0);
        }
        hist[b] += 1;
    }
    hist
}

/// Vertices holding the `k` largest degrees, descending.
pub fn top_k(degrees: &[u32], k: usize) -> Vec<(u32, u32)> {
    let mut pairs: Vec<(u32, u32)> = degrees
        .iter()
        .enumerate()
        .map(|(v, &d)| (v as u32, d))
        .collect();
    pairs.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    pairs.truncate(k);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_degrees_have_zero_gini() {
        let s = DegreeStats::from_degrees(&[4, 4, 4, 4]);
        assert_eq!(s.min, 4);
        assert_eq!(s.max, 4);
        assert!(s.gini.abs() < 1e-9);
        assert!(s.cv.abs() < 1e-9);
    }

    #[test]
    fn skewed_degrees_show_high_share() {
        let mut degrees = vec![1u32; 99];
        degrees.push(1000);
        let s = DegreeStats::from_degrees(&degrees);
        assert!(s.top1pct_share > 0.9);
        assert!(s.gini > 0.8);
        assert!(s.cv > 5.0);
    }

    #[test]
    fn empty_sequence_is_all_zero() {
        let s = DegreeStats::from_degrees(&[]);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn log2_histogram_buckets() {
        let h = log2_histogram(&[0, 1, 2, 3, 4, 8, 9]);
        // 0,1 -> bucket 0; 2 -> bucket 1; 3,4 -> bucket 2; 8 -> 3; 9 -> 4
        assert_eq!(h, vec![2, 1, 2, 1, 1]);
    }

    #[test]
    fn top_k_orders_descending() {
        let t = top_k(&[5, 1, 9, 9, 2], 3);
        assert_eq!(t, vec![(2, 9), (3, 9), (0, 5)]);
    }
}
