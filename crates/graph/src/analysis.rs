//! Whole-graph analysis utilities (used by `phigraph info` and workload
//! characterization in the benches).

use crate::csr::Csr;
use crate::types::VertexId;
use std::collections::VecDeque;

/// BFS levels from `src`, treating the graph as undirected (the transpose
/// must be supplied so no per-call transposition is needed).
fn undirected_bfs(g: &Csr, rev: &Csr, src: VertexId) -> Vec<i32> {
    let mut level = vec![-1i32; g.num_vertices()];
    let mut q = VecDeque::new();
    level[src as usize] = 0;
    q.push_back(src);
    while let Some(v) = q.pop_front() {
        for &u in g.neighbors(v).iter().chain(rev.neighbors(v)) {
            if level[u as usize] < 0 {
                level[u as usize] = level[v as usize] + 1;
                q.push_back(u);
            }
        }
    }
    level
}

/// Lower-bound estimate of the (undirected) diameter by the double-sweep
/// heuristic: BFS from `start`, then BFS from the farthest vertex found.
/// Exact on trees; a tight lower bound in practice elsewhere.
pub fn diameter_estimate(g: &Csr, start: VertexId) -> u32 {
    if g.num_vertices() == 0 {
        return 0;
    }
    let rev = g.transpose();
    let first = undirected_bfs(g, &rev, start);
    let far = first
        .iter()
        .enumerate()
        .max_by_key(|(_, &l)| l)
        .map(|(v, _)| v as VertexId)
        .unwrap_or(start);
    let second = undirected_bfs(g, &rev, far);
    second.iter().copied().max().unwrap_or(0).max(0) as u32
}

/// Degree assortativity (Pearson correlation of out-degrees across edge
/// endpoints): positive = hubs link to hubs, negative = hubs link to
/// leaves (typical for social networks and stars).
pub fn degree_assortativity(g: &Csr) -> f64 {
    let m = g.num_edges();
    if m < 2 {
        return 0.0;
    }
    let deg = g.out_degrees();
    let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0f64, 0f64, 0f64, 0f64, 0f64);
    for (s, d) in g.edge_iter() {
        let x = deg[s as usize] as f64;
        let y = deg[d as usize] as f64;
        sx += x;
        sy += y;
        sxx += x * x;
        syy += y * y;
        sxy += x * y;
    }
    let n = m as f64;
    let cov = sxy / n - (sx / n) * (sy / n);
    let vx = sxx / n - (sx / n) * (sx / n);
    let vy = syy / n - (sy / n) * (sy / n);
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx * vy).sqrt()
    }
}

/// Fraction of edges whose reverse edge also exists (1.0 for symmetrized
/// graphs, ~0 for DAGs).
pub fn reciprocity(g: &Csr) -> f64 {
    let m = g.num_edges();
    if m == 0 {
        return 0.0;
    }
    let mut edges: Vec<(VertexId, VertexId)> = g.edge_iter().collect();
    edges.sort_unstable();
    edges.dedup();
    let mutual = edges
        .iter()
        .filter(|&&(s, d)| edges.binary_search(&(d, s)).is_ok())
        .count();
    mutual as f64 / edges.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::grid::grid;
    use crate::generators::small::{chain, cycle, star};

    #[test]
    fn chain_diameter_is_exact() {
        assert_eq!(diameter_estimate(&chain(10), 4), 9);
    }

    #[test]
    fn cycle_diameter_is_half() {
        assert_eq!(diameter_estimate(&cycle(10), 0), 5);
    }

    #[test]
    fn grid_diameter_is_manhattan() {
        // 5x7 grid: diameter = (5-1) + (7-1) = 10.
        assert_eq!(diameter_estimate(&grid(5, 7, false), 0), 10);
    }

    #[test]
    fn star_is_disassortative() {
        // Center (degree n-1) links only to leaves (degree 0).
        let a = degree_assortativity(&star(20));
        // All sources have the same degree -> zero variance on one side.
        assert!(a.abs() < 1e-9);
        // Symmetrize to see the negative correlation.
        let (sym, _) = star(20).symmetrized_weighted();
        assert!(degree_assortativity(&sym) < -0.5);
    }

    #[test]
    fn reciprocity_extremes() {
        assert_eq!(reciprocity(&chain(5)), 0.0);
        let (sym, _) = cycle(6).symmetrized_weighted();
        assert_eq!(reciprocity(&sym), 1.0);
    }

    #[test]
    fn empty_graph_degenerates_safely() {
        let g = Csr::from_parts(vec![0], vec![]);
        assert_eq!(diameter_estimate(&g, 0), 0);
        assert_eq!(degree_assortativity(&g), 0.0);
        assert_eq!(reciprocity(&g), 0.0);
    }
}
