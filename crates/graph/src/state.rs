//! Fixed-width little-endian serialization of per-vertex state.
//!
//! The fault-tolerance subsystem snapshots vertex values at superstep
//! barriers. Values are plain-old-data (`f32` distances, `i32` levels, …),
//! so the codec is deliberately simple: a [`PodState`] type writes itself as
//! a fixed number of little-endian bytes and reads itself back bit-exactly.
//! Bit-exactness matters — recovery promises *bit-identical* results to a
//! fault-free run, so the round trip must preserve every NaN payload and
//! signed zero (hence byte-level encoding, not text formatting).
//!
//! The slice helpers ([`encode_state_slice`] / [`decode_state_slice`]) are
//! what checkpoint writers actually call; they reserve exactly once and
//! validate lengths on the way back in.

/// A fixed-width plain-old-data vertex state that round-trips through
/// little-endian bytes bit-exactly.
pub trait PodState: Copy + Send + Sync + 'static {
    /// Encoded width in bytes.
    const STATE_SIZE: usize;

    /// Append exactly [`PodState::STATE_SIZE`] bytes to `out`.
    fn write_le(&self, out: &mut Vec<u8>);

    /// Read a value back from exactly [`PodState::STATE_SIZE`] bytes.
    ///
    /// # Panics
    /// Panics if `bytes.len() != STATE_SIZE` (callers slice exactly).
    fn read_le(bytes: &[u8]) -> Self;
}

macro_rules! pod_state {
    ($($t:ty),*) => {$(
        impl PodState for $t {
            const STATE_SIZE: usize = std::mem::size_of::<$t>();

            #[inline]
            fn write_le(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            #[inline]
            fn read_le(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes.try_into().expect("exact STATE_SIZE slice"))
            }
        }
    )*};
}
pod_state!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

/// Encode a slice of vertex states as `values.len() * STATE_SIZE`
/// little-endian bytes.
pub fn encode_state_slice<T: PodState>(values: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * T::STATE_SIZE);
    for v in values {
        v.write_le(&mut out);
    }
    out
}

/// Decode `n` vertex states from `bytes`. Returns `None` when the byte
/// length does not equal `n * STATE_SIZE` (truncated or mis-sized payload).
pub fn decode_state_slice<T: PodState>(bytes: &[u8], n: usize) -> Option<Vec<T>> {
    if bytes.len() != n * T::STATE_SIZE {
        return None;
    }
    Some(bytes.chunks_exact(T::STATE_SIZE).map(T::read_le).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::rng::SplitMix64;

    #[test]
    fn scalar_round_trips_bit_exactly() {
        // NaN payloads and signed zero must survive.
        let vals: Vec<f32> = vec![
            0.0,
            -0.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::from_bits(0x7FC0_1234), // NaN with payload
            1.5e-38,
        ];
        let bytes = encode_state_slice(&vals);
        let back: Vec<f32> = decode_state_slice(&bytes, vals.len()).unwrap();
        for (a, b) in vals.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn integer_types_round_trip() {
        let v32: Vec<i32> = vec![i32::MIN, -1, 0, 7, i32::MAX];
        assert_eq!(
            decode_state_slice::<i32>(&encode_state_slice(&v32), 5).unwrap(),
            v32
        );
        let v64: Vec<u64> = vec![0, u64::MAX, 0xDEAD_BEEF];
        assert_eq!(
            decode_state_slice::<u64>(&encode_state_slice(&v64), 3).unwrap(),
            v64
        );
    }

    #[test]
    fn random_round_trip() {
        let mut rng = SplitMix64::seed_from_u64(11);
        let vals: Vec<f64> = (0..1000).map(|_| f64::from_bits(rng.next_u64())).collect();
        let bytes = encode_state_slice(&vals);
        assert_eq!(bytes.len(), 8000);
        let back: Vec<f64> = decode_state_slice(&bytes, 1000).unwrap();
        for (a, b) in vals.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn wrong_length_is_rejected() {
        let bytes = encode_state_slice(&[1.0f32, 2.0]);
        assert!(decode_state_slice::<f32>(&bytes, 3).is_none());
        assert!(decode_state_slice::<f32>(&bytes[..7], 2).is_none());
        assert!(decode_state_slice::<f64>(&bytes, 1).unwrap().len() == 1);
    }
}
