//! Barabási–Albert preferential attachment — an alternative power-law
//! generator used by the partitioning ablation benches.

use crate::csr::Csr;
use crate::edge_list::EdgeList;
use crate::generators::rng::SplitMix64 as StdRng;
use crate::types::VertexId;

/// Generate a Barabási–Albert graph: vertices arrive one at a time and
/// attach `m` directed edges to existing vertices chosen proportionally to
/// their current degree (implemented with the repeated-endpoint trick).
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Csr {
    assert!(n > m && m >= 1, "need n > m >= 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut el = EdgeList::new(n);
    // Endpoint pool: each edge contributes both endpoints, so sampling a
    // uniform pool element is degree-proportional sampling.
    let mut pool: Vec<VertexId> = Vec::with_capacity(2 * n * m);

    // Seed clique over the first m+1 vertices.
    for i in 0..=m {
        for j in 0..i {
            el.push(i as VertexId, j as VertexId);
            pool.push(i as VertexId);
            pool.push(j as VertexId);
        }
    }

    for v in (m + 1)..n {
        let mut chosen = Vec::with_capacity(m);
        while chosen.len() < m {
            let pick = pool[rng.random_range(0..pool.len())];
            if pick != v as VertexId && !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        for &d in &chosen {
            el.push(v as VertexId, d);
            pool.push(v as VertexId);
            pool.push(d);
        }
    }
    el.sort_dedup();
    Csr::from_edge_list(&el)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeStats;

    #[test]
    fn sizes_are_as_expected() {
        let g = barabasi_albert(500, 4, 2);
        assert_eq!(g.num_vertices(), 500);
        // Seed clique + m edges per arrival.
        let expected = 4 * 5 / 2 + (500 - 5) * 4;
        assert_eq!(g.num_edges(), expected);
    }

    #[test]
    fn in_degrees_are_heavy_tailed() {
        let g = barabasi_albert(2000, 4, 7);
        let s = DegreeStats::in_degrees(&g);
        assert!(s.max as f64 > 8.0 * s.mean, "max {} mean {}", s.max, s.mean);
    }

    #[test]
    fn deterministic() {
        assert_eq!(barabasi_albert(200, 3, 1), barabasi_albert(200, 3, 1));
    }
}
