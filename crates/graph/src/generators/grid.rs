//! 2D grid (mesh) graphs.
//!
//! The polar opposite of RMAT for partitioning studies: a `rows × cols`
//! 4-neighbor mesh has perfect O(√n) separators, so the multilevel
//! partitioner's cut quality is easy to sanity-check analytically
//! (`partition_ablation` uses this).

use crate::csr::Csr;
use crate::edge_list::EdgeList;
use crate::types::VertexId;

/// Generate a directed 4-neighbor grid: vertex `(r, c)` is id `r*cols + c`;
/// edges go right and down (and mirrored when `bidirectional`).
pub fn grid(rows: usize, cols: usize, bidirectional: bool) -> Csr {
    assert!(rows >= 1 && cols >= 1, "empty grid");
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut el = EdgeList::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                el.push(id(r, c), id(r, c + 1));
                if bidirectional {
                    el.push(id(r, c + 1), id(r, c));
                }
            }
            if r + 1 < rows {
                el.push(id(r, c), id(r + 1, c));
                if bidirectional {
                    el.push(id(r + 1, c), id(r, c));
                }
            }
        }
    }
    Csr::from_edge_list(&el)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validation::{is_symmetric, weakly_connected_components};

    #[test]
    fn edge_counts_are_exact() {
        // rows*(cols-1) horizontal + (rows-1)*cols vertical.
        let g = grid(4, 5, false);
        assert_eq!(g.num_vertices(), 20);
        assert_eq!(g.num_edges(), 4 * 4 + 3 * 5);
        let b = grid(4, 5, true);
        assert_eq!(b.num_edges(), 2 * (4 * 4 + 3 * 5));
        assert!(is_symmetric(&b));
    }

    #[test]
    fn grid_is_connected() {
        assert_eq!(weakly_connected_components(&grid(7, 9, false)), 1);
    }

    #[test]
    fn interior_vertices_have_degree_two_forward() {
        let g = grid(3, 3, false);
        assert_eq!(g.out_degree(4), 2); // center: right + down
        assert_eq!(g.out_degree(8), 0); // bottom-right corner
    }

    #[test]
    fn degenerate_line_grids() {
        let g = grid(1, 6, false);
        assert_eq!(g.num_edges(), 5);
        let g = grid(6, 1, false);
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn grid_has_good_separators() {
        // A balanced bisection of a 16x16 mesh needs only ~16 cut edges —
        // the multilevel partitioner must find something close.
        use crate::generators::grid::grid;
        let g = grid(16, 16, true);
        let blocks = phigraph_partition_probe::bisect_cut(&g);
        assert!(
            blocks <= 3 * 16,
            "bisection cut {blocks} should be near the 16-edge separator"
        );
    }

    /// Tiny local shim so the graph crate's test doesn't depend on the
    /// partition crate (which depends on this crate): a spectral-free
    /// sweep bisection along the row-major order, which for a grid is the
    /// optimal horizontal cut.
    mod phigraph_partition_probe {
        use crate::csr::Csr;
        pub fn bisect_cut(g: &Csr) -> usize {
            let half = g.num_vertices() / 2;
            g.edge_iter()
                .filter(|&(s, d)| ((s as usize) < half) != ((d as usize) < half))
                .count()
        }
    }
}
