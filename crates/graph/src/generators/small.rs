//! Tiny fixed graphs for tests, docs, and the paper's worked example.

use crate::csr::Csr;
use crate::edge_list::EdgeList;
use crate::types::VertexId;

/// The 16-vertex example graph from the paper's Figure 1, reconstructed
/// from its CSR arrays. Used by the Table I and Figure 3 unit tests.
pub fn paper_example() -> Csr {
    let offsets = vec![
        0, 2, 5, 8, 8, 11, 12, 13, 14, 15, 19, 20, 22, 24, 26, 27, 28,
    ];
    let targets = vec![
        4, 5, 0, 2, 5, 3, 5, 7, 5, 8, 9, 2, 2, 2, 0, 4, 5, 6, 8, 11, 6, 9, 8, 13, 9, 12, 10, 7,
    ];
    Csr::from_parts(offsets, targets)
}

/// The set of active vertices in the paper's Table I walk-through.
pub fn paper_example_actives() -> Vec<VertexId> {
    vec![6, 7, 11, 13, 14, 15]
}

/// The messages of Table I as `(src, dst)` pairs, in source order.
pub fn paper_table1_messages() -> Vec<(VertexId, VertexId)> {
    vec![
        (6, 2),
        (7, 2),
        (11, 6),
        (11, 9),
        (13, 9),
        (13, 12),
        (14, 10),
        (15, 7),
    ]
}

/// A directed chain `0 -> 1 -> … -> n-1`.
pub fn chain(n: usize) -> Csr {
    let mut el = EdgeList::new(n);
    for v in 1..n {
        el.push((v - 1) as VertexId, v as VertexId);
    }
    Csr::from_edge_list(&el)
}

/// A directed star: vertex 0 points at every other vertex.
pub fn star(n: usize) -> Csr {
    let mut el = EdgeList::new(n);
    for v in 1..n {
        el.push(0, v as VertexId);
    }
    Csr::from_edge_list(&el)
}

/// An inward star: every vertex points at vertex 0 (maximal insertion
/// contention — one column receives every message).
pub fn inward_star(n: usize) -> Csr {
    let mut el = EdgeList::new(n);
    for v in 1..n {
        el.push(v as VertexId, 0);
    }
    Csr::from_edge_list(&el)
}

/// A directed cycle `0 -> 1 -> … -> n-1 -> 0`.
pub fn cycle(n: usize) -> Csr {
    let mut el = EdgeList::new(n);
    for v in 0..n {
        el.push(v as VertexId, ((v + 1) % n) as VertexId);
    }
    Csr::from_edge_list(&el)
}

/// A complete directed graph (all ordered pairs, no self-loops).
pub fn complete(n: usize) -> Csr {
    let mut el = EdgeList::new(n);
    for s in 0..n {
        for d in 0..n {
            if s != d {
                el.push(s as VertexId, d as VertexId);
            }
        }
    }
    Csr::from_edge_list(&el)
}

/// A weighted diamond used in SSSP unit tests:
/// `0 -(1)-> 1 -(1)-> 3`, `0 -(5)-> 2 -(1)-> 3`; shortest 0→3 distance is 2.
pub fn weighted_diamond() -> Csr {
    let mut el = EdgeList::new(4);
    el.push_weighted(0, 1, 1.0);
    el.push_weighted(0, 2, 5.0);
    el.push_weighted(1, 3, 1.0);
    el.push_weighted(2, 3, 1.0);
    Csr::from_edge_list(&el)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_table1_messages_follow_out_edges() {
        let g = paper_example();
        for &(src, dst) in &paper_table1_messages() {
            assert!(
                g.neighbors(src).contains(&dst),
                "Table I message ({src},{dst}) is not an edge"
            );
        }
        // Actives send exactly their full out-neighborhoods.
        let mut derived: Vec<(VertexId, VertexId)> = Vec::new();
        for &v in &paper_example_actives() {
            for &d in g.neighbors(v) {
                derived.push((v, d));
            }
        }
        assert_eq!(derived, paper_table1_messages());
    }

    #[test]
    fn chain_shape() {
        let g = chain(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(4), &[] as &[VertexId]);
    }

    #[test]
    fn star_shapes() {
        let out = star(6);
        assert_eq!(out.out_degree(0), 5);
        let inw = inward_star(6);
        assert_eq!(inw.in_degrees()[0], 5);
        assert_eq!(inw.out_degree(0), 0);
    }

    #[test]
    fn cycle_and_complete() {
        let c = cycle(4);
        assert_eq!(c.neighbors(3), &[0]);
        let k = complete(4);
        assert_eq!(k.num_edges(), 12);
        assert_eq!(k.out_degree(2), 3);
    }

    #[test]
    fn diamond_weights() {
        let g = weighted_diamond();
        assert_eq!(g.weight(g.edge_range(0).start), 1.0);
        assert_eq!(g.weight(g.edge_range(0).start + 1), 5.0);
    }
}
