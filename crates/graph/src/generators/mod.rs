//! Synthetic graph generators.
//!
//! These stand in for the paper's datasets (see DESIGN.md §2):
//!
//! * [`rmat`] — recursive-matrix power-law graphs. With
//!   [`rmat::RmatConfig::front_loaded_hubs`] the high out-degree vertices are
//!   renumbered to the front of the id space, reproducing the Pokec property
//!   that makes *continuous* partitioning imbalanced (Fig. 6).
//! * [`community`] — planted-community graphs with mirrored edges
//!   (dblp-like; the Semi-Clustering workload).
//! * [`dag`] — layered random DAGs with configurable fan-in concentration
//!   (the TopoSort input: "a highly connected graph … a large number of
//!   messages are sent to a single vertex").
//! * [`erdos_renyi`], [`ba`] — classic baselines for tests and ablations.
//! * [`small`] — tiny fixed graphs including the paper's Figure 1 example.

pub mod ba;
pub mod community;
pub mod dag;
pub mod erdos_renyi;
pub mod grid;
pub mod rmat;
pub mod rng;
pub mod small;
pub mod watts_strogatz;

pub use ba::barabasi_albert;
pub use community::{community_graph, CommunityConfig};
pub use dag::{layered_dag, DagConfig};
pub use erdos_renyi::gnm;
pub use grid::grid;
pub use rmat::{rmat, RmatConfig};
pub use rng::SplitMix64;
pub use watts_strogatz::watts_strogatz;
