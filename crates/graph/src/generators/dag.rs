//! Layered random DAG generator — the TopoSort workload.
//!
//! The paper's TopoSort input is "a randomly generated DAG containing 40K
//! vertices and 200M edges": a very high edge-to-vertex ratio where "in each
//! iteration, a large number of messages are sent to a single vertex". The
//! layered construction guarantees acyclicity (edges only point to strictly
//! later layers) and the `fan_in_concentration` knob skews destination
//! choice toward a few sink-like vertices per layer to reproduce the message
//! hot-spotting that makes locking so expensive in Fig. 5(e).

use crate::csr::Csr;
use crate::edge_list::EdgeList;
use crate::generators::rng::SplitMix64 as StdRng;
use crate::types::VertexId;

/// Layered DAG parameters.
#[derive(Clone, Debug)]
pub struct DagConfig {
    /// Total vertex count, split evenly across layers.
    pub num_vertices: usize,
    /// Number of layers; edges go from layer `i` to layers `> i`.
    pub layers: usize,
    /// Average out-degree per non-final-layer vertex.
    pub avg_out_degree: usize,
    /// In `[0, 1)`: probability mass concentrated on each layer's first few
    /// vertices. 0 = uniform destinations; 0.9 = extreme hot-spotting.
    pub fan_in_concentration: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DagConfig {
    fn default() -> Self {
        DagConfig {
            num_vertices: 4_000,
            layers: 20,
            avg_out_degree: 64,
            fan_in_concentration: 0.7,
            seed: 1,
        }
    }
}

/// Generate a layered random DAG.
pub fn layered_dag(cfg: &DagConfig) -> Csr {
    assert!(cfg.layers >= 2, "need at least two layers");
    assert!(cfg.num_vertices >= cfg.layers, "fewer vertices than layers");
    assert!((0.0..1.0).contains(&cfg.fan_in_concentration));
    let n = cfg.num_vertices;
    let per_layer = n / cfg.layers;
    let layer_of = |v: usize| (v / per_layer).min(cfg.layers - 1);
    let layer_start = |l: usize| l * per_layer;
    let layer_len = |l: usize| {
        if l == cfg.layers - 1 {
            n - layer_start(l)
        } else {
            per_layer
        }
    };

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut el = EdgeList::new(n);
    el.edges.reserve(n * cfg.avg_out_degree);

    // Hot vertices: the first ~sqrt(len) vertices of each layer.
    for v in 0..n {
        let l = layer_of(v);
        if l == cfg.layers - 1 {
            continue;
        }
        for _ in 0..cfg.avg_out_degree {
            let dst_layer = rng.random_range(l + 1..cfg.layers);
            let start = layer_start(dst_layer);
            let len = layer_len(dst_layer);
            let hot_len = ((len as f64).sqrt() as usize).max(1);
            let dst = if rng.random::<f64>() < cfg.fan_in_concentration {
                start + rng.random_range(0..hot_len)
            } else {
                start + rng.random_range(0..len)
            };
            el.push(v as VertexId, dst as VertexId);
        }
    }
    el.sort_dedup();
    Csr::from_edge_list(&el)
}

/// Check acyclicity via Kahn's algorithm; returns true iff the graph is a
/// DAG.
pub fn is_dag(g: &Csr) -> bool {
    let n = g.num_vertices();
    let mut indeg = g.in_degrees();
    let mut queue: Vec<VertexId> = (0..n as VertexId)
        .filter(|&v| indeg[v as usize] == 0)
        .collect();
    let mut seen = 0usize;
    while let Some(v) = queue.pop() {
        seen += 1;
        for &d in g.neighbors(v) {
            indeg[d as usize] -= 1;
            if indeg[d as usize] == 0 {
                queue.push(d);
            }
        }
    }
    seen == n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeStats;

    fn tiny() -> DagConfig {
        DagConfig {
            num_vertices: 1000,
            layers: 10,
            avg_out_degree: 16,
            fan_in_concentration: 0.7,
            seed: 5,
        }
    }

    #[test]
    fn output_is_acyclic() {
        let g = layered_dag(&tiny());
        assert!(is_dag(&g));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn edges_only_point_forward() {
        let cfg = tiny();
        let g = layered_dag(&cfg);
        let per_layer = cfg.num_vertices / cfg.layers;
        for (s, d) in g.edge_iter() {
            assert!(
                (d as usize) / per_layer > (s as usize) / per_layer
                    || (d as usize) / per_layer == cfg.layers - 1
            );
        }
    }

    #[test]
    fn fan_in_concentration_creates_hot_vertices() {
        let uniform = layered_dag(&DagConfig {
            fan_in_concentration: 0.0,
            ..tiny()
        });
        let hot = layered_dag(&DagConfig {
            fan_in_concentration: 0.9,
            ..tiny()
        });
        let su = DegreeStats::in_degrees(&uniform);
        let sh = DegreeStats::in_degrees(&hot);
        assert!(
            sh.max > 3 * su.max,
            "hot max in-degree {} should dwarf uniform {}",
            sh.max,
            su.max
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(layered_dag(&tiny()), layered_dag(&tiny()));
    }

    #[test]
    fn is_dag_detects_cycles() {
        let mut el = EdgeList::new(3);
        el.push(0, 1);
        el.push(1, 2);
        el.push(2, 0);
        assert!(!is_dag(&Csr::from_edge_list(&el)));
    }
}
