//! Watts–Strogatz small-world graphs.
//!
//! A ring lattice with random rewiring: high clustering with short paths.
//! Useful as a partitioning ablation input — unlike RMAT it *has* good
//! separators at low rewiring probability, and loses them as `beta → 1`,
//! which lets benches sweep the regime between "community structure" and
//! "expander".

use crate::csr::Csr;
use crate::edge_list::EdgeList;
use crate::generators::rng::SplitMix64 as StdRng;
use crate::types::VertexId;

/// Generate a directed Watts–Strogatz graph: each vertex connects to its
/// `k` nearest ring successors; each edge is rewired to a uniform random
/// target with probability `beta`.
///
/// # Panics
/// Panics unless `n > 2k` and `0.0 <= beta <= 1.0`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Csr {
    assert!(k >= 1 && n > 2 * k, "need n > 2k");
    assert!((0.0..=1.0).contains(&beta), "beta in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut el = EdgeList::new(n);
    el.edges.reserve(n * k);
    for v in 0..n {
        for j in 1..=k {
            let mut d = (v + j) % n;
            if rng.random::<f64>() < beta {
                // Rewire, avoiding self-loops.
                loop {
                    d = rng.random_range(0..n);
                    if d != v {
                        break;
                    }
                }
            }
            el.push(v as VertexId, d as VertexId);
        }
    }
    el.sort_dedup();
    Csr::from_edge_list(&el)
}

/// Local clustering proxy: fraction of length-2 ring-neighbor pairs that
/// are directly connected (cheap and monotone in the usual coefficient).
pub fn ring_locality(g: &Csr) -> f64 {
    let n = g.num_vertices();
    if n < 3 {
        return 0.0;
    }
    let mut local = 0usize;
    let mut total = 0usize;
    for (s, d) in g.edge_iter() {
        total += 1;
        let dist = (d as i64 - s as i64).rem_euclid(n as i64) as usize;
        if dist <= 4 || dist >= n - 4 {
            local += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        local as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_beta_is_a_ring_lattice() {
        let g = watts_strogatz(50, 3, 0.0, 1);
        assert_eq!(g.num_edges(), 150);
        for (s, d) in g.edge_iter() {
            let dist = (d as i64 - s as i64).rem_euclid(50);
            assert!(
                (1..=3).contains(&dist),
                "edge {s}->{d} is not a lattice edge"
            );
        }
        assert_eq!(ring_locality(&g), 1.0);
    }

    #[test]
    fn rewiring_destroys_locality_monotonically() {
        let lo = ring_locality(&watts_strogatz(400, 4, 0.05, 3));
        let mid = ring_locality(&watts_strogatz(400, 4, 0.4, 3));
        let hi = ring_locality(&watts_strogatz(400, 4, 1.0, 3));
        assert!(lo > mid && mid > hi, "{lo} > {mid} > {hi} expected");
        assert!(hi < 0.2, "fully rewired graph should look random: {hi}");
    }

    #[test]
    fn no_self_loops_and_deterministic() {
        let g = watts_strogatz(100, 2, 0.3, 9);
        for (s, d) in g.edge_iter() {
            assert_ne!(s, d);
        }
        assert_eq!(g, watts_strogatz(100, 2, 0.3, 9));
    }

    #[test]
    #[should_panic(expected = "n > 2k")]
    fn rejects_degenerate_sizes() {
        watts_strogatz(4, 2, 0.1, 0);
    }
}
