//! Vendored deterministic PRNG — no external `rand` dependency.
//!
//! The workspace must build hermetically offline (no registry access), so
//! the generators use this tiny SplitMix64-seeded xoshiro256** generator
//! instead of `rand::StdRng`. The API deliberately mirrors the subset of
//! `rand 0.9` the codebase used (`seed_from_u64`, `random`, `random_range`,
//! `shuffle`), so call sites read the same.
//!
//! SplitMix64 is Sebastiano Vigna's public-domain seeding function; the
//! state-advance is xoshiro256**, also public domain. Statistical quality is
//! far beyond what synthetic-graph generation and randomized testing need,
//! and the streams are fully deterministic per seed across platforms.

/// A small, fast, deterministic PRNG (xoshiro256** seeded via SplitMix64).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    s: [u64; 4],
}

#[inline]
fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SplitMix64 {
    /// Seed the generator from a single `u64` (same entry point as
    /// `rand::SeedableRng::seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SplitMix64 {
            s: [
                splitmix64_next(&mut sm),
                splitmix64_next(&mut sm),
                splitmix64_next(&mut sm),
                splitmix64_next(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// A uniform random value of type `T` (see [`Sample`] for the covered
    /// types; floats land in `[0, 1)`).
    #[inline]
    pub fn random<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open, like `rand`'s
    /// `random_range(a..b)`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    pub fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p`.
    #[inline]
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// Fisher–Yates shuffle of `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.random_range(0..i + 1);
            slice.swap(i, j);
        }
    }
}

/// Types [`SplitMix64::random`] can produce.
pub trait Sample {
    /// Draw one uniform value.
    fn sample(rng: &mut SplitMix64) -> Self;
}

impl Sample for u64 {
    #[inline]
    fn sample(rng: &mut SplitMix64) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    #[inline]
    fn sample(rng: &mut SplitMix64) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for bool {
    #[inline]
    fn sample(rng: &mut SplitMix64) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample(rng: &mut SplitMix64) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample(rng: &mut SplitMix64) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges [`SplitMix64::random_range`] can sample from.
pub trait SampleRange {
    /// The value type the range yields.
    type Output;
    /// Draw one uniform value from the range.
    fn sample(self, rng: &mut SplitMix64) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut SplitMix64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight bias
                // without the rejection step is < 2^-32 for the span sizes
                // graph generation uses.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, u16, u8, i32);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut SplitMix64) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + (self.end - self.start) * rng.random::<$t>()
            }
        }
    )*};
}
float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(43);
        assert_ne!(SplitMix64::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&y));
            let f = rng.random_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
            let d: f64 = rng.random();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn range_covers_every_value() {
        let mut rng = SplitMix64::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 buckets hit: {seen:?}");
    }

    #[test]
    fn floats_are_roughly_uniform() {
        let mut rng = SplitMix64::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements left them sorted");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = SplitMix64::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }
}
