//! Erdős–Rényi G(n, m) random graphs — the unskewed baseline used by tests
//! and partitioning ablations.

use crate::csr::Csr;
use crate::edge_list::EdgeList;
use crate::generators::rng::SplitMix64 as StdRng;
use crate::types::VertexId;

/// Generate a directed G(n, m) graph: `m` edges sampled uniformly without
/// self-loops, duplicates removed (so the result may have slightly fewer
/// than `m` edges).
pub fn gnm(n: usize, m: usize, seed: u64) -> Csr {
    assert!(n >= 2, "need at least two vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut el = EdgeList::new(n);
    el.edges.reserve(m);
    for _ in 0..m {
        let s = rng.random_range(0..n) as VertexId;
        let mut d = rng.random_range(0..n - 1) as VertexId;
        if d >= s {
            d += 1; // skip self-loop
        }
        el.push(s, d);
    }
    el.sort_dedup();
    Csr::from_edge_list(&el)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeStats;

    #[test]
    fn size_and_validity() {
        let g = gnm(500, 3000, 3);
        assert_eq!(g.num_vertices(), 500);
        assert!(g.num_edges() > 2800 && g.num_edges() <= 3000);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn no_self_loops() {
        let g = gnm(100, 1000, 11);
        for (s, d) in g.edge_iter() {
            assert_ne!(s, d);
        }
    }

    #[test]
    fn degrees_are_unskewed() {
        let g = gnm(2000, 20000, 5);
        let s = DegreeStats::out_degrees(&g);
        assert!(s.cv < 0.6, "ER graphs should be near-uniform, cv={}", s.cv);
    }

    #[test]
    fn deterministic() {
        assert_eq!(gnm(100, 500, 9), gnm(100, 500, 9));
    }
}
