//! RMAT (recursive matrix) power-law graph generator.
//!
//! The Pokec social network used by the paper is a power-law graph whose
//! "vertices with higher out-degrees are concentrated at the front". RMAT
//! with the classic (0.57, 0.19, 0.19, 0.05) parameters produces the degree
//! skew; `front_loaded_hubs` then renumbers vertices by descending out-degree
//! so hub ids cluster at the front of the id space, which is precisely the
//! property that defeats continuous partitioning in Fig. 6.

use crate::csr::Csr;
use crate::edge_list::EdgeList;
use crate::generators::rng::SplitMix64 as StdRng;
use crate::types::VertexId;

/// RMAT generator parameters.
#[derive(Clone, Debug)]
pub struct RmatConfig {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Average out-degree; edges = `(1 << scale) * edge_factor`.
    pub edge_factor: usize,
    /// Quadrant probabilities; must sum to 1.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Renumber vertices so high out-degree ids come first (pokec-like).
    pub front_loaded_hubs: bool,
    /// Remove duplicate edges and self-loops.
    pub clean: bool,
    /// Cap per-vertex in- and out-degree by dropping excess edges. Real
    /// social graphs keep `max_degree / num_edges` tiny (Pokec: ~3e-4);
    /// uncapped RMAT at small scales concentrates a large fraction of all
    /// edges on a handful of hubs, which distorts scaled-down experiments.
    pub degree_cap: Option<u32>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RmatConfig {
    fn default() -> Self {
        RmatConfig {
            scale: 14,
            edge_factor: 16,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            front_loaded_hubs: true,
            clean: true,
            degree_cap: None,
            seed: 1,
        }
    }
}

impl RmatConfig {
    /// Quadrant probability `d` (derived).
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generate an RMAT graph.
pub fn rmat(cfg: &RmatConfig) -> Csr {
    assert!(cfg.scale > 0 && cfg.scale < 31, "scale out of range");
    assert!(cfg.d() >= 0.0, "quadrant probabilities exceed 1");
    let n = 1usize << cfg.scale;
    let m = n * cfg.edge_factor;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut el = EdgeList::new(n);
    el.edges.reserve(m);

    for _ in 0..m {
        let (mut lo_s, mut hi_s) = (0usize, n);
        let (mut lo_d, mut hi_d) = (0usize, n);
        while hi_s - lo_s > 1 {
            // Perturb quadrant probabilities slightly per level (standard
            // RMAT noise to avoid exact self-similarity artifacts).
            let noise = 0.9 + 0.2 * rng.random::<f64>();
            let a = cfg.a * noise;
            let b = cfg.b;
            let c = cfg.c;
            let total = a + b + c + cfg.d();
            let r: f64 = rng.random::<f64>() * total;
            let mid_s = (lo_s + hi_s) / 2;
            let mid_d = (lo_d + hi_d) / 2;
            if r < a {
                hi_s = mid_s;
                hi_d = mid_d;
            } else if r < a + b {
                hi_s = mid_s;
                lo_d = mid_d;
            } else if r < a + b + c {
                lo_s = mid_s;
                hi_d = mid_d;
            } else {
                lo_s = mid_s;
                lo_d = mid_d;
            }
        }
        el.push(lo_s as VertexId, lo_d as VertexId);
    }

    if cfg.clean {
        el.edges.retain(|&(s, d)| s != d);
        el.sort_dedup();
    }

    if let Some(cap) = cfg.degree_cap {
        let mut out_deg = vec![0u32; n];
        let mut in_deg = vec![0u32; n];
        el.edges.retain(|&(s, d)| {
            if out_deg[s as usize] < cap && in_deg[d as usize] < cap {
                out_deg[s as usize] += 1;
                in_deg[d as usize] += 1;
                true
            } else {
                false
            }
        });
    }

    let g = Csr::from_edge_list(&el);
    if cfg.front_loaded_hubs {
        renumber_by_out_degree(&g)
    } else {
        g
    }
}

/// Renumber vertices by descending out-degree (stable). Hubs get the lowest
/// ids, emulating social-network crawls where early-crawled (popular)
/// accounts have small ids.
pub fn renumber_by_out_degree(g: &Csr) -> Csr {
    let n = g.num_vertices();
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_by(|&a, &b| g.out_degree(b).cmp(&g.out_degree(a)).then(a.cmp(&b)));
    let mut new_id = vec![0 as VertexId; n];
    for (new, &old) in order.iter().enumerate() {
        new_id[old as usize] = new as VertexId;
    }
    let mut el = EdgeList::new(n);
    el.edges.reserve(g.num_edges());
    for (s, d) in g.edge_iter() {
        el.push(new_id[s as usize], new_id[d as usize]);
    }
    el.weights = g.weights.clone();
    Csr::from_edge_list(&el)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeStats;

    fn tiny() -> RmatConfig {
        RmatConfig {
            scale: 10,
            edge_factor: 8,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn generates_requested_size() {
        let g = rmat(&tiny());
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.num_edges() > 4000, "cleaning removed too many edges");
        assert!(g.validate().is_ok());
    }

    #[test]
    fn deterministic_for_seed() {
        let a = rmat(&tiny());
        let b = rmat(&tiny());
        assert_eq!(a, b);
        let c = rmat(&RmatConfig { seed: 8, ..tiny() });
        assert_ne!(a, c);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = rmat(&tiny());
        let s = DegreeStats::out_degrees(&g);
        assert!(s.cv > 1.0, "RMAT should be heavy-tailed, cv={}", s.cv);
        assert!(s.top1pct_share > 0.05);
    }

    #[test]
    fn front_loading_puts_hubs_first() {
        let g = rmat(&tiny());
        let degs = g.out_degrees();
        let front: u64 = degs[..64].iter().map(|&d| d as u64).sum();
        let back: u64 = degs[960..].iter().map(|&d| d as u64).sum();
        assert!(
            front > 10 * back.max(1),
            "front mass {front} should dwarf back mass {back}"
        );
        // Monotone non-increasing by construction.
        for w in degs.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn clean_removes_self_loops() {
        let g = rmat(&tiny());
        for (s, d) in g.edge_iter() {
            assert_ne!(s, d);
        }
    }
}
