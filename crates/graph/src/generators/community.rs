//! Planted-community graph generator — the DBLP stand-in.
//!
//! DBLP is a co-authorship network: dense collaboration clusters joined by
//! sparse bridges. The Semi-Clustering experiment needs exactly that
//! structure (semi-clusters are "groups of people [who] interact frequently
//! with each other"). The generator plants `num_communities` groups, wires
//! dense intra-community edges and sparse inter-community bridges, and
//! mirrors every edge, matching the paper's conversion of the undirected
//! DBLP graph "to a directed graph by duplicating each edge".

use crate::csr::Csr;
use crate::edge_list::EdgeList;
use crate::generators::rng::SplitMix64 as StdRng;
use crate::types::VertexId;

/// Community graph parameters.
#[derive(Clone, Debug)]
pub struct CommunityConfig {
    /// Total number of vertices.
    pub num_vertices: usize,
    /// Number of planted communities.
    pub num_communities: usize,
    /// Average intra-community degree (undirected).
    pub intra_degree: usize,
    /// Average inter-community (bridge) degree (undirected).
    pub inter_degree: f64,
    /// Attach uniform random interaction weights in `(0, 1]`.
    pub weighted: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CommunityConfig {
    fn default() -> Self {
        CommunityConfig {
            num_vertices: 4_000,
            num_communities: 80,
            intra_degree: 6,
            inter_degree: 0.5,
            weighted: true,
            seed: 1,
        }
    }
}

/// Generate the community graph. Returns the graph and the planted
/// community id per vertex (ground truth for clustering quality checks).
pub fn community_graph(cfg: &CommunityConfig) -> (Csr, Vec<u32>) {
    assert!(cfg.num_communities >= 1);
    assert!(cfg.num_vertices >= cfg.num_communities);
    let n = cfg.num_vertices;
    let k = cfg.num_communities;
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Assign vertices to communities in contiguous ranges (DBLP-like ids).
    let per = n / k;
    let community = |v: usize| ((v / per).min(k - 1)) as u32;
    let comm_range = |c: usize| {
        let start = c * per;
        let end = if c == k - 1 { n } else { (c + 1) * per };
        start..end
    };

    let mut el = EdgeList::new(n);
    let mut seen = std::collections::HashSet::new();
    let add_undirected = |el: &mut EdgeList,
                          rng: &mut StdRng,
                          seen: &mut std::collections::HashSet<(u32, u32)>,
                          a: usize,
                          b: usize| {
        if a == b {
            return;
        }
        let key = ((a.min(b)) as u32, (a.max(b)) as u32);
        if !seen.insert(key) {
            return;
        }
        let w = if cfg.weighted {
            rng.random_range(0.05f32..1.0)
        } else {
            1.0
        };
        el.push_weighted(a as VertexId, b as VertexId, w);
        el.push_weighted(b as VertexId, a as VertexId, w);
    };

    // Dense intra-community edges.
    for c in 0..k {
        let range = comm_range(c);
        let len = range.len();
        if len < 2 {
            continue;
        }
        let edges = len * cfg.intra_degree / 2;
        for _ in 0..edges {
            let a = range.start + rng.random_range(0..len);
            let b = range.start + rng.random_range(0..len);
            add_undirected(&mut el, &mut rng, &mut seen, a, b);
        }
    }

    // Sparse inter-community bridges.
    let bridges = (n as f64 * cfg.inter_degree / 2.0) as usize;
    for _ in 0..bridges {
        let a = rng.random_range(0..n);
        let b = rng.random_range(0..n);
        if community(a) != community(b) {
            add_undirected(&mut el, &mut rng, &mut seen, a, b);
        }
    }

    el.sort_dedup();
    let labels = (0..n).map(community).collect();
    (Csr::from_edge_list(&el), labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CommunityConfig {
        CommunityConfig {
            num_vertices: 600,
            num_communities: 12,
            intra_degree: 8,
            inter_degree: 0.4,
            weighted: true,
            seed: 3,
        }
    }

    #[test]
    fn generates_symmetric_graph() {
        let (g, _) = community_graph(&tiny());
        assert!(g.validate().is_ok());
        // Every edge must have its mirror.
        let mut fwd: Vec<(u32, u32)> = g.edge_iter().collect();
        let mut rev: Vec<(u32, u32)> = g.edge_iter().map(|(s, d)| (d, s)).collect();
        fwd.sort_unstable();
        rev.sort_unstable();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn intra_edges_dominate() {
        let (g, labels) = community_graph(&tiny());
        let intra = g
            .edge_iter()
            .filter(|&(s, d)| labels[s as usize] == labels[d as usize])
            .count();
        let total = g.num_edges();
        assert!(
            intra * 10 > total * 7,
            "intra {intra}/{total} should be at least 70%"
        );
    }

    #[test]
    fn mirrored_edges_share_weights() {
        let (g, _) = community_graph(&tiny());
        let w = g.weights.as_ref().unwrap();
        for s in 0..g.num_vertices() as VertexId {
            for e in g.edge_range(s) {
                let d = g.targets[e];
                // Find the mirror edge d -> s.
                let mirror = g.edge_range(d).find(|&e2| g.targets[e2] == s);
                let m = mirror.expect("mirror edge missing");
                assert_eq!(w[e], w[m]);
            }
        }
    }

    #[test]
    fn labels_cover_all_communities() {
        let cfg = tiny();
        let (_, labels) = community_graph(&cfg);
        let distinct: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(distinct.len(), cfg.num_communities);
    }
}
