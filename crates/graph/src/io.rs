//! Graph I/O.
//!
//! Four formats:
//!
//! * **Adjacency list** — the paper's input ("the graph file stored in an
//!   adjacency list format"): a header line `n m`, then one line per vertex
//!   `src: dst1 dst2 …` (vertices with no out-edges may be omitted).
//!   Weighted variant uses `dst,weight` tokens.
//! * **SNAP edge list** — `# comment` lines then `src<ws>dst` pairs, the
//!   distribution format of the real Pokec and DBLP datasets, so they can be
//!   dropped into the benches unchanged.
//! * **MatrixMarket** — `.mtx` coordinate matrices (general or symmetric,
//!   pattern or real), the SuiteSparse collection's format.
//! * **Binary** — a fast little-endian dump of the CSR arrays for repeated
//!   benchmarking runs.

use crate::csr::Csr;
use crate::edge_list::EdgeList;
use crate::types::VertexId;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Write a graph in the adjacency-list format.
pub fn write_adjacency<W: Write>(g: &Csr, out: W) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    writeln!(w, "{} {}", g.num_vertices(), g.num_edges())?;
    for v in 0..g.num_vertices() as VertexId {
        if g.out_degree(v) == 0 {
            continue;
        }
        write!(w, "{v}:")?;
        for e in g.edge_range(v) {
            match &g.weights {
                Some(weights) => write!(w, " {},{}", g.targets[e], weights[e])?,
                None => write!(w, " {}", g.targets[e])?,
            }
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Read a graph in the adjacency-list format.
pub fn read_adjacency<R: Read>(input: R) -> io::Result<Csr> {
    let mut lines = BufReader::new(input).lines();
    let header = lines.next().ok_or_else(|| bad("empty adjacency file"))??;
    let mut it = header.split_whitespace();
    let n: usize = parse(it.next().ok_or_else(|| bad("missing vertex count"))?)?;
    let m: usize = parse(it.next().ok_or_else(|| bad("missing edge count"))?)?;

    let mut el = EdgeList::new(n);
    el.edges.reserve(m);
    for line in lines {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (src_s, rest) = line
            .split_once(':')
            .ok_or_else(|| bad("adjacency line missing ':'"))?;
        let src: VertexId = parse(src_s.trim())?;
        for tok in rest.split_whitespace() {
            match tok.split_once(',') {
                Some((d, w)) => {
                    el.push_weighted(src, parse(d)?, parse(w)?);
                }
                None => el.push(src, parse(tok)?),
            }
        }
    }
    if el.num_edges() != m {
        return Err(bad(&format!(
            "header declared {m} edges, found {}",
            el.num_edges()
        )));
    }
    el.validate().map_err(|e| bad(&e))?;
    Ok(Csr::from_edge_list(&el))
}

/// Read a SNAP-style edge list (`# comments`, whitespace-separated pairs).
/// The vertex count is `max id + 1` unless `num_vertices` is given.
pub fn read_snap_edges<R: Read>(input: R, num_vertices: Option<usize>) -> io::Result<Csr> {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_id: u64 = 0;
    for line in BufReader::new(input).lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let s: VertexId = parse(it.next().ok_or_else(|| bad("missing src"))?)?;
        let d: VertexId = parse(it.next().ok_or_else(|| bad("missing dst"))?)?;
        max_id = max_id.max(s as u64).max(d as u64);
        edges.push((s, d));
    }
    let n = num_vertices.unwrap_or(if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    });
    let el = EdgeList {
        num_vertices: n,
        edges,
        weights: None,
    };
    el.validate().map_err(|e| bad(&e))?;
    Ok(Csr::from_edge_list(&el))
}

/// Read a MatrixMarket coordinate file (`%%MatrixMarket matrix coordinate
/// real|pattern general|symmetric`) as a directed graph. Entry `(i, j)` is
/// the edge `i → j` (1-based ids as per the format); `symmetric` matrices
/// emit both directions; `real` values become edge weights.
pub fn read_matrix_market<R: Read>(input: R) -> io::Result<Csr> {
    let mut lines = BufReader::new(input).lines();
    let header = lines
        .next()
        .ok_or_else(|| bad("empty MatrixMarket file"))??;
    let header_lc = header.to_lowercase();
    if !header_lc.starts_with("%%matrixmarket matrix coordinate") {
        return Err(bad("not a MatrixMarket coordinate matrix"));
    }
    let weighted = header_lc.contains(" real") || header_lc.contains(" integer");
    let symmetric = header_lc.contains("symmetric");

    // Skip comments; first non-comment line is "rows cols entries".
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| bad("missing size line"))?;
    let mut it = size_line.split_whitespace();
    let rows: usize = parse(it.next().ok_or_else(|| bad("missing rows"))?)?;
    let cols: usize = parse(it.next().ok_or_else(|| bad("missing cols"))?)?;
    let entries: usize = parse(it.next().ok_or_else(|| bad("missing entries"))?)?;
    let n = rows.max(cols);

    let mut el = EdgeList::new(n);
    el.edges
        .reserve(if symmetric { entries * 2 } else { entries });
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize = parse(it.next().ok_or_else(|| bad("missing row id"))?)?;
        let j: usize = parse(it.next().ok_or_else(|| bad("missing col id"))?)?;
        if i == 0 || j == 0 || i > n || j > n {
            return Err(bad(&format!("entry ({i}, {j}) out of 1..={n}")));
        }
        let (s, d) = ((i - 1) as VertexId, (j - 1) as VertexId);
        if weighted {
            let w: f32 = parse(it.next().ok_or_else(|| bad("missing value"))?)?;
            el.push_weighted(s, d, w);
            if symmetric && s != d {
                el.push_weighted(d, s, w);
            }
        } else {
            el.push(s, d);
            if symmetric && s != d {
                el.push(d, s);
            }
        }
        seen += 1;
    }
    if seen != entries {
        return Err(bad(&format!(
            "size line declared {entries} entries, found {seen}"
        )));
    }
    Ok(Csr::from_edge_list(&el))
}

const BINARY_MAGIC: &[u8; 8] = b"PHIGRAF1";

/// Write the binary CSR format.
pub fn write_binary<W: Write>(g: &Csr, out: W) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    w.write_all(BINARY_MAGIC)?;
    let n = g.num_vertices() as u64;
    let m = g.num_edges() as u64;
    let has_weights = g.weights.is_some() as u64;
    w.write_all(&n.to_le_bytes())?;
    w.write_all(&m.to_le_bytes())?;
    w.write_all(&has_weights.to_le_bytes())?;
    for &o in &g.offsets {
        w.write_all(&(o as u64).to_le_bytes())?;
    }
    for &t in &g.targets {
        w.write_all(&t.to_le_bytes())?;
    }
    if let Some(weights) = &g.weights {
        for &x in weights {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Read the binary CSR format.
pub fn read_binary<R: Read>(input: R) -> io::Result<Csr> {
    let mut r = BufReader::new(input);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(bad("bad magic"));
    }
    let n = read_u64(&mut r)? as usize;
    let m = read_u64(&mut r)? as usize;
    let has_weights = read_u64(&mut r)? != 0;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(read_u64(&mut r)? as usize);
    }
    let mut targets = Vec::with_capacity(m);
    for _ in 0..m {
        let mut b = [0u8; 4];
        r.read_exact(&mut b)?;
        targets.push(VertexId::from_le_bytes(b));
    }
    let weights = if has_weights {
        let mut w = Vec::with_capacity(m);
        for _ in 0..m {
            let mut b = [0u8; 4];
            r.read_exact(&mut b)?;
            w.push(f32::from_le_bytes(b));
        }
        Some(w)
    } else {
        None
    };
    let g = Csr {
        offsets,
        targets,
        weights,
    };
    g.validate().map_err(|e| bad(&e))?;
    Ok(g)
}

/// Load a graph, picking the format from the file extension: `.adj`,
/// `.txt`/`.snap` (edge list), or `.bin`.
pub fn load_path(path: &Path) -> io::Result<Csr> {
    let f = std::fs::File::open(path)?;
    match path.extension().and_then(|e| e.to_str()) {
        Some("adj") => read_adjacency(f),
        Some("bin") => read_binary(f),
        Some("txt") | Some("snap") => read_snap_edges(f, None),
        Some("mtx") => read_matrix_market(f),
        other => Err(bad(&format!("unknown graph extension {other:?}"))),
    }
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn parse<T: std::str::FromStr>(s: &str) -> io::Result<T> {
    s.parse()
        .map_err(|_| bad(&format!("cannot parse token {s:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::small::{paper_example, weighted_diamond};

    #[test]
    fn adjacency_round_trip() {
        let g = paper_example();
        let mut buf = Vec::new();
        write_adjacency(&g, &mut buf).unwrap();
        let g2 = read_adjacency(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn adjacency_round_trip_weighted() {
        let g = weighted_diamond();
        let mut buf = Vec::new();
        write_adjacency(&g, &mut buf).unwrap();
        let g2 = read_adjacency(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn adjacency_rejects_wrong_edge_count() {
        let text = "3 5\n0: 1 2\n";
        assert!(read_adjacency(text.as_bytes()).is_err());
    }

    #[test]
    fn snap_parses_comments_and_pairs() {
        let text = "# Directed graph\n# Nodes: 4 Edges: 3\n0\t1\n1\t2\n3 0\n";
        let g = read_snap_edges(text.as_bytes(), None).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(3), &[0]);
    }

    #[test]
    fn snap_respects_explicit_vertex_count() {
        let text = "0 1\n";
        let g = read_snap_edges(text.as_bytes(), Some(10)).unwrap();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn binary_round_trip() {
        let g = paper_example();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_round_trip_weighted() {
        let g = weighted_diamond();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap(), g);
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(read_binary(&b"NOTAGRAPH"[..]).is_err());
    }

    #[test]
    fn matrix_market_general_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    % a comment\n\
                    3 3 3\n1 2\n2 3\n3 1\n";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[0]);
    }

    #[test]
    fn matrix_market_symmetric_real() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    3 3 2\n2 1 1.5\n3 3 9.0\n";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        // (2,1) mirrored to (1,2); diagonal (3,3) not duplicated.
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.weight(g.edge_range(0).start), 1.5);
        assert_eq!(g.neighbors(2), &[2]);
    }

    #[test]
    fn matrix_market_rejects_bad_input() {
        assert!(read_matrix_market(&b"not a matrix"[..]).is_err());
        let wrong_count = "%%MatrixMarket matrix coordinate pattern general\n2 2 5\n1 2\n";
        assert!(read_matrix_market(wrong_count.as_bytes()).is_err());
        let out_of_range = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n";
        assert!(read_matrix_market(out_of_range.as_bytes()).is_err());
    }
}
