//! Graph I/O.
//!
//! Four formats:
//!
//! * **Adjacency list** — the paper's input ("the graph file stored in an
//!   adjacency list format"): a header line `n m`, then one line per vertex
//!   `src: dst1 dst2 …` (vertices with no out-edges may be omitted).
//!   Weighted variant uses `dst,weight` tokens.
//! * **SNAP edge list** — `# comment` lines then `src<ws>dst` pairs, the
//!   distribution format of the real Pokec and DBLP datasets, so they can be
//!   dropped into the benches unchanged.
//! * **MatrixMarket** — `.mtx` coordinate matrices (general or symmetric,
//!   pattern or real), the SuiteSparse collection's format.
//! * **Binary** — a fast little-endian dump of the CSR arrays for repeated
//!   benchmarking runs.
//!
//! All readers return the typed [`GraphError`] — truncated files,
//! unparsable tokens, out-of-range endpoints, inconsistent headers, and
//! zero-vertex graphs are rejected with a dedicated variant, never a panic.

use crate::csr::Csr;
use crate::edge_list::EdgeList;
use crate::error::GraphError;
use crate::types::VertexId;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Upper bound on speculative `reserve` calls driven by header-declared
/// counts, so a smashed header cannot trigger a giant allocation.
const MAX_RESERVE: usize = 1 << 22;

/// Write a graph in the adjacency-list format.
pub fn write_adjacency<W: Write>(g: &Csr, out: W) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    writeln!(w, "{} {}", g.num_vertices(), g.num_edges())?;
    for v in 0..g.num_vertices() as VertexId {
        if g.out_degree(v) == 0 {
            continue;
        }
        write!(w, "{v}:")?;
        for e in g.edge_range(v) {
            match &g.weights {
                Some(weights) => write!(w, " {},{}", g.targets[e], weights[e])?,
                None => write!(w, " {}", g.targets[e])?,
            }
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Read a graph in the adjacency-list format.
pub fn read_adjacency<R: Read>(input: R) -> Result<Csr, GraphError> {
    let mut lines = BufReader::new(input).lines();
    let header = lines.next().ok_or(GraphError::Truncated {
        what: "adjacency header",
    })??;
    let mut it = header.split_whitespace();
    let n: usize = parse(it.next().ok_or(GraphError::Missing {
        what: "vertex count",
    })?)?;
    let m: usize = parse(
        it.next()
            .ok_or(GraphError::Missing { what: "edge count" })?,
    )?;
    if n == 0 {
        return Err(GraphError::ZeroVertices);
    }

    let mut el = EdgeList::new(n);
    el.edges.reserve(m.min(MAX_RESERVE));
    let mut weighted_lines = 0usize;
    let mut plain_lines = 0usize;
    for line in lines {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (src_s, rest) = line.split_once(':').ok_or(GraphError::Missing {
            what: "':' in adjacency line",
        })?;
        let src: VertexId = parse(src_s.trim())?;
        for tok in rest.split_whitespace() {
            // Mixing weighted and unweighted tokens would leave the weight
            // array shorter than the edge array: reject it up front.
            let mixed = GraphError::Structure {
                reason: "mixed weighted and unweighted edges".to_string(),
            };
            match tok.split_once(',') {
                Some((d, w)) => {
                    if plain_lines > 0 {
                        return Err(mixed);
                    }
                    weighted_lines += 1;
                    el.push_weighted(src, parse(d)?, parse(w)?);
                }
                None => {
                    if weighted_lines > 0 {
                        return Err(mixed);
                    }
                    plain_lines += 1;
                    el.push(src, parse(tok)?);
                }
            }
        }
    }
    if el.num_edges() != m {
        return Err(GraphError::CountMismatch {
            what: "edges",
            declared: m,
            found: el.num_edges(),
        });
    }
    check_edges(&el)?;
    Ok(Csr::from_edge_list(&el))
}

/// Read a SNAP-style edge list (`# comments`, whitespace-separated pairs).
/// The vertex count is `max id + 1` unless `num_vertices` is given.
pub fn read_snap_edges<R: Read>(input: R, num_vertices: Option<usize>) -> Result<Csr, GraphError> {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_id: u64 = 0;
    for line in BufReader::new(input).lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let s: VertexId = parse(it.next().ok_or(GraphError::Missing { what: "src" })?)?;
        let d: VertexId = parse(it.next().ok_or(GraphError::Missing { what: "dst" })?)?;
        max_id = max_id.max(s as u64).max(d as u64);
        edges.push((s, d));
    }
    let n = num_vertices.unwrap_or(if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    });
    if n == 0 {
        return Err(GraphError::ZeroVertices);
    }
    let el = EdgeList {
        num_vertices: n,
        edges,
        weights: None,
    };
    check_edges(&el)?;
    Ok(Csr::from_edge_list(&el))
}

/// Read a MatrixMarket coordinate file (`%%MatrixMarket matrix coordinate
/// real|pattern general|symmetric`) as a directed graph. Entry `(i, j)` is
/// the edge `i → j` (1-based ids as per the format); `symmetric` matrices
/// emit both directions; `real` values become edge weights.
pub fn read_matrix_market<R: Read>(input: R) -> Result<Csr, GraphError> {
    let mut lines = BufReader::new(input).lines();
    let header = lines.next().ok_or(GraphError::Truncated {
        what: "MatrixMarket header",
    })??;
    let header_lc = header.to_lowercase();
    if !header_lc.starts_with("%%matrixmarket matrix coordinate") {
        return Err(GraphError::BadHeader {
            reason: "not a MatrixMarket coordinate matrix".to_string(),
        });
    }
    let weighted = header_lc.contains(" real") || header_lc.contains(" integer");
    let symmetric = header_lc.contains("symmetric");

    // Skip comments; first non-comment line is "rows cols entries".
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line = size_line.ok_or(GraphError::Truncated { what: "size line" })?;
    let mut it = size_line.split_whitespace();
    let rows: usize = parse(it.next().ok_or(GraphError::Missing { what: "rows" })?)?;
    let cols: usize = parse(it.next().ok_or(GraphError::Missing { what: "cols" })?)?;
    let entries: usize = parse(it.next().ok_or(GraphError::Missing { what: "entries" })?)?;
    let n = rows.max(cols);
    if n == 0 {
        return Err(GraphError::ZeroVertices);
    }

    let mut el = EdgeList::new(n);
    el.edges.reserve(
        (if symmetric {
            entries.saturating_mul(2)
        } else {
            entries
        })
        .min(MAX_RESERVE),
    );
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize = parse(it.next().ok_or(GraphError::Missing { what: "row id" })?)?;
        let j: usize = parse(it.next().ok_or(GraphError::Missing { what: "col id" })?)?;
        if i == 0 || j == 0 || i > n || j > n {
            return Err(GraphError::EdgeOutOfRange {
                src: i as u64,
                dst: j as u64,
                vertices: n as u64,
            });
        }
        let (s, d) = ((i - 1) as VertexId, (j - 1) as VertexId);
        if weighted {
            let w: f32 = parse(it.next().ok_or(GraphError::Missing { what: "value" })?)?;
            el.push_weighted(s, d, w);
            if symmetric && s != d {
                el.push_weighted(d, s, w);
            }
        } else {
            el.push(s, d);
            if symmetric && s != d {
                el.push(d, s);
            }
        }
        seen += 1;
    }
    if seen != entries {
        return Err(GraphError::CountMismatch {
            what: "entries",
            declared: entries,
            found: seen,
        });
    }
    Ok(Csr::from_edge_list(&el))
}

const BINARY_MAGIC: &[u8; 8] = b"PHIGRAF1";

/// Write the binary CSR format.
pub fn write_binary<W: Write>(g: &Csr, out: W) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    w.write_all(BINARY_MAGIC)?;
    let n = g.num_vertices() as u64;
    let m = g.num_edges() as u64;
    let has_weights = g.weights.is_some() as u64;
    w.write_all(&n.to_le_bytes())?;
    w.write_all(&m.to_le_bytes())?;
    w.write_all(&has_weights.to_le_bytes())?;
    for &o in &g.offsets {
        w.write_all(&(o as u64).to_le_bytes())?;
    }
    for &t in &g.targets {
        w.write_all(&t.to_le_bytes())?;
    }
    if let Some(weights) = &g.weights {
        for &x in weights {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Read the binary CSR format.
pub fn read_binary<R: Read>(input: R) -> Result<Csr, GraphError> {
    let mut r = BufReader::new(input);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(GraphError::BadHeader {
            reason: "bad magic".to_string(),
        });
    }
    let n = read_u64(&mut r)? as usize;
    let m = read_u64(&mut r)? as usize;
    if n == 0 {
        return Err(GraphError::ZeroVertices);
    }
    let has_weights = read_u64(&mut r)? != 0;
    // Capacities are bounded so a smashed header cannot force a giant
    // allocation before the (truncated) body is even read.
    let mut offsets = Vec::with_capacity(n.saturating_add(1).min(MAX_RESERVE));
    for _ in 0..=n {
        offsets.push(read_u64(&mut r)? as usize);
    }
    let mut targets = Vec::with_capacity(m.min(MAX_RESERVE));
    for _ in 0..m {
        let mut b = [0u8; 4];
        r.read_exact(&mut b)?;
        targets.push(VertexId::from_le_bytes(b));
    }
    let weights = if has_weights {
        let mut w = Vec::with_capacity(m.min(MAX_RESERVE));
        for _ in 0..m {
            let mut b = [0u8; 4];
            r.read_exact(&mut b)?;
            w.push(f32::from_le_bytes(b));
        }
        Some(w)
    } else {
        None
    };
    let g = Csr {
        offsets,
        targets,
        weights,
    };
    g.validate()
        .map_err(|reason| GraphError::Structure { reason })?;
    Ok(g)
}

/// Load a graph, picking the format from the file extension: `.adj`,
/// `.txt`/`.snap` (edge list), or `.bin`.
pub fn load_path(path: &Path) -> Result<Csr, GraphError> {
    let f = std::fs::File::open(path).map_err(GraphError::Io)?;
    match path.extension().and_then(|e| e.to_str()) {
        Some("adj") => read_adjacency(f),
        Some("bin") => read_binary(f),
        Some("txt") | Some("snap") => read_snap_edges(f, None),
        Some("mtx") => read_matrix_market(f),
        other => Err(GraphError::BadHeader {
            reason: format!("unknown graph extension {other:?}"),
        }),
    }
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, GraphError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Typed out-of-range endpoint check plus the edge-list invariants.
fn check_edges(el: &EdgeList) -> Result<(), GraphError> {
    let n = el.num_vertices as u64;
    if let Some(&(s, d)) = el
        .edges
        .iter()
        .find(|&&(s, d)| s as u64 >= n || d as u64 >= n)
    {
        return Err(GraphError::EdgeOutOfRange {
            src: s as u64,
            dst: d as u64,
            vertices: n,
        });
    }
    el.validate()
        .map_err(|reason| GraphError::Structure { reason })
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, GraphError> {
    s.parse().map_err(|_| GraphError::parse(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::small::{paper_example, weighted_diamond};

    #[test]
    fn adjacency_round_trip() {
        let g = paper_example();
        let mut buf = Vec::new();
        write_adjacency(&g, &mut buf).unwrap();
        let g2 = read_adjacency(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn adjacency_round_trip_weighted() {
        let g = weighted_diamond();
        let mut buf = Vec::new();
        write_adjacency(&g, &mut buf).unwrap();
        let g2 = read_adjacency(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn adjacency_rejects_wrong_edge_count() {
        let text = "3 5\n0: 1 2\n";
        assert!(read_adjacency(text.as_bytes()).is_err());
    }

    #[test]
    fn snap_parses_comments_and_pairs() {
        let text = "# Directed graph\n# Nodes: 4 Edges: 3\n0\t1\n1\t2\n3 0\n";
        let g = read_snap_edges(text.as_bytes(), None).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(3), &[0]);
    }

    #[test]
    fn snap_respects_explicit_vertex_count() {
        let text = "0 1\n";
        let g = read_snap_edges(text.as_bytes(), Some(10)).unwrap();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn binary_round_trip() {
        let g = paper_example();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_round_trip_weighted() {
        let g = weighted_diamond();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap(), g);
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(read_binary(&b"NOTAGRAPH"[..]).is_err());
    }

    #[test]
    fn matrix_market_general_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    % a comment\n\
                    3 3 3\n1 2\n2 3\n3 1\n";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[0]);
    }

    #[test]
    fn matrix_market_symmetric_real() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    3 3 2\n2 1 1.5\n3 3 9.0\n";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        // (2,1) mirrored to (1,2); diagonal (3,3) not duplicated.
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.weight(g.edge_range(0).start), 1.5);
        assert_eq!(g.neighbors(2), &[2]);
    }

    #[test]
    fn zero_vertex_graphs_are_rejected() {
        assert!(matches!(
            read_adjacency(&b"0 0\n"[..]),
            Err(GraphError::ZeroVertices)
        ));
        assert!(matches!(
            read_snap_edges(&b"# empty\n"[..], None),
            Err(GraphError::ZeroVertices)
        ));
        let mtx = "%%MatrixMarket matrix coordinate pattern general\n0 0 0\n";
        assert!(matches!(
            read_matrix_market(mtx.as_bytes()),
            Err(GraphError::ZeroVertices)
        ));
        let empty = Csr {
            offsets: vec![0],
            targets: vec![],
            weights: None,
        };
        let mut buf = Vec::new();
        write_binary(&empty, &mut buf).unwrap();
        assert!(matches!(
            read_binary(&buf[..]),
            Err(GraphError::ZeroVertices)
        ));
    }

    #[test]
    fn truncated_binary_is_a_typed_error() {
        let g = paper_example();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Cut mid-magic, mid-header, mid-offsets, and mid-targets.
        for cut in [4, 12, 40, buf.len() - 2] {
            let err = read_binary(&buf[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    GraphError::Truncated { .. } | GraphError::BadHeader { .. }
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn out_of_range_endpoints_are_typed() {
        let err = read_adjacency(&b"2 1\n0: 7\n"[..]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::EdgeOutOfRange {
                src: 0,
                dst: 7,
                vertices: 2
            }
        ));
        let err = read_snap_edges(&b"0 9\n"[..], Some(3)).unwrap_err();
        assert!(matches!(err, GraphError::EdgeOutOfRange { dst: 9, .. }));
    }

    #[test]
    fn mixed_weight_tokens_are_rejected() {
        // Weighted then unweighted and the reverse both fail cleanly
        // instead of corrupting the parallel weight array.
        assert!(matches!(
            read_adjacency(&b"3 2\n0: 1,2.5 2\n"[..]),
            Err(GraphError::Structure { .. })
        ));
        assert!(matches!(
            read_adjacency(&b"3 2\n0: 1\n1: 2,0.5\n"[..]),
            Err(GraphError::Structure { .. })
        ));
    }

    #[test]
    fn unparsable_tokens_are_typed() {
        assert!(matches!(
            read_adjacency(&b"x y\n"[..]),
            Err(GraphError::Parse { .. })
        ));
        assert!(matches!(
            read_snap_edges(&b"0 banana\n"[..], None),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn matrix_market_rejects_bad_input() {
        assert!(read_matrix_market(&b"not a matrix"[..]).is_err());
        let wrong_count = "%%MatrixMarket matrix coordinate pattern general\n2 2 5\n1 2\n";
        assert!(read_matrix_market(wrong_count.as_bytes()).is_err());
        let out_of_range = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n";
        assert!(read_matrix_market(out_of_range.as_bytes()).is_err());
    }
}
