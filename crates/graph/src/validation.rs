//! Whole-graph structural checks used by tests and the reproduction harness.
//!
//! Checks that take user-supplied vertex ids return the typed
//! [`GraphError`] instead of panicking on out-of-range input.

use crate::csr::Csr;
use crate::error::GraphError;
use crate::types::VertexId;

/// Count weakly connected components (directions ignored).
pub fn weakly_connected_components(g: &Csr) -> usize {
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    let rev = g.transpose();
    let mut comp = vec![usize::MAX; n];
    let mut components = 0;
    let mut stack = Vec::new();
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        components += 1;
        comp[start] = components;
        stack.push(start as VertexId);
        while let Some(v) = stack.pop() {
            for &d in g.neighbors(v).iter().chain(rev.neighbors(v)) {
                if comp[d as usize] == usize::MAX {
                    comp[d as usize] = components;
                    stack.push(d);
                }
            }
        }
    }
    components
}

/// Vertices reachable from `src` along directed edges. Returns a typed
/// error (instead of panicking) when `src` is out of range.
pub fn reachable_count(g: &Csr, src: VertexId) -> Result<usize, GraphError> {
    let n = g.num_vertices();
    if src as usize >= n {
        return Err(GraphError::VertexOutOfRange {
            vertex: src as u64,
            vertices: n as u64,
        });
    }
    let mut seen = vec![false; n];
    let mut stack = vec![src];
    seen[src as usize] = true;
    let mut count = 0;
    while let Some(v) = stack.pop() {
        count += 1;
        for &d in g.neighbors(v) {
            if !seen[d as usize] {
                seen[d as usize] = true;
                stack.push(d);
            }
        }
    }
    Ok(count)
}

/// True if the graph contains the reverse of every edge (a symmetrized /
/// undirected graph stored as directed).
pub fn is_symmetric(g: &Csr) -> bool {
    let mut fwd: Vec<(VertexId, VertexId)> = g.edge_iter().collect();
    let mut rev: Vec<(VertexId, VertexId)> = fwd.iter().map(|&(s, d)| (d, s)).collect();
    fwd.sort_unstable();
    rev.sort_unstable();
    fwd == rev
}

/// Count self-loops.
pub fn self_loops(g: &Csr) -> usize {
    g.edge_iter().filter(|&(s, d)| s == d).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::small::{chain, cycle, paper_example, star};

    #[test]
    fn chain_is_one_component() {
        assert_eq!(weakly_connected_components(&chain(10)), 1);
    }

    #[test]
    fn disjoint_chains_are_counted() {
        let mut el = crate::edge_list::EdgeList::new(6);
        el.push(0, 1);
        el.push(2, 3);
        el.push(4, 5);
        let g = Csr::from_edge_list(&el);
        assert_eq!(weakly_connected_components(&g), 3);
    }

    #[test]
    fn reachability_from_star_center() {
        let g = star(8);
        assert_eq!(reachable_count(&g, 0).unwrap(), 8);
        assert_eq!(reachable_count(&g, 3).unwrap(), 1);
    }

    #[test]
    fn reachability_rejects_out_of_range_source() {
        let g = star(8);
        assert!(matches!(
            reachable_count(&g, 99),
            Err(GraphError::VertexOutOfRange {
                vertex: 99,
                vertices: 8
            })
        ));
    }

    #[test]
    fn cycle_is_symmetric_only_if_mirrored() {
        assert!(!is_symmetric(&cycle(4)));
        let (sym, _) = cycle(4).symmetrized_weighted();
        assert!(is_symmetric(&sym));
    }

    #[test]
    fn paper_example_has_no_self_loops() {
        assert_eq!(self_loops(&paper_example()), 0);
    }
}
