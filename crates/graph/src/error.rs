//! Typed errors for graph ingestion and validation.
//!
//! Every reader in [`crate::io`] returns [`GraphError`] instead of
//! panicking, whatever the input bytes look like: truncated files,
//! unparsable tokens, out-of-range endpoints, inconsistent headers, and
//! zero-vertex graphs all map to a dedicated variant. This is what makes
//! the byte-smear property tests possible — feeding arbitrary corrupted
//! bytes through the parsers must produce `Err`, never a panic.

use std::fmt;
use std::io;

/// Why a graph could not be ingested or validated.
#[derive(Debug)]
pub enum GraphError {
    /// The underlying reader failed (not a format problem).
    Io(io::Error),
    /// The input ended before the format said it would.
    Truncated {
        /// What was being read when the bytes ran out.
        what: &'static str,
    },
    /// A token could not be parsed as the expected type.
    Parse {
        /// The offending token (possibly truncated for display).
        token: String,
    },
    /// A required field was absent.
    Missing {
        /// The missing field.
        what: &'static str,
    },
    /// An edge endpoint is outside `0..vertices`.
    EdgeOutOfRange {
        /// Source endpoint.
        src: u64,
        /// Destination endpoint.
        dst: u64,
        /// Declared vertex count.
        vertices: u64,
    },
    /// A vertex id is outside `0..vertices` (validation helpers).
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u64,
        /// The graph's vertex count.
        vertices: u64,
    },
    /// The header declared one count, the body contained another.
    CountMismatch {
        /// What was counted (edges, entries, …).
        what: &'static str,
        /// Count promised by the header.
        declared: usize,
        /// Count actually present.
        found: usize,
    },
    /// The file declares a graph with no vertices.
    ZeroVertices,
    /// The file does not start with the expected magic/header.
    BadHeader {
        /// What was wrong with it.
        reason: String,
    },
    /// The decoded structure is internally inconsistent (CSR invariants,
    /// weight arrays, …).
    Structure {
        /// The invariant that failed.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Truncated { what } => write!(f, "truncated input while reading {what}"),
            GraphError::Parse { token } => write!(f, "cannot parse token {token:?}"),
            GraphError::Missing { what } => write!(f, "missing {what}"),
            GraphError::EdgeOutOfRange { src, dst, vertices } => {
                write!(
                    f,
                    "edge ({src}, {dst}) out of range for {vertices} vertices"
                )
            }
            GraphError::VertexOutOfRange { vertex, vertices } => {
                write!(f, "vertex {vertex} out of range for {vertices} vertices")
            }
            GraphError::CountMismatch {
                what,
                declared,
                found,
            } => write!(f, "header declared {declared} {what}, found {found}"),
            GraphError::ZeroVertices => write!(f, "graph has zero vertices"),
            GraphError::BadHeader { reason } => write!(f, "bad header: {reason}"),
            GraphError::Structure { reason } => write!(f, "inconsistent graph: {reason}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            GraphError::Truncated { what: "input" }
        } else {
            GraphError::Io(e)
        }
    }
}

impl GraphError {
    /// Shorthand for a parse failure on `token`.
    pub(crate) fn parse(token: &str) -> Self {
        let mut t = token.to_string();
        t.truncate(64);
        GraphError::Parse { token: t }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let e = GraphError::EdgeOutOfRange {
            src: 9,
            dst: 2,
            vertices: 4,
        };
        assert!(e.to_string().contains("(9, 2)"));
        assert!(GraphError::ZeroVertices.to_string().contains("zero"));
        let e = GraphError::CountMismatch {
            what: "edges",
            declared: 5,
            found: 2,
        };
        assert!(e.to_string().contains("5"));
        assert!(e.to_string().contains("2"));
    }

    #[test]
    fn eof_maps_to_truncated() {
        let io = io::Error::new(io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(GraphError::from(io), GraphError::Truncated { .. }));
        let io = io::Error::other("disk on fire");
        assert!(matches!(GraphError::from(io), GraphError::Io(_)));
    }

    #[test]
    fn parse_truncates_long_tokens() {
        let long = "x".repeat(500);
        let GraphError::Parse { token } = GraphError::parse(&long) else {
            panic!("wrong variant");
        };
        assert_eq!(token.len(), 64);
    }
}
