//! Edge-list representation used during construction and I/O.

use crate::types::VertexId;

/// A directed graph as a flat list of `(src, dst)` pairs with optional
/// per-edge `f32` weights (SSSP edge weights in the paper are "randomly
/// generated weight value[s] for each edge").
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EdgeList {
    /// Number of vertices (ids are `0..num_vertices`).
    pub num_vertices: usize,
    /// Directed edges.
    pub edges: Vec<(VertexId, VertexId)>,
    /// Optional weights, parallel to `edges`.
    pub weights: Option<Vec<f32>>,
}

impl EdgeList {
    /// Create an empty edge list over `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        EdgeList {
            num_vertices,
            edges: Vec::new(),
            weights: None,
        }
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add an unweighted edge.
    pub fn push(&mut self, src: VertexId, dst: VertexId) {
        debug_assert!(
            self.weights.is_none(),
            "mixing weighted and unweighted edges"
        );
        self.edges.push((src, dst));
    }

    /// Add a weighted edge.
    pub fn push_weighted(&mut self, src: VertexId, dst: VertexId, w: f32) {
        let weights = self.weights.get_or_insert_with(Vec::new);
        debug_assert_eq!(weights.len(), self.edges.len());
        self.edges.push((src, dst));
        weights.push(w);
    }

    /// Sort edges by `(src, dst)` and drop duplicate pairs (first weight
    /// wins). Returns the number of duplicates removed.
    pub fn sort_dedup(&mut self) -> usize {
        let before = self.edges.len();
        match &mut self.weights {
            None => {
                self.edges.sort_unstable();
                self.edges.dedup();
            }
            Some(weights) => {
                let mut zipped: Vec<((VertexId, VertexId), f32)> = self
                    .edges
                    .iter()
                    .copied()
                    .zip(weights.iter().copied())
                    .collect();
                zipped.sort_unstable_by_key(|a| a.0);
                zipped.dedup_by_key(|e| e.0);
                self.edges = zipped.iter().map(|e| e.0).collect();
                *weights = zipped.iter().map(|e| e.1).collect();
            }
        }
        before - self.edges.len()
    }

    /// Duplicate every edge in the reverse direction (the paper "converted
    /// the undirected graph to a directed graph by duplicating each edge" for
    /// DBLP). Self-loops are not duplicated. Weights are mirrored.
    pub fn symmetrize(&mut self) {
        let n = self.edges.len();
        if let Some(weights) = &mut self.weights {
            let snapshot: Vec<_> = self.edges[..n]
                .iter()
                .copied()
                .zip(weights[..n].iter().copied())
                .collect();
            for ((s, d), w) in snapshot {
                if s != d {
                    self.edges.push((d, s));
                    weights.push(w);
                }
            }
        } else {
            for i in 0..n {
                let (s, d) = self.edges[i];
                if s != d {
                    self.edges.push((d, s));
                }
            }
        }
    }

    /// Attach uniform random weights in `(lo, hi]` to every edge (the SSSP
    /// workload preparation). Deterministic for a given seed.
    pub fn randomize_weights(&mut self, lo: f32, hi: f32, seed: u64) {
        use crate::generators::rng::SplitMix64 as StdRng;
        let mut rng = StdRng::seed_from_u64(seed);
        self.weights = Some(
            (0..self.edges.len())
                .map(|_| {
                    let w: f32 = rng.random_range(0.0f32..1.0);
                    lo + (hi - lo) * w + f32::EPSILON
                })
                .collect(),
        );
    }

    /// Validate that every endpoint is within range.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_vertices as u64;
        for &(s, d) in &self.edges {
            if s as u64 >= n || d as u64 >= n {
                return Err(format!("edge ({s}, {d}) out of range for {n} vertices"));
            }
        }
        if let Some(w) = &self.weights {
            if w.len() != self.edges.len() {
                return Err(format!(
                    "weight count {} != edge count {}",
                    w.len(),
                    self.edges.len()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_count() {
        let mut el = EdgeList::new(4);
        el.push(0, 1);
        el.push(1, 2);
        assert_eq!(el.num_edges(), 2);
        assert!(el.validate().is_ok());
    }

    #[test]
    fn sort_dedup_removes_duplicates() {
        let mut el = EdgeList::new(3);
        el.push(1, 2);
        el.push(0, 1);
        el.push(1, 2);
        assert_eq!(el.sort_dedup(), 1);
        assert_eq!(el.edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn sort_dedup_keeps_weights_parallel() {
        let mut el = EdgeList::new(3);
        el.push_weighted(1, 2, 5.0);
        el.push_weighted(0, 1, 3.0);
        el.push_weighted(1, 2, 7.0);
        el.sort_dedup();
        assert_eq!(el.edges, vec![(0, 1), (1, 2)]);
        assert_eq!(el.weights.as_ref().unwrap(), &vec![3.0, 5.0]);
    }

    #[test]
    fn symmetrize_duplicates_edges_not_loops() {
        let mut el = EdgeList::new(3);
        el.push(0, 1);
        el.push(2, 2);
        el.symmetrize();
        assert_eq!(el.edges, vec![(0, 1), (2, 2), (1, 0)]);
    }

    #[test]
    fn randomize_weights_deterministic_and_positive() {
        let mut el = EdgeList::new(3);
        el.push(0, 1);
        el.push(1, 2);
        el.randomize_weights(0.0, 10.0, 42);
        let w1 = el.weights.clone().unwrap();
        el.randomize_weights(0.0, 10.0, 42);
        assert_eq!(el.weights.as_ref().unwrap(), &w1);
        assert!(w1.iter().all(|&w| w > 0.0 && w <= 10.0 + 1e-5));
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let mut el = EdgeList::new(2);
        el.push(0, 5);
        assert!(el.validate().is_err());
    }
}
