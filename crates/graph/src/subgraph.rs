//! Induced-subgraph extraction with vertex relabeling.
//!
//! Used by analysis tooling (extract one partition side or one community)
//! and by tests that need per-device views of a partitioned graph.

use crate::csr::Csr;
use crate::edge_list::EdgeList;
use crate::types::VertexId;

/// The result of extracting an induced subgraph.
#[derive(Clone, Debug, PartialEq)]
pub struct Subgraph {
    /// The subgraph with vertices relabeled `0..k`.
    pub graph: Csr,
    /// `local id → original id`.
    pub to_parent: Vec<VertexId>,
    /// `original id → local id` (`None` for vertices outside the subset).
    pub to_local: Vec<Option<VertexId>>,
}

/// Extract the subgraph induced by `keep` (edges with both endpoints in the
/// subset survive; weights carried). `keep` may be in any order; local ids
/// follow its order after deduplication.
pub fn induced_subgraph(g: &Csr, keep: &[VertexId]) -> Subgraph {
    let n = g.num_vertices();
    let mut to_local: Vec<Option<VertexId>> = vec![None; n];
    let mut to_parent: Vec<VertexId> = Vec::with_capacity(keep.len());
    for &v in keep {
        assert!((v as usize) < n, "vertex {v} out of range");
        if to_local[v as usize].is_none() {
            to_local[v as usize] = Some(to_parent.len() as VertexId);
            to_parent.push(v);
        }
    }
    let mut el = EdgeList::new(to_parent.len());
    let weighted = g.weights.is_some();
    for &pv in &to_parent {
        let s = to_local[pv as usize].unwrap();
        for e in g.edge_range(pv) {
            if let Some(d) = to_local[g.targets[e] as usize] {
                if weighted {
                    el.push_weighted(s, d, g.weight(e));
                } else {
                    el.push(s, d);
                }
            }
        }
    }
    Subgraph {
        graph: Csr::from_edge_list(&el),
        to_parent,
        to_local,
    }
}

/// Extract the subgraph of one side of a device partition (vertices with
/// `assign[v] == dev`).
pub fn partition_side(g: &Csr, assign: &[u8], dev: u8) -> Subgraph {
    let keep: Vec<VertexId> = (0..g.num_vertices() as VertexId)
        .filter(|&v| assign[v as usize] == dev)
        .collect();
    induced_subgraph(g, &keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::small::{paper_example, weighted_diamond};

    #[test]
    fn induced_keeps_internal_edges_only() {
        let g = paper_example();
        // Keep {0, 4, 5, 9}: edges 0->4, 0->5, 4->5, 9->4, 9->5 survive;
        // 4->8, 4->9? (4 -> 5,8,9: 9 kept -> 4->9 survives too), 9->6, 9->8 dropped.
        let sub = induced_subgraph(&g, &[0, 4, 5, 9]);
        assert_eq!(sub.graph.num_vertices(), 4);
        let edges: Vec<(u32, u32)> = sub
            .graph
            .edge_iter()
            .map(|(s, d)| (sub.to_parent[s as usize], sub.to_parent[d as usize]))
            .collect();
        let mut expect = vec![(0u32, 4u32), (0, 5), (4, 5), (4, 9), (9, 4), (9, 5)];
        let mut got = edges.clone();
        got.sort_unstable();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn relabeling_round_trips() {
        let g = paper_example();
        let sub = induced_subgraph(&g, &[7, 2, 15]);
        assert_eq!(sub.to_parent, vec![7, 2, 15]);
        for (local, &parent) in sub.to_parent.iter().enumerate() {
            assert_eq!(sub.to_local[parent as usize], Some(local as u32));
        }
        assert_eq!(sub.to_local[0], None);
    }

    #[test]
    fn weights_are_carried() {
        let g = weighted_diamond();
        let sub = induced_subgraph(&g, &[0, 2, 3]);
        // Edges 0-(5)->2 and 2-(1)->3 survive.
        assert_eq!(sub.graph.num_edges(), 2);
        let w: Vec<f32> = sub.graph.weights.clone().unwrap();
        let mut w_sorted = w.clone();
        w_sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(w_sorted, vec![1.0, 5.0]);
    }

    #[test]
    fn duplicate_keep_entries_are_deduped() {
        let g = paper_example();
        let sub = induced_subgraph(&g, &[3, 3, 3]);
        assert_eq!(sub.graph.num_vertices(), 1);
        assert_eq!(sub.graph.num_edges(), 0);
    }

    #[test]
    fn partition_side_splits_cleanly() {
        let g = paper_example();
        let assign: Vec<u8> = (0..16).map(|v| (v % 2) as u8).collect();
        let a = partition_side(&g, &assign, 0);
        let b = partition_side(&g, &assign, 1);
        assert_eq!(a.graph.num_vertices() + b.graph.num_vertices(), 16);
        // Internal edges of both sides never cross parity.
        for (s, d) in a.graph.edge_iter() {
            assert_eq!(a.to_parent[s as usize] % 2, a.to_parent[d as usize] % 2);
        }
    }
}
