#![warn(missing_docs)]
//! Graph substrate for phigraph.
//!
//! Provides the storage and workload layer the paper's framework sits on:
//!
//! * [`Csr`] — Compressed Sparse Row storage with the paper's "dummy vertex"
//!   convention (`offsets[n] == num_edges`), optional edge weights, and a
//!   transpose (in-edge view) used to size the condensed static buffer.
//! * [`EdgeList`] / [`GraphBuilder`] — construction utilities.
//! * [`io`] — the adjacency-list input format from the paper's system
//!   diagram, SNAP edge lists (so the real Pokec/DBLP datasets drop in), and
//!   a fast binary format.
//! * [`generators`] — synthetic workloads standing in for the paper's
//!   datasets: an RMAT power-law generator with front-loaded hubs
//!   (pokec-like), a community graph (dblp-like), and layered DAGs with high
//!   fan-in (the TopoSort input).

pub mod analysis;
pub mod builder;
pub mod csr;
pub mod degree;
pub mod edge_list;
pub mod error;
pub mod generators;
pub mod io;
pub mod state;
pub mod subgraph;
pub mod types;
pub mod validation;

pub use builder::GraphBuilder;
pub use csr::Csr;
pub use degree::DegreeStats;
pub use edge_list::EdgeList;
pub use error::GraphError;
pub use generators::rng::SplitMix64;
pub use state::PodState;
pub use types::{EdgeIdx, VertexId};
