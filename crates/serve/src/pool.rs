//! The serving pool: a fixed set of worker threads executing admitted
//! jobs over one shared immutable [`Csr`], plus the watchdog thread that
//! enforces deadlines.
//!
//! Admission goes through a bounded SPSC ring (the PR 1 cached-index
//! queue): frontend threads `try_push` behind a producer mutex, workers
//! drain the ring into the per-tenant scheduler queues while holding the
//! scheduler mutex — each side of the SPSC contract is serialized by a
//! lock, which the queue's safety rules explicitly allow. When the ring
//! or the admitted-job budget is full, [`ServePool::submit`] rejects
//! immediately with a retry hint instead of blocking the frontend.
//!
//! Every job runs with its own [`EngineConfig`] carrying a
//! [`CancelToken`]; the watchdog cancels tokens whose deadline passed
//! (the engine stops at the next superstep boundary) and expires queued
//! jobs that would start already late.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use phigraph_core::engine::{run_single, EngineConfig, ExecMode};
use phigraph_core::queues::SpscQueue;
use phigraph_device::{CancelReason, CancelToken, DeviceSpec};
use phigraph_graph::state::{encode_state_slice, PodState};
use phigraph_graph::Csr;
use phigraph_recover::IntegrityMode;
use phigraph_trace::{HistKind, Phase, Trace};

use phigraph_apps::{Bfs, PageRank, PersonalizedPageRank, Sssp, Wcc};

use crate::events::EventSink;
use crate::job::{JobKind, JobResult, JobSpec, JobStatus};
use crate::journal::Journal;
use crate::sched::{QueuedJob, Scheduler};
use crate::shed::{shed_level, sheds_tenant, BreakerCheck, ShedPolicy, ShedState};
use crate::stats::ServeStats;

/// FNV-1a over the little-endian encoding of the final vertex values:
/// the bit-identity fingerprint both `phigraph run --checksum` and the
/// serving daemon report.
pub fn values_checksum<V: PodState>(values: &[V]) -> u64 {
    phigraph_recover::snapshot::fnv1a64(&encode_state_slice(values))
}

/// Pool configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads.
    pub workers: usize,
    /// Admitted-but-not-started job budget (admission queue capacity).
    pub queue_cap: usize,
    /// Default per-job deadline; `None` = no deadline unless the job
    /// line carries one.
    pub default_deadline_ms: Option<u64>,
    /// Default engine mode for jobs that do not pick one.
    pub mode: ExecMode,
    /// Simulated device executing the jobs.
    pub device: DeviceSpec,
    /// Stride weight for tenants first seen on a job line.
    pub default_weight: u64,
    /// Concurrency cap for implicitly created tenants.
    pub default_cap: usize,
    /// Watchdog scan period.
    pub watchdog_tick_ms: u64,
    /// Trace sink for per-job spans and wait/exec histograms.
    pub trace: Option<Trace>,
    /// Crash-recovery job journal; `None` = journalling off.
    pub journal: Option<Arc<Journal>>,
    /// Integrity mode for jobs that do not request one.
    pub default_integrity: IntegrityMode,
    /// Upper clamp on per-job integrity requests.
    pub integrity_max: IntegrityMode,
    /// Overload policy: the shedding ladder, or plain queue-full.
    pub shed: ShedPolicy,
    /// Per-job event sink (trace ids, JSONL event log, flight
    /// recorder); `None` = no events, zero hot-path cost. With a sink
    /// attached each emit is gated on one relaxed atomic load.
    pub events: Option<EventSink>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2),
            queue_cap: 64,
            default_deadline_ms: None,
            mode: ExecMode::Locking,
            device: DeviceSpec::xeon_e5_2680(),
            default_weight: 1,
            default_cap: 2,
            watchdog_tick_ms: 5,
            trace: None,
            journal: None,
            default_integrity: IntegrityMode::Off,
            integrity_max: IntegrityMode::Full,
            shed: ShedPolicy::Ladder,
            events: None,
        }
    }
}

/// Why a submission bounced. Every variant except [`AdmitError::Closed`]
/// carries a populated retry hint; [`AdmitError::retry_after_ms`] fills
/// one in for `Closed` too so every protocol rejection can comply with
/// the "machine-readable code + retry_after_ms" contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// Queue full: retry after the hinted backoff.
    QueueFull {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// The load-shedding ladder dropped this tenant's traffic.
    Shed {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// The tenant's circuit breaker is open.
    BreakerOpen {
        /// Milliseconds until the breaker half-opens.
        retry_after_ms: u64,
    },
    /// The pool is shutting down and takes no new work.
    Closed,
}

impl AdmitError {
    /// Machine-readable error code for the protocol response.
    pub fn code(&self) -> &'static str {
        match self {
            AdmitError::QueueFull { .. } => "queue_full",
            AdmitError::Shed { .. } => "shed",
            AdmitError::BreakerOpen { .. } => "breaker_open",
            AdmitError::Closed => "shutting_down",
        }
    }

    /// The retry hint, populated on every variant.
    pub fn retry_after_ms(&self) -> u64 {
        match self {
            AdmitError::QueueFull { retry_after_ms }
            | AdmitError::Shed { retry_after_ms }
            | AdmitError::BreakerOpen { retry_after_ms } => *retry_after_ms,
            AdmitError::Closed => 1000,
        }
    }
}

/// How [`ServePool::shutdown_mode`] treats admitted work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DrainMode {
    /// Run every admitted job to completion first.
    Finish,
    /// Finish only the *running* jobs; report queued ones `requeued`
    /// (their journal records stay incomplete, so the next daemon
    /// incarnation replays them).
    Requeue,
    /// Cancel running jobs, drop queued ones.
    Abort,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Shutdown {
    /// Accepting and running.
    None,
    /// No new admissions; queued jobs still run, then workers exit.
    Drain,
    /// No new admissions; running jobs finish, queued jobs requeued.
    Requeue,
    /// No new admissions; queued jobs dropped, running jobs cancelled.
    Now,
}

struct RunningEntry {
    seq: u64,
    deadline: Option<Instant>,
    token: CancelToken,
}

struct State {
    sched: Scheduler,
    running: Vec<RunningEntry>,
    shutdown: Shutdown,
    next_seq: u64,
    shed: ShedState,
}

/// The served graph plus its epoch. Workers bind `(epoch, csr)` at each
/// job pickup — the hot-swap boundary: in-flight jobs keep their `Arc`
/// (the old CSR lives until the last borrower drops it), later pickups
/// see the new epoch.
struct GraphSlot {
    epoch: u64,
    swaps: u64,
    csr: Arc<Csr>,
}

struct Shared {
    ring: SpscQueue<QueuedJob>,
    prod: Mutex<()>,
    state: Mutex<State>,
    cv: Condvar,
    /// Jobs admitted (in the ring or a tenant queue) not yet started.
    pending: AtomicUsize,
    stop_watchdog: AtomicBool,
    queue_cap: usize,
    graph: Mutex<GraphSlot>,
}

/// The serving pool. Dropping it performs a forced shutdown.
pub struct ServePool {
    shared: Arc<Shared>,
    cfg: ServeConfig,
    workers: Vec<std::thread::JoinHandle<()>>,
    watchdog: Option<std::thread::JoinHandle<()>>,
    tx: Option<Sender<JobResult>>,
}

impl ServePool {
    /// Spawn the pool over `graph`. The returned receiver delivers every
    /// job outcome (completed, cancelled, expired); it disconnects once
    /// the pool has shut down and all results are out.
    pub fn new(graph: Arc<Csr>, cfg: ServeConfig) -> (ServePool, Receiver<JobResult>) {
        let cfg = ServeConfig {
            workers: cfg.workers.max(1),
            queue_cap: cfg.queue_cap.max(1),
            ..cfg
        };
        let shared = Arc::new(Shared {
            ring: SpscQueue::new(cfg.queue_cap.next_power_of_two().max(2)),
            prod: Mutex::new(()),
            state: Mutex::new(State {
                sched: Scheduler::new(cfg.default_weight, cfg.default_cap),
                running: Vec::new(),
                shutdown: Shutdown::None,
                next_seq: 0,
                shed: ShedState::default(),
            }),
            cv: Condvar::new(),
            pending: AtomicUsize::new(0),
            stop_watchdog: AtomicBool::new(false),
            queue_cap: cfg.queue_cap,
            graph: Mutex::new(GraphSlot {
                epoch: 1,
                swaps: 0,
                csr: graph,
            }),
        });
        let (tx, rx) = channel();
        let workers = (0..cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let cfg = cfg.clone();
                let tx = tx.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker{i}"))
                    .spawn(move || worker_loop(i, shared, cfg, tx))
                    .expect("spawn serve worker")
            })
            .collect();
        let watchdog = {
            let shared = Arc::clone(&shared);
            let cfg = cfg.clone();
            let tx = tx.clone();
            let tick = Duration::from_millis(cfg.watchdog_tick_ms.max(1));
            Some(
                std::thread::Builder::new()
                    .name("serve-watchdog".to_string())
                    .spawn(move || watchdog_loop(shared, cfg, tx, tick))
                    .expect("spawn serve watchdog"),
            )
        };
        (
            ServePool {
                shared,
                cfg,
                workers,
                watchdog,
                tx: Some(tx),
            },
            rx,
        )
    }

    /// Set a tenant's stride weight and concurrency cap.
    pub fn set_tenant(&self, name: &str, weight: u64, cap: usize) {
        let mut st = self.shared.state.lock().unwrap();
        st.sched.configure(name, weight, cap);
    }

    /// Admit a job, or bounce it with backpressure. Admission walks the
    /// degradation ladder before giving up: at moderate pressure jobs
    /// are accepted *degraded* (integrity off, no per-job span), at high
    /// pressure the lowest-weight tenants are shed, and only a full
    /// queue rejects unconditionally. Every bounce feeds the tenant's
    /// circuit breaker; enough consecutive bounces open it and
    /// subsequent submissions are answered from the breaker alone with
    /// an exponentially backed-off retry hint.
    pub fn submit(&self, spec: JobSpec) -> Result<(), AdmitError> {
        // The one-relaxed-load gate: with no sink (or a disarmed one)
        // no event is ever built on this path.
        let sink = self.cfg.events.as_ref().filter(|s| s.armed());
        let _prod = self.shared.prod.lock().unwrap();
        let pending = self.shared.pending.load(Ordering::Acquire);
        let mut st = self.shared.state.lock().unwrap();
        if st.shutdown != Shutdown::None {
            if let Some(s) = sink {
                s.reject(0, &spec.id, &spec.tenant, "shutting_down");
            }
            return Err(AdmitError::Closed);
        }
        let now = Instant::now();
        let ladder = self.cfg.shed == ShedPolicy::Ladder;
        if ladder {
            if let BreakerCheck::Open { retry_after_ms } = st.shed.check(&spec.tenant, now) {
                let stats = st.sched.stats_mut(&spec.tenant);
                stats.rejected += 1;
                stats.breaker += 1;
                if let Some(s) = sink {
                    s.reject(0, &spec.id, &spec.tenant, "breaker_open");
                }
                return Err(AdmitError::BreakerOpen { retry_after_ms });
            }
        }
        let level = if ladder {
            shed_level(pending, self.shared.queue_cap, st.shed.miss_rate())
        } else {
            0
        };
        if let Some(trace) = &self.cfg.trace {
            trace.record_hist(HistKind::ShedLevel, level as u64);
        }
        if ladder
            && sheds_tenant(
                level,
                st.sched.weight_of(&spec.tenant),
                st.sched.max_weight(),
            )
        {
            self.note_reject(&mut st, &spec.tenant, now, true);
            if let Some(s) = sink {
                s.reject(0, &spec.id, &spec.tenant, "shed");
            }
            return Err(AdmitError::Shed {
                retry_after_ms: retry_hint(pending).max(50),
            });
        }
        if pending >= self.shared.queue_cap {
            self.note_reject(&mut st, &spec.tenant, now, false);
            if let Some(s) = sink {
                s.reject(0, &spec.id, &spec.tenant, "queue_full");
            }
            return Err(AdmitError::QueueFull {
                retry_after_ms: retry_hint(pending),
            });
        }
        if ladder {
            st.shed.note_admitted(&spec.tenant);
        }
        let degraded = level >= 1;
        if degraded {
            st.sched.stats_mut(&spec.tenant).degraded += 1;
        }
        if let Some(journal) = &self.cfg.journal {
            let t0 = Instant::now();
            journal.admitted(&spec);
            if let Some(trace) = &self.cfg.trace {
                trace.record_hist(HistKind::JournalAppendUs, t0.elapsed().as_micros() as u64);
            }
        }
        let admitted = now;
        let deadline_ms = spec.deadline_ms.or(self.cfg.default_deadline_ms);
        let trace = sink.map(|s| s.next_trace_id()).unwrap_or(0);
        let job = QueuedJob {
            spec,
            admitted,
            deadline: deadline_ms.map(|ms| admitted + Duration::from_millis(ms)),
            degraded,
            trace,
        };
        if let Some(s) = sink {
            s.admit(trace, &job.spec, degraded);
        }
        // SAFETY: `prod` is held, so this thread is the sole producer.
        match unsafe { self.shared.ring.try_push(job) } {
            Ok(()) => {
                self.shared.pending.fetch_add(1, Ordering::Release);
                // The state lock is held, so a worker that just saw "no
                // work" is already parked and hears this.
                self.shared.cv.notify_one();
                Ok(())
            }
            Err(job) => {
                self.note_reject(&mut st, &job.spec.tenant, now, false);
                if let Some(s) = sink {
                    s.reject(trace, &job.spec.id, &job.spec.tenant, "queue_full");
                }
                Err(AdmitError::QueueFull {
                    retry_after_ms: retry_hint(pending),
                })
            }
        }
    }

    /// Rejection bookkeeping: counters plus the breaker's consecutive-
    /// reject tally.
    fn note_reject(&self, st: &mut State, tenant: &str, now: Instant, shed: bool) {
        let tripped = if self.cfg.shed == ShedPolicy::Ladder {
            st.shed.note_rejected(tenant, now)
        } else {
            false
        };
        let stats = st.sched.stats_mut(tenant);
        stats.rejected += 1;
        if shed {
            stats.shed += 1;
        }
        if tripped {
            stats.breaker_trips += 1;
        }
    }

    /// Swap in a new graph: the epoch advances, later job pickups bind
    /// the new CSR, in-flight jobs finish on the Arc they hold. Returns
    /// `(epoch, vertices, edges)`.
    pub fn reload(&self, graph: Csr) -> (u64, usize, usize) {
        let (v, e) = (graph.num_vertices(), graph.num_edges());
        let mut slot = self.shared.graph.lock().unwrap();
        slot.epoch += 1;
        slot.swaps += 1;
        slot.csr = Arc::new(graph);
        (slot.epoch, v, e)
    }

    /// Epoch of the graph new pickups bind.
    pub fn graph_epoch(&self) -> u64 {
        self.shared.graph.lock().unwrap().epoch
    }

    /// Count a journal-recovered result re-emitted for `tenant`.
    pub fn note_replayed(&self, tenant: &str) {
        let mut st = self.shared.state.lock().unwrap();
        st.sched.stats_mut(tenant).replayed += 1;
    }

    /// Snapshot the per-tenant accounting.
    pub fn stats(&self) -> ServeStats {
        let (epoch, swaps) = {
            let slot = self.shared.graph.lock().unwrap();
            (slot.epoch, slot.swaps)
        };
        let st = self.shared.state.lock().unwrap();
        let pending = self.shared.pending.load(Ordering::Acquire);
        let mut out = ServeStats {
            queued: st.sched.queued() + self.shared.ring.occupancy(),
            running: st.sched.running(),
            queue_cap: self.shared.queue_cap,
            workers: self.cfg.workers,
            shed_level: if self.cfg.shed == ShedPolicy::Ladder {
                shed_level(pending, self.shared.queue_cap, st.shed.miss_rate())
            } else {
                0
            },
            epoch,
            swaps,
            ..ServeStats::default()
        };
        for (name, t) in st.sched.tenants() {
            let mut stats = t.stats.clone();
            stats.running = t.running;
            out.tenants.insert(name.to_string(), stats);
        }
        out
    }

    /// Jobs admitted but not yet started.
    pub fn backlog(&self) -> usize {
        self.shared.pending.load(Ordering::Acquire)
    }

    /// Shut the pool down and join every thread. `drain` finishes the
    /// queued jobs first; otherwise queued jobs are reported cancelled
    /// and running jobs get their tokens cancelled with
    /// [`CancelReason::Shutdown`]. The results receiver disconnects once
    /// every outcome is delivered.
    pub fn shutdown(&mut self, drain: bool) {
        self.shutdown_mode(if drain {
            DrainMode::Finish
        } else {
            DrainMode::Abort
        });
    }

    /// Shut down with an explicit [`DrainMode`] and join every thread.
    pub fn shutdown_mode(&mut self, mode: DrainMode) {
        self.shutdown_workers_mode(mode);
        // Drop the master sender so the results receiver disconnects.
        self.tx = None;
    }

    /// Like [`ServePool::shutdown`], but keeps the results channel open
    /// so the caller can snapshot [`ServePool::stats`] *before* the
    /// receiver observes disconnection (the daemon needs that ordering
    /// to write its final reports from the writer thread).
    pub fn shutdown_workers(&mut self, drain: bool) {
        self.shutdown_workers_mode(if drain {
            DrainMode::Finish
        } else {
            DrainMode::Abort
        });
    }

    /// [`ServePool::shutdown_workers`] with an explicit [`DrainMode`].
    pub fn shutdown_workers_mode(&mut self, mode: DrainMode) {
        {
            let mut st = self.shared.state.lock().unwrap();
            let target = match mode {
                DrainMode::Finish => Shutdown::Drain,
                DrainMode::Requeue => Shutdown::Requeue,
                DrainMode::Abort => Shutdown::Now,
            };
            // Only escalate: a drain in progress can harden into a
            // requeue or abort, never soften back.
            if target > st.shutdown {
                st.shutdown = target;
            }
            match mode {
                DrainMode::Finish => {}
                DrainMode::Requeue => {
                    // Queued jobs go back to the journal (their admitted
                    // records simply never gain a `done`); running jobs
                    // keep their tokens and finish.
                    drain_ring(&self.shared, &mut st);
                    let dropped = st.sched.drain_all();
                    self.shared
                        .pending
                        .fetch_sub(dropped.len(), Ordering::Release);
                    if let Some(tx) = &self.tx {
                        for q in dropped {
                            st.sched.stats_mut(&q.spec.tenant).requeued += 1;
                            let r = abort_result(&q, JobStatus::Requeued);
                            if let Some(s) = self.cfg.events.as_ref().filter(|s| s.armed()) {
                                s.done(&r, 0);
                            }
                            let _ = tx.send(r);
                        }
                    }
                }
                DrainMode::Abort => {
                    // Pull whatever is still in the ring so it can be
                    // reported, then drop the per-tenant queues too.
                    drain_ring(&self.shared, &mut st);
                    let dropped = st.sched.drain_all();
                    self.shared
                        .pending
                        .fetch_sub(dropped.len(), Ordering::Release);
                    if let Some(tx) = &self.tx {
                        for q in dropped {
                            st.sched.stats_mut(&q.spec.tenant).cancelled += 1;
                            let r = abort_result(&q, JobStatus::Cancelled("shutdown"));
                            if let Some(s) = self.cfg.events.as_ref().filter(|s| s.armed()) {
                                s.done(&r, 0);
                            }
                            let _ = tx.send(r);
                        }
                    }
                    for r in &st.running {
                        r.token.cancel(CancelReason::Shutdown);
                    }
                }
            }
        }
        self.shared.cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.shared.stop_watchdog.store(true, Ordering::Release);
        if let Some(h) = self.watchdog.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServePool {
    fn drop(&mut self) {
        if !self.workers.is_empty() || self.watchdog.is_some() {
            self.shutdown(false);
        }
    }
}

fn retry_hint(pending: usize) -> u64 {
    // Scale the client backoff with the backlog: a deeper queue means a
    // longer wait before capacity frees up.
    (pending as u64 * 2).clamp(5, 1000)
}

fn abort_result(q: &QueuedJob, status: JobStatus) -> JobResult {
    JobResult {
        id: q.spec.id.clone(),
        tenant: q.spec.tenant.clone(),
        app: q.spec.kind.app_name(),
        status,
        checksum: 0,
        supersteps: 0,
        wait_us: q.admitted.elapsed().as_micros() as u64,
        exec_us: 0,
        epoch: 0,
        integrity: IntegrityMode::Off,
        replayed: q.spec.replay,
        conn: q.spec.conn,
        trace: q.trace,
    }
}

/// Move everything from the admission ring into the per-tenant queues.
/// Caller holds the state lock, which serializes the consumer side.
fn drain_ring(shared: &Shared, st: &mut State) {
    let mut buf: Vec<QueuedJob> = Vec::new();
    loop {
        // SAFETY: the state lock is held; sole consumer.
        let n = unsafe { shared.ring.pop_batch(&mut buf, usize::MAX) };
        if n == 0 {
            // The cached-index queue refreshes its view lazily: one more
            // empty pop confirms the ring is actually empty.
            let again = unsafe { shared.ring.pop_batch(&mut buf, usize::MAX) };
            if again == 0 {
                break;
            }
        }
        for q in buf.drain(..) {
            st.sched.enqueue(q);
        }
    }
}

fn worker_loop(idx: usize, shared: Arc<Shared>, cfg: ServeConfig, tx: Sender<JobResult>) {
    let tracer = cfg
        .trace
        .as_ref()
        .map(|t| t.thread(&format!("serve-worker{idx}"), 200 + idx as u32));
    loop {
        let picked = {
            let mut st = shared.state.lock().unwrap();
            loop {
                drain_ring(&shared, &mut st);
                if st.shutdown != Shutdown::Requeue && st.shutdown != Shutdown::Now {
                    if let Some(q) = st.sched.pick() {
                        shared.pending.fetch_sub(1, Ordering::Release);
                        let token = CancelToken::new();
                        let seq = st.next_seq;
                        st.next_seq += 1;
                        st.running.push(RunningEntry {
                            seq,
                            deadline: q.deadline,
                            token: token.clone(),
                        });
                        break Some((q, token, seq));
                    }
                }
                match st.shutdown {
                    Shutdown::None => {}
                    Shutdown::Drain => {
                        if st.sched.queued() == 0 && shared.ring.occupancy() == 0 {
                            break None;
                        }
                    }
                    Shutdown::Requeue | Shutdown::Now => break None,
                }
                st = shared.cv.wait(st).unwrap();
            }
        };
        let Some((q, token, seq)) = picked else {
            return;
        };

        // The hot-swap boundary: bind the graph (and its epoch) at
        // pickup. A reload between pickups lands here; a reload during
        // execution does not touch the Arc this job already holds.
        let (epoch, graph) = {
            let slot = shared.graph.lock().unwrap();
            (slot.epoch, Arc::clone(&slot.csr))
        };
        if let Some(journal) = &cfg.journal {
            let t0 = Instant::now();
            journal.started(&q.spec.id);
            if let Some(trace) = &cfg.trace {
                trace.record_hist(HistKind::JournalAppendUs, t0.elapsed().as_micros() as u64);
            }
        }

        let requested = q.spec.integrity.unwrap_or(cfg.default_integrity);
        let integrity = if q.degraded {
            // Degraded admission: integrity is the first optional work
            // the ladder gives up.
            IntegrityMode::Off
        } else {
            requested.min(cfg.integrity_max)
        };

        let wait_us = q.admitted.elapsed().as_micros() as u64;
        if let Some(s) = cfg.events.as_ref().filter(|s| s.armed()) {
            s.start(q.trace, &q.spec, wait_us, epoch);
        }
        let t0 = Instant::now();
        let t0_ns = tracer.as_ref().map(|t| t.now_ns()).unwrap_or(0);
        let exec = execute(&graph, &q.spec, &cfg, token.clone(), integrity, q.degraded);
        let exec_us = t0.elapsed().as_micros() as u64;
        if !q.degraded {
            if let Some(t) = &tracer {
                t.record_closing(Phase::Job, seq as u32, t0_ns);
            }
        }
        if let Some(trace) = &cfg.trace {
            trace.record_hist(HistKind::JobWaitUs, wait_us);
            trace.record_hist(HistKind::JobExecUs, exec_us);
        }

        let status = match (&exec.error, token.reason()) {
            (Some(msg), _) => JobStatus::Error(msg.clone()),
            (None, Some(reason)) => JobStatus::Cancelled(reason.name()),
            (None, None) => JobStatus::Ok,
        };
        {
            let mut st = shared.state.lock().unwrap();
            st.sched.finish(&q.spec.tenant);
            st.running.retain(|r| r.seq != seq);
            let missed = matches!(&status, JobStatus::Cancelled("deadline"));
            if status.is_terminal() {
                st.shed.note_finished(missed);
            }
            let stats = st.sched.stats_mut(&q.spec.tenant);
            match &status {
                JobStatus::Ok => stats.completed += 1,
                JobStatus::Cancelled(_) => stats.cancelled += 1,
                JobStatus::Error(_) => stats.failed += 1,
                JobStatus::Expired | JobStatus::Requeued => {
                    unreachable!("workers never expire or requeue jobs")
                }
            }
            stats.wait_us += wait_us;
            stats.max_wait_us = stats.max_wait_us.max(wait_us);
            stats.exec_us += exec_us;
            stats.supersteps += exec.supersteps;
        }
        // A finished job frees its tenant's cap slot: wake a waiter.
        shared.cv.notify_all();
        let ok = status == JobStatus::Ok;
        let result = JobResult {
            id: q.spec.id.clone(),
            tenant: q.spec.tenant.clone(),
            app: q.spec.kind.app_name(),
            status,
            checksum: if ok { exec.checksum } else { 0 },
            supersteps: exec.supersteps,
            wait_us,
            exec_us,
            epoch,
            integrity,
            replayed: q.spec.replay,
            conn: q.spec.conn,
            trace: q.trace,
        };
        // Journal the outcome *before* emitting it: a crash in between
        // re-emits from the journal, never re-runs a completed job.
        let mut journal_us = 0u64;
        if result.status.is_terminal() {
            if let Some(journal) = &cfg.journal {
                let t0 = Instant::now();
                journal.done(&result);
                journal_us = t0.elapsed().as_micros() as u64;
                if let Some(trace) = &cfg.trace {
                    trace.record_hist(HistKind::JournalAppendUs, journal_us);
                }
            }
        }
        if let Some(s) = cfg.events.as_ref().filter(|s| s.armed()) {
            s.done(&result, journal_us);
        }
        let _ = tx.send(result);
    }
}

fn watchdog_loop(shared: Arc<Shared>, cfg: ServeConfig, tx: Sender<JobResult>, tick: Duration) {
    while !shared.stop_watchdog.load(Ordering::Acquire) {
        std::thread::sleep(tick);
        let now = Instant::now();
        let mut st = shared.state.lock().unwrap();
        // Queued jobs already past their deadline never reach a worker.
        drain_ring(&shared, &mut st);
        let expired = st.sched.expire(now);
        if !expired.is_empty() {
            shared.pending.fetch_sub(expired.len(), Ordering::Release);
            for q in expired {
                st.sched.stats_mut(&q.spec.tenant).expired += 1;
                st.shed.note_finished(true);
                let result = abort_result(&q, JobStatus::Expired);
                if let Some(journal) = &cfg.journal {
                    journal.done(&result);
                }
                if let Some(s) = cfg.events.as_ref().filter(|s| s.armed()) {
                    s.done(&result, 0);
                }
                let _ = tx.send(result);
            }
        }
        // Running jobs get their token cancelled; the engine notices at
        // the next superstep boundary (the token's heartbeat tells a
        // stalled engine from one that simply has not reached a
        // boundary yet — both resolve at the next poll).
        for r in &st.running {
            if let Some(d) = r.deadline {
                if d <= now && !r.token.is_cancelled() {
                    r.token.cancel(CancelReason::Deadline);
                }
            }
        }
    }
}

struct ExecOut {
    checksum: u64,
    supersteps: u64,
    error: Option<String>,
}

fn base_config(mode: ExecMode) -> EngineConfig {
    match mode {
        ExecMode::Locking => EngineConfig::locking(),
        ExecMode::Pipelined => EngineConfig::pipelined(),
        ExecMode::Flat => EngineConfig::flat(),
        ExecMode::Sequential => EngineConfig::sequential(),
    }
}

/// Run one job against the shared graph. Each invocation builds a
/// private `EngineConfig` (own CSB arenas, own cancel token); the graph
/// is only borrowed, which is what makes concurrent jobs safe.
/// `integrity` is the post-clamp effective level; `degraded` jobs also
/// skip the per-run trace attachment (the shed ladder's "optional work
/// first" step).
fn execute(
    graph: &Csr,
    spec: &JobSpec,
    cfg: &ServeConfig,
    token: CancelToken,
    integrity: IntegrityMode,
    degraded: bool,
) -> ExecOut {
    let mut config = base_config(spec.mode)
        .with_cancel(token)
        .with_integrity(integrity);
    if let Some(t) = &cfg.trace {
        if !degraded {
            config = config.with_trace(t.clone());
        }
    }
    let n = graph.num_vertices() as u64;
    let bad_source = |s: u64| -> Option<ExecOut> {
        if s >= n.max(1) {
            Some(ExecOut {
                checksum: 0,
                supersteps: 0,
                error: Some(format!("source {s} out of range (graph has {n} vertices)")),
            })
        } else {
            None
        }
    };
    match &spec.kind {
        JobKind::PageRank {
            damping,
            iterations,
        } => one_run(
            &PageRank {
                damping: *damping,
                iterations: *iterations,
            },
            graph,
            cfg,
            &config,
        ),
        JobKind::Ppr {
            source,
            damping,
            iterations,
        } => bad_source(*source as u64).unwrap_or_else(|| {
            one_run(
                &PersonalizedPageRank {
                    source: *source,
                    damping: *damping,
                    iterations: *iterations,
                },
                graph,
                cfg,
                &config,
            )
        }),
        JobKind::Bfs { source } => bad_source(*source as u64)
            .unwrap_or_else(|| one_run(&Bfs { source: *source }, graph, cfg, &config)),
        JobKind::Sssp { sources } => {
            for &s in sources {
                if let Some(out) = bad_source(s as u64) {
                    return out;
                }
            }
            if sources.len() == 1 {
                return one_run(&Sssp { source: sources[0] }, graph, cfg, &config);
            }
            // Landmark batch: one run per source inside this job's slot,
            // checksums folded so the batch has a single fingerprint.
            let mut supersteps = 0u64;
            let mut folded = Vec::with_capacity(sources.len() * 8);
            for &source in sources {
                let out = one_run(&Sssp { source }, graph, cfg, &config);
                supersteps += out.supersteps;
                folded.extend_from_slice(&out.checksum.to_le_bytes());
                if config.cancelled() {
                    break;
                }
            }
            ExecOut {
                checksum: phigraph_recover::snapshot::fnv1a64(&folded),
                supersteps,
                error: None,
            }
        }
        JobKind::Wcc => one_run(&Wcc::new(graph), graph, cfg, &config),
    }
}

fn one_run<P: phigraph_core::api::VertexProgram>(
    program: &P,
    graph: &Csr,
    cfg: &ServeConfig,
    config: &EngineConfig,
) -> ExecOut
where
    P::Value: PodState,
{
    let out = run_single(program, graph, cfg.device.clone(), config);
    ExecOut {
        checksum: values_checksum(&out.values),
        supersteps: out.report.supersteps() as u64,
        error: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_apps::workloads::{pokec_like_weighted, Scale};
    use std::collections::HashMap;

    fn small_graph() -> Arc<Csr> {
        Arc::new(pokec_like_weighted(Scale::Tiny, 42))
    }

    fn spec(id: &str, tenant: &str, kind: JobKind) -> JobSpec {
        JobSpec {
            id: id.to_string(),
            tenant: tenant.to_string(),
            kind,
            mode: ExecMode::Sequential,
            deadline_ms: None,
            integrity: None,
            replay: false,
            conn: 0,
        }
    }

    #[test]
    fn jobs_complete_and_match_direct_runs() {
        let g = small_graph();
        let (mut pool, rx) = ServePool::new(
            Arc::clone(&g),
            ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            },
        );
        pool.submit(spec("bfs0", "a", JobKind::Bfs { source: 0 }))
            .unwrap();
        pool.submit(spec("sssp0", "b", JobKind::Sssp { sources: vec![0] }))
            .unwrap();
        let mut got = HashMap::new();
        for _ in 0..2 {
            let r = rx.recv_timeout(Duration::from_secs(30)).unwrap();
            assert_eq!(r.status, JobStatus::Ok, "{:?}", r);
            got.insert(r.id.clone(), r);
        }
        // Same checksum as running the app directly with the same config.
        let direct = run_single(
            &Bfs { source: 0 },
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::sequential(),
        );
        assert_eq!(got["bfs0"].checksum, values_checksum(&direct.values));
        let direct = run_single(
            &Sssp { source: 0 },
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::sequential(),
        );
        assert_eq!(got["sssp0"].checksum, values_checksum(&direct.values));
        pool.shutdown(true);
    }

    #[test]
    fn queue_full_submissions_are_rejected_with_retry_hint() {
        let g = small_graph();
        let (mut pool, rx) = ServePool::new(
            Arc::clone(&g),
            ServeConfig {
                workers: 1,
                queue_cap: 2,
                default_cap: 1,
                ..ServeConfig::default()
            },
        );
        // One long-ish job occupies the worker; 2 more fill the budget.
        let slow = JobKind::PageRank {
            damping: 0.85,
            iterations: 50,
        };
        pool.submit(spec("run", "a", slow.clone())).unwrap();
        let mut accepted = 1;
        let mut rejected = 0;
        let mut queue_full = 0;
        for i in 0..20 {
            match pool.submit(spec(&format!("q{i}"), "a", slow.clone())) {
                Ok(()) => accepted += 1,
                Err(AdmitError::QueueFull { retry_after_ms }) => {
                    assert!(retry_after_ms >= 5);
                    rejected += 1;
                    queue_full += 1;
                }
                Err(AdmitError::BreakerOpen { retry_after_ms }) => {
                    // Consecutive queue-full bounces trip the tenant's
                    // circuit breaker; those rejections answer from the
                    // breaker alone.
                    assert!(retry_after_ms >= 1);
                    rejected += 1;
                }
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(queue_full > 0, "queue never filled");
        let stats = pool.stats();
        assert_eq!(stats.tenants["a"].rejected, rejected);
        assert!(stats.tenants["a"].breaker_trips >= 1);
        pool.shutdown(true);
        // Every accepted job eventually completes.
        let done = rx.iter().filter(|r| r.status == JobStatus::Ok).count();
        assert_eq!(done as u64, accepted);
    }

    #[test]
    fn forced_shutdown_cancels_queued_and_running() {
        let g = small_graph();
        let (mut pool, rx) = ServePool::new(
            Arc::clone(&g),
            ServeConfig {
                workers: 1,
                queue_cap: 8,
                default_cap: 8,
                ..ServeConfig::default()
            },
        );
        let slow = JobKind::PageRank {
            damping: 0.85,
            iterations: 100_000,
        };
        for i in 0..4 {
            pool.submit(spec(&format!("j{i}"), "a", slow.clone()))
                .unwrap();
        }
        // Give the worker a moment to start the first job.
        std::thread::sleep(Duration::from_millis(30));
        pool.shutdown(false);
        let results: Vec<JobResult> = rx.iter().collect();
        assert_eq!(results.len(), 4);
        assert!(results
            .iter()
            .all(|r| matches!(r.status, JobStatus::Cancelled("shutdown"))));
        // New submissions bounce.
        assert_eq!(
            pool.submit(spec("late", "a", JobKind::Wcc)),
            Err(AdmitError::Closed)
        );
    }

    #[test]
    fn event_sink_traces_jobs_admission_to_reply() {
        use phigraph_trace::json::Json;
        let g = small_graph();
        let sink = EventSink::new();
        let (mut pool, rx) = ServePool::new(
            Arc::clone(&g),
            ServeConfig {
                workers: 1,
                events: Some(sink.clone()),
                ..ServeConfig::default()
            },
        );
        pool.submit(spec("t1", "a", JobKind::Wcc)).unwrap();
        let r = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(r.status, JobStatus::Ok);
        assert!(r.trace >= 1, "result must carry the admission trace id");
        pool.shutdown(true);

        // The flight ring holds the full causal trail for the job, all
        // three phases tagged with the id echoed on the response line.
        let tag = format!("t{}", r.trace);
        let mut phases = Vec::new();
        for line in sink.recent() {
            let j = Json::parse(&line).unwrap();
            if j.get("trace").and_then(|v| v.as_str()) == Some(tag.as_str()) {
                phases.push(j.get("ev").unwrap().as_str().unwrap().to_string());
            }
        }
        assert_eq!(phases, ["admit", "start", "done"]);
        // The response line itself exposes the id to clients.
        assert!(
            r.to_line().contains(&format!("\"trace\": \"{tag}\"")) || {
                let j = Json::parse(&r.to_line()).unwrap();
                j.get("trace").unwrap().as_str() == Some(tag.as_str())
            }
        );
    }

    #[test]
    fn bad_sources_fail_cleanly() {
        let g = small_graph();
        let (mut pool, rx) = ServePool::new(Arc::clone(&g), ServeConfig::default());
        pool.submit(spec(
            "oob",
            "a",
            JobKind::Bfs {
                source: 999_999_999,
            },
        ))
        .unwrap();
        let r = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert!(matches!(r.status, JobStatus::Error(_)), "{:?}", r);
        pool.shutdown(true);
        let stats = pool.stats();
        assert_eq!(stats.tenants["a"].failed, 1);
    }
}
