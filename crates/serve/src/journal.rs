//! The crash-recovering job journal: an append-only, FNV-checksummed
//! record of every job the daemon admitted, started, and finished.
//!
//! Each record is one line, `<16-hex-fnv1a64> <json>`, where the
//! checksum covers the JSON bytes exactly — the same torn-write
//! discipline as the PR 2 snapshot format. Three record kinds:
//!
//! ```text
//! 8f3a… {"rec": "admitted","op": "job","id": "q1","tenant": "a",…}
//! 02bc… {"rec": "started","id": "q1"}
//! 77d1… {"rec": "done","id": "q1","status": "ok","checksum": "0x…",…}
//! ```
//!
//! An `admitted` record is the job's own protocol request line (see
//! [`job_request_line`]) with a `rec` tag spliced in, so replay feeds it
//! straight back through [`parse_request`] — one codec, no second
//! format. A job is *incomplete* until a `done` record lands; `done` is
//! only written for terminal outcomes ([`JobStatus::is_terminal`]), so
//! shutdown-cancelled and requeued jobs replay on the next start.
//!
//! Recovery ([`Journal::open`]) scans the file front to back, stops at
//! the first checksum mismatch or parse failure (a torn tail from the
//! crash), and splits the intact prefix into completed results (to
//! re-emit, tagged `"replayed":true`) and incomplete specs (to
//! resubmit). [`Journal::compact`] then rewrites the file via the
//! tmp-then-rename idiom from `phigraph_recover::DirStore`, keeping only
//! the still-incomplete admissions.

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use phigraph_recover::snapshot::fnv1a64;
use phigraph_recover::IntegrityMode;
use phigraph_trace::json::{Json, JsonBuf};

use phigraph_core::engine::ExecMode;

use crate::job::{
    job_request_line, one_line, parse_request, JobResult, JobSpec, JobStatus, Request,
};

/// Journal file name inside `--journal-dir`.
pub const JOURNAL_FILE: &str = "journal.log";

/// What a previous daemon incarnation left behind.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Jobs admitted but never finished: resubmit these (in admission
    /// order) before serving new traffic.
    pub incomplete: Vec<JobSpec>,
    /// Terminal results already produced: re-emit these so a client
    /// that lost its connection mid-crash still sees every outcome.
    pub completed: Vec<JobResult>,
    /// Journal lines dropped as torn or corrupt (always a suffix).
    pub dropped: usize,
}

/// An open journal. All appends are serialized by an internal mutex and
/// flushed before returning, so a `kill -9` can lose at most the record
/// being written — which the checksum prefix then detects as a torn
/// tail.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
}

fn frame(json: &str) -> String {
    format!("{:016x} {json}\n", fnv1a64(json.as_bytes()))
}

fn unframe(line: &str) -> Option<&str> {
    let (sum, json) = line.split_once(' ')?;
    let want = u64::from_str_radix(sum, 16).ok()?;
    if sum.len() == 16 && fnv1a64(json.as_bytes()) == want {
        Some(json)
    } else {
        None
    }
}

/// Splice `"rec": "<tag>"` into an already-encoded one-line JSON
/// object.
fn tag_record(json_obj: &str, tag: &str) -> String {
    debug_assert!(json_obj.starts_with('{'));
    format!("{{\"rec\": \"{tag}\",{}", &json_obj[1..])
}

fn parse_hex_checksum(j: &Json) -> u64 {
    j.get("checksum")
        .and_then(|v| v.as_str())
        .and_then(|s| s.strip_prefix("0x"))
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .unwrap_or(0)
}

fn done_to_result(j: &Json) -> Option<JobResult> {
    let id = j.get("id")?.as_str()?.to_string();
    let tenant = j.get("tenant")?.as_str()?.to_string();
    let status = match j.get("status")?.as_str()? {
        "ok" => JobStatus::Ok,
        "expired" => JobStatus::Expired,
        "cancelled" => match j.get("reason").and_then(|v| v.as_str()) {
            Some("cancelled") => JobStatus::Cancelled("cancelled"),
            _ => JobStatus::Cancelled("deadline"),
        },
        "error" => JobStatus::Error(
            j.get("error")
                .and_then(|v| v.as_str())
                .unwrap_or("unknown")
                .to_string(),
        ),
        _ => return None,
    };
    let integrity = j
        .get("integrity")
        .and_then(|v| v.as_str())
        .and_then(|s| s.parse::<IntegrityMode>().ok())
        .unwrap_or(IntegrityMode::Off);
    // `app` strings in the journal are the closed `app_name()` set;
    // anything else marks a corrupt record.
    let app = match j.get("app").and_then(|v| v.as_str()) {
        Some("pagerank") => "pagerank",
        Some("ppr") => "ppr",
        Some("bfs") => "bfs",
        Some("sssp") => "sssp",
        Some("wcc") => "wcc",
        _ => return None,
    };
    Some(JobResult {
        id,
        tenant,
        app,
        status,
        checksum: parse_hex_checksum(j),
        supersteps: j.u64_or_0("supersteps"),
        wait_us: j.u64_or_0("wait_us"),
        exec_us: j.u64_or_0("exec_us"),
        epoch: j.u64_or_0("epoch"),
        integrity,
        replayed: true,
        conn: 0,
        // Trace ids are per-incarnation; a replayed result starts a
        // fresh causal history, so it carries none.
        trace: 0,
    })
}

impl Journal {
    /// Open (creating if needed) the journal under `dir` and recover
    /// whatever the previous incarnation left. `default_mode` fills in
    /// the engine for admitted records that somehow lack one (current
    /// writers always pin it).
    pub fn open(dir: &Path, default_mode: ExecMode) -> Result<(Journal, Recovery), String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("journal dir {dir:?}: {e}"))?;
        let path = dir.join(JOURNAL_FILE);
        let mut rec = Recovery::default();
        if path.exists() {
            let f = File::open(&path).map_err(|e| format!("open {path:?}: {e}"))?;
            let mut admitted: Vec<(String, JobSpec)> = Vec::new();
            let mut torn = false;
            let mut lines = BufReader::new(f).lines();
            for line in &mut lines {
                let line = line.map_err(|e| format!("read {path:?}: {e}"))?;
                if line.is_empty() {
                    continue;
                }
                let parsed = unframe(&line).and_then(|json| {
                    let j = Json::parse(json).ok()?;
                    match j.get("rec").and_then(|v| v.as_str())? {
                        "admitted" => {
                            // The admitted record *is* a request line.
                            match parse_request(json, default_mode, 0).ok()? {
                                Request::Job(mut spec) => {
                                    spec.replay = true;
                                    admitted.retain(|(id, _)| id != &spec.id);
                                    admitted.push((spec.id.clone(), spec));
                                    Some(())
                                }
                                _ => None,
                            }
                        }
                        "started" => Some(()), // informative only
                        "done" => {
                            let r = done_to_result(&j)?;
                            admitted.retain(|(id, _)| id != &r.id);
                            rec.completed.push(r);
                            Some(())
                        }
                        _ => None,
                    }
                });
                if parsed.is_none() {
                    // Torn or corrupt: everything from here on is
                    // untrustworthy — stop replaying.
                    torn = true;
                    rec.dropped += 1;
                    break;
                }
            }
            if torn {
                rec.dropped += lines.count();
            }
            rec.incomplete = admitted.into_iter().map(|(_, spec)| spec).collect();
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("append {path:?}: {e}"))?;
        Ok((
            Journal {
                path,
                file: Mutex::new(file),
            },
            rec,
        ))
    }

    /// Path of the journal file (for tests and diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn append(&self, json: &str) {
        let mut f = self.file.lock().unwrap();
        let framed = frame(json);
        if f.write_all(framed.as_bytes())
            .and_then(|()| f.flush())
            .is_err()
        {
            // Journalling is best-effort durability on top of a live
            // service: losing an append must not take the daemon down.
            eprintln!("serve: journal append failed ({:?})", self.path);
        }
    }

    /// Record an admission. Replayed specs are skipped: their admitted
    /// record was re-written by [`Journal::compact`] already.
    pub fn admitted(&self, spec: &JobSpec) {
        if spec.replay {
            return;
        }
        self.append(&tag_record(&job_request_line(spec), "admitted"));
    }

    /// Record that a worker picked the job up.
    pub fn started(&self, id: &str) {
        let mut b = JsonBuf::obj();
        b.str("rec", "started");
        b.str("id", id);
        self.append(&one_line(b.finish()));
    }

    /// Record a terminal outcome. Callers must only pass results whose
    /// status [`is_terminal`](JobStatus::is_terminal).
    pub fn done(&self, r: &JobResult) {
        debug_assert!(r.status.is_terminal());
        let mut b = JsonBuf::obj();
        b.str("rec", "done");
        b.str("id", &r.id);
        b.str("tenant", &r.tenant);
        b.str("app", r.app);
        b.str("status", r.status.name());
        match &r.status {
            JobStatus::Error(msg) => b.str("error", msg),
            JobStatus::Cancelled(reason) => b.str("reason", reason),
            _ => {}
        }
        b.str("checksum", &format!("{:#018x}", r.checksum));
        b.int("supersteps", r.supersteps);
        b.int("wait_us", r.wait_us);
        b.int("exec_us", r.exec_us);
        b.int("epoch", r.epoch);
        b.str("integrity", r.integrity.name());
        self.append(&one_line(b.finish()));
    }

    /// Rewrite the journal to hold only the admitted records of
    /// `incomplete` (tmp + rename, so a crash mid-compaction leaves the
    /// old file intact). Call after re-emitting the recovered completed
    /// results: until then their `done` records must survive so another
    /// crash still re-emits them.
    pub fn compact(&self, incomplete: &[JobSpec]) -> Result<(), String> {
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = File::create(&tmp).map_err(|e| format!("create {tmp:?}: {e}"))?;
            for spec in incomplete {
                let rec = frame(&tag_record(&job_request_line(spec), "admitted"));
                f.write_all(rec.as_bytes())
                    .map_err(|e| format!("write {tmp:?}: {e}"))?;
            }
            f.flush().map_err(|e| format!("flush {tmp:?}: {e}"))?;
        }
        let mut guard = self.file.lock().unwrap();
        std::fs::rename(&tmp, &self.path).map_err(|e| format!("rename {tmp:?}: {e}"))?;
        *guard = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| format!("reopen {:?}: {e}", self.path))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;

    fn spec(id: &str) -> JobSpec {
        JobSpec {
            id: id.to_string(),
            tenant: "t".to_string(),
            kind: JobKind::Bfs { source: 0 },
            mode: ExecMode::Sequential,
            deadline_ms: None,
            integrity: None,
            replay: false,
            conn: 0,
        }
    }

    fn ok_result(id: &str, checksum: u64) -> JobResult {
        JobResult {
            id: id.to_string(),
            tenant: "t".to_string(),
            app: "bfs",
            status: JobStatus::Ok,
            checksum,
            supersteps: 4,
            wait_us: 10,
            exec_us: 20,
            epoch: 1,
            integrity: IntegrityMode::Off,
            replayed: false,
            conn: 0,
            trace: 0,
        }
    }

    #[test]
    fn round_trips_incomplete_and_completed() {
        let dir = tempdir("journal-rt");
        let (j, rec) = Journal::open(&dir, ExecMode::Sequential).unwrap();
        assert!(rec.incomplete.is_empty() && rec.completed.is_empty());
        j.admitted(&spec("a"));
        j.admitted(&spec("b"));
        j.started("a");
        j.done(&ok_result("a", 0xabcd));
        drop(j);

        let (_j, rec) = Journal::open(&dir, ExecMode::Sequential).unwrap();
        assert_eq!(rec.dropped, 0);
        assert_eq!(rec.incomplete.len(), 1);
        assert_eq!(rec.incomplete[0].id, "b");
        assert!(rec.incomplete[0].replay);
        assert_eq!(rec.completed.len(), 1);
        assert_eq!(rec.completed[0].id, "a");
        assert_eq!(rec.completed[0].checksum, 0xabcd);
        assert!(rec.completed[0].replayed);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let dir = tempdir("journal-torn");
        let (j, _) = Journal::open(&dir, ExecMode::Sequential).unwrap();
        j.admitted(&spec("a"));
        j.done(&ok_result("a", 7));
        j.admitted(&spec("b"));
        let path = j.path().to_path_buf();
        drop(j);
        // Simulate a kill mid-append: truncate the last record in half,
        // then add garbage after it.
        let text = std::fs::read_to_string(&path).unwrap();
        let keep: Vec<&str> = text.lines().collect();
        let mut torn = keep[..2].join("\n");
        torn.push('\n');
        torn.push_str(&keep[2][..keep[2].len() / 2]);
        torn.push('\n');
        torn.push_str("zzzz not a record\n");
        std::fs::write(&path, torn).unwrap();

        let (_j, rec) = Journal::open(&dir, ExecMode::Sequential).unwrap();
        assert_eq!(rec.completed.len(), 1);
        assert!(rec.incomplete.is_empty(), "torn admit must not replay");
        assert_eq!(rec.dropped, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_keeps_only_the_given_specs() {
        let dir = tempdir("journal-compact");
        let (j, _) = Journal::open(&dir, ExecMode::Sequential).unwrap();
        j.admitted(&spec("a"));
        j.done(&ok_result("a", 1));
        j.admitted(&spec("b"));
        j.compact(&[spec("b")]).unwrap();
        // Appends after compaction land in the new file.
        j.admitted(&spec("c"));
        drop(j);
        let (_j, rec) = Journal::open(&dir, ExecMode::Sequential).unwrap();
        assert!(rec.completed.is_empty());
        let ids: Vec<&str> = rec.incomplete.iter().map(|s| s.id.as_str()).collect();
        assert_eq!(ids, ["b", "c"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "phigraph-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }
}
