//! The seeded serving-chaos soak harness behind `phigraph serve-chaos`.
//!
//! One soak is a sequence of daemon *incarnations* over a shared
//! journal directory. Each cycle opens the journal, recovers whatever
//! the previous incarnation left (re-emitting completed results,
//! resubmitting incomplete jobs), then hammers the pool with roughly
//! twice its admission capacity while a seeded [`FaultPlan`] — drawn
//! from [`FaultKind::SERVE`] — injects trouble:
//!
//! - `daemon-kill`: the incarnation is aborted mid-burst, exactly the
//!   journal state a `kill -9` leaves (running and queued jobs never
//!   gain a `done` record and must replay).
//! - `worker-hang`: a runaway job with a tight deadline wedges a
//!   worker until the watchdog's cancel token frees it.
//! - `slow-client`: the submission loop stalls between request bursts.
//! - `malformed-line`: a seeded byte-smeared protocol line is pushed
//!   through the parser, which must answer with an error, never panic.
//!
//! Every few cycles the soak hot-swaps a freshly generated graph
//! mid-traffic ([`ServePool::reload`]), so in-flight jobs finish on
//! their old epoch while new pickups bind the new one.
//!
//! The ledger at the end decides the verdict ([`ChaosReport::ok`]):
//! every admitted job must reach exactly one terminal outcome (zero
//! *lost*), any re-emitted duplicate must be bit-identical to the first
//! copy, and every `ok` checksum must equal a direct
//! `phigraph run --checksum`-style execution of the same job on the
//! graph epoch it reports (zero *corrupt*).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use phigraph_apps::workloads::{pokec_like_weighted, Scale};
use phigraph_apps::{Bfs, PageRank, Sssp, Wcc};
use phigraph_core::engine::{run_single, EngineConfig, ExecMode};
use phigraph_device::DeviceSpec;
use phigraph_graph::state::PodState;
use phigraph_graph::{Csr, SplitMix64};
use phigraph_recover::{FaultKind, FaultPlan, IntegrityMode};
use phigraph_trace::json::JsonBuf;

use crate::events::EventSink;
use crate::job::{job_request_line, parse_request, JobKind, JobResult, JobSpec, JobStatus};
use crate::journal::{Journal, JOURNAL_FILE};
use crate::pool::{values_checksum, AdmitError, DrainMode, ServeConfig, ServePool};

/// Soak parameters. Everything is seeded: two runs with the same config
/// inject the same faults against the same job stream.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Kill/restart/reload cycles (daemon incarnations).
    pub cycles: usize,
    /// PRNG seed for the fault plan, the job stream, and the graphs.
    pub seed: u64,
    /// Worker threads per incarnation.
    pub workers: usize,
    /// Admission queue capacity.
    pub queue_cap: usize,
    /// Jobs submitted per cycle; `0` means `2 * queue_cap` (the
    /// acceptance criterion's overload factor).
    pub jobs_per_cycle: usize,
    /// Journal directory shared by every incarnation. Any existing
    /// journal in it is removed before the soak starts.
    pub journal_dir: PathBuf,
    /// Hot-swap a freshly generated graph every N cycles (`0` = never).
    pub reload_every: usize,
    /// Engine mode for every job (and the direct verification runs).
    pub mode: ExecMode,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            cycles: 20,
            seed: 42,
            workers: 2,
            queue_cap: 16,
            jobs_per_cycle: 0,
            journal_dir: std::env::temp_dir().join("phigraph-serve-chaos"),
            reload_every: 5,
            mode: ExecMode::Sequential,
        }
    }
}

/// What the soak observed, and whether it adds up.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// Incarnations run (the final flush incarnation included).
    pub cycles: usize,
    /// Jobs the pool accepted (each owes exactly one terminal result).
    pub admitted: usize,
    /// Submissions bounced (queue-full / shed / breaker); owed nothing.
    pub rejected: usize,
    /// Distinct jobs that reached a terminal outcome.
    pub terminal: usize,
    /// Terminal `ok` results among those.
    pub completed_ok: usize,
    /// Re-emitted duplicates observed (allowed; must be bit-identical).
    pub duplicates: usize,
    /// Non-terminal observations (shutdown-cancelled / requeued lines):
    /// these jobs replayed in a later incarnation.
    pub carried_over: usize,
    /// Malformed protocol lines fed to the parser and answered.
    pub malformed_answered: usize,
    /// Hot graph swaps performed mid-traffic.
    pub swaps: usize,
    /// Flight-recorder postmortems persisted (one per killed
    /// incarnation: `flight-c<cycle>.json` plus the canonical
    /// `flight.json` in the journal directory).
    pub flights: usize,
    /// Faults injected, by kind name.
    pub faults: BTreeMap<&'static str, usize>,
    /// Admitted jobs that never reached a terminal outcome. Must be
    /// empty.
    pub lost: Vec<String>,
    /// Jobs whose duplicate copies disagreed, or whose `ok` checksum
    /// did not match the direct run. Must be empty.
    pub corrupt: Vec<String>,
}

impl ChaosReport {
    /// The soak's verdict: nothing lost, nothing corrupted.
    pub fn ok(&self) -> bool {
        self.lost.is_empty() && self.corrupt.is_empty()
    }

    /// One-line JSON for scripts (`scripts/check.sh` greps this).
    pub fn to_line(&self) -> String {
        let mut b = JsonBuf::obj();
        b.str("op", "serve-chaos");
        b.str("status", if self.ok() { "ok" } else { "failed" });
        b.int("cycles", self.cycles as u64);
        b.int("admitted", self.admitted as u64);
        b.int("rejected", self.rejected as u64);
        b.int("terminal", self.terminal as u64);
        b.int("completed_ok", self.completed_ok as u64);
        b.int("duplicates", self.duplicates as u64);
        b.int("carried_over", self.carried_over as u64);
        b.int("malformed_answered", self.malformed_answered as u64);
        b.int("swaps", self.swaps as u64);
        b.int("flights", self.flights as u64);
        b.int("lost", self.lost.len() as u64);
        b.int("corrupt", self.corrupt.len() as u64);
        b.begin_obj("faults");
        for (name, count) in &self.faults {
            b.int(name, *count as u64);
        }
        b.end();
        crate::job::one_line(b.finish())
    }
}

/// Tracks every observed outcome and verifies it against first-seen
/// copies and direct executions.
struct Ledger {
    /// Admitted job → its kind (for the direct verification run).
    specs: BTreeMap<String, JobKind>,
    /// First terminal outcome per job: `(status name, checksum)`.
    terminal: BTreeMap<String, (&'static str, u64)>,
    /// Jobs caught lying (mismatched duplicate or checksum).
    corrupt: BTreeSet<String>,
    /// Expected checksum cache: `(graph index, kind debug key)`.
    expected: HashMap<(usize, String), u64>,
    duplicates: usize,
    carried_over: usize,
    completed_ok: usize,
}

fn checksum_of<P: phigraph_core::api::VertexProgram>(
    program: &P,
    graph: &Csr,
    device: &DeviceSpec,
    config: &EngineConfig,
) -> u64
where
    P::Value: PodState,
{
    values_checksum(&run_single(program, graph, device.clone(), config).values)
}

/// What `phigraph run --checksum` would print for this job: a direct,
/// single-job execution with the same engine mode.
fn direct_checksum(graph: &Csr, kind: &JobKind, device: &DeviceSpec, mode: ExecMode) -> u64 {
    let config = match mode {
        ExecMode::Locking => EngineConfig::locking(),
        ExecMode::Pipelined => EngineConfig::pipelined(),
        ExecMode::Flat => EngineConfig::flat(),
        ExecMode::Sequential => EngineConfig::sequential(),
    };
    match kind {
        JobKind::PageRank {
            damping,
            iterations,
        } => checksum_of(
            &PageRank {
                damping: *damping,
                iterations: *iterations,
            },
            graph,
            device,
            &config,
        ),
        JobKind::Ppr {
            source,
            damping,
            iterations,
        } => checksum_of(
            &phigraph_apps::PersonalizedPageRank {
                source: *source,
                damping: *damping,
                iterations: *iterations,
            },
            graph,
            device,
            &config,
        ),
        JobKind::Bfs { source } => checksum_of(&Bfs { source: *source }, graph, device, &config),
        JobKind::Sssp { sources } => {
            if sources.len() == 1 {
                checksum_of(&Sssp { source: sources[0] }, graph, device, &config)
            } else {
                // Fold per-source checksums exactly like the pool does.
                let mut folded = Vec::with_capacity(sources.len() * 8);
                for &s in sources {
                    folded.extend_from_slice(
                        &checksum_of(&Sssp { source: s }, graph, device, &config).to_le_bytes(),
                    );
                }
                phigraph_recover::snapshot::fnv1a64(&folded)
            }
        }
        JobKind::Wcc => checksum_of(&Wcc::new(graph), graph, device, &config),
    }
}

impl Ledger {
    fn new() -> Self {
        Ledger {
            specs: BTreeMap::new(),
            terminal: BTreeMap::new(),
            corrupt: BTreeSet::new(),
            expected: HashMap::new(),
            duplicates: 0,
            carried_over: 0,
            completed_ok: 0,
        }
    }

    fn expected_checksum(
        &mut self,
        graphs: &[Arc<Csr>],
        gidx: usize,
        kind: &JobKind,
        device: &DeviceSpec,
        mode: ExecMode,
    ) -> u64 {
        let key = (gidx, format!("{kind:?}"));
        if let Some(&c) = self.expected.get(&key) {
            return c;
        }
        let c = direct_checksum(&graphs[gidx], kind, device, mode);
        self.expected.insert(key, c);
        c
    }

    /// Record one observed result. `epoch_base` maps the result's graph
    /// epoch onto the soak's graph list (epoch 1 of that incarnation =
    /// `graphs[epoch_base]`); `None` for journal re-emissions, whose
    /// producing incarnation is unknown — those are only checked for
    /// bit-identity against the first-seen copy (or any known graph
    /// when they arrive first).
    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        r: &JobResult,
        epoch_base: Option<usize>,
        graphs: &[Arc<Csr>],
        device: &DeviceSpec,
        mode: ExecMode,
    ) {
        if !r.status.is_terminal() {
            self.carried_over += 1;
            return;
        }
        let name = r.status.name();
        if let Some(&(first_name, first_sum)) = self.terminal.get(&r.id) {
            self.duplicates += 1;
            if first_name != name || first_sum != r.checksum {
                self.corrupt.insert(r.id.clone());
            }
            return;
        }
        if r.status == JobStatus::Ok {
            self.completed_ok += 1;
            if let Some(kind) = self.specs.get(&r.id).cloned() {
                let matches = match epoch_base {
                    Some(base) => {
                        let gidx = (base + r.epoch.saturating_sub(1) as usize)
                            .min(graphs.len().saturating_sub(1));
                        self.expected_checksum(graphs, gidx, &kind, device, mode) == r.checksum
                    }
                    // First seen via replay: the producing epoch cannot
                    // be mapped, so accept a match against any graph
                    // the soak has served.
                    None => (0..graphs.len()).any(|g| {
                        self.expected_checksum(graphs, g, &kind, device, mode) == r.checksum
                    }),
                };
                if !matches {
                    self.corrupt.insert(r.id.clone());
                }
            }
        }
        self.terminal.insert(r.id.clone(), (name, r.checksum));
    }
}

/// Resubmit a recovered spec, waiting out transient backpressure.
fn submit_with_retry(pool: &ServePool, spec: &JobSpec) -> Result<(), AdmitError> {
    let mut tries = 0;
    loop {
        match pool.submit(spec.clone()) {
            Ok(()) => return Ok(()),
            Err(AdmitError::Closed) => return Err(AdmitError::Closed),
            Err(e) if tries >= 10_000 => return Err(e),
            Err(_) => {
                tries += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

/// Smear random bytes over a valid request line; the parser must answer
/// every such line with an error (or, rarely, still parse it) — never
/// panic.
fn smear_line(rng: &mut SplitMix64, line: &str) -> String {
    let mut bytes = line.as_bytes().to_vec();
    let smears = rng.random_range(1usize..5);
    for _ in 0..smears {
        let i = rng.random_range(0usize..bytes.len());
        bytes[i] = (rng.next_u64() & 0x7f) as u8; // keep it UTF-8
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

fn draw_kind(rng: &mut SplitMix64, vertices: usize) -> JobKind {
    let n = vertices.max(1) as u64;
    match rng.random_range(0u32..4) {
        0 => JobKind::Bfs {
            source: (rng.random_range(0u64..n.min(8))) as u32,
        },
        1 => JobKind::Wcc,
        2 => JobKind::Sssp {
            sources: vec![(rng.random_range(0u64..n.min(8))) as u32],
        },
        _ => JobKind::PageRank {
            damping: 0.85,
            iterations: 5,
        },
    }
}

const TENANTS: [(&str, u64, usize); 3] = [("gold", 4, 4), ("silver", 2, 2), ("bronze", 1, 2)];

/// Run the chaos soak. Fully deterministic fault/job schedule per
/// config; wall-clock (thread interleaving) decides only *when* jobs
/// finish, never what they compute.
pub fn run_chaos(cfg: &ChaosConfig) -> Result<ChaosReport, String> {
    let jobs_per_cycle = if cfg.jobs_per_cycle == 0 {
        cfg.queue_cap * 2
    } else {
        cfg.jobs_per_cycle
    };
    std::fs::create_dir_all(&cfg.journal_dir)
        .map_err(|e| format!("chaos journal dir {:?}: {e}", cfg.journal_dir))?;
    let _ = std::fs::remove_file(cfg.journal_dir.join(JOURNAL_FILE));

    let device = DeviceSpec::xeon_e5_2680();
    let mut rng = SplitMix64::seed_from_u64(cfg.seed);
    // One seeded fault per cycle on average, drawn from the serving
    // subset; `superstep` doubles as the cycle index it strikes.
    let plan = FaultPlan::random(
        cfg.seed,
        cfg.cycles,
        cfg.cycles.max(1) as u64,
        &FaultKind::SERVE,
        1,
    );

    let mut graphs: Vec<Arc<Csr>> = vec![Arc::new(pokec_like_weighted(Scale::Tiny, cfg.seed))];
    let mut graph_idx = 0usize;
    let mut ledger = Ledger::new();
    let mut report = ChaosReport::default();

    // The final iteration is a clean flush incarnation: no faults, no
    // new jobs, drain everything the journal still owes.
    for cycle in 0..=cfg.cycles {
        let flush = cycle == cfg.cycles;
        let faults: Vec<FaultKind> = if flush {
            Vec::new()
        } else {
            plan.faults
                .iter()
                .filter(|f| f.superstep == cycle as u64)
                .map(|f| f.kind)
                .collect()
        };
        for f in &faults {
            *report.faults.entry(f.name()).or_insert(0) += 1;
        }
        let kill = faults.contains(&FaultKind::KillDaemon);
        let hang = faults.contains(&FaultKind::HangWorkerJob);
        let slow = faults.contains(&FaultKind::SlowClient);
        let malformed = faults.contains(&FaultKind::MalformedLine);

        let (journal, recovery) = Journal::open(&cfg.journal_dir, cfg.mode)?;
        let journal = Arc::new(journal);
        let epoch_base = graph_idx;
        // Per-incarnation flight recorder: trace ids restart at 1 each
        // cycle, exactly like a restarted daemon.
        let sink = EventSink::new();
        let (mut pool, rx) = ServePool::new(
            Arc::clone(&graphs[graph_idx]),
            ServeConfig {
                workers: cfg.workers,
                queue_cap: cfg.queue_cap,
                mode: cfg.mode,
                journal: Some(Arc::clone(&journal)),
                default_integrity: IntegrityMode::Off,
                events: Some(sink.clone()),
                ..ServeConfig::default()
            },
        );
        for (name, weight, cap) in TENANTS {
            pool.set_tenant(name, weight, cap);
        }
        let collector = std::thread::spawn(move || rx.iter().collect::<Vec<JobResult>>());

        // Recovery first: re-emit completed results, compact, resubmit
        // the incomplete jobs ahead of any new traffic.
        for r in &recovery.completed {
            pool.note_replayed(&r.tenant);
            ledger.record(r, None, &graphs, &device, cfg.mode);
        }
        journal
            .compact(&recovery.incomplete)
            .map_err(|e| format!("chaos compact: {e}"))?;
        for spec in &recovery.incomplete {
            if submit_with_retry(&pool, spec).is_err() {
                // Still journalled; a later incarnation tries again.
                report.rejected += 1;
            }
        }

        if malformed {
            // Seeded byte-smear fuzz against the protocol parser.
            let victim = job_request_line(&JobSpec {
                id: format!("fuzz-{cycle}"),
                tenant: "gold".to_string(),
                kind: draw_kind(&mut rng, graphs[graph_idx].num_vertices()),
                mode: cfg.mode,
                deadline_ms: None,
                integrity: None,
                replay: false,
                conn: 0,
            });
            for _ in 0..8 {
                let smeared = smear_line(&mut rng, &victim);
                // Must classify (almost always an error), never panic.
                let _ = parse_request(&smeared, cfg.mode, 0);
                report.malformed_answered += 1;
            }
        }

        let burst = if flush { 0 } else { jobs_per_cycle };
        let kill_at = if kill { burst / 2 } else { usize::MAX };
        for i in 0..burst {
            if i == kill_at {
                break;
            }
            let id = format!("c{cycle}-j{i}");
            let tenant = TENANTS[rng.random_range(0usize..TENANTS.len())].0;
            let (kind, deadline_ms) = if hang && i == 0 {
                // The wedged-worker fault: a runaway job only the
                // watchdog's deadline cancel can dislodge.
                (
                    JobKind::PageRank {
                        damping: 0.85,
                        iterations: 1_000_000,
                    },
                    Some(25),
                )
            } else {
                (draw_kind(&mut rng, graphs[graph_idx].num_vertices()), None)
            };
            let integrity = match rng.random_range(0u32..3) {
                0 => None,
                1 => Some(IntegrityMode::Frames),
                _ => Some(IntegrityMode::Full),
            };
            let spec = JobSpec {
                id: id.clone(),
                tenant: tenant.to_string(),
                kind: kind.clone(),
                mode: cfg.mode,
                deadline_ms,
                integrity,
                replay: false,
                conn: 0,
            };
            match pool.submit(spec) {
                Ok(()) => {
                    report.admitted += 1;
                    ledger.specs.insert(id, kind);
                }
                Err(AdmitError::Closed) => break,
                Err(_) => report.rejected += 1,
            }
            if slow && i % 8 == 7 {
                std::thread::sleep(Duration::from_millis(2));
            }
        }

        // Mid-traffic hot swap: jobs already picked up finish on the
        // old epoch, later pickups bind the new graph.
        if !flush && !kill && cfg.reload_every > 0 && (cycle + 1) % cfg.reload_every == 0 {
            let seed = cfg.seed.wrapping_add(graphs.len() as u64);
            pool.reload(pokec_like_weighted(Scale::Tiny, seed));
            graphs.push(Arc::new(pokec_like_weighted(Scale::Tiny, seed)));
            graph_idx = graphs.len() - 1;
            report.swaps += 1;
        }

        if kill {
            // The killed incarnation's postmortem: a per-cycle artifact
            // plus the canonical `flight.json` (latest kill wins), both
            // written *before* the abort — a real crash persists from
            // the panic hook / signal thread while workers still run.
            sink.note("chaos", &format!("killing incarnation at cycle {cycle}"));
            for (name, path) in [
                (
                    "flight",
                    cfg.journal_dir.join(format!("flight-c{cycle}.json")),
                ),
                ("flight", cfg.journal_dir.join("flight.json")),
            ] {
                if let Err(e) = sink.persist_flight(&path, "chaos-kill") {
                    eprintln!("serve-chaos: persist {name} {path:?}: {e}");
                }
            }
            report.flights += 1;
            // Abort ≈ kill -9 as far as the journal can tell: running
            // and queued jobs never gain a `done` record.
            pool.shutdown(false);
        } else if cycle % 2 == 1 && !flush {
            // Odd cycles exercise `--drain`: running jobs finish,
            // queued jobs are requeued into the journal.
            pool.shutdown_mode(DrainMode::Requeue);
        } else {
            pool.shutdown_mode(DrainMode::Finish);
        }
        drop(pool);
        let results = collector
            .join()
            .map_err(|_| "chaos collector panicked".to_string())?;
        for r in &results {
            ledger.record(r, Some(epoch_base), &graphs, &device, cfg.mode);
        }
        report.cycles += 1;
    }

    report.lost = ledger
        .specs
        .keys()
        .filter(|id| !ledger.terminal.contains_key(*id))
        .cloned()
        .collect();
    report.corrupt = ledger.corrupt.into_iter().collect();
    report.terminal = ledger.terminal.len();
    report.completed_ok = ledger.completed_ok;
    report.duplicates = ledger.duplicates;
    report.carried_over = ledger.carried_over;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "phigraph-chaos-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn small_soak_loses_and_corrupts_nothing() {
        let dir = tempdir("soak");
        let report = run_chaos(&ChaosConfig {
            cycles: 6,
            seed: 7,
            workers: 2,
            queue_cap: 8,
            jobs_per_cycle: 0,
            journal_dir: dir.clone(),
            reload_every: 3,
            mode: ExecMode::Sequential,
        })
        .unwrap();
        assert!(
            report.ok(),
            "lost={:?} corrupt={:?}",
            report.lost,
            report.corrupt
        );
        assert_eq!(report.cycles, 7, "6 chaos cycles + the flush");
        assert!(report.admitted > 0);
        // Terminal ids are a subset of admitted ids; zero lost means
        // every admitted job got exactly one terminal outcome.
        assert_eq!(report.terminal, report.admitted);
        assert!(report.completed_ok > 0);
        assert!(report.swaps >= 1, "reload_every=3 over 6 cycles must swap");
        let line = report.to_line();
        assert!(line.contains("\"status\": \"ok\""), "{line}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn killed_incarnations_leave_parseable_flight_recordings() {
        // Pick the first seed whose 4-cycle plan contains a daemon
        // kill, so the assertion never depends on one magic seed.
        let seed = (1..64)
            .find(|&s| {
                FaultPlan::random(s, 4, 4, &FaultKind::SERVE, 1)
                    .faults
                    .iter()
                    .any(|f| f.kind == FaultKind::KillDaemon)
            })
            .expect("some small seed draws a daemon kill");
        let dir = tempdir("flight");
        let report = run_chaos(&ChaosConfig {
            cycles: 4,
            seed,
            workers: 2,
            queue_cap: 8,
            jobs_per_cycle: 0,
            journal_dir: dir.clone(),
            reload_every: 0,
            mode: ExecMode::Sequential,
        })
        .unwrap();
        assert!(report.ok(), "lost={:?}", report.lost);
        let kills = *report.faults.get("daemon-kill").unwrap_or(&0);
        assert!(kills > 0, "probed seed must inject a kill");
        assert_eq!(report.flights, kills, "one postmortem per kill");
        let text = std::fs::read_to_string(dir.join("flight.json")).unwrap();
        let doc = phigraph_trace::json::Json::parse(&text).unwrap();
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some(crate::events::FLIGHT_SCHEMA)
        );
        assert_eq!(
            doc.get("reason").and_then(|v| v.as_str()),
            Some("chaos-kill")
        );
        let events = doc.get("events").and_then(|v| v.as_arr()).unwrap();
        assert!(!events.is_empty(), "a killed burst leaves events behind");
        assert!(report.to_line().contains("\"flights\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fault_schedule_is_deterministic_per_seed() {
        let a = FaultPlan::random(3, 10, 10, &FaultKind::SERVE, 1);
        let b = FaultPlan::random(3, 10, 10, &FaultKind::SERVE, 1);
        assert_eq!(a, b);
        assert!(a.faults.iter().all(|f| FaultKind::SERVE.contains(&f.kind)));
    }
}
