//! Weighted fair scheduling across tenants: stride scheduling over the
//! per-tenant FIFO queues.
//!
//! Each tenant carries a *pass* value; picking a job charges the tenant
//! `SCALE / weight`, so a weight-4 tenant is picked four times as often
//! as a weight-1 tenant under contention, while an idle tenant's pass is
//! re-synced on wakeup so it cannot hoard credit. A tenant is *runnable*
//! when it has queued jobs and fewer than `cap` jobs currently running —
//! the cap keeps one tenant from occupying the whole worker pool no
//! matter its weight.

use std::collections::BTreeMap;
use std::time::Instant;

use crate::job::JobSpec;
use crate::stats::TenantStats;

/// Pass increment for weight 1; higher weights advance slower.
pub const SCALE: u64 = 1 << 20;

/// One tenant's scheduling state.
#[derive(Debug)]
pub struct Tenant {
    /// Stride weight (≥ 1).
    pub weight: u64,
    /// Max concurrent running jobs (≥ 1).
    pub cap: usize,
    /// Stride pass value.
    pub pass: u64,
    /// Jobs of this tenant currently on workers.
    pub running: usize,
    /// Admitted jobs waiting for a worker, with their admission time and
    /// absolute deadline.
    pub queue: std::collections::VecDeque<QueuedJob>,
    /// Accounting for `phigraph report` / Prometheus.
    pub stats: TenantStats,
}

/// A job sitting in a tenant queue.
#[derive(Debug)]
pub struct QueuedJob {
    /// The job itself.
    pub spec: JobSpec,
    /// When the job was admitted (for wait-time accounting).
    pub admitted: Instant,
    /// Absolute deadline, if any.
    pub deadline: Option<Instant>,
    /// Admitted at shed-ladder level ≥ 1: run with integrity off and
    /// without a per-job trace span.
    pub degraded: bool,
    /// Trace id assigned at admission (`0` when no event sink is
    /// attached), carried through pickup and execution so every event
    /// and the final response line share one causal id.
    pub trace: u64,
}

impl Tenant {
    fn new(weight: u64, cap: usize) -> Self {
        Tenant {
            weight: weight.max(1),
            cap: cap.max(1),
            pass: 0,
            running: 0,
            queue: std::collections::VecDeque::new(),
            stats: TenantStats::new(weight.max(1), cap.max(1)),
        }
    }

    fn runnable(&self) -> bool {
        !self.queue.is_empty() && self.running < self.cap
    }
}

/// The scheduler: tenants keyed by name (BTreeMap so pass ties break
/// deterministically in lexicographic order).
#[derive(Debug, Default)]
pub struct Scheduler {
    tenants: BTreeMap<String, Tenant>,
    /// Default weight for tenants that first appear on a job line.
    pub default_weight: u64,
    /// Default concurrency cap for implicitly created tenants.
    pub default_cap: usize,
}

impl Scheduler {
    /// Empty scheduler with defaults for implicitly created tenants.
    pub fn new(default_weight: u64, default_cap: usize) -> Self {
        Scheduler {
            tenants: BTreeMap::new(),
            default_weight: default_weight.max(1),
            default_cap: default_cap.max(1),
        }
    }

    /// The tenant entry for `name`, created with the defaults on first
    /// sight. A fresh (or long-idle) tenant starts at the current minimum
    /// pass so it cannot monopolise workers with banked credit.
    pub fn tenant_mut(&mut self, name: &str) -> &mut Tenant {
        if !self.tenants.contains_key(name) {
            let floor = self.min_pass();
            let mut t = Tenant::new(self.default_weight, self.default_cap);
            t.pass = floor;
            self.tenants.insert(name.to_string(), t);
        }
        self.tenants.get_mut(name).unwrap()
    }

    /// Set a tenant's weight and cap (creating it if needed).
    pub fn configure(&mut self, name: &str, weight: u64, cap: usize) {
        let t = self.tenant_mut(name);
        t.weight = weight.max(1);
        t.cap = cap.max(1);
        t.stats.weight = t.weight;
        t.stats.cap = t.cap;
    }

    fn min_pass(&self) -> u64 {
        self.tenants.values().map(|t| t.pass).min().unwrap_or(0)
    }

    /// Queue a job on its tenant (admission already happened).
    pub fn enqueue(&mut self, job: QueuedJob) {
        let floor = self.min_pass();
        let t = self.tenant_mut(&job.spec.tenant.clone());
        // Re-sync an idle tenant's pass so it competes fairly from now on
        // instead of replaying banked idle time.
        if t.queue.is_empty() && t.running == 0 {
            t.pass = t.pass.max(floor);
        }
        t.stats.submitted += 1;
        t.queue.push_back(job);
    }

    /// Total queued jobs across all tenants.
    pub fn queued(&self) -> usize {
        self.tenants.values().map(|t| t.queue.len()).sum()
    }

    /// Total running jobs across all tenants.
    pub fn running(&self) -> usize {
        self.tenants.values().map(|t| t.running).sum()
    }

    /// Pick the next job under stride scheduling: among runnable tenants,
    /// the one with the smallest pass (ties break by name). Charges the
    /// tenant's pass and marks one job running.
    pub fn pick(&mut self) -> Option<QueuedJob> {
        let name = self
            .tenants
            .iter()
            .filter(|(_, t)| t.runnable())
            .min_by_key(|(name, t)| (t.pass, name.as_str().to_string()))
            .map(|(name, _)| name.clone())?;
        let t = self.tenants.get_mut(&name).unwrap();
        let job = t.queue.pop_front().unwrap();
        t.pass = t.pass.wrapping_add(SCALE / t.weight);
        t.running += 1;
        Some(job)
    }

    /// Mark one of `tenant`'s running jobs finished.
    pub fn finish(&mut self, tenant: &str) {
        let t = self.tenant_mut(tenant);
        t.running = t.running.saturating_sub(1);
    }

    /// Remove queued jobs whose deadline has passed, returning them.
    pub fn expire(&mut self, now: Instant) -> Vec<QueuedJob> {
        let mut out = Vec::new();
        for t in self.tenants.values_mut() {
            let mut keep = std::collections::VecDeque::new();
            while let Some(q) = t.queue.pop_front() {
                match q.deadline {
                    Some(d) if d <= now => out.push(q),
                    _ => keep.push_back(q),
                }
            }
            t.queue = keep;
        }
        out
    }

    /// Drop every queued job (forced shutdown), returning them.
    pub fn drain_all(&mut self) -> Vec<QueuedJob> {
        let mut out = Vec::new();
        for t in self.tenants.values_mut() {
            out.extend(t.queue.drain(..));
        }
        out
    }

    /// The stride weight `name` would schedule at (its configured
    /// weight, or the default for tenants not seen yet).
    pub fn weight_of(&self, name: &str) -> u64 {
        self.tenants
            .get(name)
            .map(|t| t.weight)
            .unwrap_or(self.default_weight)
    }

    /// The largest weight across known tenants (at least the default):
    /// the shed ladder's reference point for "important enough to keep".
    pub fn max_weight(&self) -> u64 {
        self.tenants
            .values()
            .map(|t| t.weight)
            .max()
            .unwrap_or(self.default_weight)
            .max(self.default_weight)
    }

    /// Iterate tenants for stats snapshots.
    pub fn tenants(&self) -> impl Iterator<Item = (&str, &Tenant)> {
        self.tenants.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Mutable stats handle for a tenant.
    pub fn stats_mut(&mut self, name: &str) -> &mut TenantStats {
        &mut self.tenant_mut(name).stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobKind, JobSpec};
    use phigraph_core::engine::ExecMode;

    fn job(tenant: &str, id: &str) -> QueuedJob {
        QueuedJob {
            spec: JobSpec {
                id: id.to_string(),
                tenant: tenant.to_string(),
                kind: JobKind::Wcc,
                mode: ExecMode::Sequential,
                deadline_ms: None,
                integrity: None,
                replay: false,
                conn: 0,
            },
            admitted: Instant::now(),
            deadline: None,
            degraded: false,
            trace: 0,
        }
    }

    #[test]
    fn weight_queries_cover_unknown_tenants() {
        let mut s = Scheduler::new(2, 1);
        assert_eq!(s.weight_of("ghost"), 2);
        assert_eq!(s.max_weight(), 2);
        s.configure("vip", 8, 4);
        s.configure("basic", 1, 1);
        assert_eq!(s.weight_of("vip"), 8);
        assert_eq!(s.weight_of("ghost"), 2);
        assert_eq!(s.max_weight(), 8);
    }

    #[test]
    fn weights_bias_pick_order() {
        let mut s = Scheduler::new(1, 100);
        s.configure("heavy", 3, 100);
        s.configure("light", 1, 100);
        for i in 0..12 {
            s.enqueue(job("heavy", &format!("h{i}")));
            s.enqueue(job("light", &format!("l{i}")));
        }
        let mut heavy = 0;
        let mut light = 0;
        for _ in 0..12 {
            let j = s.pick().unwrap();
            // Completing immediately: caps never bind in this test.
            s.finish(&j.spec.tenant);
            match j.spec.tenant.as_str() {
                "heavy" => heavy += 1,
                _ => light += 1,
            }
        }
        // Weight 3 vs 1 → 9 of the first 12 picks go to the heavy tenant.
        assert_eq!(heavy, 9, "heavy={heavy} light={light}");
    }

    #[test]
    fn cap_blocks_further_picks() {
        let mut s = Scheduler::new(1, 100);
        s.configure("a", 10, 2);
        s.configure("b", 1, 100);
        for i in 0..4 {
            s.enqueue(job("a", &format!("a{i}")));
        }
        // Only a has work: its cap of 2 binds after two picks even
        // though two more jobs are queued.
        assert_eq!(s.pick().unwrap().spec.tenant, "a");
        assert_eq!(s.pick().unwrap().spec.tenant, "a");
        assert!(s.pick().is_none());
        // Another tenant's work still runs while a is capped.
        s.enqueue(job("b", "b0"));
        assert_eq!(s.pick().unwrap().spec.tenant, "b");
        assert!(s.pick().is_none());
        // Finishing one of a's jobs unblocks it.
        s.finish("a");
        assert_eq!(s.pick().unwrap().spec.tenant, "a");
    }

    #[test]
    fn idle_tenant_does_not_bank_credit() {
        let mut s = Scheduler::new(1, 100);
        s.configure("busy", 1, 100);
        for i in 0..50 {
            s.enqueue(job("busy", &format!("x{i}")));
            let j = s.pick().unwrap();
            s.finish(&j.spec.tenant);
        }
        // "late" arrives now; its pass is synced to busy's, so picks
        // alternate instead of late draining everything first.
        s.enqueue(job("late", "l0"));
        s.enqueue(job("late", "l1"));
        s.enqueue(job("busy", "x50"));
        let first_two: Vec<String> = (0..2)
            .map(|_| {
                let j = s.pick().unwrap();
                s.finish(&j.spec.tenant);
                j.spec.tenant
            })
            .collect();
        assert!(
            first_two.contains(&"busy".to_string()),
            "busy was starved: {first_two:?}"
        );
    }

    #[test]
    fn expire_removes_only_past_deadline_jobs() {
        let mut s = Scheduler::new(1, 100);
        let now = Instant::now();
        let mut expired = job("a", "dead");
        expired.deadline = Some(now - std::time::Duration::from_millis(1));
        let mut alive = job("a", "alive");
        alive.deadline = Some(now + std::time::Duration::from_secs(3600));
        s.enqueue(expired);
        s.enqueue(alive);
        s.enqueue(job("a", "forever"));
        let gone = s.expire(now);
        assert_eq!(gone.len(), 1);
        assert_eq!(gone[0].spec.id, "dead");
        assert_eq!(s.queued(), 2);
    }
}
