//! Graceful degradation under overload: the load-shedding ladder and
//! the per-tenant circuit breaker.
//!
//! Pressure is read at every admission from two signals — queue
//! occupancy (`pending / queue_cap`) and the recent deadline-miss rate —
//! and mapped onto a four-level ladder:
//!
//! | level | occupancy   | action                                        |
//! |-------|-------------|-----------------------------------------------|
//! | 0     | < 50%       | admit normally                                |
//! | 1     | < 75%       | admit *degraded*: integrity off, no job spans |
//! | 2     | < 90%       | also shed tenants with ≤ half the max weight  |
//! | 3     | ≥ 90%       | also shed every below-max-weight tenant       |
//!
//! A deadline-miss rate above 20% in the recent window bumps the level
//! by one: the queue may look shallow while jobs are already arriving
//! too late to matter. Shedding the *lowest-weight* tenants first keeps
//! the tenants the operator marked important responsive for longest —
//! degrading optional work always precedes rejecting anyone.
//!
//! On top of the ladder, each tenant carries a circuit breaker: enough
//! consecutive rejections open it, and while open every submission is
//! bounced immediately with an exponentially backed-off
//! `retry_after_ms` — a misbehaving client burns its own budget, not
//! the admission lock. One accepted job closes the breaker.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Overload-handling policy for the pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShedPolicy {
    /// No shedding: admit until the queue is full (PR 7 behaviour).
    Off,
    /// The occupancy/miss-rate ladder documented on this module.
    #[default]
    Ladder,
}

impl ShedPolicy {
    /// Stable flag-value name.
    pub fn name(&self) -> &'static str {
        match self {
            ShedPolicy::Off => "off",
            ShedPolicy::Ladder => "ladder",
        }
    }
}

impl std::str::FromStr for ShedPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "off" => Ok(ShedPolicy::Off),
            "ladder" => Ok(ShedPolicy::Ladder),
            other => Err(format!("unknown shed policy {other:?} (off|ladder)")),
        }
    }
}

/// Consecutive rejections that open a tenant's breaker.
const BREAKER_TRIP: u32 = 4;
/// First open interval; doubles per re-trip up to [`BREAKER_MAX_MS`].
const BREAKER_BASE_MS: u64 = 100;
/// Backoff ceiling.
const BREAKER_MAX_MS: u64 = 5_000;

/// Deadline-miss fraction that bumps the ladder one level.
const MISS_RATE_BUMP: f64 = 0.2;

/// Compute the ladder level from queue occupancy and the recent
/// deadline-miss rate.
pub fn shed_level(pending: usize, queue_cap: usize, miss_rate: f64) -> u8 {
    let occupancy = pending as f64 / queue_cap.max(1) as f64;
    let base: u8 = if occupancy < 0.5 {
        0
    } else if occupancy < 0.75 {
        1
    } else if occupancy < 0.9 {
        2
    } else {
        3
    };
    if miss_rate > MISS_RATE_BUMP {
        (base + 1).min(3)
    } else {
        base
    }
}

/// True when the ladder says to shed this tenant outright. Degradation
/// (level ≥ 1) is handled by the caller; this is only the reject step.
pub fn sheds_tenant(level: u8, weight: u64, max_weight: u64) -> bool {
    match level {
        0 | 1 => false,
        2 => weight.saturating_mul(2) <= max_weight,
        _ => weight < max_weight,
    }
}

#[derive(Debug, Default)]
struct Breaker {
    consecutive_rejects: u32,
    backoff_ms: u64,
    open_until: Option<Instant>,
}

/// Per-tenant circuit breakers plus the deadline-miss window the ladder
/// reads. Lives inside the pool's state lock.
#[derive(Debug, Default)]
pub struct ShedState {
    breakers: BTreeMap<String, Breaker>,
    window_finished: u64,
    window_missed: u64,
}

/// Outcome of a breaker check at admission time.
#[derive(Debug, PartialEq, Eq)]
pub enum BreakerCheck {
    /// Closed (or half-open): proceed to the ladder and queue checks.
    Proceed,
    /// Open: bounce immediately, retry after the remaining interval.
    Open {
        /// Milliseconds until the breaker half-opens.
        retry_after_ms: u64,
    },
}

impl ShedState {
    /// Check `tenant`'s breaker before any other admission work.
    pub fn check(&mut self, tenant: &str, now: Instant) -> BreakerCheck {
        let Some(b) = self.breakers.get(tenant) else {
            return BreakerCheck::Proceed;
        };
        match b.open_until {
            Some(until) if until > now => BreakerCheck::Open {
                retry_after_ms: (until - now).as_millis().max(1) as u64,
            },
            _ => BreakerCheck::Proceed,
        }
    }

    /// Note a rejection (queue-full or shed). Returns `true` when this
    /// rejection tripped the breaker open.
    pub fn note_rejected(&mut self, tenant: &str, now: Instant) -> bool {
        let b = self.breakers.entry(tenant.to_string()).or_default();
        b.consecutive_rejects += 1;
        if b.consecutive_rejects >= BREAKER_TRIP {
            b.consecutive_rejects = 0;
            b.backoff_ms = if b.backoff_ms == 0 {
                BREAKER_BASE_MS
            } else {
                (b.backoff_ms * 2).min(BREAKER_MAX_MS)
            };
            b.open_until = Some(now + Duration::from_millis(b.backoff_ms));
            true
        } else {
            false
        }
    }

    /// Note a successful admission: close the tenant's breaker and
    /// forget its backoff.
    pub fn note_admitted(&mut self, tenant: &str) {
        self.breakers.remove(tenant);
    }

    /// Note a finished job for the deadline-miss window. `missed` means
    /// it expired in queue or was cancelled by its deadline.
    pub fn note_finished(&mut self, missed: bool) {
        self.window_finished += 1;
        if missed {
            self.window_missed += 1;
        }
        // Exponential-decay window: halve both counters periodically so
        // old history fades instead of dominating forever.
        if self.window_finished >= 64 {
            self.window_finished /= 2;
            self.window_missed /= 2;
        }
    }

    /// Deadline-miss fraction over the recent window.
    pub fn miss_rate(&self) -> f64 {
        if self.window_finished == 0 {
            0.0
        } else {
            self.window_missed as f64 / self.window_finished as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_levels_track_occupancy_and_miss_rate() {
        assert_eq!(shed_level(0, 64, 0.0), 0);
        assert_eq!(shed_level(31, 64, 0.0), 0);
        assert_eq!(shed_level(32, 64, 0.0), 1);
        assert_eq!(shed_level(48, 64, 0.0), 2);
        assert_eq!(shed_level(58, 64, 0.0), 3);
        assert_eq!(shed_level(64, 64, 0.0), 3);
        // A high miss rate bumps a calm queue one level, capped at 3.
        assert_eq!(shed_level(0, 64, 0.5), 1);
        assert_eq!(shed_level(64, 64, 0.5), 3);
        assert_eq!(shed_level(1, 1, 0.0), 3, "a full queue is always level 3");
    }

    #[test]
    fn shedding_prefers_low_weight_tenants() {
        // Uniform weights: nobody is shed at any level (queue-full still
        // guards the ceiling), so the pre-existing single-tenant tests
        // keep their semantics.
        for level in 0..=3 {
            assert!(!sheds_tenant(level, 4, 4));
        }
        assert!(!sheds_tenant(1, 1, 8));
        assert!(sheds_tenant(2, 4, 8));
        assert!(!sheds_tenant(2, 5, 8));
        assert!(sheds_tenant(3, 7, 8));
    }

    #[test]
    fn breaker_opens_after_consecutive_rejects_and_backs_off() {
        let mut s = ShedState::default();
        let t0 = Instant::now();
        assert_eq!(s.check("a", t0), BreakerCheck::Proceed);
        for _ in 0..BREAKER_TRIP - 1 {
            assert!(!s.note_rejected("a", t0));
        }
        assert!(s.note_rejected("a", t0), "4th reject trips the breaker");
        match s.check("a", t0) {
            BreakerCheck::Open { retry_after_ms } => {
                assert!(retry_after_ms <= BREAKER_BASE_MS && retry_after_ms > 0)
            }
            other => panic!("{other:?}"),
        }
        // Past the open interval it half-opens…
        let later = t0 + Duration::from_millis(BREAKER_BASE_MS + 1);
        assert_eq!(s.check("a", later), BreakerCheck::Proceed);
        // …and re-tripping doubles the backoff.
        for _ in 0..BREAKER_TRIP {
            s.note_rejected("a", later);
        }
        match s.check("a", later) {
            BreakerCheck::Open { retry_after_ms } => {
                assert!(retry_after_ms > BREAKER_BASE_MS);
                assert!(retry_after_ms <= 2 * BREAKER_BASE_MS);
            }
            other => panic!("{other:?}"),
        }
        // One admission closes it and resets the backoff.
        s.note_admitted("a");
        assert_eq!(s.check("a", later), BreakerCheck::Proceed);
        // Other tenants are untouched throughout.
        assert_eq!(s.check("b", later), BreakerCheck::Proceed);
    }

    #[test]
    fn miss_window_decays() {
        let mut s = ShedState::default();
        assert_eq!(s.miss_rate(), 0.0);
        for _ in 0..10 {
            s.note_finished(true);
        }
        assert!(s.miss_rate() > 0.99);
        for _ in 0..100 {
            s.note_finished(false);
        }
        assert!(s.miss_rate() < MISS_RATE_BUMP, "{}", s.miss_rate());
    }
}
