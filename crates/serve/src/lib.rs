#![warn(missing_docs)]
//! The phigraph query-serving daemon: load a graph once, answer many
//! concurrent tenant queries over it.
//!
//! The batch engines (PR 1–5) run one algorithm to completion per
//! process. This crate turns the same machinery into a *service*: the
//! CSR is loaded once and shared immutably (`Arc<Csr>`), and every
//! admitted job — batched landmark SSSP, personalized PageRank,
//! per-tenant BFS/WCC — gets its own private [`EngineConfig`]
//! (own CSB arenas, own cancel token) executed by a fixed worker pool.
//! Engine re-entrancy makes this safe: drivers only ever *borrow* the
//! graph, so any number of jobs can run over it at once and each
//! produces bit-identical results to a one-shot `phigraph run`.
//!
//! The moving parts:
//!
//! - [`pool::ServePool`] — bounded admission through the PR 1 SPSC
//!   ring (reject-with-retry-after on overflow), stride-scheduled
//!   weighted fairness across tenants with per-tenant concurrency caps
//!   ([`sched::Scheduler`]), and a watchdog enforcing deadlines through
//!   the PR 3 cancel tokens.
//! - [`job`] — the line-delimited JSON protocol (requests in, one
//!   response line per job out), with a bounded line reader that
//!   answers malformed/oversized input with typed errors.
//! - [`journal`] — the append-only, FNV-checksummed job journal: a
//!   killed daemon replays incomplete jobs and re-emits completed
//!   results bit-identically on restart.
//! - [`shed`] — the overload ladder (degrade optional work, then shed
//!   low-weight tenants) and the per-tenant circuit breaker.
//! - [`stats`] — per-tenant accounting, the `"serve"` block in
//!   `run_report.json`, and the `phigraph_serve_*{tenant="…"}`
//!   Prometheus series.
//! - [`daemon`] — the stdin and unix-socket frontends, hot graph swap
//!   (`reload`), journal recovery on startup, and clean SIGTERM/SIGINT
//!   shutdown via [`signals::SignalFd`].
//! - [`metrics`] — the live observability plane: a sliding-window
//!   [`MetricsHub`](metrics::MetricsHub) (1s/10s/60s) over the counters
//!   and histograms, scraped mid-traffic through
//!   `{"op":"stats","format":"prom"}`, `--metrics-sock`, and
//!   `--metrics-every` snapshot files.
//! - [`events`] — per-job causal trace ids
//!   (admission→queue→exec→journal→reply), the `--events-out` JSONL
//!   event log, and the crash flight recorder persisted to
//!   `flight.json` on panic, SIGTERM, and chaos kill.
//! - [`chaos`] — the seeded `serve-chaos` soak driver: kill/restart/
//!   reload cycles at overload, asserting zero lost, duplicated, or
//!   corrupted results.
//!
//! [`EngineConfig`]: phigraph_core::engine::EngineConfig

pub mod chaos;
pub mod daemon;
pub mod events;
pub mod job;
pub mod journal;
pub mod metrics;
pub mod pool;
pub mod sched;
pub mod shed;
pub mod signals;
pub mod stats;

pub use chaos::{run_chaos, ChaosConfig, ChaosReport};
pub use daemon::{run_daemon, DaemonConfig};
pub use events::{EventSink, FLIGHT_SCHEMA};
pub use job::{JobKind, JobResult, JobSpec, JobStatus, Request};
pub use journal::{Journal, Recovery};
pub use metrics::{live_prometheus_text, MetricsHub, WindowView};
pub use pool::{values_checksum, AdmitError, DrainMode, ServeConfig, ServePool};
pub use shed::ShedPolicy;
pub use stats::{serve_prometheus_text, serve_report_json, ServeStats, TenantStats};
