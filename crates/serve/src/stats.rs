//! Per-tenant serving statistics, the `ServeStats` block for
//! `run_report.json`, and the Prometheus rendering `phigraph serve`
//! writes next to it.

use std::collections::BTreeMap;

use phigraph_trace::json::JsonBuf;

/// Accounting for one tenant.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TenantStats {
    /// Stride weight in effect.
    pub weight: u64,
    /// Concurrency cap in effect.
    pub cap: usize,
    /// Jobs running at snapshot time (gauge, filled by the pool).
    pub running: usize,
    /// Jobs admitted to this tenant's queue.
    pub submitted: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs bounced at admission (queue full).
    pub rejected: u64,
    /// Jobs cancelled mid-run (deadline or shutdown).
    pub cancelled: u64,
    /// Jobs that expired in the queue before pickup.
    pub expired: u64,
    /// Jobs that failed with an error.
    pub failed: u64,
    /// Jobs bounced by the load-shedding ladder (subset of `rejected`).
    pub shed: u64,
    /// Jobs bounced by this tenant's open circuit breaker (subset of
    /// `rejected`).
    pub breaker: u64,
    /// Times this tenant's circuit breaker tripped open.
    pub breaker_trips: u64,
    /// Jobs admitted in degraded mode (integrity off, no job span).
    pub degraded: u64,
    /// Jobs returned to the journal by a `--drain` shutdown.
    pub requeued: u64,
    /// Results re-emitted from the journal after a restart.
    pub replayed: u64,
    /// Total queue wait across finished jobs, µs.
    pub wait_us: u64,
    /// Worst single queue wait, µs.
    pub max_wait_us: u64,
    /// Total execution time across finished jobs, µs.
    pub exec_us: u64,
    /// Supersteps executed on behalf of this tenant.
    pub supersteps: u64,
}

impl TenantStats {
    /// Fresh stats for a tenant with the given weight and cap.
    pub fn new(weight: u64, cap: usize) -> Self {
        TenantStats {
            weight,
            cap,
            ..TenantStats::default()
        }
    }

    /// Jobs that left the system one way or another.
    pub fn finished(&self) -> u64 {
        self.completed + self.cancelled + self.expired + self.failed
    }
}

/// A snapshot of the whole pool's accounting.
#[derive(Clone, Debug, Default)]
pub struct ServeStats {
    /// Per-tenant breakdown, keyed by tenant name.
    pub tenants: BTreeMap<String, TenantStats>,
    /// Jobs currently queued (at snapshot time).
    pub queued: usize,
    /// Jobs currently running (at snapshot time).
    pub running: usize,
    /// Admission-queue capacity.
    pub queue_cap: usize,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Shed-ladder level at snapshot time (0 = normal, 3 = max).
    pub shed_level: u8,
    /// Graph epoch being served (starts at 1, bumped by each reload).
    pub epoch: u64,
    /// Hot graph swaps performed since startup.
    pub swaps: u64,
}

impl ServeStats {
    /// Sum of a per-tenant field across tenants.
    fn total(&self, f: impl Fn(&TenantStats) -> u64) -> u64 {
        self.tenants.values().map(f).sum()
    }

    /// Total completed jobs.
    pub fn completed(&self) -> u64 {
        self.total(|t| t.completed)
    }

    /// Total rejected jobs.
    pub fn rejected(&self) -> u64 {
        self.total(|t| t.rejected)
    }

    /// Append the `"serve"` object (tenant breakdown plus pool gauges)
    /// onto an open [`JsonBuf`] object.
    pub fn write_json(&self, b: &mut JsonBuf) {
        b.begin_obj("serve");
        b.int("workers", self.workers as u64);
        b.int("queue_cap", self.queue_cap as u64);
        b.int("queued", self.queued as u64);
        b.int("running", self.running as u64);
        b.int("completed", self.completed());
        b.int("rejected", self.rejected());
        b.int("shed_level", self.shed_level as u64);
        b.int("epoch", self.epoch);
        b.int("swaps", self.swaps);
        b.int("shed", self.total(|t| t.shed));
        b.int("degraded", self.total(|t| t.degraded));
        b.int("requeued", self.total(|t| t.requeued));
        b.int("replayed", self.total(|t| t.replayed));
        b.begin_arr("tenants");
        for (name, t) in &self.tenants {
            b.elem_obj();
            b.str("tenant", name);
            b.int("weight", t.weight);
            b.int("cap", t.cap as u64);
            b.int("running", t.running as u64);
            b.int("submitted", t.submitted);
            b.int("completed", t.completed);
            b.int("rejected", t.rejected);
            b.int("cancelled", t.cancelled);
            b.int("expired", t.expired);
            b.int("failed", t.failed);
            b.int("shed", t.shed);
            b.int("breaker", t.breaker);
            b.int("breaker_trips", t.breaker_trips);
            b.int("degraded", t.degraded);
            b.int("requeued", t.requeued);
            b.int("replayed", t.replayed);
            b.int("wait_us", t.wait_us);
            b.int("max_wait_us", t.max_wait_us);
            b.int("exec_us", t.exec_us);
            b.int("supersteps", t.supersteps);
            b.end();
        }
        b.end();
        b.end();
    }

    /// Render one stats response line for the `{"op":"stats"}` verb.
    pub fn to_line(&self) -> String {
        self.to_line_with_hists(&[])
    }

    /// Render one stats response line including on-demand summaries of
    /// the serving histograms (count, mean, log2-resolution p50/p99).
    /// This is the live counterpart of the exit-time Prometheus dump:
    /// histograms used to be visible only after shutdown.
    pub fn to_line_with_hists(&self, hists: &[phigraph_trace::HistSnapshot]) -> String {
        let mut b = JsonBuf::obj();
        b.str("status", "ok");
        self.write_json(&mut b);
        let serving: Vec<_> = hists
            .iter()
            .filter(|h| is_serving_hist(h.name) && h.count > 0)
            .collect();
        if !serving.is_empty() {
            b.begin_arr("hists");
            for h in serving {
                b.elem_obj();
                b.str("name", h.name);
                b.int("count", h.count);
                b.num("mean", h.mean().unwrap_or(0.0));
                b.int("p50", h.quantile_upper(0.5).unwrap_or(0));
                b.int("p99", h.quantile_upper(0.99).unwrap_or(0));
                b.end();
            }
            b.end();
        }
        crate::job::one_line(b.finish())
    }
}

/// True for the histogram kinds the serving daemon feeds (the ones
/// worth exporting from `phigraph serve`).
pub(crate) fn is_serving_hist(name: &str) -> bool {
    name.starts_with("job_")
        || name.starts_with("journal_")
        || name.starts_with("graph_")
        || name.starts_with("shed_")
}

/// Full `run_report.json`-compatible document for a serving run: the
/// usual schema/combined/devices skeleton (so `phigraph report` accepts
/// it) plus the `"serve"` block with the tenant breakdown.
pub fn serve_report_json(stats: &ServeStats, device: &str, wall_seconds: f64) -> String {
    let mut b = JsonBuf::obj();
    b.str("schema", phigraph_core::export::REPORT_SCHEMA);
    b.begin_obj("combined");
    b.str("app", "serve");
    b.str("device", device);
    b.str("mode", "serve");
    b.num("wall_seconds", wall_seconds);
    b.begin_arr("steps");
    b.end();
    b.end();
    b.begin_arr("devices");
    b.end();
    stats.write_json(&mut b);
    b.finish()
}

fn prom_metric(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// Prometheus text exposition for a serving run: pool gauges plus one
/// series per tenant for every counter, labelled `tenant="…"`.
pub fn serve_prometheus_text(stats: &ServeStats) -> String {
    let mut out = String::new();
    prom_metric(
        &mut out,
        "phigraph_serve_workers",
        "Worker threads in the serving pool.",
        "gauge",
    );
    out.push_str(&format!("phigraph_serve_workers {}\n", stats.workers));
    prom_metric(
        &mut out,
        "phigraph_serve_queue_cap",
        "Admission queue capacity.",
        "gauge",
    );
    out.push_str(&format!("phigraph_serve_queue_cap {}\n", stats.queue_cap));
    prom_metric(
        &mut out,
        "phigraph_serve_queued",
        "Jobs waiting for a worker.",
        "gauge",
    );
    out.push_str(&format!("phigraph_serve_queued {}\n", stats.queued));
    prom_metric(
        &mut out,
        "phigraph_serve_running",
        "Jobs currently executing.",
        "gauge",
    );
    out.push_str(&format!("phigraph_serve_running {}\n", stats.running));
    prom_metric(
        &mut out,
        "phigraph_serve_shed_level",
        "Load-shedding ladder level (0 = normal, 3 = max shedding).",
        "gauge",
    );
    out.push_str(&format!("phigraph_serve_shed_level {}\n", stats.shed_level));
    prom_metric(
        &mut out,
        "phigraph_serve_graph_epoch",
        "Epoch of the graph currently served (bumped by each reload).",
        "gauge",
    );
    out.push_str(&format!("phigraph_serve_graph_epoch {}\n", stats.epoch));
    prom_metric(
        &mut out,
        "phigraph_serve_graph_swaps",
        "Hot graph swaps performed since startup.",
        "counter",
    );
    out.push_str(&format!("phigraph_serve_graph_swaps {}\n", stats.swaps));

    type CounterRow = (&'static str, &'static str, fn(&TenantStats) -> u64);
    let counters: [CounterRow; 15] = [
        (
            "phigraph_serve_jobs_submitted",
            "Jobs admitted, by tenant.",
            |t| t.submitted,
        ),
        (
            "phigraph_serve_jobs_completed",
            "Jobs completed, by tenant.",
            |t| t.completed,
        ),
        (
            "phigraph_serve_jobs_rejected",
            "Jobs rejected at admission, by tenant.",
            |t| t.rejected,
        ),
        (
            "phigraph_serve_jobs_cancelled",
            "Jobs cancelled mid-run, by tenant.",
            |t| t.cancelled,
        ),
        (
            "phigraph_serve_jobs_expired",
            "Jobs expired in queue, by tenant.",
            |t| t.expired,
        ),
        (
            "phigraph_serve_jobs_failed",
            "Jobs failed, by tenant.",
            |t| t.failed,
        ),
        (
            "phigraph_serve_jobs_shed",
            "Jobs bounced by the load-shedding ladder, by tenant.",
            |t| t.shed,
        ),
        (
            "phigraph_serve_jobs_breaker_rejected",
            "Jobs bounced by an open circuit breaker, by tenant.",
            |t| t.breaker,
        ),
        (
            "phigraph_serve_breaker_trips",
            "Circuit-breaker trips, by tenant.",
            |t| t.breaker_trips,
        ),
        (
            "phigraph_serve_jobs_degraded",
            "Jobs admitted in degraded mode, by tenant.",
            |t| t.degraded,
        ),
        (
            "phigraph_serve_jobs_requeued",
            "Jobs journalled back by a drain shutdown, by tenant.",
            |t| t.requeued,
        ),
        (
            "phigraph_serve_jobs_replayed",
            "Results re-emitted from the journal, by tenant.",
            |t| t.replayed,
        ),
        (
            "phigraph_serve_wait_us_total",
            "Total queue wait in microseconds, by tenant.",
            |t| t.wait_us,
        ),
        (
            "phigraph_serve_exec_us_total",
            "Total execution time in microseconds, by tenant.",
            |t| t.exec_us,
        ),
        (
            "phigraph_serve_supersteps_total",
            "Supersteps executed, by tenant.",
            |t| t.supersteps,
        ),
    ];
    for (name, help, get) in counters {
        prom_metric(&mut out, name, help, "counter");
        for (tenant, t) in &stats.tenants {
            out.push_str(&format!("{name}{{tenant={}}} {}\n", quote(tenant), get(t)));
        }
    }
    out
}

fn quote(s: &str) -> String {
    phigraph_trace::json::quote(s)
}

/// Append the serving histograms (`job_*`, `journal_append_us`,
/// `graph_swap_us`, `shed_level`) from a trace snapshot as Prometheus
/// histogram families.
pub fn append_job_hists(out: &mut String, snap: &phigraph_trace::TraceSnapshot) {
    for h in &snap.hists {
        if h.count == 0 || !is_serving_hist(h.name) {
            continue;
        }
        let name = format!("phigraph_serve_{}", h.name);
        prom_metric(out, &name, "Log2-bucketed serving latency.", "histogram");
        let mut cumulative = 0u64;
        for (upper, count) in h.nonzero() {
            cumulative += count;
            if upper == u64::MAX {
                continue; // folded into the +Inf bucket below
            }
            out.push_str(&format!("{name}_bucket{{le=\"{upper}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{name}_sum {}\n", h.sum));
        out.push_str(&format!("{name}_count {}\n", h.count));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_trace::json::Json;

    fn sample() -> ServeStats {
        let mut stats = ServeStats {
            queued: 2,
            running: 1,
            queue_cap: 64,
            workers: 4,
            shed_level: 2,
            epoch: 3,
            swaps: 2,
            ..ServeStats::default()
        };
        let mut a = TenantStats::new(4, 2);
        a.submitted = 10;
        a.completed = 7;
        a.rejected = 2;
        a.cancelled = 1;
        a.shed = 1;
        a.breaker_trips = 1;
        a.degraded = 3;
        a.replayed = 2;
        a.wait_us = 1234;
        a.max_wait_us = 500;
        a.exec_us = 9876;
        a.supersteps = 88;
        stats.tenants.insert("alpha".to_string(), a);
        stats
            .tenants
            .insert("beta".to_string(), TenantStats::new(1, 1));
        stats
    }

    #[test]
    fn report_json_parses_and_carries_the_tenant_table() {
        let doc = serve_report_json(&sample(), "cpu", 1.5);
        let j = Json::parse(&doc).unwrap();
        assert_eq!(
            j.get("schema").unwrap().as_str(),
            Some(phigraph_core::export::REPORT_SCHEMA)
        );
        let combined = j.get("combined").unwrap();
        assert_eq!(combined.get("app").unwrap().as_str(), Some("serve"));
        assert!(combined.get("steps").unwrap().as_arr().unwrap().is_empty());
        let serve = j.get("serve").unwrap();
        assert_eq!(serve.u64_or_0("completed"), 7);
        let tenants = serve.get("tenants").unwrap().as_arr().unwrap();
        assert_eq!(tenants.len(), 2);
        assert_eq!(tenants[0].get("tenant").unwrap().as_str(), Some("alpha"));
        assert_eq!(tenants[0].u64_or_0("completed"), 7);
        assert_eq!(tenants[0].u64_or_0("weight"), 4);
    }

    #[test]
    fn prometheus_has_per_tenant_series() {
        let text = serve_prometheus_text(&sample());
        assert!(text.contains("phigraph_serve_jobs_completed{tenant=\"alpha\"} 7\n"));
        assert!(text.contains("phigraph_serve_jobs_rejected{tenant=\"alpha\"} 2\n"));
        assert!(text.contains("phigraph_serve_jobs_completed{tenant=\"beta\"} 0\n"));
        assert!(text.contains("phigraph_serve_workers 4\n"));
        assert!(text.contains("phigraph_serve_shed_level 2\n"));
        assert!(text.contains("phigraph_serve_graph_epoch 3\n"));
        assert!(text.contains("phigraph_serve_graph_swaps 2\n"));
        assert!(text.contains("phigraph_serve_jobs_shed{tenant=\"alpha\"} 1\n"));
        assert!(text.contains("phigraph_serve_jobs_degraded{tenant=\"alpha\"} 3\n"));
        assert!(text.contains("phigraph_serve_jobs_replayed{tenant=\"alpha\"} 2\n"));
        // Every exposed family carries HELP/TYPE headers.
        assert_eq!(
            text.matches("# HELP ").count(),
            text.matches("# TYPE ").count()
        );
    }

    #[test]
    fn stats_line_is_one_parseable_line() {
        let line = sample().to_line();
        assert!(!line.contains('\n'));
        let j = Json::parse(&line).unwrap();
        assert_eq!(j.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(j.get("serve").unwrap().u64_or_0("running"), 1);
        // Without histogram snapshots the field is absent entirely.
        assert!(j.get("hists").is_none());
    }

    #[test]
    fn stats_line_carries_on_demand_hist_summaries() {
        use phigraph_trace::{Hist, HistKind};
        let wait = Hist::default();
        for _ in 0..100 {
            wait.record(12);
        }
        let engine_side = Hist::default(); // non-serving: filtered out
        engine_side.record(5);
        let hists = vec![
            wait.snapshot(HistKind::JobWaitUs),
            engine_side.snapshot(HistKind::FlushBatch),
            Hist::default().snapshot(HistKind::JobExecUs), // empty: skipped
        ];
        let line = sample().to_line_with_hists(&hists);
        assert!(!line.contains('\n'));
        let j = Json::parse(&line).unwrap();
        let arr = j.get("hists").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("name").unwrap().as_str(), Some("job_wait_us"));
        assert_eq!(arr[0].u64_or_0("count"), 100);
        assert_eq!(arr[0].u64_or_0("p50"), 15);
        assert!((arr[0].f64_or_0("mean") - 12.0).abs() < 1e-9);
    }
}
