//! Per-job causal events, the `--events-out` JSONL log, and the crash
//! flight recorder.
//!
//! Every admitted job gets a trace id at admission; the same id tags
//! the `admit` → `start` → `done` events the pool emits as the job
//! moves admission→queue→exec→journal→reply, and is echoed on the
//! response line (`"trace":"t42"`), so a client-visible result can be
//! joined back to its full causal trail with per-phase timing and the
//! graph epoch it executed against.
//!
//! Events flow into two places:
//!
//! - an optional JSONL file (`--events-out`), one event object per
//!   line, written through a buffered writer and flushed per event so
//!   `tail -f` sees jobs as they happen;
//! - an always-on bounded ring of the most recent
//!   [`FLIGHT_RING_CAP`] event lines — the *flight recorder* —
//!   persisted as `flight.json` on panic, SIGTERM, and chaos kill, so
//!   a dead daemon leaves a postmortem of its last moments.
//!
//! Cost discipline (PR 4): with no sink attached the pool pays
//! nothing; with a sink attached the hot-path gate is
//! [`EventSink::armed`] — one relaxed atomic load — before any string
//! is built.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use phigraph_trace::json::{quote, JsonBuf};

use crate::job::{one_line, JobResult, JobSpec};

/// How many recent event lines the flight recorder retains.
pub const FLIGHT_RING_CAP: usize = 256;

/// Schema tag on persisted flight-recorder files.
pub const FLIGHT_SCHEMA: &str = "phigraph-flight-v1";

const ARM_RING: u8 = 1;
const ARM_FILE: u8 = 2;

#[derive(Debug)]
struct SinkInner {
    /// Bitmask of `ARM_*`; `0` means every emit is a no-op. The one
    /// relaxed load of this field is the entire hot-path cost when off.
    armed: AtomicU8,
    /// Monotonic trace-id source (first id is 1; 0 means "untraced").
    seq: AtomicU64,
    /// Timestamp origin for the `t_ms` field on every event.
    origin: Instant,
    /// The flight ring: most recent event lines, oldest first.
    ring: Mutex<VecDeque<String>>,
    /// Events pushed out of the ring since the sink was created.
    dropped: AtomicU64,
    /// The `--events-out` JSONL writer, when configured.
    file: Mutex<Option<BufWriter<File>>>,
}

/// A cloneable handle to one daemon incarnation's event stream: the
/// JSONL event log plus the crash flight recorder. See the module docs.
#[derive(Clone, Debug)]
pub struct EventSink {
    inner: Arc<SinkInner>,
}

impl Default for EventSink {
    fn default() -> Self {
        EventSink::new()
    }
}

impl EventSink {
    /// A sink with the flight ring armed and no event-log file.
    pub fn new() -> Self {
        EventSink {
            inner: Arc::new(SinkInner {
                armed: AtomicU8::new(ARM_RING),
                seq: AtomicU64::new(0),
                origin: Instant::now(),
                ring: Mutex::new(VecDeque::with_capacity(FLIGHT_RING_CAP)),
                dropped: AtomicU64::new(0),
                file: Mutex::new(None),
            }),
        }
    }

    /// A sink that additionally appends one JSON object per event to
    /// the file at `path` (created or truncated).
    pub fn with_file(path: &str) -> std::io::Result<Self> {
        let sink = EventSink::new();
        let f = File::create(path)?;
        *sink.inner.file.lock().unwrap() = Some(BufWriter::new(f));
        sink.inner
            .armed
            .store(ARM_RING | ARM_FILE, Ordering::Relaxed);
        Ok(sink)
    }

    /// The hot-path gate: one relaxed atomic load. Callers skip all
    /// event construction when this is false.
    #[inline]
    pub fn armed(&self) -> bool {
        self.inner.armed.load(Ordering::Relaxed) != 0
    }

    /// A fresh trace id (≥ 1), assigned once per admission attempt.
    #[inline]
    pub fn next_trace_id(&self) -> u64 {
        self.inner.seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Milliseconds since the sink was created, for event timestamps.
    fn t_ms(&self) -> f64 {
        self.inner.origin.elapsed().as_micros() as f64 / 1000.0
    }

    fn push(&self, line: String) {
        let armed = self.inner.armed.load(Ordering::Relaxed);
        if armed & ARM_FILE != 0 {
            let mut guard = self.inner.file.lock().unwrap();
            let ok = match guard.as_mut() {
                Some(w) => writeln!(w, "{line}").and_then(|_| w.flush()).is_ok(),
                None => true,
            };
            if !ok {
                // A dead event log must not take the daemon with it:
                // drop the writer and keep only the flight ring armed.
                *guard = None;
                self.inner.armed.store(ARM_RING, Ordering::Relaxed);
            }
        }
        let mut ring = self.inner.ring.lock().unwrap();
        if ring.len() == FLIGHT_RING_CAP {
            ring.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(line);
    }

    fn base(&self, ev: &str, trace: u64, id: &str, tenant: &str) -> JsonBuf {
        let mut b = JsonBuf::obj();
        b.str("ev", ev);
        b.num("t_ms", (self.t_ms() * 1000.0).round() / 1000.0);
        if trace != 0 {
            b.str("trace", &format!("t{trace}"));
        }
        b.str("id", id);
        b.str("tenant", tenant);
        b
    }

    /// A job passed admission: it is journalled and queued.
    pub fn admit(&self, trace: u64, spec: &JobSpec, degraded: bool) {
        let mut b = self.base("admit", trace, &spec.id, &spec.tenant);
        b.str("app", spec.kind.app_name());
        if spec.replay {
            b.bool("replay", true);
        }
        if degraded {
            b.bool("degraded", true);
        }
        self.push(one_line(b.finish()));
    }

    /// A job was rejected at admission with the machine-readable `code`
    /// (`queue_full`, `shed`, `breaker_open`, `shutting_down`).
    pub fn reject(&self, trace: u64, id: &str, tenant: &str, code: &str) {
        let mut b = self.base("reject", trace, id, tenant);
        b.str("code", code);
        self.push(one_line(b.finish()));
    }

    /// A worker picked the job up after `wait_us` in the queue, bound
    /// to graph `epoch`.
    pub fn start(&self, trace: u64, spec: &JobSpec, wait_us: u64, epoch: u64) {
        let mut b = self.base("start", trace, &spec.id, &spec.tenant);
        b.str("app", spec.kind.app_name());
        b.int("wait_us", wait_us);
        b.int("epoch", epoch);
        self.push(one_line(b.finish()));
    }

    /// The job produced its result (any terminal or shutdown status).
    /// `journal_us` is the time spent appending the `done` record, the
    /// third leg of the per-phase breakdown after wait and exec.
    pub fn done(&self, r: &JobResult, journal_us: u64) {
        let mut b = self.base("done", r.trace, &r.id, &r.tenant);
        b.str("app", r.app);
        b.str("status", r.status.name());
        b.int("wait_us", r.wait_us);
        b.int("exec_us", r.exec_us);
        b.int("journal_us", journal_us);
        b.int("epoch", r.epoch);
        if r.replayed {
            b.bool("replayed", true);
        }
        self.push(one_line(b.finish()));
    }

    /// A daemon lifecycle event (graph swap, signal, recovery…): free
    /// text under a stable `what` tag.
    pub fn note(&self, what: &str, detail: &str) {
        let mut b = JsonBuf::obj();
        b.str("ev", "note");
        b.num("t_ms", (self.t_ms() * 1000.0).round() / 1000.0);
        b.str("what", what);
        if !detail.is_empty() {
            b.str("detail", detail);
        }
        self.push(one_line(b.finish()));
    }

    /// Copy of the flight ring, oldest event first.
    pub fn recent(&self) -> Vec<String> {
        self.inner.ring.lock().unwrap().iter().cloned().collect()
    }

    /// Flush the JSONL event log (no-op without one). The daemon calls
    /// this on exit paths that bypass destructors.
    pub fn flush(&self) {
        if let Some(w) = self.inner.file.lock().unwrap().as_mut() {
            let _ = w.flush();
        }
    }

    /// Persist the flight ring to `path` as one `flight.json` document:
    /// `{"schema":"phigraph-flight-v1","reason":…,"dropped":…,"events":[…]}`.
    /// Called from the panic hook, the SIGTERM path, and the chaos
    /// kill, so it also flushes the event log while it is at it.
    pub fn persist_flight(&self, path: &Path, reason: &str) -> std::io::Result<()> {
        self.flush();
        let events = self.recent();
        // Event lines are already serialized JSON objects; splice them
        // into the array verbatim rather than re-parsing.
        let mut doc = String::with_capacity(events.iter().map(|e| e.len() + 1).sum::<usize>() + 96);
        doc.push_str("{\"schema\":");
        doc.push_str(&quote(FLIGHT_SCHEMA));
        doc.push_str(",\"reason\":");
        doc.push_str(&quote(reason));
        doc.push_str(&format!(
            ",\"dropped\":{}",
            self.inner.dropped.load(Ordering::Relaxed)
        ));
        doc.push_str(",\"events\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str(e);
        }
        doc.push_str("]}");
        let mut f = File::create(path)?;
        f.write_all(doc.as_bytes())?;
        f.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobKind, JobStatus};
    use phigraph_core::engine::ExecMode;
    use phigraph_trace::json::Json;

    fn spec(id: &str) -> JobSpec {
        JobSpec {
            id: id.to_string(),
            tenant: "acme".to_string(),
            kind: JobKind::Wcc,
            mode: ExecMode::Sequential,
            deadline_ms: None,
            integrity: None,
            replay: false,
            conn: 0,
        }
    }

    fn result(id: &str, trace: u64) -> JobResult {
        JobResult {
            id: id.to_string(),
            tenant: "acme".to_string(),
            app: "wcc",
            status: JobStatus::Ok,
            checksum: 1,
            supersteps: 2,
            wait_us: 10,
            exec_us: 20,
            epoch: 1,
            integrity: phigraph_recover::IntegrityMode::Off,
            replayed: false,
            conn: 0,
            trace,
        }
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let sink = EventSink::new();
        let a = sink.next_trace_id();
        let b = sink.next_trace_id();
        assert!(a >= 1);
        assert_eq!(b, a + 1);
    }

    #[test]
    fn events_are_one_line_json_with_shared_trace() {
        let sink = EventSink::new();
        assert!(sink.armed());
        let t = sink.next_trace_id();
        sink.admit(t, &spec("q1"), false);
        sink.start(t, &spec("q1"), 15, 3);
        sink.done(&result("q1", t), 7);
        sink.reject(0, "q2", "acme", "queue_full");
        let lines = sink.recent();
        assert_eq!(lines.len(), 4);
        let want_ev = ["admit", "start", "done", "reject"];
        for (line, ev) in lines.iter().zip(want_ev) {
            assert!(!line.contains('\n'));
            let j = Json::parse(line).unwrap();
            assert_eq!(j.get("ev").unwrap().as_str(), Some(ev));
        }
        // admit/start/done all carry the same trace id.
        let tag = format!("t{t}");
        for line in &lines[..3] {
            let j = Json::parse(line).unwrap();
            assert_eq!(j.get("trace").unwrap().as_str(), Some(tag.as_str()));
        }
        let j = Json::parse(&lines[2]).unwrap();
        assert_eq!(j.u64_or_0("journal_us"), 7);
        assert_eq!(j.u64_or_0("epoch"), 1);
    }

    #[test]
    fn flight_ring_is_bounded_and_counts_drops() {
        let sink = EventSink::new();
        for i in 0..(FLIGHT_RING_CAP + 25) {
            sink.note("tick", &i.to_string());
        }
        let lines = sink.recent();
        assert_eq!(lines.len(), FLIGHT_RING_CAP);
        // Oldest events fell out; the newest survives at the back.
        let last = Json::parse(lines.last().unwrap()).unwrap();
        assert_eq!(
            last.get("detail").unwrap().as_str(),
            Some((FLIGHT_RING_CAP + 24).to_string().as_str())
        );
    }

    #[test]
    fn persisted_flight_parses_with_schema_reason_and_drops() {
        let dir = std::env::temp_dir().join(format!("phigraph-flight-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flight.json");
        let sink = EventSink::new();
        for i in 0..(FLIGHT_RING_CAP + 3) {
            sink.note("tick", &i.to_string());
        }
        sink.persist_flight(&path, "chaos-kill").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let j = Json::parse(&text).unwrap();
        assert_eq!(j.get("schema").unwrap().as_str(), Some(FLIGHT_SCHEMA));
        assert_eq!(j.get("reason").unwrap().as_str(), Some("chaos-kill"));
        assert_eq!(j.u64_or_0("dropped"), 3);
        assert_eq!(
            j.get("events").unwrap().as_arr().unwrap().len(),
            FLIGHT_RING_CAP
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn event_log_file_gets_one_json_line_per_event() {
        let dir = std::env::temp_dir().join(format!("phigraph-events-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let sink = EventSink::with_file(path.to_str().unwrap()).unwrap();
        let t = sink.next_trace_id();
        sink.admit(t, &spec("q1"), true);
        sink.done(&result("q1", t), 0);
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            Json::parse(lines[0]).unwrap().get("ev").unwrap().as_str(),
            Some("admit")
        );
        assert_eq!(
            Json::parse(lines[0])
                .unwrap()
                .get("degraded")
                .unwrap()
                .as_bool(),
            Some(true)
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
