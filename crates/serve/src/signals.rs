//! SIGTERM/SIGINT delivery as a file descriptor, with no libc
//! dependency: `rt_sigprocmask` + `signalfd4` through raw syscalls on
//! x86_64 Linux. On other targets [`SignalFd::install`] returns `None`
//! and the daemon falls back to EOF / `{"op":"shutdown"}` shutdown only.
//!
//! Call [`SignalFd::install`] **before spawning any threads**: the
//! signal mask is per-thread and inherited at spawn, so blocking the
//! signals first guarantees no worker ever takes the default (killing)
//! disposition.

/// A file descriptor that becomes readable when SIGTERM or SIGINT is
/// delivered to the process.
#[derive(Debug)]
pub struct SignalFd {
    #[cfg_attr(
        not(all(target_os = "linux", target_arch = "x86_64")),
        allow(dead_code)
    )]
    fd: i32,
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod imp {
    const SYS_READ: usize = 0;
    const SYS_CLOSE: usize = 3;
    const SYS_RT_SIGPROCMASK: usize = 14;
    const SYS_SIGNALFD4: usize = 289;

    const SIG_BLOCK: usize = 0;
    const SIGINT: u32 = 2;
    const SIGTERM: u32 = 15;
    /// `SFD_CLOEXEC` (== `O_CLOEXEC`).
    const SFD_CLOEXEC: usize = 0o2000000;
    /// Kernel sigset size in bytes.
    const SIGSET_BYTES: usize = 8;
    /// `sizeof(struct signalfd_siginfo)`.
    const SIGINFO_BYTES: usize = 128;

    #[inline]
    unsafe fn syscall4(n: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    fn term_mask() -> u64 {
        // Bit (signo - 1) in the kernel sigset.
        (1u64 << (SIGINT - 1)) | (1u64 << (SIGTERM - 1))
    }

    /// Block SIGTERM/SIGINT for the calling thread (and every thread it
    /// spawns afterwards) and open a signalfd over them.
    pub fn install() -> Option<i32> {
        let mask = term_mask();
        let rc = unsafe {
            syscall4(
                SYS_RT_SIGPROCMASK,
                SIG_BLOCK,
                &mask as *const u64 as usize,
                0,
                SIGSET_BYTES,
            )
        };
        if rc < 0 {
            return None;
        }
        let fd = unsafe {
            syscall4(
                SYS_SIGNALFD4,
                usize::MAX, // -1: create a new fd
                &mask as *const u64 as usize,
                SIGSET_BYTES,
                SFD_CLOEXEC,
            )
        };
        if fd < 0 {
            None
        } else {
            Some(fd as i32)
        }
    }

    /// Block until a masked signal arrives; return its number.
    pub fn read_signal(fd: i32) -> Option<u32> {
        let mut buf = [0u8; SIGINFO_BYTES];
        loop {
            let n = unsafe {
                syscall4(
                    SYS_READ,
                    fd as usize,
                    buf.as_mut_ptr() as usize,
                    SIGINFO_BYTES,
                    0,
                )
            };
            if n == SIGINFO_BYTES as isize {
                // First field of signalfd_siginfo is ssi_signo: u32.
                return Some(u32::from_ne_bytes([buf[0], buf[1], buf[2], buf[3]]));
            }
            const EINTR: isize = -4;
            if n != EINTR {
                return None;
            }
        }
    }

    pub fn close(fd: i32) {
        unsafe { syscall4(SYS_CLOSE, fd as usize, 0, 0, 0) };
    }
}

impl SignalFd {
    /// Block SIGTERM/SIGINT and open a descriptor that reports them.
    /// Returns `None` where signalfd is unavailable (non-x86_64-Linux)
    /// or the syscalls fail.
    pub fn install() -> Option<SignalFd> {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        {
            imp::install().map(|fd| SignalFd { fd })
        }
        #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
        {
            None
        }
    }

    /// Block until SIGTERM or SIGINT is delivered; returns the signal
    /// number (`None` on read error).
    pub fn wait(&self) -> Option<u32> {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        {
            imp::read_signal(self.fd)
        }
        #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
        {
            None
        }
    }
}

impl Drop for SignalFd {
    fn drop(&mut self) {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        imp::close(self.fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // `install` mutates the whole process's signal mask, so tests other
    // than this one must not depend on default SIGINT/SIGTERM handling.
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    #[test]
    fn installs_and_reports_a_raised_signal() {
        let sfd = match SignalFd::install() {
            Some(s) => s,
            None => return, // seccomp or similar: nothing to test
        };
        // Direct SIGTERM at *this* thread with tgkill: the signal must
        // land on a thread that blocks it (other test-runner threads
        // keep the default, killing, disposition).
        unsafe {
            let pid: isize;
            core::arch::asm!(
                "syscall",
                inlateout("rax") 39isize => pid, // getpid
                lateout("rcx") _, lateout("r11") _,
                options(nostack),
            );
            let tid: isize;
            core::arch::asm!(
                "syscall",
                inlateout("rax") 186isize => tid, // gettid
                lateout("rcx") _, lateout("r11") _,
                options(nostack),
            );
            let _rc: isize;
            core::arch::asm!(
                "syscall",
                inlateout("rax") 234isize => _rc, // tgkill
                in("rdi") pid,
                in("rsi") tid,
                in("rdx") 15isize, // SIGTERM
                lateout("rcx") _, lateout("r11") _,
                options(nostack),
            );
        }
        assert_eq!(sfd.wait(), Some(15));
    }
}
