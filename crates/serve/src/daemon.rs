//! The daemon frontends: line-delimited JSON over stdin (the default)
//! or a unix socket, journal recovery on startup, hot graph swap,
//! shared shutdown orchestration, and the final report/Prometheus file
//! writes.
//!
//! Life cycle:
//!
//! 1. Block SIGTERM/SIGINT and open a signalfd **before** any thread
//!    exists ([`crate::signals::SignalFd::install`]).
//! 2. Open the journal (when `--journal-dir` is set) and recover the
//!    previous incarnation: re-emit every completed result (tagged
//!    `"replayed":true`), compact the journal down to the incomplete
//!    admissions, and resubmit those for execution.
//! 3. Spawn the [`ServePool`] and a writer thread that turns
//!    [`JobResult`]s into response lines.
//! 4. Read request lines — bounded by [`MAX_LINE_BYTES`], with
//!    oversized and non-UTF-8 lines answered by typed error responses —
//!    until EOF / `{"op":"shutdown"}` or a termination signal.
//! 5. Shut down with the appropriate [`DrainMode`]: `finish` runs every
//!    admitted job, `drain` (or `--drain` at EOF) requeues queued jobs
//!    into the journal for the next incarnation, a signal aborts.
//!    Whoever triggers shutdown writes `run_report.json` (with the
//!    `"serve"` tenant breakdown) and the Prometheus text file, then
//!    the process exits cleanly with every thread joined.

use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use phigraph_graph::Csr;
use phigraph_trace::json::JsonBuf;
use phigraph_trace::HistKind;

use crate::events::EventSink;
use crate::job::{
    error_line, one_line, parse_request, peek_id, read_bounded_line, rejection_line, JobResult,
    LineRead, Request, MAX_LINE_BYTES,
};
use crate::journal::{Journal, Recovery};
use crate::metrics::{live_prometheus_text, MetricsHub, SAMPLE_EVERY_SECS};
use crate::pool::{AdmitError, DrainMode, ServeConfig, ServePool};
use crate::signals::SignalFd;
use crate::stats::{serve_report_json, ServeStats};

/// Loads a CSR for the `reload` op. The daemon core stays
/// format-agnostic: the CLI supplies whatever loader matches its graph
/// sources (binary files, generators, …).
pub type GraphLoader = Arc<dyn Fn(&str) -> Result<Csr, String> + Send + Sync>;

/// Daemon options on top of the pool configuration.
#[derive(Clone, Default)]
pub struct DaemonConfig {
    /// Unix-socket path; `None` serves stdin/stdout.
    pub socket: Option<String>,
    /// Where to write the final run report (`None`: skip).
    pub report_out: Option<String>,
    /// Where to write the final Prometheus text (`None`: skip).
    pub prom_out: Option<String>,
    /// Tenants to configure up front: `(name, weight, cap)`.
    pub tenants: Vec<(String, u64, usize)>,
    /// Device label for the report.
    pub device_label: String,
    /// Directory for the crash-recovery job journal (`None`: off).
    pub journal_dir: Option<String>,
    /// `--drain`: at EOF / `{"op":"shutdown"}` without a mode, requeue
    /// still-queued jobs into the journal instead of running them.
    pub drain_on_exit: bool,
    /// Graph loader for the `reload` op (`None`: reload unsupported).
    pub loader: Option<GraphLoader>,
    /// Unix-socket path answering one full Prometheus scrape per
    /// connection (`--metrics-sock`; `None`: off).
    pub metrics_sock: Option<String>,
    /// Write a Prometheus snapshot file every this many seconds
    /// (`--metrics-every`; the file is `prom_out`, or
    /// `serve_metrics.prom` when `prom_out` is unset).
    pub metrics_every: Option<u64>,
    /// JSONL per-job event log path (`--events-out`; `None`: ring only).
    pub events_out: Option<String>,
}

impl std::fmt::Debug for DaemonConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DaemonConfig")
            .field("socket", &self.socket)
            .field("report_out", &self.report_out)
            .field("prom_out", &self.prom_out)
            .field("tenants", &self.tenants)
            .field("device_label", &self.device_label)
            .field("journal_dir", &self.journal_dir)
            .field("drain_on_exit", &self.drain_on_exit)
            .field("loader", &self.loader.as_ref().map(|_| "<fn>"))
            .field("metrics_sock", &self.metrics_sock)
            .field("metrics_every", &self.metrics_every)
            .field("events_out", &self.events_out)
            .finish()
    }
}

struct Core {
    pool: Mutex<Option<ServePool>>,
    cfg: ServeConfig,
    dcfg: DaemonConfig,
    started: Instant,
    /// Set when shutdown came from a signal: the writer thread exits the
    /// process once the last result is flushed, because the main thread
    /// is still parked in a blocking read.
    exit_when_drained: AtomicBool,
    /// Drain mode picked by an explicit `{"op":"shutdown"}` line.
    requested_mode: Mutex<Option<DrainMode>>,
    final_stats: Mutex<Option<ServeStats>>,
    /// Sliding-window metric samples backing live scrapes.
    hub: MetricsHub,
    /// Per-job event sink: flight-recorder ring plus optional JSONL log.
    events: EventSink,
}

impl Core {
    /// Current stats: live from the pool, or the final snapshot once the
    /// pool is gone.
    fn live_stats(&self) -> ServeStats {
        match self.pool.lock().unwrap().as_ref() {
            Some(pool) => pool.stats(),
            None => self.final_stats.lock().unwrap().clone().unwrap_or_default(),
        }
    }

    /// Take one hub sample right now so windows are current at scrape
    /// time (the background sampler only runs at 1 Hz).
    fn sample_now(&self) -> ServeStats {
        let stats = self.live_stats();
        let hists = match &self.cfg.trace {
            Some(trace) => trace.snapshot().hists,
            None => Vec::new(),
        };
        self.hub.sample(stats.clone(), hists);
        stats
    }

    /// Full live Prometheus exposition: cumulative counters, on-demand
    /// histogram snapshots, and the sliding-window gauge families.
    fn scrape_prom(&self) -> String {
        let stats = self.sample_now();
        let snap = self.cfg.trace.as_ref().map(|t| t.snapshot());
        live_prometheus_text(&stats, snap.as_ref(), Some(&self.hub))
    }

    /// Where the flight recorder persists on panic/SIGTERM (`None` when
    /// the daemon runs without a journal directory).
    fn flight_path(dcfg: &DaemonConfig) -> Option<PathBuf> {
        dcfg.journal_dir
            .as_ref()
            .map(|d| Path::new(d).join("flight.json"))
    }

    /// The drain mode an EOF should use: `--drain` requeues, the
    /// default finishes everything admitted.
    fn eof_mode(&self) -> DrainMode {
        if self.dcfg.drain_on_exit {
            DrainMode::Requeue
        } else {
            DrainMode::Finish
        }
    }

    /// The mode a protocol shutdown asked for, falling back to the EOF
    /// default.
    fn take_requested_mode(&self) -> DrainMode {
        self.requested_mode
            .lock()
            .unwrap()
            .take()
            .unwrap_or_else(|| self.eof_mode())
    }

    /// Shut the pool down (at most once). Returns whether this call did
    /// the work.
    fn finish(&self, mode: DrainMode) -> bool {
        let taken = self.pool.lock().unwrap().take();
        match taken {
            Some(mut p) => {
                // Join the workers but keep the results channel open:
                // the final stats must be stored before the writer
                // thread sees disconnection, because the writer is what
                // turns them into run_report.json / the Prometheus file.
                p.shutdown_workers_mode(mode);
                *self.final_stats.lock().unwrap() = Some(p.stats());
                drop(p); // now the channel closes and the writer finishes
                true
            }
            None => false,
        }
    }

    fn write_reports(&self) {
        // Every exit path runs through here: make sure the event log is
        // durable and no stale metrics socket file survives the daemon.
        self.events.flush();
        if let Some(sock) = &self.dcfg.metrics_sock {
            let _ = std::fs::remove_file(sock);
        }
        let stats = match self.final_stats.lock().unwrap().clone() {
            Some(s) => s,
            None => return,
        };
        let wall = self.started.elapsed().as_secs_f64();
        if let Some(path) = &self.dcfg.report_out {
            let doc = serve_report_json(&stats, &self.dcfg.device_label, wall);
            if let Err(e) = std::fs::write(path, doc) {
                eprintln!("serve: write {path}: {e}");
            }
        }
        if let Some(path) = &self.dcfg.prom_out {
            let snap = self.cfg.trace.as_ref().map(|t| t.snapshot());
            let text = live_prometheus_text(&stats, snap.as_ref(), Some(&self.hub));
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("serve: write {path}: {e}");
            }
        }
    }

    /// Swap in the graph at `path` (the `reload` op). The load and
    /// validation run outside every pool lock; only the final Arc swap
    /// synchronizes with workers.
    fn handle_reload(&self, path: &str, out: &dyn Fn(&str)) {
        let Some(loader) = &self.dcfg.loader else {
            out(&error_line(
                "",
                "reload_unsupported",
                "daemon was started without a graph loader",
            ));
            return;
        };
        let loaded = loader(path);
        match loaded {
            Err(e) => out(&error_line("", "graph_load", &e)),
            Ok(csr) => match self.pool.lock().unwrap().as_ref() {
                None => out(&error_line(
                    "",
                    "reload_unsupported",
                    "daemon is shutting down",
                )),
                Some(pool) => {
                    let t0 = Instant::now();
                    let (epoch, v, e) = pool.reload(csr);
                    if let Some(trace) = &self.cfg.trace {
                        trace.record_hist(HistKind::GraphSwapUs, t0.elapsed().as_micros() as u64);
                    }
                    out(&format!(
                        "{{\"op\":\"reload\",\"status\":\"ok\",\"epoch\":{epoch},\"vertices\":{v},\"edges\":{e}}}"
                    ));
                }
            },
        }
    }

    /// Handle one request line; responses go through `out`. Returns
    /// `true` when the line asked for shutdown (the mode is stored for
    /// [`Core::take_requested_mode`]).
    fn handle_line(&self, line: &str, conn: u64, out: &dyn Fn(&str)) -> bool {
        let line = line.trim();
        if line.is_empty() {
            return false;
        }
        match parse_request(line, self.cfg.mode, conn) {
            Err(e) => out(&error_line(&peek_id(line), "bad_request", &e)),
            Ok(Request::Job(spec)) => {
                let guard = self.pool.lock().unwrap();
                match guard.as_ref() {
                    None => out(&rejection_line(
                        &spec.id,
                        &spec.tenant,
                        AdmitError::Closed.code(),
                        AdmitError::Closed.retry_after_ms(),
                    )),
                    Some(pool) => match pool.submit(spec.clone()) {
                        Ok(()) => {}
                        Err(e) => out(&rejection_line(
                            &spec.id,
                            &spec.tenant,
                            e.code(),
                            e.retry_after_ms(),
                        )),
                    },
                }
            }
            Ok(Request::Tenant {
                tenant,
                weight,
                cap,
            }) => {
                if let Some(pool) = self.pool.lock().unwrap().as_ref() {
                    pool.set_tenant(&tenant, weight, cap);
                }
                out(&format!(
                    "{{\"op\":\"tenant\",\"tenant\":{},\"status\":\"ok\"}}",
                    phigraph_trace::json::quote(&tenant)
                ));
            }
            Ok(Request::Stats { prom }) => {
                if prom {
                    // Full Prometheus exposition as one JSON-escaped
                    // protocol line, scrapeable mid-traffic.
                    let text = self.scrape_prom();
                    let mut b = JsonBuf::obj();
                    b.str("op", "stats");
                    b.str("format", "prom");
                    b.str("status", "ok");
                    b.str("text", &text);
                    out(&one_line(b.finish()));
                } else {
                    let stats = self.live_stats();
                    let hists = match &self.cfg.trace {
                        Some(trace) => trace.snapshot().hists,
                        None => Vec::new(),
                    };
                    out(&stats.to_line_with_hists(&hists));
                }
            }
            Ok(Request::Reload { path }) => self.handle_reload(&path, out),
            Ok(Request::Shutdown { requeue }) => {
                let mode = if requeue {
                    DrainMode::Requeue
                } else {
                    DrainMode::Finish
                };
                *self.requested_mode.lock().unwrap() = Some(mode);
                out(&format!(
                    "{{\"op\":\"shutdown\",\"mode\":\"{}\",\"status\":\"ok\"}}",
                    if requeue { "drain" } else { "finish" }
                ));
                return true;
            }
        }
        false
    }
}

fn stdout_line(line: &str) {
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "{line}");
    let _ = out.flush();
}

/// Re-emit what the journal recovered and resubmit the incomplete jobs.
/// Completed results go to stdout — the connections that asked for them
/// died with the previous incarnation. Called before the frontends
/// start, so replay output precedes any new traffic's.
fn replay_recovery(pool: &ServePool, journal: &Journal, recovery: Recovery) {
    if recovery.dropped > 0 {
        eprintln!(
            "serve: journal: dropped {} torn/corrupt trailing line(s)",
            recovery.dropped
        );
    }
    for r in &recovery.completed {
        pool.note_replayed(&r.tenant);
        stdout_line(&r.to_line());
    }
    // Compact only after the completed results are back out: until
    // then their `done` records must survive a second crash.
    if let Err(e) = journal.compact(&recovery.incomplete) {
        eprintln!("serve: journal compact: {e}");
    }
    for spec in recovery.incomplete {
        // The pool is freshly spawned, but replaying more incomplete
        // jobs than the queue holds still needs a bounded retry.
        let mut tries = 0;
        loop {
            match pool.submit(spec.clone()) {
                Ok(()) => break,
                Err(e) if e == AdmitError::Closed || tries >= 200 => {
                    // Still journalled as incomplete: the next
                    // incarnation gets another chance.
                    stdout_line(&rejection_line(
                        &spec.id,
                        &spec.tenant,
                        e.code(),
                        e.retry_after_ms(),
                    ));
                    break;
                }
                Err(e) => {
                    tries += 1;
                    std::thread::sleep(Duration::from_millis(e.retry_after_ms().clamp(1, 10)));
                }
            }
        }
    }
}

/// Run the daemon over `graph` until EOF, a shutdown request, or a
/// termination signal. Blocks the calling thread.
pub fn run_daemon(graph: Arc<Csr>, cfg: ServeConfig, dcfg: DaemonConfig) -> Result<(), String> {
    // Must precede every thread spawn so the mask is inherited.
    let sfd = SignalFd::install();

    let mut cfg = cfg;
    // Always-on flight ring; the JSONL file only with `--events-out`.
    let events = match &dcfg.events_out {
        Some(path) => EventSink::with_file(path).map_err(|e| format!("events-out {path}: {e}"))?,
        None => EventSink::new(),
    };
    cfg.events = Some(events.clone());
    let mut recovered = None;
    if let Some(dir) = &dcfg.journal_dir {
        let (journal, recovery) = Journal::open(Path::new(dir), cfg.mode)?;
        let journal = Arc::new(journal);
        cfg.journal = Some(Arc::clone(&journal));
        recovered = Some((journal, recovery));
    }

    let (pool, rx) = ServePool::new(graph, cfg.clone());
    for (name, weight, cap) in &dcfg.tenants {
        pool.set_tenant(name, *weight, *cap);
    }
    if let Some((journal, recovery)) = recovered {
        replay_recovery(&pool, &journal, recovery);
    }
    let core = Arc::new(Core {
        pool: Mutex::new(Some(pool)),
        cfg,
        dcfg: dcfg.clone(),
        started: Instant::now(),
        exit_when_drained: AtomicBool::new(false),
        requested_mode: Mutex::new(None),
        final_stats: Mutex::new(None),
        hub: MetricsHub::new(),
        events,
    });

    let flight = Core::flight_path(&dcfg);
    if let Some(path) = flight.clone() {
        // Chain onto the existing hook so a panicking daemon still
        // prints its backtrace *after* the postmortem is on disk.
        let sink = core.events.clone();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let _ = sink.persist_flight(&path, "panic");
            prev(info);
        }));
    }

    if let Some(sfd) = sfd {
        let core = Arc::clone(&core);
        let flight = flight.clone();
        std::thread::Builder::new()
            .name("serve-signals".to_string())
            .spawn(move || {
                if sfd.wait().is_some() {
                    // Persist the flight recorder first: `finish` joins
                    // workers, and anything after it races process exit.
                    if let Some(path) = &flight {
                        let _ = core.events.persist_flight(path, "sigterm");
                    }
                    // Forced shutdown: the main thread is blocked in a
                    // read, so the writer thread exits the process once
                    // the cancellation results are flushed.
                    core.exit_when_drained.store(true, Ordering::Release);
                    if core.finish(DrainMode::Abort) {
                        eprintln!("serve: termination signal: cancelling and exiting");
                    }
                }
            })
            .map_err(|e| format!("spawn signal thread: {e}"))?;
    }

    spawn_sampler(Arc::clone(&core))?;
    if let Some(path) = dcfg.metrics_sock.clone() {
        spawn_metrics_sock(Arc::clone(&core), &path)?;
    }
    if let Some(secs) = dcfg.metrics_every {
        spawn_metrics_ticker(Arc::clone(&core), secs)?;
    }

    match dcfg.socket.clone() {
        None => run_stdin(core, rx),
        Some(path) => run_socket(core, rx, &path),
    }
}

/// Background 1 Hz hub sampler. Exits once the pool is gone; checks in
/// 100 ms steps so shutdown never waits a full sample period.
fn spawn_sampler(core: Arc<Core>) -> Result<(), String> {
    std::thread::Builder::new()
        .name("serve-metrics".to_string())
        .spawn(move || loop {
            for _ in 0..(SAMPLE_EVERY_SECS * 10) {
                std::thread::sleep(Duration::from_millis(100));
                if core.pool.lock().unwrap().is_none() {
                    return;
                }
            }
            core.sample_now();
        })
        .map(|_| ())
        .map_err(|e| format!("spawn metrics sampler: {e}"))
}

/// Listener answering one full Prometheus scrape per connection, then
/// closing. Detached: it dies with the process, and `write_reports`
/// removes the socket file on every exit path.
fn spawn_metrics_sock(core: Arc<Core>, path: &str) -> Result<(), String> {
    use std::os::unix::net::UnixListener;
    let _ = std::fs::remove_file(path);
    let listener =
        UnixListener::bind(path).map_err(|e| format!("bind metrics sock {path}: {e}"))?;
    std::thread::Builder::new()
        .name("serve-metrics-sock".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut s) = stream else { continue };
                let text = core.scrape_prom();
                let _ = s.write_all(text.as_bytes());
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        })
        .map(|_| ())
        .map_err(|e| format!("spawn metrics sock thread: {e}"))
}

/// Periodic Prometheus snapshot files (`--metrics-every`), written
/// atomically via tmp+rename next to the final `prom_out` (or to
/// `serve_metrics.prom` when no `prom_out` is configured).
fn spawn_metrics_ticker(core: Arc<Core>, secs: u64) -> Result<(), String> {
    let out: PathBuf = core
        .dcfg
        .prom_out
        .as_deref()
        .unwrap_or("serve_metrics.prom")
        .into();
    let secs = secs.max(1);
    std::thread::Builder::new()
        .name("serve-metrics-tick".to_string())
        .spawn(move || loop {
            for _ in 0..(secs * 10) {
                std::thread::sleep(Duration::from_millis(100));
                if core.pool.lock().unwrap().is_none() {
                    return;
                }
            }
            let text = core.scrape_prom();
            let tmp = out.with_extension("prom.tmp");
            if std::fs::write(&tmp, text).is_ok() {
                let _ = std::fs::rename(&tmp, &out);
            }
        })
        .map(|_| ())
        .map_err(|e| format!("spawn metrics ticker: {e}"))
}

fn spawn_writer(
    core: Arc<Core>,
    rx: Receiver<JobResult>,
    route: impl Fn(&JobResult) + Send + 'static,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("serve-writer".to_string())
        .spawn(move || {
            for r in rx {
                route(&r);
            }
            // Channel disconnected: the pool is down and every result is
            // out. Reports are written here so they exist on every exit
            // path, including signal-forced ones.
            core.write_reports();
            if core.exit_when_drained.load(Ordering::Acquire) {
                std::process::exit(0);
            }
        })
        .expect("spawn serve writer")
}

/// Read protocol lines from `reader` until EOF or a shutdown request,
/// answering oversized and non-UTF-8 lines with typed errors instead of
/// dropping the stream.
fn serve_lines(
    core: &Core,
    reader: &mut impl BufRead,
    conn: u64,
    out: &dyn Fn(&str),
) -> std::io::Result<bool> {
    loop {
        match read_bounded_line(reader)? {
            LineRead::Eof => return Ok(false),
            LineRead::TooLong => out(&error_line(
                "",
                "oversized_line",
                &format!("request line exceeds {MAX_LINE_BYTES} bytes"),
            )),
            LineRead::BadUtf8 => out(&error_line(
                "",
                "bad_utf8",
                "request line is not valid UTF-8",
            )),
            LineRead::Line(line) => {
                if core.handle_line(&line, conn, out) {
                    return Ok(true);
                }
            }
        }
    }
}

fn run_stdin(core: Arc<Core>, rx: Receiver<JobResult>) -> Result<(), String> {
    let writer = spawn_writer(Arc::clone(&core), rx, |r| stdout_line(&r.to_line()));
    let stdin = std::io::stdin();
    let mut reader = stdin.lock();
    serve_lines(&core, &mut reader, 0, &stdout_line).map_err(|e| format!("stdin: {e}"))?;
    // EOF or an explicit shutdown op: honour the requested (or the
    // configured EOF) drain mode, then leave.
    let mode = core.take_requested_mode();
    core.finish(mode);
    let _ = writer.join();
    Ok(())
}

fn run_socket(core: Arc<Core>, rx: Receiver<JobResult>, path: &str) -> Result<(), String> {
    use std::collections::HashMap;
    use std::os::unix::net::{UnixListener, UnixStream};

    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path).map_err(|e| format!("bind {path}: {e}"))?;
    eprintln!("serve: listening on {path}");

    type Conns = Arc<Mutex<HashMap<u64, Arc<Mutex<UnixStream>>>>>;
    let conns: Conns = Arc::new(Mutex::new(HashMap::new()));

    let writer = {
        let conns = Arc::clone(&conns);
        spawn_writer(Arc::clone(&core), rx, move |r| {
            let target = conns.lock().unwrap().get(&r.conn).cloned();
            match target {
                Some(stream) => {
                    let mut s = stream.lock().unwrap();
                    let _ = writeln!(s, "{}", r.to_line());
                    let _ = s.flush();
                }
                None => stdout_line(&r.to_line()),
            }
        })
    };

    // When a connection asks for shutdown we still need to fall out of
    // the blocking accept loop; connecting to ourselves unblocks it.
    let stop = Arc::new(AtomicBool::new(false));
    let mut next_conn: u64 = 1;
    let mut readers = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let conn = next_conn;
        next_conn += 1;
        let write_half = Arc::new(Mutex::new(
            stream
                .try_clone()
                .map_err(|e| format!("clone stream: {e}"))?,
        ));
        conns.lock().unwrap().insert(conn, Arc::clone(&write_half));
        let core = Arc::clone(&core);
        let conns = Arc::clone(&conns);
        let stop = Arc::clone(&stop);
        let sock_path = path.to_string();
        readers.push(
            std::thread::Builder::new()
                .name(format!("serve-conn{conn}"))
                .spawn(move || {
                    let mut reader = std::io::BufReader::new(stream);
                    let out = |line: &str| {
                        let mut s = write_half.lock().unwrap();
                        let _ = writeln!(s, "{line}");
                        let _ = s.flush();
                    };
                    if serve_lines(&core, &mut reader, conn, &out).unwrap_or(false) {
                        stop.store(true, Ordering::Release);
                        // Poke the accept loop awake.
                        let _ = UnixStream::connect(&sock_path);
                    }
                    conns.lock().unwrap().remove(&conn);
                })
                .map_err(|e| format!("spawn conn thread: {e}"))?,
        );
    }
    let mode = core.take_requested_mode();
    core.finish(mode);
    for h in readers {
        let _ = h.join();
    }
    let _ = writer.join();
    let _ = std::fs::remove_file(path);
    Ok(())
}
