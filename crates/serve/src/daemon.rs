//! The daemon frontends: line-delimited JSON over stdin (the default)
//! or a unix socket, shared shutdown orchestration, and the final
//! report/Prometheus file writes.
//!
//! Life cycle:
//!
//! 1. Block SIGTERM/SIGINT and open a signalfd **before** any thread
//!    exists ([`crate::signals::SignalFd::install`]).
//! 2. Spawn the [`ServePool`] and a writer thread that turns
//!    [`JobResult`]s into response lines.
//! 3. Read request lines until EOF / `{"op":"shutdown"}` (graceful
//!    drain) or a termination signal (forced: running jobs cancelled
//!    with the `shutdown` reason, queued jobs reported cancelled).
//! 4. Whoever triggers shutdown writes `run_report.json` (with the
//!    `"serve"` tenant breakdown) and the Prometheus text file, then the
//!    process exits cleanly with every thread joined.

use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use phigraph_graph::Csr;

use crate::job::{error_line, parse_request, peek_id, rejection_line, JobResult, Request};
use crate::pool::{AdmitError, ServeConfig, ServePool};
use crate::signals::SignalFd;
use crate::stats::{serve_prometheus_text, serve_report_json, ServeStats};

/// Daemon options on top of the pool configuration.
#[derive(Clone, Debug, Default)]
pub struct DaemonConfig {
    /// Unix-socket path; `None` serves stdin/stdout.
    pub socket: Option<String>,
    /// Where to write the final run report (`None`: skip).
    pub report_out: Option<String>,
    /// Where to write the final Prometheus text (`None`: skip).
    pub prom_out: Option<String>,
    /// Tenants to configure up front: `(name, weight, cap)`.
    pub tenants: Vec<(String, u64, usize)>,
    /// Device label for the report.
    pub device_label: String,
}

struct Core {
    pool: Mutex<Option<ServePool>>,
    cfg: ServeConfig,
    dcfg: DaemonConfig,
    started: Instant,
    /// Set when shutdown came from a signal: the writer thread exits the
    /// process once the last result is flushed, because the main thread
    /// is still parked in a blocking read.
    exit_when_drained: AtomicBool,
    final_stats: Mutex<Option<ServeStats>>,
}

impl Core {
    /// Shut the pool down (at most once). Returns whether this call did
    /// the work.
    fn finish(&self, drain: bool) -> bool {
        let taken = self.pool.lock().unwrap().take();
        match taken {
            Some(mut p) => {
                // Join the workers but keep the results channel open:
                // the final stats must be stored before the writer
                // thread sees disconnection, because the writer is what
                // turns them into run_report.json / the Prometheus file.
                p.shutdown_workers(drain);
                *self.final_stats.lock().unwrap() = Some(p.stats());
                drop(p); // now the channel closes and the writer finishes
                true
            }
            None => false,
        }
    }

    fn write_reports(&self) {
        let stats = match self.final_stats.lock().unwrap().clone() {
            Some(s) => s,
            None => return,
        };
        let wall = self.started.elapsed().as_secs_f64();
        if let Some(path) = &self.dcfg.report_out {
            let doc = serve_report_json(&stats, &self.dcfg.device_label, wall);
            if let Err(e) = std::fs::write(path, doc) {
                eprintln!("serve: write {path}: {e}");
            }
        }
        if let Some(path) = &self.dcfg.prom_out {
            let mut text = serve_prometheus_text(&stats);
            if let Some(trace) = &self.cfg.trace {
                crate::stats::append_job_hists(&mut text, &trace.snapshot());
            }
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("serve: write {path}: {e}");
            }
        }
    }

    /// Handle one request line; responses go through `out`. Returns
    /// `true` when the line asked for shutdown.
    fn handle_line(&self, line: &str, conn: u64, out: &dyn Fn(&str)) -> bool {
        let line = line.trim();
        if line.is_empty() {
            return false;
        }
        match parse_request(line, self.cfg.mode, conn) {
            Err(e) => out(&error_line(&peek_id(line), &e)),
            Ok(Request::Job(spec)) => {
                let guard = self.pool.lock().unwrap();
                match guard.as_ref() {
                    None => out(&error_line(&spec.id, "daemon is shutting down")),
                    Some(pool) => match pool.submit(spec.clone()) {
                        Ok(()) => {}
                        Err(AdmitError::QueueFull { retry_after_ms }) => {
                            out(&rejection_line(&spec.id, &spec.tenant, retry_after_ms))
                        }
                        Err(AdmitError::Closed) => {
                            out(&error_line(&spec.id, "daemon is shutting down"))
                        }
                    },
                }
            }
            Ok(Request::Tenant {
                tenant,
                weight,
                cap,
            }) => {
                if let Some(pool) = self.pool.lock().unwrap().as_ref() {
                    pool.set_tenant(&tenant, weight, cap);
                }
                out(&format!(
                    "{{\"op\":\"tenant\",\"tenant\":{},\"status\":\"ok\"}}",
                    phigraph_trace::json::quote(&tenant)
                ));
            }
            Ok(Request::Stats) => {
                let snap = match self.pool.lock().unwrap().as_ref() {
                    Some(pool) => pool.stats(),
                    None => self.final_stats.lock().unwrap().clone().unwrap_or_default(),
                };
                out(&snap.to_line());
            }
            Ok(Request::Shutdown) => {
                out("{\"op\":\"shutdown\",\"status\":\"ok\"}");
                return true;
            }
        }
        false
    }
}

fn stdout_line(line: &str) {
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "{line}");
    let _ = out.flush();
}

/// Run the daemon over `graph` until EOF, a shutdown request, or a
/// termination signal. Blocks the calling thread.
pub fn run_daemon(graph: Arc<Csr>, cfg: ServeConfig, dcfg: DaemonConfig) -> Result<(), String> {
    // Must precede every thread spawn so the mask is inherited.
    let sfd = SignalFd::install();

    let (pool, rx) = ServePool::new(graph, cfg.clone());
    for (name, weight, cap) in &dcfg.tenants {
        pool.set_tenant(name, *weight, *cap);
    }
    let core = Arc::new(Core {
        pool: Mutex::new(Some(pool)),
        cfg,
        dcfg: dcfg.clone(),
        started: Instant::now(),
        exit_when_drained: AtomicBool::new(false),
        final_stats: Mutex::new(None),
    });

    if let Some(sfd) = sfd {
        let core = Arc::clone(&core);
        std::thread::Builder::new()
            .name("serve-signals".to_string())
            .spawn(move || {
                if sfd.wait().is_some() {
                    // Forced shutdown: the main thread is blocked in a
                    // read, so the writer thread exits the process once
                    // the cancellation results are flushed.
                    core.exit_when_drained.store(true, Ordering::Release);
                    if core.finish(false) {
                        eprintln!("serve: termination signal: cancelling and exiting");
                    }
                }
            })
            .map_err(|e| format!("spawn signal thread: {e}"))?;
    }

    match dcfg.socket.clone() {
        None => run_stdin(core, rx),
        Some(path) => run_socket(core, rx, &path),
    }
}

fn spawn_writer(
    core: Arc<Core>,
    rx: Receiver<JobResult>,
    route: impl Fn(&JobResult) + Send + 'static,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("serve-writer".to_string())
        .spawn(move || {
            for r in rx {
                route(&r);
            }
            // Channel disconnected: the pool is down and every result is
            // out. Reports are written here so they exist on every exit
            // path, including signal-forced ones.
            core.write_reports();
            if core.exit_when_drained.load(Ordering::Acquire) {
                std::process::exit(0);
            }
        })
        .expect("spawn serve writer")
}

fn run_stdin(core: Arc<Core>, rx: Receiver<JobResult>) -> Result<(), String> {
    let writer = spawn_writer(Arc::clone(&core), rx, |r| stdout_line(&r.to_line()));
    let stdin = std::io::stdin();
    let mut requested_shutdown = false;
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        if core.handle_line(&line, 0, &stdout_line) {
            requested_shutdown = true;
            break;
        }
    }
    // EOF or an explicit shutdown op: drain admitted jobs, then leave.
    let _ = requested_shutdown;
    core.finish(true);
    let _ = writer.join();
    Ok(())
}

fn run_socket(core: Arc<Core>, rx: Receiver<JobResult>, path: &str) -> Result<(), String> {
    use std::collections::HashMap;
    use std::os::unix::net::{UnixListener, UnixStream};

    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path).map_err(|e| format!("bind {path}: {e}"))?;
    eprintln!("serve: listening on {path}");

    type Conns = Arc<Mutex<HashMap<u64, Arc<Mutex<UnixStream>>>>>;
    let conns: Conns = Arc::new(Mutex::new(HashMap::new()));

    let writer = {
        let conns = Arc::clone(&conns);
        spawn_writer(Arc::clone(&core), rx, move |r| {
            let target = conns.lock().unwrap().get(&r.conn).cloned();
            match target {
                Some(stream) => {
                    let mut s = stream.lock().unwrap();
                    let _ = writeln!(s, "{}", r.to_line());
                    let _ = s.flush();
                }
                None => stdout_line(&r.to_line()),
            }
        })
    };

    // When a connection asks for shutdown we still need to fall out of
    // the blocking accept loop; connecting to ourselves unblocks it.
    let stop = Arc::new(AtomicBool::new(false));
    let mut next_conn: u64 = 1;
    let mut readers = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let conn = next_conn;
        next_conn += 1;
        let write_half = Arc::new(Mutex::new(
            stream
                .try_clone()
                .map_err(|e| format!("clone stream: {e}"))?,
        ));
        conns.lock().unwrap().insert(conn, Arc::clone(&write_half));
        let core = Arc::clone(&core);
        let conns = Arc::clone(&conns);
        let stop = Arc::clone(&stop);
        let sock_path = path.to_string();
        readers.push(
            std::thread::Builder::new()
                .name(format!("serve-conn{conn}"))
                .spawn(move || {
                    let reader = std::io::BufReader::new(stream);
                    let out = |line: &str| {
                        let mut s = write_half.lock().unwrap();
                        let _ = writeln!(s, "{line}");
                        let _ = s.flush();
                    };
                    for line in reader.lines() {
                        let Ok(line) = line else { break };
                        if core.handle_line(&line, conn, &out) {
                            stop.store(true, Ordering::Release);
                            // Poke the accept loop awake.
                            let _ = UnixStream::connect(&sock_path);
                            break;
                        }
                    }
                    conns.lock().unwrap().remove(&conn);
                })
                .map_err(|e| format!("spawn conn thread: {e}"))?,
        );
    }
    core.finish(true);
    for h in readers {
        let _ = h.join();
    }
    let _ = writer.join();
    let _ = std::fs::remove_file(path);
    Ok(())
}
