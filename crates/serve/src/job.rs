//! The serving protocol: job descriptions, results, and the
//! line-delimited JSON codec both the stdin and unix-socket frontends
//! speak.
//!
//! One request per line, one response per line. A request is an object
//! whose `op` field selects the verb (`job` is the default when the field
//! is absent, so the common case stays short):
//!
//! ```text
//! {"op":"job","id":"q1","tenant":"a","app":"sssp","sources":[0,7]}
//! {"op":"job","id":"q2","app":"bfs","source":3,"integrity":"frames"}
//! {"op":"tenant","tenant":"a","weight":4,"cap":2}
//! {"op":"stats"}
//! {"op":"stats","format":"prom"}
//! {"op":"reload","path":"graphs/fresh.bin"}
//! {"op":"shutdown"}
//! {"op":"shutdown","mode":"drain"}
//! ```
//!
//! Responses echo the job `id` and report a `status` of `ok`,
//! `rejected` (with a machine-readable `code` and `retry_after_ms`),
//! `cancelled` (with the
//! [`CancelReason`](phigraph_device::CancelReason) name), `expired`,
//! `requeued` (journalled for the next daemon incarnation), or `error`
//! (always with a `code`). Checksums are emitted as `"0x…"` hex strings
//! because JSON numbers cannot carry 64 bits faithfully.

use std::io::BufRead;

use phigraph_core::engine::ExecMode;
use phigraph_graph::VertexId;
use phigraph_recover::IntegrityMode;
use phigraph_trace::json::{Json, JsonBuf};

/// What a job computes. Each variant maps onto one vertex program from
/// `phigraph-apps`; SSSP takes a landmark batch so one admission covers a
/// whole distance-oracle refresh.
#[derive(Clone, Debug, PartialEq)]
pub enum JobKind {
    /// Global PageRank.
    PageRank {
        /// Damping factor.
        damping: f32,
        /// Fixed iteration count.
        iterations: usize,
    },
    /// Personalized PageRank from one teleport source.
    Ppr {
        /// Teleport target.
        source: VertexId,
        /// Damping factor.
        damping: f32,
        /// Fixed iteration count.
        iterations: usize,
    },
    /// Breadth-first levels from one root.
    Bfs {
        /// Traversal root.
        source: VertexId,
    },
    /// Batched landmark SSSP: one run per source, executed back to back
    /// inside the job's slot.
    Sssp {
        /// Landmark sources (at least one).
        sources: Vec<VertexId>,
    },
    /// Weakly connected components.
    Wcc,
}

impl JobKind {
    /// The app name used in responses and per-tenant metrics.
    pub fn app_name(&self) -> &'static str {
        match self {
            JobKind::PageRank { .. } => "pagerank",
            JobKind::Ppr { .. } => "ppr",
            JobKind::Bfs { .. } => "bfs",
            JobKind::Sssp { .. } => "sssp",
            JobKind::Wcc => "wcc",
        }
    }
}

/// One admitted unit of work.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Caller-chosen id, echoed in the response.
    pub id: String,
    /// Tenant the job is billed to (scheduling weight / cap / stats key).
    pub tenant: String,
    /// What to compute.
    pub kind: JobKind,
    /// Engine mode for this job's private `EngineConfig`.
    pub mode: ExecMode,
    /// Per-job deadline in milliseconds from admission (`None` = the
    /// pool default).
    pub deadline_ms: Option<u64>,
    /// Per-job integrity override (`None` = the pool default); the
    /// effective level is clamped by the pool's `integrity_max` and may
    /// be degraded to `Off` under load shedding.
    pub integrity: Option<IntegrityMode>,
    /// True when this spec was resubmitted from the journal after a
    /// restart; the result line is tagged `"replayed":true`.
    pub replay: bool,
    /// Frontend connection tag, so the socket frontend can route the
    /// response back. `0` for stdin.
    pub conn: u64,
}

/// A request line, decoded.
#[derive(Clone, Debug)]
pub enum Request {
    /// Run a job.
    Job(JobSpec),
    /// Set a tenant's scheduling weight and concurrency cap.
    Tenant {
        /// Tenant name.
        tenant: String,
        /// Stride-scheduling weight (≥ 1).
        weight: u64,
        /// Max jobs of this tenant running at once (≥ 1).
        cap: usize,
    },
    /// Ask for the current [`ServeStats`](crate::stats::ServeStats).
    Stats {
        /// `"format":"prom"`: answer with one JSON line whose `text`
        /// field carries the full Prometheus exposition — counters,
        /// live histogram snapshots, and sliding-window gauges — taken
        /// on demand, mid-traffic. The default (`"json"` or absent)
        /// answers with the compact stats object.
        prom: bool,
    },
    /// Hot graph swap: load and validate the CSR at `path`, then swap
    /// the shared graph at a job boundary.
    Reload {
        /// Graph file to load.
        path: String,
    },
    /// Graceful shutdown. `requeue = false` finishes every admitted job
    /// first; `requeue = true` (`"mode":"drain"`) finishes only the
    /// *running* jobs and leaves the queued remainder journalled for
    /// the next daemon incarnation.
    Shutdown {
        /// Requeue queued jobs into the journal instead of running them.
        requeue: bool,
    },
}

/// Why a job finished the way it did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Ran to completion.
    Ok,
    /// Cancelled mid-run; the string is the
    /// [`CancelReason`](phigraph_device::CancelReason) name
    /// (`deadline` / `shutdown` / `cancelled`).
    Cancelled(&'static str),
    /// Expired in the queue before any worker picked it up.
    Expired,
    /// Failed with an error message.
    Error(String),
    /// Still queued at a `--drain` shutdown: journalled as incomplete,
    /// to be replayed by the next daemon incarnation.
    Requeued,
}

impl JobStatus {
    /// Protocol status string.
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Ok => "ok",
            JobStatus::Cancelled(_) => "cancelled",
            JobStatus::Expired => "expired",
            JobStatus::Error(_) => "error",
            JobStatus::Requeued => "requeued",
        }
    }

    /// True when the job left the system for good: the journal records
    /// a `done` entry and no replay will ever re-run it. `Requeued` and
    /// shutdown-cancellations are *not* terminal — those jobs belong to
    /// the next incarnation.
    pub fn is_terminal(&self) -> bool {
        match self {
            JobStatus::Ok | JobStatus::Expired | JobStatus::Error(_) => true,
            JobStatus::Cancelled(reason) => *reason != "shutdown",
            JobStatus::Requeued => false,
        }
    }
}

/// The outcome of one job, sent back over the results channel.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Echoed job id.
    pub id: String,
    /// Echoed tenant.
    pub tenant: String,
    /// App name.
    pub app: &'static str,
    /// Outcome.
    pub status: JobStatus,
    /// FNV-1a checksum of the final vertex values (folded across the
    /// batch for multi-source SSSP); `0` unless `status` is `Ok`.
    pub checksum: u64,
    /// Supersteps executed (summed across a batch).
    pub supersteps: u64,
    /// Time spent queued before pickup, µs.
    pub wait_us: u64,
    /// Execution time on the worker, µs.
    pub exec_us: u64,
    /// Graph epoch the job executed against (`0` for jobs that never
    /// reached a worker).
    pub epoch: u64,
    /// Integrity level actually applied (after the `integrity_max`
    /// clamp and any shed-ladder degradation).
    pub integrity: IntegrityMode,
    /// True when this result was re-emitted from the journal after a
    /// restart (the client may see it twice; all copies are identical).
    pub replayed: bool,
    /// Frontend connection tag (copied from the spec).
    pub conn: u64,
    /// Per-job trace id assigned at admission (`0` = no event sink was
    /// attached, e.g. journal replays from an older incarnation). The
    /// same id tags every event this job emitted into the JSONL event
    /// log and the flight recorder, so a response line can be joined
    /// back to its admission→queue→exec→journal causal trail.
    pub trace: u64,
}

/// Collapse a pretty-printed [`JsonBuf`] document onto one line.
/// Newlines in the output are always formatting (string values escape
/// theirs), so stripping them and the indent that follows is safe.
pub(crate) fn one_line(doc: String) -> String {
    doc.split('\n').map(str::trim_start).collect()
}

impl JobResult {
    /// Encode as one response line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut b = JsonBuf::obj();
        b.str("id", &self.id);
        b.str("tenant", &self.tenant);
        b.str("app", self.app);
        b.str("status", self.status.name());
        match &self.status {
            JobStatus::Ok => {
                b.str("checksum", &format!("{:#018x}", self.checksum));
                b.int("supersteps", self.supersteps);
                b.str("integrity", self.integrity.name());
            }
            JobStatus::Cancelled(reason) => b.str("reason", reason),
            JobStatus::Expired | JobStatus::Requeued => {}
            JobStatus::Error(msg) => b.str("error", msg),
        }
        b.int("wait_us", self.wait_us);
        b.int("exec_us", self.exec_us);
        b.int("epoch", self.epoch);
        if self.replayed {
            b.bool("replayed", true);
        }
        if self.trace != 0 {
            b.str("trace", &format!("t{}", self.trace));
        }
        one_line(b.finish())
    }
}

/// Encode a rejection response for a job that never got admitted.
/// `code` is the machine-readable reason (`queue_full`, `shed`,
/// `breaker_open`, `shutting_down`); `retry_after_ms` is always set.
pub fn rejection_line(id: &str, tenant: &str, code: &str, retry_after_ms: u64) -> String {
    let mut b = JsonBuf::obj();
    b.str("id", id);
    b.str("tenant", tenant);
    b.str("status", "rejected");
    b.str("code", code);
    b.int("retry_after_ms", retry_after_ms);
    one_line(b.finish())
}

/// Encode an error response for a request that could not be served.
/// `code` is the machine-readable class (`bad_request`,
/// `oversized_line`, `bad_utf8`, `graph_load`, `reload_unsupported`).
pub fn error_line(id: &str, code: &str, msg: &str) -> String {
    let mut b = JsonBuf::obj();
    if !id.is_empty() {
        b.str("id", id);
    }
    b.str("status", "error");
    b.str("code", code);
    b.str("error", msg);
    one_line(b.finish())
}

fn parse_mode(name: &str) -> Result<ExecMode, String> {
    Ok(match name {
        "lock" => ExecMode::Locking,
        "pipe" => ExecMode::Pipelined,
        "omp" => ExecMode::Flat,
        "seq" => ExecMode::Sequential,
        other => return Err(format!("unknown engine {other:?}")),
    })
}

fn mode_name(mode: ExecMode) -> &'static str {
    match mode {
        ExecMode::Locking => "lock",
        ExecMode::Pipelined => "pipe",
        ExecMode::Flat => "omp",
        ExecMode::Sequential => "seq",
    }
}

fn source_of(j: &Json) -> Result<VertexId, String> {
    j.get("source")
        .and_then(|v| v.as_u64())
        .map(|v| v as VertexId)
        .ok_or_else(|| "missing source".to_string())
}

fn kind_of(j: &Json) -> Result<JobKind, String> {
    let app = j
        .get("app")
        .and_then(|v| v.as_str())
        .ok_or_else(|| "missing app".to_string())?;
    Ok(match app {
        "pagerank" => JobKind::PageRank {
            damping: j.get("damping").and_then(|v| v.as_f64()).unwrap_or(0.85) as f32,
            iterations: j.get("iters").and_then(|v| v.as_u64()).unwrap_or(20) as usize,
        },
        "ppr" => JobKind::Ppr {
            source: source_of(j)?,
            damping: j.get("damping").and_then(|v| v.as_f64()).unwrap_or(0.85) as f32,
            iterations: j.get("iters").and_then(|v| v.as_u64()).unwrap_or(20) as usize,
        },
        "bfs" => JobKind::Bfs {
            source: source_of(j)?,
        },
        "sssp" => {
            let sources: Vec<VertexId> = match j.get("sources").and_then(|v| v.as_arr()) {
                Some(arr) => arr
                    .iter()
                    .map(|v| {
                        v.as_u64()
                            .map(|s| s as VertexId)
                            .ok_or_else(|| "non-integer entry in sources".to_string())
                    })
                    .collect::<Result<_, _>>()?,
                None => vec![source_of(j)?],
            };
            if sources.is_empty() {
                return Err("sssp needs at least one source".to_string());
            }
            JobKind::Sssp { sources }
        }
        "wcc" => JobKind::Wcc,
        other => return Err(format!("unknown app {other:?}")),
    })
}

/// Decode one request line. `default_mode` fills in the engine when the
/// line does not pick one; `conn` tags the spec for response routing.
pub fn parse_request(line: &str, default_mode: ExecMode, conn: u64) -> Result<Request, String> {
    let j = Json::parse(line)?;
    let op = j.get("op").and_then(|v| v.as_str()).unwrap_or("job");
    match op {
        "job" => {
            let id = j
                .get("id")
                .and_then(|v| v.as_str())
                .ok_or_else(|| "missing id".to_string())?
                .to_string();
            let tenant = j
                .get("tenant")
                .and_then(|v| v.as_str())
                .unwrap_or("default")
                .to_string();
            let mode = match j.get("engine").and_then(|v| v.as_str()) {
                Some(name) => parse_mode(name)?,
                None => default_mode,
            };
            let integrity = match j.get("integrity").and_then(|v| v.as_str()) {
                Some(name) => Some(name.parse::<IntegrityMode>()?),
                None => None,
            };
            Ok(Request::Job(JobSpec {
                id,
                tenant,
                kind: kind_of(&j)?,
                mode,
                deadline_ms: j.get("deadline_ms").and_then(|v| v.as_u64()),
                integrity,
                replay: false,
                conn,
            }))
        }
        "tenant" => Ok(Request::Tenant {
            tenant: j
                .get("tenant")
                .and_then(|v| v.as_str())
                .ok_or_else(|| "missing tenant".to_string())?
                .to_string(),
            weight: j.get("weight").and_then(|v| v.as_u64()).unwrap_or(1).max(1),
            cap: j.get("cap").and_then(|v| v.as_u64()).unwrap_or(1).max(1) as usize,
        }),
        "stats" => match j.get("format").and_then(|v| v.as_str()) {
            None | Some("json") => Ok(Request::Stats { prom: false }),
            Some("prom") => Ok(Request::Stats { prom: true }),
            Some(other) => Err(format!("unknown stats format {other:?}")),
        },
        "reload" => Ok(Request::Reload {
            path: j
                .get("path")
                .and_then(|v| v.as_str())
                .ok_or_else(|| "missing path".to_string())?
                .to_string(),
        }),
        "shutdown" => match j.get("mode").and_then(|v| v.as_str()) {
            None | Some("finish") => Ok(Request::Shutdown { requeue: false }),
            Some("drain") => Ok(Request::Shutdown { requeue: true }),
            Some(other) => Err(format!("unknown shutdown mode {other:?}")),
        },
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Re-encode a [`JobSpec`] as the protocol request line that produces
/// it. The journal stores admitted jobs in exactly this form, so replay
/// goes back through [`parse_request`] — one codec, no second format.
/// Engine, deadline, and integrity are always written explicitly: the
/// replaying daemon may run with different defaults.
pub fn job_request_line(spec: &JobSpec) -> String {
    let mut b = JsonBuf::obj();
    b.str("op", "job");
    b.str("id", &spec.id);
    b.str("tenant", &spec.tenant);
    match &spec.kind {
        JobKind::PageRank {
            damping,
            iterations,
        } => {
            b.str("app", "pagerank");
            b.num("damping", f64::from(*damping));
            b.int("iters", *iterations as u64);
        }
        JobKind::Ppr {
            source,
            damping,
            iterations,
        } => {
            b.str("app", "ppr");
            b.int("source", *source as u64);
            b.num("damping", f64::from(*damping));
            b.int("iters", *iterations as u64);
        }
        JobKind::Bfs { source } => {
            b.str("app", "bfs");
            b.int("source", *source as u64);
        }
        JobKind::Sssp { sources } => {
            b.str("app", "sssp");
            b.begin_arr("sources");
            for &s in sources {
                b.elem_num(s as f64);
            }
            b.end();
        }
        JobKind::Wcc => b.str("app", "wcc"),
    }
    b.str("engine", mode_name(spec.mode));
    if let Some(ms) = spec.deadline_ms {
        b.int("deadline_ms", ms);
    }
    if let Some(m) = spec.integrity {
        b.str("integrity", m.name());
    }
    one_line(b.finish())
}

/// Longest request line either frontend accepts, in bytes. Long enough
/// for a many-thousand-landmark SSSP batch, short enough that one
/// misbehaving client cannot balloon the daemon's memory.
pub const MAX_LINE_BYTES: usize = 256 * 1024;

/// One read from [`read_bounded_line`].
#[derive(Debug, PartialEq, Eq)]
pub enum LineRead {
    /// A complete line (terminator stripped).
    Line(String),
    /// The line exceeded [`MAX_LINE_BYTES`]; the reader skipped to its
    /// newline, so the stream stays parseable.
    TooLong,
    /// The line held invalid UTF-8; consumed through its newline.
    BadUtf8,
    /// End of stream.
    Eof,
}

/// Read one protocol line with a hard length bound. Unlike
/// `BufRead::lines`, oversized or non-UTF-8 input yields a typed value
/// the caller can answer with an error response instead of silently
/// dropping the connection.
pub fn read_bounded_line(r: &mut impl BufRead) -> std::io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    {
        let mut limited = std::io::Read::take(&mut *r, MAX_LINE_BYTES as u64 + 1);
        limited.read_until(b'\n', &mut buf)?;
    }
    if buf.is_empty() {
        return Ok(LineRead::Eof);
    }
    let newline = buf.last() == Some(&b'\n');
    if newline {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
    }
    if buf.len() > MAX_LINE_BYTES {
        // Oversized: discard the remainder of the line so the next read
        // starts on a fresh one.
        loop {
            let chunk = r.fill_buf()?;
            if chunk.is_empty() {
                break;
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    r.consume(i + 1);
                    break;
                }
                None => {
                    let len = chunk.len();
                    r.consume(len);
                }
            }
        }
        return Ok(LineRead::TooLong);
    }
    match String::from_utf8(buf) {
        Ok(s) => Ok(LineRead::Line(s)),
        Err(_) => Ok(LineRead::BadUtf8),
    }
}

/// Best-effort id extraction from a line that may not parse fully, so
/// error responses can still be correlated.
pub fn peek_id(line: &str) -> String {
    Json::parse(line)
        .ok()
        .and_then(|j| j.get("id").and_then(|v| v.as_str()).map(String::from))
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_job_line() {
        let r = parse_request(
            r#"{"id":"q1","tenant":"a","app":"bfs","source":3}"#,
            ExecMode::Locking,
            7,
        )
        .unwrap();
        match r {
            Request::Job(spec) => {
                assert_eq!(spec.id, "q1");
                assert_eq!(spec.tenant, "a");
                assert_eq!(spec.kind, JobKind::Bfs { source: 3 });
                assert_eq!(spec.mode, ExecMode::Locking);
                assert_eq!(spec.deadline_ms, None);
                assert_eq!(spec.conn, 7);
            }
            other => panic!("expected job, got {other:?}"),
        }
    }

    #[test]
    fn parses_batched_sssp_and_engine_override() {
        let r = parse_request(
            r#"{"op":"job","id":"q2","app":"sssp","sources":[0,5,9],"engine":"pipe","deadline_ms":250}"#,
            ExecMode::Locking,
            0,
        )
        .unwrap();
        match r {
            Request::Job(spec) => {
                assert_eq!(
                    spec.kind,
                    JobKind::Sssp {
                        sources: vec![0, 5, 9]
                    }
                );
                assert_eq!(spec.tenant, "default");
                assert_eq!(spec.mode, ExecMode::Pipelined);
                assert_eq!(spec.deadline_ms, Some(250));
            }
            other => panic!("expected job, got {other:?}"),
        }
    }

    #[test]
    fn parses_control_ops() {
        match parse_request(
            r#"{"op":"tenant","tenant":"b","weight":4,"cap":2}"#,
            ExecMode::Locking,
            0,
        )
        .unwrap()
        {
            Request::Tenant {
                tenant,
                weight,
                cap,
            } => {
                assert_eq!(tenant, "b");
                assert_eq!(weight, 4);
                assert_eq!(cap, 2);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_request(r#"{"op":"stats"}"#, ExecMode::Locking, 0).unwrap(),
            Request::Stats { prom: false }
        ));
        assert!(matches!(
            parse_request(r#"{"op":"stats","format":"json"}"#, ExecMode::Locking, 0).unwrap(),
            Request::Stats { prom: false }
        ));
        assert!(matches!(
            parse_request(r#"{"op":"stats","format":"prom"}"#, ExecMode::Locking, 0).unwrap(),
            Request::Stats { prom: true }
        ));
        assert!(parse_request(r#"{"op":"stats","format":"xml"}"#, ExecMode::Locking, 0).is_err());
        assert!(matches!(
            parse_request(r#"{"op":"shutdown"}"#, ExecMode::Locking, 0).unwrap(),
            Request::Shutdown { requeue: false }
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown","mode":"drain"}"#, ExecMode::Locking, 0).unwrap(),
            Request::Shutdown { requeue: true }
        ));
        assert!(parse_request(r#"{"op":"shutdown","mode":"hard"}"#, ExecMode::Locking, 0).is_err());
        match parse_request(r#"{"op":"reload","path":"g2.bin"}"#, ExecMode::Locking, 0).unwrap() {
            Request::Reload { path } => assert_eq!(path, "g2.bin"),
            other => panic!("{other:?}"),
        }
        assert!(parse_request(r#"{"op":"reload"}"#, ExecMode::Locking, 0).is_err());
    }

    #[test]
    fn parses_per_job_integrity() {
        match parse_request(
            r#"{"id":"q","app":"wcc","integrity":"frames"}"#,
            ExecMode::Locking,
            0,
        )
        .unwrap()
        {
            Request::Job(spec) => assert_eq!(spec.integrity, Some(IntegrityMode::Frames)),
            other => panic!("{other:?}"),
        }
        assert!(parse_request(
            r#"{"id":"q","app":"wcc","integrity":"paranoid"}"#,
            ExecMode::Locking,
            0
        )
        .is_err());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_request("not json", ExecMode::Locking, 0).is_err());
        assert!(parse_request(r#"{"id":"x","app":"nope"}"#, ExecMode::Locking, 0).is_err());
        assert!(parse_request(r#"{"app":"bfs","source":1}"#, ExecMode::Locking, 0).is_err());
        assert!(parse_request(
            r#"{"id":"x","app":"sssp","sources":[]}"#,
            ExecMode::Locking,
            0
        )
        .is_err());
        assert!(parse_request(
            r#"{"id":"x","app":"bfs","source":1,"engine":"gpu"}"#,
            ExecMode::Locking,
            0
        )
        .is_err());
    }

    #[test]
    fn result_lines_round_trip_through_the_parser() {
        let ok = JobResult {
            id: "q9".into(),
            tenant: "a".into(),
            app: "sssp",
            status: JobStatus::Ok,
            checksum: 0xdead_beef_0102_0304,
            supersteps: 12,
            wait_us: 40,
            exec_us: 900,
            epoch: 3,
            integrity: IntegrityMode::Frames,
            replayed: false,
            conn: 0,
            trace: 0,
        };
        let line = ok.to_line();
        assert!(!line.contains('\n'), "response must be one line: {line:?}");
        let j = Json::parse(&line).unwrap();
        assert_eq!(j.get("status").unwrap().as_str(), Some("ok"));
        // trace 0 means "no sink": the field is omitted entirely.
        assert!(j.get("trace").is_none());
        assert_eq!(
            j.get("checksum").unwrap().as_str(),
            Some("0xdeadbeef01020304")
        );
        assert_eq!(j.u64_or_0("supersteps"), 12);
        assert_eq!(j.u64_or_0("epoch"), 3);
        assert_eq!(j.get("integrity").unwrap().as_str(), Some("frames"));
        assert!(j.get("replayed").is_none());

        let j = Json::parse(&rejection_line("q1", "a", "queue_full", 15)).unwrap();
        assert_eq!(j.get("status").unwrap().as_str(), Some("rejected"));
        assert_eq!(j.get("code").unwrap().as_str(), Some("queue_full"));
        assert_eq!(j.u64_or_0("retry_after_ms"), 15);

        let j = Json::parse(&error_line("", "bad_request", "nope")).unwrap();
        assert_eq!(j.get("code").unwrap().as_str(), Some("bad_request"));

        let cancelled = JobResult {
            status: JobStatus::Cancelled("deadline"),
            ..ok.clone()
        };
        let j = Json::parse(&cancelled.to_line()).unwrap();
        assert_eq!(j.get("reason").unwrap().as_str(), Some("deadline"));

        let traced = JobResult {
            trace: 42,
            ..ok.clone()
        };
        let j = Json::parse(&traced.to_line()).unwrap();
        assert_eq!(j.get("trace").unwrap().as_str(), Some("t42"));

        let replayed = JobResult {
            replayed: true,
            ..ok
        };
        let j = Json::parse(&replayed.to_line()).unwrap();
        assert_eq!(j.get("replayed").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn terminal_statuses_are_exactly_the_non_replayable_ones() {
        assert!(JobStatus::Ok.is_terminal());
        assert!(JobStatus::Expired.is_terminal());
        assert!(JobStatus::Error("x".into()).is_terminal());
        assert!(JobStatus::Cancelled("deadline").is_terminal());
        assert!(!JobStatus::Cancelled("shutdown").is_terminal());
        assert!(!JobStatus::Requeued.is_terminal());
    }

    #[test]
    fn job_request_lines_round_trip_through_the_parser() {
        let kinds = [
            JobKind::PageRank {
                damping: 0.85,
                iterations: 20,
            },
            JobKind::Ppr {
                source: 7,
                damping: 0.5,
                iterations: 8,
            },
            JobKind::Bfs { source: 3 },
            JobKind::Sssp {
                sources: vec![0, 5, 9],
            },
            JobKind::Wcc,
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            let spec = JobSpec {
                id: format!("j{i}"),
                tenant: "acme".to_string(),
                kind,
                mode: ExecMode::Pipelined,
                deadline_ms: Some(250),
                integrity: Some(IntegrityMode::Full),
                replay: false,
                conn: 0,
            };
            let line = job_request_line(&spec);
            assert!(!line.contains('\n'), "{line:?}");
            // Different defaults on the replaying side must not matter:
            // the serialized line pins engine and integrity explicitly.
            match parse_request(&line, ExecMode::Sequential, 9).unwrap() {
                Request::Job(back) => {
                    assert_eq!(back.id, spec.id);
                    assert_eq!(back.tenant, spec.tenant);
                    assert_eq!(back.kind, spec.kind);
                    assert_eq!(back.mode, spec.mode);
                    assert_eq!(back.deadline_ms, spec.deadline_ms);
                    assert_eq!(back.integrity, spec.integrity);
                    assert_eq!(back.conn, 9);
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn bounded_reader_types_oversized_and_bad_utf8_lines() {
        use std::io::Cursor;
        let mut big = vec![b'x'; MAX_LINE_BYTES + 10];
        big.push(b'\n');
        big.extend_from_slice(b"after\n");
        big.extend_from_slice(&[0xff, 0xfe, b'\n']);
        big.extend_from_slice(b"tail");
        let mut r = Cursor::new(big);
        assert_eq!(read_bounded_line(&mut r).unwrap(), LineRead::TooLong);
        assert_eq!(
            read_bounded_line(&mut r).unwrap(),
            LineRead::Line("after".to_string())
        );
        assert_eq!(read_bounded_line(&mut r).unwrap(), LineRead::BadUtf8);
        // Final line without a trailing newline still arrives.
        assert_eq!(
            read_bounded_line(&mut r).unwrap(),
            LineRead::Line("tail".to_string())
        );
        assert_eq!(read_bounded_line(&mut r).unwrap(), LineRead::Eof);

        // A line of exactly MAX_LINE_BYTES is accepted.
        let mut exact = vec![b'y'; MAX_LINE_BYTES];
        exact.push(b'\n');
        let mut r = Cursor::new(exact);
        match read_bounded_line(&mut r).unwrap() {
            LineRead::Line(s) => assert_eq!(s.len(), MAX_LINE_BYTES),
            other => panic!("{other:?}"),
        }
    }
}
