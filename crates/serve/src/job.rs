//! The serving protocol: job descriptions, results, and the
//! line-delimited JSON codec both the stdin and unix-socket frontends
//! speak.
//!
//! One request per line, one response per line. A request is an object
//! whose `op` field selects the verb (`job` is the default when the field
//! is absent, so the common case stays short):
//!
//! ```text
//! {"op":"job","id":"q1","tenant":"a","app":"sssp","sources":[0,7]}
//! {"op":"tenant","tenant":"a","weight":4,"cap":2}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses echo the job `id` and report a `status` of `ok`,
//! `rejected` (with `retry_after_ms`), `cancelled` (with the
//! [`CancelReason`](phigraph_device::CancelReason) name), `expired`, or
//! `error`. Checksums are emitted as `"0x…"` hex strings because JSON
//! numbers cannot carry 64 bits faithfully.

use phigraph_core::engine::ExecMode;
use phigraph_graph::VertexId;
use phigraph_trace::json::{Json, JsonBuf};

/// What a job computes. Each variant maps onto one vertex program from
/// `phigraph-apps`; SSSP takes a landmark batch so one admission covers a
/// whole distance-oracle refresh.
#[derive(Clone, Debug, PartialEq)]
pub enum JobKind {
    /// Global PageRank.
    PageRank {
        /// Damping factor.
        damping: f32,
        /// Fixed iteration count.
        iterations: usize,
    },
    /// Personalized PageRank from one teleport source.
    Ppr {
        /// Teleport target.
        source: VertexId,
        /// Damping factor.
        damping: f32,
        /// Fixed iteration count.
        iterations: usize,
    },
    /// Breadth-first levels from one root.
    Bfs {
        /// Traversal root.
        source: VertexId,
    },
    /// Batched landmark SSSP: one run per source, executed back to back
    /// inside the job's slot.
    Sssp {
        /// Landmark sources (at least one).
        sources: Vec<VertexId>,
    },
    /// Weakly connected components.
    Wcc,
}

impl JobKind {
    /// The app name used in responses and per-tenant metrics.
    pub fn app_name(&self) -> &'static str {
        match self {
            JobKind::PageRank { .. } => "pagerank",
            JobKind::Ppr { .. } => "ppr",
            JobKind::Bfs { .. } => "bfs",
            JobKind::Sssp { .. } => "sssp",
            JobKind::Wcc => "wcc",
        }
    }
}

/// One admitted unit of work.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Caller-chosen id, echoed in the response.
    pub id: String,
    /// Tenant the job is billed to (scheduling weight / cap / stats key).
    pub tenant: String,
    /// What to compute.
    pub kind: JobKind,
    /// Engine mode for this job's private `EngineConfig`.
    pub mode: ExecMode,
    /// Per-job deadline in milliseconds from admission (`None` = the
    /// pool default).
    pub deadline_ms: Option<u64>,
    /// Frontend connection tag, so the socket frontend can route the
    /// response back. `0` for stdin.
    pub conn: u64,
}

/// A request line, decoded.
#[derive(Clone, Debug)]
pub enum Request {
    /// Run a job.
    Job(JobSpec),
    /// Set a tenant's scheduling weight and concurrency cap.
    Tenant {
        /// Tenant name.
        tenant: String,
        /// Stride-scheduling weight (≥ 1).
        weight: u64,
        /// Max jobs of this tenant running at once (≥ 1).
        cap: usize,
    },
    /// Ask for the current [`ServeStats`](crate::stats::ServeStats).
    Stats,
    /// Graceful shutdown: drain admitted jobs, then exit.
    Shutdown,
}

/// Why a job finished the way it did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Ran to completion.
    Ok,
    /// Cancelled mid-run; the string is the
    /// [`CancelReason`](phigraph_device::CancelReason) name
    /// (`deadline` / `shutdown` / `cancelled`).
    Cancelled(&'static str),
    /// Expired in the queue before any worker picked it up.
    Expired,
    /// Failed with an error message.
    Error(String),
}

impl JobStatus {
    /// Protocol status string.
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Ok => "ok",
            JobStatus::Cancelled(_) => "cancelled",
            JobStatus::Expired => "expired",
            JobStatus::Error(_) => "error",
        }
    }
}

/// The outcome of one job, sent back over the results channel.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Echoed job id.
    pub id: String,
    /// Echoed tenant.
    pub tenant: String,
    /// App name.
    pub app: &'static str,
    /// Outcome.
    pub status: JobStatus,
    /// FNV-1a checksum of the final vertex values (folded across the
    /// batch for multi-source SSSP); `0` unless `status` is `Ok`.
    pub checksum: u64,
    /// Supersteps executed (summed across a batch).
    pub supersteps: u64,
    /// Time spent queued before pickup, µs.
    pub wait_us: u64,
    /// Execution time on the worker, µs.
    pub exec_us: u64,
    /// Frontend connection tag (copied from the spec).
    pub conn: u64,
}

/// Collapse a pretty-printed [`JsonBuf`] document onto one line.
/// Newlines in the output are always formatting (string values escape
/// theirs), so stripping them and the indent that follows is safe.
pub(crate) fn one_line(doc: String) -> String {
    doc.split('\n').map(str::trim_start).collect()
}

impl JobResult {
    /// Encode as one response line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut b = JsonBuf::obj();
        b.str("id", &self.id);
        b.str("tenant", &self.tenant);
        b.str("app", self.app);
        b.str("status", self.status.name());
        match &self.status {
            JobStatus::Ok => {
                b.str("checksum", &format!("{:#018x}", self.checksum));
                b.int("supersteps", self.supersteps);
            }
            JobStatus::Cancelled(reason) => b.str("reason", reason),
            JobStatus::Expired => {}
            JobStatus::Error(msg) => b.str("error", msg),
        }
        b.int("wait_us", self.wait_us);
        b.int("exec_us", self.exec_us);
        one_line(b.finish())
    }
}

/// Encode a rejection response for a job that never got admitted.
pub fn rejection_line(id: &str, tenant: &str, retry_after_ms: u64) -> String {
    let mut b = JsonBuf::obj();
    b.str("id", id);
    b.str("tenant", tenant);
    b.str("status", "rejected");
    b.int("retry_after_ms", retry_after_ms);
    one_line(b.finish())
}

/// Encode an error response for a line that failed to parse.
pub fn error_line(id: &str, msg: &str) -> String {
    let mut b = JsonBuf::obj();
    if !id.is_empty() {
        b.str("id", id);
    }
    b.str("status", "error");
    b.str("error", msg);
    one_line(b.finish())
}

fn parse_mode(name: &str) -> Result<ExecMode, String> {
    Ok(match name {
        "lock" => ExecMode::Locking,
        "pipe" => ExecMode::Pipelined,
        "omp" => ExecMode::Flat,
        "seq" => ExecMode::Sequential,
        other => return Err(format!("unknown engine {other:?}")),
    })
}

fn source_of(j: &Json) -> Result<VertexId, String> {
    j.get("source")
        .and_then(|v| v.as_u64())
        .map(|v| v as VertexId)
        .ok_or_else(|| "missing source".to_string())
}

fn kind_of(j: &Json) -> Result<JobKind, String> {
    let app = j
        .get("app")
        .and_then(|v| v.as_str())
        .ok_or_else(|| "missing app".to_string())?;
    Ok(match app {
        "pagerank" => JobKind::PageRank {
            damping: j.get("damping").and_then(|v| v.as_f64()).unwrap_or(0.85) as f32,
            iterations: j.get("iters").and_then(|v| v.as_u64()).unwrap_or(20) as usize,
        },
        "ppr" => JobKind::Ppr {
            source: source_of(j)?,
            damping: j.get("damping").and_then(|v| v.as_f64()).unwrap_or(0.85) as f32,
            iterations: j.get("iters").and_then(|v| v.as_u64()).unwrap_or(20) as usize,
        },
        "bfs" => JobKind::Bfs {
            source: source_of(j)?,
        },
        "sssp" => {
            let sources: Vec<VertexId> = match j.get("sources").and_then(|v| v.as_arr()) {
                Some(arr) => arr
                    .iter()
                    .map(|v| {
                        v.as_u64()
                            .map(|s| s as VertexId)
                            .ok_or_else(|| "non-integer entry in sources".to_string())
                    })
                    .collect::<Result<_, _>>()?,
                None => vec![source_of(j)?],
            };
            if sources.is_empty() {
                return Err("sssp needs at least one source".to_string());
            }
            JobKind::Sssp { sources }
        }
        "wcc" => JobKind::Wcc,
        other => return Err(format!("unknown app {other:?}")),
    })
}

/// Decode one request line. `default_mode` fills in the engine when the
/// line does not pick one; `conn` tags the spec for response routing.
pub fn parse_request(line: &str, default_mode: ExecMode, conn: u64) -> Result<Request, String> {
    let j = Json::parse(line)?;
    let op = j.get("op").and_then(|v| v.as_str()).unwrap_or("job");
    match op {
        "job" => {
            let id = j
                .get("id")
                .and_then(|v| v.as_str())
                .ok_or_else(|| "missing id".to_string())?
                .to_string();
            let tenant = j
                .get("tenant")
                .and_then(|v| v.as_str())
                .unwrap_or("default")
                .to_string();
            let mode = match j.get("engine").and_then(|v| v.as_str()) {
                Some(name) => parse_mode(name)?,
                None => default_mode,
            };
            Ok(Request::Job(JobSpec {
                id,
                tenant,
                kind: kind_of(&j)?,
                mode,
                deadline_ms: j.get("deadline_ms").and_then(|v| v.as_u64()),
                conn,
            }))
        }
        "tenant" => Ok(Request::Tenant {
            tenant: j
                .get("tenant")
                .and_then(|v| v.as_str())
                .ok_or_else(|| "missing tenant".to_string())?
                .to_string(),
            weight: j.get("weight").and_then(|v| v.as_u64()).unwrap_or(1).max(1),
            cap: j.get("cap").and_then(|v| v.as_u64()).unwrap_or(1).max(1) as usize,
        }),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Best-effort id extraction from a line that may not parse fully, so
/// error responses can still be correlated.
pub fn peek_id(line: &str) -> String {
    Json::parse(line)
        .ok()
        .and_then(|j| j.get("id").and_then(|v| v.as_str()).map(String::from))
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_job_line() {
        let r = parse_request(
            r#"{"id":"q1","tenant":"a","app":"bfs","source":3}"#,
            ExecMode::Locking,
            7,
        )
        .unwrap();
        match r {
            Request::Job(spec) => {
                assert_eq!(spec.id, "q1");
                assert_eq!(spec.tenant, "a");
                assert_eq!(spec.kind, JobKind::Bfs { source: 3 });
                assert_eq!(spec.mode, ExecMode::Locking);
                assert_eq!(spec.deadline_ms, None);
                assert_eq!(spec.conn, 7);
            }
            other => panic!("expected job, got {other:?}"),
        }
    }

    #[test]
    fn parses_batched_sssp_and_engine_override() {
        let r = parse_request(
            r#"{"op":"job","id":"q2","app":"sssp","sources":[0,5,9],"engine":"pipe","deadline_ms":250}"#,
            ExecMode::Locking,
            0,
        )
        .unwrap();
        match r {
            Request::Job(spec) => {
                assert_eq!(
                    spec.kind,
                    JobKind::Sssp {
                        sources: vec![0, 5, 9]
                    }
                );
                assert_eq!(spec.tenant, "default");
                assert_eq!(spec.mode, ExecMode::Pipelined);
                assert_eq!(spec.deadline_ms, Some(250));
            }
            other => panic!("expected job, got {other:?}"),
        }
    }

    #[test]
    fn parses_control_ops() {
        match parse_request(
            r#"{"op":"tenant","tenant":"b","weight":4,"cap":2}"#,
            ExecMode::Locking,
            0,
        )
        .unwrap()
        {
            Request::Tenant {
                tenant,
                weight,
                cap,
            } => {
                assert_eq!(tenant, "b");
                assert_eq!(weight, 4);
                assert_eq!(cap, 2);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_request(r#"{"op":"stats"}"#, ExecMode::Locking, 0).unwrap(),
            Request::Stats
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown"}"#, ExecMode::Locking, 0).unwrap(),
            Request::Shutdown
        ));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_request("not json", ExecMode::Locking, 0).is_err());
        assert!(parse_request(r#"{"id":"x","app":"nope"}"#, ExecMode::Locking, 0).is_err());
        assert!(parse_request(r#"{"app":"bfs","source":1}"#, ExecMode::Locking, 0).is_err());
        assert!(parse_request(
            r#"{"id":"x","app":"sssp","sources":[]}"#,
            ExecMode::Locking,
            0
        )
        .is_err());
        assert!(parse_request(
            r#"{"id":"x","app":"bfs","source":1,"engine":"gpu"}"#,
            ExecMode::Locking,
            0
        )
        .is_err());
    }

    #[test]
    fn result_lines_round_trip_through_the_parser() {
        let ok = JobResult {
            id: "q9".into(),
            tenant: "a".into(),
            app: "sssp",
            status: JobStatus::Ok,
            checksum: 0xdead_beef_0102_0304,
            supersteps: 12,
            wait_us: 40,
            exec_us: 900,
            conn: 0,
        };
        let line = ok.to_line();
        assert!(!line.contains('\n'), "response must be one line: {line:?}");
        let j = Json::parse(&line).unwrap();
        assert_eq!(j.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(
            j.get("checksum").unwrap().as_str(),
            Some("0xdeadbeef01020304")
        );
        assert_eq!(j.u64_or_0("supersteps"), 12);

        let j = Json::parse(&rejection_line("q1", "a", 15)).unwrap();
        assert_eq!(j.get("status").unwrap().as_str(), Some("rejected"));
        assert_eq!(j.u64_or_0("retry_after_ms"), 15);

        let cancelled = JobResult {
            status: JobStatus::Cancelled("deadline"),
            ..ok
        };
        let j = Json::parse(&cancelled.to_line()).unwrap();
        assert_eq!(j.get("reason").unwrap().as_str(), Some("deadline"));
    }
}
