//! The live metrics hub: sliding-window aggregation over the serving
//! counters and log2 histograms.
//!
//! Recording stays exactly as cheap as before — the pool's per-tenant
//! counters and the [`Hist`](phigraph_trace::Hist) registry are plain
//! relaxed atomics, and nothing on the hot path knows the hub exists.
//! The hub is a bounded ring of *cumulative* samples (pool stats plus
//! histogram snapshots) pushed roughly once a second by the daemon's
//! sampler thread, plus once more at every scrape so a scrape is never
//! stale. A trailing window is then just `newest − baseline`:
//! subtracting the youngest sample older than the window edge from the
//! newest sample yields the counts, rates, and histogram deltas for
//! exactly that interval ([`HistSnapshot::delta`] keeps torn buckets
//! non-negative). Three windows are materialized per scrape: 1s, 10s,
//! and 60s.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use phigraph_trace::{HistSnapshot, TraceSnapshot};

use crate::stats::{append_job_hists, serve_prometheus_text, ServeStats};

/// The trailing windows the hub materializes, in seconds.
pub const WINDOWS_SECS: [u64; 3] = [1, 10, 60];

/// Seconds between sampler pushes (the ring keeps a bit more than the
/// largest window's worth).
pub const SAMPLE_EVERY_SECS: u64 = 1;

const RING_CAP: usize = 90;

/// One cumulative observation of the pool.
#[derive(Debug)]
struct Sample {
    at: Instant,
    stats: ServeStats,
    hists: Vec<HistSnapshot>,
}

/// The sliding-window metrics hub. Cloneable handle; see module docs.
#[derive(Clone, Debug, Default)]
pub struct MetricsHub {
    ring: Arc<Mutex<VecDeque<Sample>>>,
}

/// One materialized trailing window.
#[derive(Debug)]
pub struct WindowView {
    /// Nominal window length in seconds (1, 10, or 60).
    pub secs: u64,
    /// Seconds actually covered (shorter than `secs` early in life,
    /// when the process is younger than the window).
    pub covered: f64,
    /// Completed jobs per second over the window, by tenant.
    pub jobs_per_sec: BTreeMap<String, f64>,
    /// Jobs waiting for a worker at the newest sample.
    pub queued: usize,
    /// Worst shed-ladder level observed across the window's samples.
    pub shed_level: u8,
    /// Windowed histogram deltas (values recorded inside the window),
    /// same order as [`HistKind::ALL`](phigraph_trace::HistKind::ALL).
    pub hists: Vec<HistSnapshot>,
}

impl WindowView {
    /// The windowed histogram named `name`, if histograms were sampled.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|h| h.name == name)
    }
}

impl MetricsHub {
    /// An empty hub.
    pub fn new() -> Self {
        MetricsHub::default()
    }

    /// Push one cumulative sample: the pool's stats snapshot plus the
    /// histogram snapshots from the trace (empty when tracing is off).
    pub fn sample(&self, stats: ServeStats, hists: Vec<HistSnapshot>) {
        self.push_at(Instant::now(), stats, hists);
    }

    fn push_at(&self, at: Instant, stats: ServeStats, hists: Vec<HistSnapshot>) {
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == RING_CAP {
            ring.pop_front();
        }
        ring.push_back(Sample { at, stats, hists });
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// True when no sample has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize every window in [`WINDOWS_SECS`] from the current
    /// ring (empty vec when fewer than one sample exists).
    pub fn windows(&self) -> Vec<WindowView> {
        let ring = self.ring.lock().unwrap();
        let newest = match ring.back() {
            Some(s) => s,
            None => return Vec::new(),
        };
        WINDOWS_SECS
            .iter()
            .map(|&secs| {
                // Baseline: the youngest sample at or outside the
                // window edge; a ring younger than the window falls
                // back to its oldest sample, so early scrapes still
                // cover everything since startup.
                let baseline = ring
                    .iter()
                    .rev()
                    .find(|s| newest.at.duration_since(s.at).as_secs_f64() >= secs as f64)
                    .or_else(|| ring.front())
                    .unwrap();
                let covered = newest.at.duration_since(baseline.at).as_secs_f64();
                let dt = covered.max(1e-3);
                let mut jobs_per_sec = BTreeMap::new();
                for (name, t) in &newest.stats.tenants {
                    let before = baseline
                        .stats
                        .tenants
                        .get(name)
                        .map(|b| b.completed)
                        .unwrap_or(0);
                    jobs_per_sec
                        .insert(name.clone(), t.completed.saturating_sub(before) as f64 / dt);
                }
                let shed_level = ring
                    .iter()
                    .filter(|s| newest.at.duration_since(s.at).as_secs_f64() <= secs as f64)
                    .map(|s| s.stats.shed_level)
                    .max()
                    .unwrap_or(newest.stats.shed_level);
                let hists = newest
                    .hists
                    .iter()
                    .zip(&baseline.hists)
                    .map(|(now, then)| now.delta(then))
                    .collect();
                WindowView {
                    secs,
                    covered,
                    jobs_per_sec,
                    queued: newest.stats.queued,
                    shed_level,
                    hists,
                }
            })
            .collect()
    }

    /// Append the sliding-window gauge families to a Prometheus
    /// exposition: per-tenant jobs/sec, queue occupancy, shed level,
    /// and windowed p50/p99 for the wait/exec/journal-append latency
    /// histograms, each labelled `window="1s"|"10s"|"60s"`.
    pub fn append_prometheus_windows(&self, out: &mut String) {
        let windows = self.windows();
        if windows.is_empty() {
            return;
        }
        prom_head(
            out,
            "phigraph_serve_window_jobs_per_sec",
            "Completed jobs per second over the trailing window, by tenant.",
        );
        for w in &windows {
            for (tenant, rate) in &w.jobs_per_sec {
                out.push_str(&format!(
                    "phigraph_serve_window_jobs_per_sec{{tenant={},window=\"{}s\"}} {rate:.3}\n",
                    quote(tenant),
                    w.secs
                ));
            }
        }
        prom_head(
            out,
            "phigraph_serve_window_queued",
            "Jobs waiting for a worker at the newest sample in the window.",
        );
        for w in &windows {
            out.push_str(&format!(
                "phigraph_serve_window_queued{{window=\"{}s\"}} {}\n",
                w.secs, w.queued
            ));
        }
        prom_head(
            out,
            "phigraph_serve_window_shed_level",
            "Worst load-shedding ladder level observed across the window.",
        );
        for w in &windows {
            out.push_str(&format!(
                "phigraph_serve_window_shed_level{{window=\"{}s\"}} {}\n",
                w.secs, w.shed_level
            ));
        }
        for (hist, family, help) in [
            (
                "job_wait_us",
                "phigraph_serve_window_job_wait_us",
                "Windowed queue-wait latency quantiles, µs.",
            ),
            (
                "job_exec_us",
                "phigraph_serve_window_job_exec_us",
                "Windowed execution latency quantiles, µs.",
            ),
            (
                "journal_append_us",
                "phigraph_serve_window_journal_append_us",
                "Windowed journal-append latency quantiles, µs.",
            ),
        ] {
            prom_head(out, family, help);
            for w in &windows {
                let h = w.hist(hist);
                for (q, label) in [(0.5, "0.5"), (0.99, "0.99")] {
                    let v = h.and_then(|h| h.quantile_upper(q)).unwrap_or(0);
                    out.push_str(&format!(
                        "{family}{{window=\"{}s\",quantile=\"{label}\"}} {v}\n",
                        w.secs
                    ));
                }
            }
        }
    }
}

fn prom_head(out: &mut String, name: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
}

fn quote(s: &str) -> String {
    phigraph_trace::json::quote(s)
}

/// The full live Prometheus exposition, assembled on demand: the pool
/// gauges and per-tenant counters, the current histogram snapshots
/// (mid-traffic, not just at exit), and the sliding-window section.
pub fn live_prometheus_text(
    stats: &ServeStats,
    snap: Option<&TraceSnapshot>,
    hub: Option<&MetricsHub>,
) -> String {
    let mut out = serve_prometheus_text(stats);
    if let Some(s) = snap {
        append_job_hists(&mut out, s);
    }
    if let Some(h) = hub {
        h.append_prometheus_windows(&mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TenantStats;
    use phigraph_trace::{Hist, HistKind};
    use std::time::Duration;

    fn stats_with(tenants: &[(&str, u64)], queued: usize, shed: u8) -> ServeStats {
        let mut s = ServeStats {
            queued,
            shed_level: shed,
            workers: 2,
            queue_cap: 64,
            epoch: 1,
            ..ServeStats::default()
        };
        for (name, completed) in tenants {
            let mut t = TenantStats::new(1, 1);
            t.completed = *completed;
            t.submitted = *completed;
            s.tenants.insert(name.to_string(), t);
        }
        s
    }

    fn hists_with_waits(values: &[u64]) -> Vec<HistSnapshot> {
        let wait = Hist::default();
        for &v in values {
            wait.record(v);
        }
        HistKind::ALL
            .iter()
            .map(|&k| {
                if k == HistKind::JobWaitUs {
                    wait.snapshot(k)
                } else {
                    HistSnapshot::empty(k)
                }
            })
            .collect()
    }

    #[test]
    fn empty_hub_yields_no_windows_and_no_text() {
        let hub = MetricsHub::new();
        assert!(hub.is_empty());
        assert!(hub.windows().is_empty());
        let mut out = String::new();
        hub.append_prometheus_windows(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn windows_subtract_the_right_baseline() {
        let hub = MetricsHub::new();
        let now = Instant::now();
        let t0 = now - Duration::from_secs(30);
        let t1 = now - Duration::from_secs(12);
        hub.push_at(t0, stats_with(&[("a", 0)], 0, 0), hists_with_waits(&[]));
        hub.push_at(
            t1,
            stats_with(&[("a", 100)], 4, 3),
            hists_with_waits(&[8; 100]),
        );
        hub.push_at(
            now,
            stats_with(&[("a", 160)], 2, 1),
            hists_with_waits(&[&[8; 100][..], &[64; 60][..]].concat()),
        );
        let windows = hub.windows();
        assert_eq!(windows.len(), WINDOWS_SECS.len());

        // 10s window: baseline is t1 (30s-old t0 also qualifies, but t1
        // is the *youngest* sample outside the edge) → 60 jobs over 12s.
        let w10 = &windows[1];
        assert_eq!(w10.secs, 10);
        assert!((w10.covered - 12.0).abs() < 0.5);
        assert!((w10.jobs_per_sec["a"] - 5.0).abs() < 0.5);
        // Shed level is the max over in-window samples (t1 at level 3
        // sits outside the 10s edge; only the newest sample counts).
        assert_eq!(w10.shed_level, 1);
        // The windowed wait histogram holds only the 60 new records.
        let wait = w10.hist("job_wait_us").unwrap();
        assert_eq!(wait.count, 60);
        assert_eq!(wait.quantile_upper(0.5), Some(127));

        // 60s window: the ring is younger than 60s, so it falls back to
        // the oldest sample and covers everything since t0.
        let w60 = &windows[2];
        assert!((w60.covered - 30.0).abs() < 0.5);
        assert!((w60.jobs_per_sec["a"] - 160.0 / 30.0).abs() < 0.5);
        assert_eq!(w60.shed_level, 3);
        assert_eq!(w60.hist("job_wait_us").unwrap().count, 160);
        assert_eq!(w60.queued, 2);
    }

    #[test]
    fn sixteen_tenant_scrape_has_per_tenant_rates_and_quantiles() {
        let hub = MetricsHub::new();
        let names: Vec<String> = (0..16).map(|i| format!("tenant{i:02}")).collect();
        let now = Instant::now();
        let zero: Vec<(&str, u64)> = names.iter().map(|n| (n.as_str(), 0)).collect();
        let busy: Vec<(&str, u64)> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), 10 * (i as u64 + 1)))
            .collect();
        hub.push_at(
            now - Duration::from_secs(20),
            stats_with(&zero, 0, 0),
            hists_with_waits(&[]),
        );
        hub.push_at(now, stats_with(&busy, 7, 2), hists_with_waits(&[50; 200]));
        let stats = stats_with(&busy, 7, 2);
        let text = live_prometheus_text(&stats, None, Some(&hub));
        for n in &names {
            assert!(
                text.contains(&format!(
                    "phigraph_serve_window_jobs_per_sec{{tenant=\"{n}\",window=\"10s\"}}"
                )),
                "missing rate series for {n}"
            );
        }
        assert!(text.contains("phigraph_serve_window_shed_level{window=\"10s\"} 2\n"));
        assert!(text.contains("phigraph_serve_window_queued{window=\"1s\"} 7\n"));
        assert!(text
            .contains("phigraph_serve_window_job_wait_us{window=\"60s\",quantile=\"0.5\"} 63\n"));
        assert!(text
            .contains("phigraph_serve_window_job_wait_us{window=\"60s\",quantile=\"0.99\"} 63\n"));
        // Exposition hygiene: HELP and TYPE stay paired.
        assert_eq!(
            text.matches("# HELP ").count(),
            text.matches("# TYPE ").count()
        );
    }

    #[test]
    fn ring_stays_bounded() {
        let hub = MetricsHub::new();
        for _ in 0..(RING_CAP + 10) {
            hub.sample(ServeStats::default(), Vec::new());
        }
        assert_eq!(hub.len(), RING_CAP);
    }
}
