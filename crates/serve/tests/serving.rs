//! End-to-end serving-pool tests: concurrent multi-tenant correctness
//! (bit-identity against one-shot runs), per-tenant cap enforcement,
//! deadline cancellation mid-run, and a seeded many-tenant stress run
//! proving no tenant starves.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use phigraph_apps::workloads::{pokec_like_weighted, Scale};
use phigraph_apps::{Bfs, PageRank, PersonalizedPageRank, Sssp, Wcc};
use phigraph_core::engine::{run_single, EngineConfig, ExecMode};
use phigraph_device::DeviceSpec;
use phigraph_graph::Csr;
use phigraph_serve::{
    values_checksum, JobKind, JobResult, JobSpec, JobStatus, ServeConfig, ServePool,
};

fn graph() -> Arc<Csr> {
    Arc::new(pokec_like_weighted(Scale::Tiny, 11))
}

fn spec(id: &str, tenant: &str, kind: JobKind, mode: ExecMode) -> JobSpec {
    JobSpec {
        id: id.to_string(),
        tenant: tenant.to_string(),
        kind,
        mode,
        deadline_ms: None,
        conn: 0,
        integrity: None,
        replay: false,
    }
}

/// The checksum a one-shot `phigraph run --checksum` would print for the
/// same app/engine pair.
fn direct_checksum(g: &Csr, kind: &JobKind, mode: ExecMode) -> u64 {
    let config = match mode {
        ExecMode::Locking => EngineConfig::locking(),
        ExecMode::Pipelined => EngineConfig::pipelined(),
        ExecMode::Flat => EngineConfig::flat(),
        ExecMode::Sequential => EngineConfig::sequential(),
    };
    let spec = DeviceSpec::xeon_e5_2680();
    match kind {
        JobKind::PageRank {
            damping,
            iterations,
        } => values_checksum(
            &run_single(
                &PageRank {
                    damping: *damping,
                    iterations: *iterations,
                },
                g,
                spec,
                &config,
            )
            .values,
        ),
        JobKind::Ppr {
            source,
            damping,
            iterations,
        } => values_checksum(
            &run_single(
                &PersonalizedPageRank {
                    source: *source,
                    damping: *damping,
                    iterations: *iterations,
                },
                g,
                spec,
                &config,
            )
            .values,
        ),
        JobKind::Bfs { source } => {
            values_checksum(&run_single(&Bfs { source: *source }, g, spec, &config).values)
        }
        JobKind::Sssp { sources } => {
            assert_eq!(sources.len(), 1, "helper covers single-source only");
            values_checksum(&run_single(&Sssp { source: sources[0] }, g, spec, &config).values)
        }
        JobKind::Wcc => values_checksum(&run_single(&Wcc::new(g), g, spec, &config).values),
    }
}

/// ≥ 16 tenants submit concurrently over one shared CSR; every result's
/// checksum must equal the one-shot run of the same app with the same
/// engine config.
#[test]
fn sixteen_concurrent_tenants_bit_identical_to_one_shot_runs() {
    let g = graph();
    let (mut pool, rx) = ServePool::new(
        Arc::clone(&g),
        ServeConfig {
            workers: 4,
            queue_cap: 64,
            default_cap: 4,
            ..ServeConfig::default()
        },
    );
    let mut expected: HashMap<String, u64> = HashMap::new();
    for t in 0..16u32 {
        let tenant = format!("tenant{t}");
        let (kind, mode) = match t % 4 {
            0 => (
                JobKind::Bfs {
                    source: t % g.num_vertices() as u32,
                },
                ExecMode::Locking,
            ),
            1 => (
                JobKind::Sssp {
                    sources: vec![(t * 3) % g.num_vertices() as u32],
                },
                ExecMode::Pipelined,
            ),
            2 => (
                JobKind::Ppr {
                    source: (t * 7) % g.num_vertices() as u32,
                    damping: 0.85,
                    iterations: 10,
                },
                ExecMode::Locking,
            ),
            _ => (JobKind::Wcc, ExecMode::Sequential),
        };
        let id = format!("job{t}");
        expected.insert(id.clone(), direct_checksum(&g, &kind, mode));
        pool.submit(spec(&id, &tenant, kind, mode)).unwrap();
    }
    let mut done = 0;
    while done < 16 {
        let r = rx.recv_timeout(Duration::from_secs(120)).expect("result");
        assert_eq!(r.status, JobStatus::Ok, "{r:?}");
        assert_eq!(
            r.checksum, expected[&r.id],
            "{}: serving checksum diverged from the one-shot run",
            r.id
        );
        done += 1;
    }
    let stats = pool.stats();
    assert_eq!(stats.tenants.len(), 16);
    assert!(stats.tenants.values().all(|t| t.completed == 1));
    pool.shutdown(true);
}

/// A tenant with cap 1 never has two jobs on workers at once, no matter
/// how many workers are free.
#[test]
fn per_tenant_cap_is_never_exceeded() {
    let g = graph();
    let (mut pool, rx) = ServePool::new(
        Arc::clone(&g),
        ServeConfig {
            workers: 4,
            queue_cap: 64,
            ..ServeConfig::default()
        },
    );
    pool.set_tenant("capped", 8, 1);
    let kind = JobKind::PageRank {
        damping: 0.85,
        iterations: 40,
    };
    for i in 0..6 {
        pool.submit(spec(
            &format!("c{i}"),
            "capped",
            kind.clone(),
            ExecMode::Sequential,
        ))
        .unwrap();
    }
    // Poll the running gauge while the jobs drain: it must never exceed
    // the cap (observing ≤ cap is guaranteed for a correct scheduler, so
    // this cannot flake into a false failure).
    let mut max_running = 0;
    let mut done = 0;
    let deadline = Instant::now() + Duration::from_secs(120);
    while done < 6 {
        match rx.recv_timeout(Duration::from_millis(1)) {
            Ok(r) => {
                assert_eq!(r.status, JobStatus::Ok, "{r:?}");
                done += 1;
            }
            Err(_) => {
                let s = pool.stats();
                max_running = max_running.max(s.tenants["capped"].running);
                assert!(Instant::now() < deadline, "jobs did not finish");
            }
        }
    }
    assert!(
        max_running <= 1,
        "cap 1 exceeded: saw {max_running} running"
    );
    pool.shutdown(true);
}

/// A job whose deadline passes mid-run is cancelled at the next
/// superstep boundary with the `deadline` reason, well short of its
/// requested iteration count.
#[test]
fn deadline_cancels_a_running_job_mid_superstep() {
    let g = graph();
    let (mut pool, rx) = ServePool::new(
        Arc::clone(&g),
        ServeConfig {
            workers: 1,
            watchdog_tick_ms: 2,
            ..ServeConfig::default()
        },
    );
    let iterations = 5_000_000;
    let mut s = spec(
        "doomed",
        "a",
        JobKind::PageRank {
            damping: 0.85,
            iterations,
        },
        ExecMode::Sequential,
    );
    s.deadline_ms = Some(60);
    pool.submit(s).unwrap();
    let r = rx.recv_timeout(Duration::from_secs(60)).expect("result");
    assert_eq!(r.status, JobStatus::Cancelled("deadline"), "{r:?}");
    assert!(
        r.supersteps < iterations as u64,
        "job ran to completion despite the deadline"
    );
    let stats = pool.stats();
    assert_eq!(stats.tenants["a"].cancelled, 1);
    pool.shutdown(true);
}

/// Jobs that would start after their deadline expire in the queue
/// without ever reaching a worker.
#[test]
fn queued_jobs_past_deadline_expire_without_running() {
    let g = graph();
    let (mut pool, rx) = ServePool::new(
        Arc::clone(&g),
        ServeConfig {
            workers: 1,
            watchdog_tick_ms: 2,
            default_cap: 4,
            ..ServeConfig::default()
        },
    );
    // A long job holds the only worker...
    pool.submit(spec(
        "blocker",
        "a",
        JobKind::PageRank {
            damping: 0.85,
            iterations: 300,
        },
        ExecMode::Sequential,
    ))
    .unwrap();
    // ...so a tight-deadline job behind it expires in the queue.
    let mut tight = spec("tight", "a", JobKind::Wcc, ExecMode::Sequential);
    tight.deadline_ms = Some(1);
    pool.submit(tight).unwrap();
    let mut statuses: HashMap<String, JobStatus> = HashMap::new();
    for _ in 0..2 {
        let r = rx.recv_timeout(Duration::from_secs(120)).expect("result");
        statuses.insert(r.id.clone(), r.status);
    }
    assert_eq!(statuses["tight"], JobStatus::Expired);
    assert_eq!(statuses["blocker"], JobStatus::Ok);
    let stats = pool.stats();
    assert_eq!(stats.tenants["a"].expired, 1);
    pool.shutdown(true);
}

/// Seeded stress: 8 tenants with mixed weights and caps push 40 jobs
/// through 4 workers. Every tenant makes progress — all jobs complete,
/// none starve behind the heavier tenants.
#[test]
fn many_tenant_stress_all_tenants_make_progress() {
    let g = graph();
    let (mut pool, rx) = ServePool::new(
        Arc::clone(&g),
        ServeConfig {
            workers: 4,
            queue_cap: 64,
            ..ServeConfig::default()
        },
    );
    let tenants = 8u32;
    let per_tenant = 5u32;
    for t in 0..tenants {
        pool.set_tenant(&format!("t{t}"), (t as u64 % 4) + 1, (t as usize % 2) + 1);
    }
    // Seeded job mix: the kind cycles deterministically from (t, i).
    for i in 0..per_tenant {
        for t in 0..tenants {
            let kind = match (t + i) % 3 {
                0 => JobKind::Bfs {
                    source: (t * 13 + i) % g.num_vertices() as u32,
                },
                1 => JobKind::Sssp {
                    sources: vec![(t * 29 + i * 7) % g.num_vertices() as u32],
                },
                _ => JobKind::Ppr {
                    source: (t * 5 + i * 3) % g.num_vertices() as u32,
                    damping: 0.85,
                    iterations: 5,
                },
            };
            pool.submit(spec(
                &format!("t{t}-j{i}"),
                &format!("t{t}"),
                kind,
                ExecMode::Locking,
            ))
            .unwrap();
        }
    }
    let total = (tenants * per_tenant) as usize;
    let results: Vec<JobResult> = (0..total)
        .map(|_| rx.recv_timeout(Duration::from_secs(240)).expect("result"))
        .collect();
    assert!(results.iter().all(|r| r.status == JobStatus::Ok));
    let stats = pool.stats();
    for t in 0..tenants {
        let ts = &stats.tenants[&format!("t{t}")];
        assert_eq!(
            ts.completed, per_tenant as u64,
            "tenant t{t} starved: {ts:?}"
        );
        assert_eq!(ts.submitted, per_tenant as u64);
    }
    pool.shutdown(true);
}
