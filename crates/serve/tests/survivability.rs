//! Survivability tests for the serving stack: the kill-at-every-job-
//! boundary journal replay sweep (restarted pools must re-emit and
//! re-run to bit-identical checksums), drain-mode requeueing, hot graph
//! swap under live traffic, and a seeded byte-smear fuzz over the
//! bounded protocol reader.

use std::collections::HashMap;
use std::io::Cursor;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use phigraph_apps::workloads::{pokec_like_weighted, Scale};
use phigraph_apps::{Bfs, PageRank, Sssp, Wcc};
use phigraph_core::engine::{run_single, EngineConfig, ExecMode};
use phigraph_device::DeviceSpec;
use phigraph_graph::{Csr, SplitMix64};
use phigraph_serve::job::{
    job_request_line, parse_request, read_bounded_line, LineRead, MAX_LINE_BYTES,
};
use phigraph_serve::{
    values_checksum, DrainMode, JobKind, JobSpec, JobStatus, Journal, ServeConfig, ServePool,
};

fn graph(seed: u64) -> Arc<Csr> {
    Arc::new(pokec_like_weighted(Scale::Tiny, seed))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "phigraph-survivability-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec(id: &str, tenant: &str, kind: JobKind) -> JobSpec {
    JobSpec {
        id: id.to_string(),
        tenant: tenant.to_string(),
        kind,
        mode: ExecMode::Sequential,
        deadline_ms: None,
        conn: 0,
        integrity: None,
        replay: false,
    }
}

/// The checksum a one-shot sequential run would produce for `kind`.
fn direct_checksum(g: &Csr, kind: &JobKind) -> u64 {
    let config = EngineConfig::sequential();
    let dev = DeviceSpec::xeon_e5_2680();
    match kind {
        JobKind::PageRank {
            damping,
            iterations,
        } => values_checksum(
            &run_single(
                &PageRank {
                    damping: *damping,
                    iterations: *iterations,
                },
                g,
                dev,
                &config,
            )
            .values,
        ),
        JobKind::Bfs { source } => {
            values_checksum(&run_single(&Bfs { source: *source }, g, dev, &config).values)
        }
        JobKind::Sssp { sources } => {
            assert_eq!(sources.len(), 1, "helper covers single-source only");
            values_checksum(&run_single(&Sssp { source: sources[0] }, g, dev, &config).values)
        }
        JobKind::Wcc => values_checksum(&run_single(&Wcc::new(g), g, dev, &config).values),
        other => panic!("helper does not cover {other:?}"),
    }
}

/// The job batch every kill-sweep incarnation runs.
fn sweep_jobs() -> Vec<(String, JobKind)> {
    vec![
        ("k0".into(), JobKind::Bfs { source: 0 }),
        ("k1".into(), JobKind::Wcc),
        ("k2".into(), JobKind::Sssp { sources: vec![3] }),
        (
            "k3".into(),
            JobKind::PageRank {
                damping: 0.85,
                iterations: 5,
            },
        ),
        ("k4".into(), JobKind::Bfs { source: 7 }),
        ("k5".into(), JobKind::Sssp { sources: vec![1] }),
    ]
}

fn pool_config(journal: Arc<Journal>) -> ServeConfig {
    ServeConfig {
        workers: 1,
        queue_cap: 16,
        mode: ExecMode::Sequential,
        journal: Some(journal),
        ..ServeConfig::default()
    }
}

/// Kill-at-every-job-boundary sweep: submit the whole batch, abort the
/// pool after exactly `k` results for every `k`, then restart against
/// the same journal. Whatever the first incarnation finished must come
/// back from the journal bit-identically, and everything else must
/// replay to the same checksum a one-shot run produces. No job may be
/// lost or acquire a second, different outcome.
#[test]
fn kill_at_every_job_boundary_replays_bit_identically() {
    let g = graph(11);
    let jobs = sweep_jobs();
    let expected: HashMap<String, u64> = jobs
        .iter()
        .map(|(id, kind)| (id.clone(), direct_checksum(&g, kind)))
        .collect();

    for kill_at in 0..=jobs.len() {
        let dir = temp_dir(&format!("killsweep{kill_at}"));

        // Incarnation 1: admit everything, then die after `kill_at`
        // results (an Abort shutdown is a kill from the journal's view:
        // unfinished jobs never get a `done` record).
        let (journal, recovery) = Journal::open(&dir, ExecMode::Sequential).unwrap();
        assert!(recovery.incomplete.is_empty() && recovery.completed.is_empty());
        let (mut pool, rx) = ServePool::new(Arc::clone(&g), pool_config(Arc::new(journal)));
        for (id, kind) in &jobs {
            pool.submit(spec(id, "t", kind.clone())).unwrap();
        }
        let mut first_run: HashMap<String, u64> = HashMap::new();
        for _ in 0..kill_at {
            let r = rx.recv_timeout(Duration::from_secs(30)).unwrap();
            assert_eq!(r.status, JobStatus::Ok);
            first_run.insert(r.id, r.checksum);
        }
        pool.shutdown(false); // abort ≈ kill -9
        drop(pool);
        // Results that raced past the kill point are fine — they have
        // `done` records, so they simply show up in `completed` below.
        for r in rx.try_iter() {
            if r.status == JobStatus::Ok {
                first_run.insert(r.id, r.checksum);
            }
        }

        // Incarnation 2: recover, verify the re-emitted results, replay
        // the incomplete remainder.
        let (journal, recovery) = Journal::open(&dir, ExecMode::Sequential).unwrap();
        assert_eq!(recovery.dropped, 0, "clean shutdowns leave no torn tail");
        let journal = Arc::new(journal);
        let mut outcomes: HashMap<String, u64> = HashMap::new();
        for r in &recovery.completed {
            assert_eq!(r.status, JobStatus::Ok);
            assert_eq!(
                r.checksum, expected[&r.id],
                "journalled result for {} must be bit-identical (kill_at={kill_at})",
                r.id
            );
            assert!(
                outcomes.insert(r.id.clone(), r.checksum).is_none(),
                "journal re-emitted {} twice",
                r.id
            );
        }
        for (id, sum) in &first_run {
            assert_eq!(
                outcomes.get(id),
                Some(sum),
                "result {id} delivered before the kill must survive in the journal"
            );
        }
        journal.compact(&recovery.incomplete).unwrap();

        let (mut pool, rx) = ServePool::new(Arc::clone(&g), pool_config(Arc::clone(&journal)));
        let n_replay = recovery.incomplete.len();
        assert_eq!(
            n_replay,
            jobs.len() - outcomes.len(),
            "completed + incomplete must partition the batch (kill_at={kill_at})"
        );
        for spec in recovery.incomplete {
            assert!(spec.replay, "recovered specs carry the replay tag");
            pool.submit(spec).unwrap();
        }
        for _ in 0..n_replay {
            let r = rx.recv_timeout(Duration::from_secs(30)).unwrap();
            assert_eq!(r.status, JobStatus::Ok);
            assert!(r.replayed, "replayed results are tagged");
            assert_eq!(
                r.checksum, expected[&r.id],
                "replayed {} must match the one-shot checksum (kill_at={kill_at})",
                r.id
            );
            assert!(
                outcomes.insert(r.id.clone(), r.checksum).is_none(),
                "{} got two terminal outcomes (kill_at={kill_at})",
                r.id
            );
        }
        pool.shutdown(true);
        assert_eq!(
            outcomes.len(),
            jobs.len(),
            "no job lost (kill_at={kill_at})"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// `--drain` semantics: a Requeue shutdown finishes the running job,
/// reports the queued ones `requeued`, and leaves them incomplete in
/// the journal so the next incarnation replays them to the same
/// checksums.
#[test]
fn drain_shutdown_requeues_queued_jobs_for_the_next_incarnation() {
    let g = graph(11);
    let dir = temp_dir("drain");
    let (journal, _) = Journal::open(&dir, ExecMode::Sequential).unwrap();
    let (mut pool, rx) = ServePool::new(Arc::clone(&g), pool_config(Arc::new(journal)));

    // One slow job to occupy the single worker, then a queued tail.
    pool.submit(spec(
        "slow",
        "t",
        JobKind::PageRank {
            damping: 0.85,
            iterations: 40,
        },
    ))
    .unwrap();
    // Wait until the worker has actually picked it up — shutting down
    // before then would (legitimately) requeue all four jobs, but this
    // test is about the finish-the-running-job half of the contract.
    let t0 = Instant::now();
    while pool.stats().running == 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "worker never started"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let tail = ["d1", "d2", "d3"];
    for id in tail {
        pool.submit(spec(id, "t", JobKind::Wcc)).unwrap();
    }
    pool.shutdown_mode(DrainMode::Requeue);

    let mut requeued = 0;
    let mut finished = 0;
    for r in rx.iter() {
        match r.status {
            JobStatus::Requeued => requeued += 1,
            JobStatus::Ok => finished += 1,
            other => panic!("unexpected status {other:?}"),
        }
    }
    assert!(finished >= 1, "the running job must finish");
    assert_eq!(finished + requeued, 1 + tail.len());

    let (journal, recovery) = Journal::open(&dir, ExecMode::Sequential).unwrap();
    assert_eq!(
        recovery.incomplete.len(),
        requeued,
        "every requeued job stays incomplete in the journal"
    );
    let (mut pool, rx) = ServePool::new(Arc::clone(&g), pool_config(Arc::new(journal)));
    let n = recovery.incomplete.len();
    for spec in recovery.incomplete {
        let expect = direct_checksum(&g, &spec.kind);
        let id = spec.id.clone();
        pool.submit(spec).unwrap();
        let r = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(r.id, id);
        assert_eq!(r.status, JobStatus::Ok);
        assert_eq!(r.checksum, expect);
    }
    assert!(n > 0);
    pool.shutdown(true);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Hot swap under live traffic: queries keep flowing while `reload`
/// replaces the shared CSR. Every submitted job must come back `ok`,
/// checksummed against whichever graph epoch it actually executed on.
#[test]
fn hot_swap_mid_traffic_drops_no_queries() {
    let g1 = graph(11);
    let g2 = graph(12);
    let (mut pool, rx) = ServePool::new(
        Arc::clone(&g1),
        ServeConfig {
            workers: 2,
            queue_cap: 64,
            default_cap: 4,
            mode: ExecMode::Sequential,
            ..ServeConfig::default()
        },
    );
    assert_eq!(pool.graph_epoch(), 1);

    let kinds = [
        JobKind::Bfs { source: 2 },
        JobKind::Wcc,
        JobKind::Sssp { sources: vec![5] },
    ];
    let mut submitted = 0;
    for (i, kind) in kinds.iter().cycle().take(12).enumerate() {
        pool.submit(spec(&format!("pre{i}"), "t", kind.clone()))
            .unwrap();
        submitted += 1;
    }
    let (epoch, v, e) = pool.reload((*g2).clone());
    assert_eq!(epoch, 2);
    assert_eq!((v, e), (g2.num_vertices(), g2.num_edges()));
    for (i, kind) in kinds.iter().cycle().take(12).enumerate() {
        pool.submit(spec(&format!("post{i}"), "t", kind.clone()))
            .unwrap();
        submitted += 1;
    }
    pool.shutdown(true);

    let results: Vec<_> = rx.iter().collect();
    assert_eq!(results.len(), submitted, "zero dropped queries");
    let mut on_new = 0;
    for r in results {
        assert_eq!(
            r.status,
            JobStatus::Ok,
            "job {} did not survive the swap",
            r.id
        );
        let kind = &kinds[r
            .id
            .trim_start_matches("pre")
            .trim_start_matches("post")
            .parse::<usize>()
            .unwrap()
            % kinds.len()];
        let expect = match r.epoch {
            1 => direct_checksum(&g1, kind),
            2 => {
                on_new += 1;
                direct_checksum(&g2, kind)
            }
            other => panic!("job {} ran on impossible epoch {other}", r.id),
        };
        assert_eq!(
            r.checksum, expect,
            "job {} (epoch {}) checksum mismatch",
            r.id, r.epoch
        );
    }
    // Everything submitted after the swap binds the new graph; some of
    // the earlier queue usually does too, but that part is timing.
    assert!(on_new >= 12, "post-swap jobs must run on the new epoch");
}

/// Seeded byte-smear fuzz over the bounded reader + parser: corrupted
/// request lines must never panic and must either parse or produce a
/// non-empty typed error; the stream stays usable afterwards.
#[test]
fn byte_smear_fuzz_over_the_line_reader_is_panic_free() {
    let mut rng = SplitMix64::seed_from_u64(0xfeed);
    let base = job_request_line(&spec(
        "fz",
        "t",
        JobKind::Sssp {
            sources: vec![0, 4, 9],
        },
    ));
    let mut parsed_ok = 0usize;
    let mut typed_err = 0usize;
    for _ in 0..600 {
        let mut bytes = base.clone().into_bytes();
        let smears = 1 + rng.random_range(0..4usize);
        for _ in 0..smears {
            let at = rng.random_range(0..bytes.len());
            bytes[at] = (rng.next_u64() & 0xff) as u8;
        }
        // Never smear in a newline terminator — one line per read.
        for b in &mut bytes {
            if *b == b'\n' || *b == b'\r' {
                *b = b'x';
            }
        }
        bytes.push(b'\n');
        let tail = b"{\"op\":\"stats\"}\n";
        bytes.extend_from_slice(tail);

        let mut cursor = Cursor::new(bytes);
        match read_bounded_line(&mut cursor).unwrap() {
            LineRead::Line(line) => match parse_request(&line, ExecMode::Sequential, 0) {
                Ok(_) => parsed_ok += 1,
                Err(e) => {
                    assert!(!e.is_empty(), "errors must be descriptive");
                    typed_err += 1;
                }
            },
            LineRead::BadUtf8 => typed_err += 1,
            other => panic!("unexpected read {other:?}"),
        }
        // The smeared line must not poison the stream: the next line
        // still reads and parses.
        match read_bounded_line(&mut cursor).unwrap() {
            LineRead::Line(line) => {
                parse_request(&line, ExecMode::Sequential, 0).unwrap();
            }
            other => panic!("stream poisoned after smear: {other:?}"),
        }
    }
    assert!(typed_err > 0, "the smear must actually corrupt some lines");
    assert!(parsed_ok + typed_err == 600);
}

/// Oversized lines are skipped with a typed read and the stream stays
/// parseable; the clean request after them still goes through.
#[test]
fn oversized_lines_get_a_typed_read_and_do_not_poison_the_stream() {
    let mut bytes = vec![b'a'; MAX_LINE_BYTES + 4096];
    bytes.push(b'\n');
    bytes.extend_from_slice(b"{\"op\":\"stats\"}\n");
    bytes.extend_from_slice(&[0xff, 0xfe, b'\n']);
    let mut cursor = Cursor::new(bytes);
    assert_eq!(read_bounded_line(&mut cursor).unwrap(), LineRead::TooLong);
    match read_bounded_line(&mut cursor).unwrap() {
        LineRead::Line(line) => {
            parse_request(&line, ExecMode::Sequential, 0).unwrap();
        }
        other => panic!("expected the stats line, got {other:?}"),
    }
    assert_eq!(read_bounded_line(&mut cursor).unwrap(), LineRead::BadUtf8);
    assert_eq!(read_bounded_line(&mut cursor).unwrap(), LineRead::Eof);
}
