//! Partition quality metrics: workload balance and cross-edge volume.

use crate::ratio::Ratio;
use crate::scheme::DevicePartition;
use phigraph_graph::Csr;

/// Quality measurements for a device partition (one slot per rank).
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionStats {
    /// Vertices per rank.
    pub vertices: Vec<usize>,
    /// Out-edges sourced per rank ("the number of edges processed by the
    /// CPU and MIC" — the paper's workload measure).
    pub edges: Vec<u64>,
    /// Edges whose source and destination live on different ranks.
    pub cross_edges: u64,
}

impl PartitionStats {
    /// Measure a partition against its graph.
    pub fn compute(g: &Csr, p: &DevicePartition) -> Self {
        let ranks = p.num_ranks();
        let mut vertices = vec![0usize; ranks];
        let mut edges = vec![0u64; ranks];
        let mut cross = 0u64;
        for v in 0..g.num_vertices() {
            let dv = p.assign[v] as usize;
            vertices[dv] += 1;
            edges[dv] += g.out_degree(v as u32) as u64;
            for &t in g.neighbors(v as u32) {
                if p.assign[t as usize] as usize != dv {
                    cross += 1;
                }
            }
        }
        PartitionStats {
            vertices,
            edges,
            cross_edges: cross,
        }
    }

    /// Total out-edges over all ranks.
    fn total_edges(&self) -> u64 {
        self.edges.iter().sum()
    }

    /// Fraction of all edges that cross ranks.
    pub fn cross_fraction(&self) -> f64 {
        let total = self.total_edges();
        if total == 0 {
            0.0
        } else {
            self.cross_edges as f64 / total as f64
        }
    }

    /// Absolute deviation of the CPU's edge share from its ratio share
    /// (0 = perfectly proportional workload). The two-rank case of
    /// [`edge_balance_error_n`](Self::edge_balance_error_n).
    pub fn edge_balance_error(&self, ratio: Ratio) -> f64 {
        self.rank_balance_error(0, ratio.share(0))
    }

    /// Worst per-rank deviation of the edge share from the target share,
    /// over all ranks.
    pub fn edge_balance_error_n(&self, shares: &crate::Shares) -> f64 {
        (0..self.edges.len())
            .map(|r| self.rank_balance_error(r, shares.share(r)))
            .fold(0.0, f64::max)
    }

    fn rank_balance_error(&self, rank: usize, target: f64) -> f64 {
        let total = self.total_edges() as f64;
        if total == 0.0 {
            return 0.0;
        }
        // Normalize by the target share so a 50% miss on a 3:5 target and a
        // 1:1 target read comparably.
        let actual = self.edges[rank] as f64 / total;
        if target <= 0.0 || target >= 1.0 {
            (actual - target).abs()
        } else {
            (actual - target).abs() / target.min(1.0 - target)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{partition, partition_n, PartitionScheme};
    use crate::Shares;
    use phigraph_graph::generators::small::{cycle, star};

    #[test]
    fn cycle_even_split_stats() {
        let g = cycle(8);
        let p = partition(&g, PartitionScheme::Continuous, Ratio::even(), 0);
        let s = PartitionStats::compute(&g, &p);
        assert_eq!(s.vertices, [4, 4]);
        assert_eq!(s.edges, [4, 4]);
        // Exactly two edges cross the 3->4 and 7->0 boundaries.
        assert_eq!(s.cross_edges, 2);
        assert!((s.cross_fraction() - 0.25).abs() < 1e-12);
        assert!(s.edge_balance_error(Ratio::even()) < 1e-12);
    }

    #[test]
    fn star_continuous_is_totally_imbalanced() {
        let g = star(10);
        let p = partition(&g, PartitionScheme::Continuous, Ratio::even(), 0);
        let s = PartitionStats::compute(&g, &p);
        // All 9 edges source at vertex 0, on the CPU.
        assert_eq!(s.edges, [9, 0]);
        assert!(s.edge_balance_error(Ratio::even()) > 0.9);
    }

    #[test]
    fn empty_graph_stats_are_zero() {
        let g = Csr::from_parts(vec![0], vec![]);
        let p = DevicePartition::single_device(0, 0);
        let s = PartitionStats::compute(&g, &p);
        assert_eq!(s.cross_edges, 0);
        assert_eq!(s.cross_fraction(), 0.0);
    }

    #[test]
    fn nway_stats_cover_every_rank() {
        let g = cycle(12);
        let shares = Shares::new(vec![1, 1, 1]);
        let p = partition_n(&g, PartitionScheme::Continuous, &shares, 0);
        let s = PartitionStats::compute(&g, &p);
        assert_eq!(s.vertices, [4, 4, 4]);
        assert_eq!(s.edges.iter().sum::<u64>(), 12);
        assert!(s.edge_balance_error_n(&shares) < 1e-12);
    }
}
