//! Partition quality metrics: workload balance and cross-edge volume.

use crate::ratio::Ratio;
use crate::scheme::DevicePartition;
use phigraph_graph::Csr;

/// Quality measurements for a device partition.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionStats {
    /// Vertices per device.
    pub vertices: [usize; 2],
    /// Out-edges sourced per device ("the number of edges processed by the
    /// CPU and MIC" — the paper's workload measure).
    pub edges: [u64; 2],
    /// Edges whose source and destination live on different devices.
    pub cross_edges: u64,
}

impl PartitionStats {
    /// Measure a partition against its graph.
    pub fn compute(g: &Csr, p: &DevicePartition) -> Self {
        let mut vertices = [0usize; 2];
        let mut edges = [0u64; 2];
        let mut cross = 0u64;
        for v in 0..g.num_vertices() {
            let dv = p.assign[v] as usize;
            vertices[dv] += 1;
            edges[dv] += g.out_degree(v as u32) as u64;
            for &t in g.neighbors(v as u32) {
                if p.assign[t as usize] as usize != dv {
                    cross += 1;
                }
            }
        }
        PartitionStats {
            vertices,
            edges,
            cross_edges: cross,
        }
    }

    /// Fraction of all edges that cross devices.
    pub fn cross_fraction(&self) -> f64 {
        let total = self.edges[0] + self.edges[1];
        if total == 0 {
            0.0
        } else {
            self.cross_edges as f64 / total as f64
        }
    }

    /// Absolute deviation of the CPU's edge share from its ratio share
    /// (0 = perfectly proportional workload).
    pub fn edge_balance_error(&self, ratio: Ratio) -> f64 {
        let total = (self.edges[0] + self.edges[1]) as f64;
        if total == 0.0 {
            return 0.0;
        }
        // Normalize by the target share so a 50% miss on a 3:5 target and a
        // 1:1 target read comparably.
        let actual = self.edges[0] as f64 / total;
        let target = ratio.share(0);
        if target <= 0.0 || target >= 1.0 {
            (actual - target).abs()
        } else {
            (actual - target).abs() / target.min(1.0 - target)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{partition, PartitionScheme};
    use phigraph_graph::generators::small::{cycle, star};

    #[test]
    fn cycle_even_split_stats() {
        let g = cycle(8);
        let p = partition(&g, PartitionScheme::Continuous, Ratio::even(), 0);
        let s = PartitionStats::compute(&g, &p);
        assert_eq!(s.vertices, [4, 4]);
        assert_eq!(s.edges, [4, 4]);
        // Exactly two edges cross the 3->4 and 7->0 boundaries.
        assert_eq!(s.cross_edges, 2);
        assert!((s.cross_fraction() - 0.25).abs() < 1e-12);
        assert!(s.edge_balance_error(Ratio::even()) < 1e-12);
    }

    #[test]
    fn star_continuous_is_totally_imbalanced() {
        let g = star(10);
        let p = partition(&g, PartitionScheme::Continuous, Ratio::even(), 0);
        let s = PartitionStats::compute(&g, &p);
        // All 9 edges source at vertex 0, on the CPU.
        assert_eq!(s.edges, [9, 0]);
        assert!(s.edge_balance_error(Ratio::even()) > 0.9);
    }

    #[test]
    fn empty_graph_stats_are_zero() {
        let g = Csr::from_parts(vec![0], vec![]);
        let p = DevicePartition::single_device(0, 0);
        let s = PartitionStats::compute(&g, &p);
        assert_eq!(s.cross_edges, 0);
        assert_eq!(s.cross_fraction(), 0.0);
    }
}
