//! Initial bisection by greedy graph growing.
//!
//! On the coarsest graph: grow a region from a seed vertex by repeatedly
//! absorbing the frontier vertex with the best gain (most edge weight into
//! the region) until the region holds the target weight fraction. Several
//! seeds are tried; the lowest-cut balanced result wins.

use super::WGraph;
use phigraph_graph::generators::rng::SplitMix64 as StdRng;

/// Grow one region to `target_frac` of total weight from `seed_vertex`.
/// Returns the side assignment (0 = region, 1 = rest).
fn grow_from(g: &WGraph, target_w: f64, seed_vertex: u32) -> Vec<u8> {
    let n = g.n();
    let mut side = vec![1u8; n];
    let mut in_region = vec![false; n];
    // gain[v] = weight to region − weight to rest (for frontier candidates)
    let mut gain = vec![0.0f32; n];
    let mut frontier: Vec<u32> = Vec::new();

    let mut region_w = 0.0f64;
    let add = |v: u32,
               side: &mut Vec<u8>,
               in_region: &mut Vec<bool>,
               gain: &mut Vec<f32>,
               frontier: &mut Vec<u32>,
               region_w: &mut f64| {
        side[v as usize] = 0;
        in_region[v as usize] = true;
        *region_w += g.vwgt[v as usize] as f64;
        for (u, w) in g.neighbors(v) {
            if !in_region[u as usize] {
                if gain[u as usize] == 0.0 && !frontier.contains(&u) {
                    frontier.push(u);
                }
                gain[u as usize] += w;
            }
        }
    };

    add(
        seed_vertex,
        &mut side,
        &mut in_region,
        &mut gain,
        &mut frontier,
        &mut region_w,
    );

    while region_w < target_w {
        // Pick the frontier vertex with max gain; fall back to any
        // unassigned vertex if the frontier is empty (disconnected graph).
        let next = if let Some((idx, _)) = frontier.iter().enumerate().max_by(|a, b| {
            gain[*a.1 as usize]
                .partial_cmp(&gain[*b.1 as usize])
                .unwrap()
        }) {
            frontier.swap_remove(idx)
        } else if let Some(v) = (0..n as u32).find(|&v| !in_region[v as usize]) {
            v
        } else {
            break;
        };
        if in_region[next as usize] {
            continue;
        }
        add(
            next,
            &mut side,
            &mut in_region,
            &mut gain,
            &mut frontier,
            &mut region_w,
        );
    }
    side
}

/// Bisect `g` so side 0 holds ≈ `target_frac` of the vertex weight. Tries
/// several seeds, returns the assignment with the smallest cut.
pub fn greedy_bisect(g: &WGraph, target_frac: f64, seed: u64, tries: usize) -> Vec<u8> {
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    let target_w = g.total_vwgt() * target_frac.clamp(0.0, 1.0);
    if target_w <= 0.0 {
        return vec![1u8; n];
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: Option<(f64, Vec<u8>)> = None;
    for _ in 0..tries.max(1) {
        let sv = rng.random_range(0..n) as u32;
        let side = grow_from(g, target_w, sv);
        let cut = g.cut(&side);
        if best.as_ref().is_none_or(|(bc, _)| cut < *bc) {
            best = Some((cut, side));
        }
    }
    best.unwrap().1
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_graph::generators::{erdos_renyi::gnm, small::chain};

    #[test]
    fn bisect_hits_weight_target() {
        let g = WGraph::from_csr(&gnm(400, 2400, 3));
        let side = greedy_bisect(&g, 0.5, 1, 4);
        let (w0, w1) = g.side_weights(&side);
        let total = w0 + w1;
        assert!(
            (w0 / total - 0.5).abs() < 0.1,
            "side0 share {} too far from 0.5",
            w0 / total
        );
    }

    #[test]
    fn chain_bisection_cut_is_tiny() {
        // A chain has an obvious 1-edge bisection; greedy growth from any
        // seed should find a small cut.
        let g = WGraph::from_csr(&chain(100));
        let side = greedy_bisect(&g, 0.5, 7, 8);
        assert!(g.cut(&side) <= 3.0, "cut {}", g.cut(&side));
    }

    #[test]
    fn asymmetric_target_respected() {
        let g = WGraph::from_csr(&gnm(400, 2400, 9));
        let side = greedy_bisect(&g, 0.25, 2, 4);
        let (w0, w1) = g.side_weights(&side);
        let share = w0 / (w0 + w1);
        assert!((share - 0.25).abs() < 0.1, "share {share}");
    }

    #[test]
    fn zero_target_puts_everything_on_side_1() {
        let g = WGraph::from_csr(&chain(10));
        let side = greedy_bisect(&g, 0.0, 0, 2);
        assert!(side.iter().all(|&s| s == 1));
    }
}
