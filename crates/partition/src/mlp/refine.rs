//! Boundary Fiduccia–Mattheyses refinement.
//!
//! Classic FM with best-prefix rollback: repeatedly move the highest-gain
//! unlocked boundary vertex (gain = external − internal edge weight),
//! tentatively accepting negative-gain moves, then keep the prefix of the
//! move sequence with the lowest cut that respects the balance tolerance.

use super::WGraph;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(PartialEq)]
struct Entry {
    gain: f32,
    v: u32,
    stamp: u32,
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for Entry {
    fn cmp(&self, o: &Self) -> Ordering {
        self.gain
            .partial_cmp(&o.gain)
            .unwrap_or(Ordering::Equal)
            .then(o.v.cmp(&self.v))
    }
}

/// Refine a 2-way assignment in place. `target_frac` is side 0's desired
/// weight share; `max_passes` bounds the number of FM passes. Returns the
/// cut improvement achieved (≥ 0).
pub fn fm_refine(g: &WGraph, side: &mut [u8], target_frac: f64, max_passes: usize) -> f64 {
    let n = g.n();
    if n < 2 {
        return 0.0;
    }
    let total = g.total_vwgt();
    let target0 = total * target_frac.clamp(0.0, 1.0);
    let max_vwgt = g.vwgt.iter().cloned().fold(0.0f32, f32::max) as f64;
    let tol = (0.02 * total).max(max_vwgt * 1.01);

    let mut total_improvement = 0.0;

    for _pass in 0..max_passes {
        // Gains for every vertex.
        let mut gain = vec![0.0f32; n];
        for v in 0..n as u32 {
            for (u, w) in g.neighbors(v) {
                if side[u as usize] != side[v as usize] {
                    gain[v as usize] += w;
                } else {
                    gain[v as usize] -= w;
                }
            }
        }
        let mut stamp = vec![0u32; n];
        let mut heap = BinaryHeap::new();
        for v in 0..n as u32 {
            // Boundary vertices only (some external weight), plus any
            // vertex when the partition is badly imbalanced.
            if g.neighbors(v)
                .any(|(u, _)| side[u as usize] != side[v as usize])
            {
                heap.push(Entry {
                    gain: gain[v as usize],
                    v,
                    stamp: 0,
                });
            }
        }

        let (mut w0, _w1) = g.side_weights(side);
        let mut locked = vec![false; n];
        let mut moves: Vec<u32> = Vec::new();
        let mut cut_delta = 0.0f64; // negative = improvement
        let mut best_delta = 0.0f64;
        let mut best_len = 0usize;
        let move_limit = n.min(4 * (n / 2).max(64));
        let start_dev = (w0 - target0).abs();

        while moves.len() < move_limit {
            // Pop the best current entry (lazy deletion of stale entries).
            let Some(e) = heap.pop() else { break };
            let v = e.v as usize;
            if locked[v] || e.stamp != stamp[v] {
                continue;
            }
            // Balance check: moving v flips its weight between sides.
            let vw = g.vwgt[v] as f64;
            let new_w0 = if side[v] == 0 { w0 - vw } else { w0 + vw };
            let new_dev = (new_w0 - target0).abs();
            let cur_dev = (w0 - target0).abs();
            if new_dev > tol.max(cur_dev) {
                locked[v] = true; // cannot move this pass
                continue;
            }
            // Apply the move.
            let from = side[v];
            side[v] = 1 - from;
            w0 = new_w0;
            locked[v] = true;
            cut_delta -= gain[v] as f64;
            moves.push(v as u32);
            // Update neighbor gains.
            for (u, w) in g.neighbors(v as u32) {
                let u = u as usize;
                if locked[u] {
                    continue;
                }
                if side[u] == from {
                    gain[u] += 2.0 * w;
                } else {
                    gain[u] -= 2.0 * w;
                }
                stamp[u] += 1;
                heap.push(Entry {
                    gain: gain[u],
                    v: u as u32,
                    stamp: stamp[u],
                });
            }
            // Record the best prefix (strictly better cut, or equal cut
            // with better balance).
            let dev = (w0 - target0).abs();
            if cut_delta < best_delta - 1e-9
                || (cut_delta <= best_delta + 1e-9 && dev < start_dev && best_len == 0)
            {
                best_delta = cut_delta;
                best_len = moves.len();
            }
        }

        // Roll back moves beyond the best prefix.
        for &v in moves[best_len..].iter().rev() {
            let v = v as usize;
            side[v] = 1 - side[v];
        }
        if best_len == 0 {
            break; // pass achieved nothing
        }
        total_improvement += -best_delta;
    }
    total_improvement
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_graph::generators::rng::SplitMix64 as StdRng;
    use phigraph_graph::generators::{erdos_renyi::gnm, small::chain};

    #[test]
    fn refinement_never_increases_cut() {
        let g = WGraph::from_csr(&gnm(300, 1800, 4));
        let mut rng = StdRng::seed_from_u64(11);
        let mut side: Vec<u8> = (0..g.n()).map(|_| rng.random_range(0..2) as u8).collect();
        let before = g.cut(&side);
        fm_refine(&g, &mut side, 0.5, 4);
        let after = g.cut(&side);
        assert!(after <= before + 1e-6, "cut rose {before} -> {after}");
    }

    #[test]
    fn refinement_substantially_improves_random_split() {
        let g = WGraph::from_csr(&chain(200));
        // Alternating split has ~199 cut edges; optimum is 1.
        let mut side: Vec<u8> = (0..200).map(|v| (v % 2) as u8).collect();
        let before = g.cut(&side);
        fm_refine(&g, &mut side, 0.5, 12);
        let after = g.cut(&side);
        assert!(
            after < before / 3.0,
            "chain cut should collapse: {before} -> {after}"
        );
    }

    #[test]
    fn balance_is_respected() {
        let g = WGraph::from_csr(&gnm(400, 2400, 8));
        let mut rng = StdRng::seed_from_u64(3);
        let mut side: Vec<u8> = (0..g.n()).map(|_| rng.random_range(0..2) as u8).collect();
        fm_refine(&g, &mut side, 0.5, 6);
        let (w0, w1) = g.side_weights(&side);
        let share = w0 / (w0 + w1);
        assert!((share - 0.5).abs() < 0.08, "share {share}");
    }

    #[test]
    fn tiny_graphs_are_noops() {
        let g = WGraph::from_csr(&chain(1));
        let mut side = vec![0u8];
        assert_eq!(fm_refine(&g, &mut side, 0.5, 3), 0.0);
    }
}
