//! Direct k-way boundary refinement.
//!
//! Recursive bisection optimizes each split in isolation; a final greedy
//! k-way pass moves boundary vertices to whichever block they have the most
//! edge weight toward, whenever the move strictly reduces the cut and keeps
//! every block within the balance tolerance. This is the light-weight
//! analogue of Metis' k-way refinement and measurably lowers the
//! cross-block volume the hybrid scheme inherits.

use super::WGraph;

/// Refine a k-way assignment in place. Returns the total cut-weight
/// improvement (≥ 0). `passes` bounds the number of sweeps; each sweep
/// visits every boundary vertex once.
pub fn refine_kway(g: &WGraph, blocks: &mut [u32], k: usize, passes: usize) -> f64 {
    let n = g.n();
    if n == 0 || k < 2 {
        return 0.0;
    }
    // Block weights and the balance envelope (same 2% + max-vertex slack
    // the bisection refinement uses).
    let mut weight = vec![0f64; k];
    for v in 0..n {
        weight[blocks[v] as usize] += g.vwgt[v] as f64;
    }
    let total: f64 = weight.iter().sum();
    let target = total / k as f64;
    let max_vwgt = g.vwgt.iter().cloned().fold(0.0f32, f32::max) as f64;
    let ceiling = target + (0.02 * total).max(1.01 * max_vwgt);
    let floor = (target - (0.02 * total).max(1.01 * max_vwgt)).max(0.0);

    let mut improvement = 0.0f64;
    let mut conn = vec![0f32; k]; // edge weight from v into each block
    for _ in 0..passes.max(1) {
        let mut moved = 0usize;
        for v in 0..n as u32 {
            let from = blocks[v as usize] as usize;
            // Connectivity of v to each adjacent block.
            let mut touched: Vec<usize> = Vec::with_capacity(8);
            for (u, w) in g.neighbors(v) {
                let b = blocks[u as usize] as usize;
                if conn[b] == 0.0 {
                    touched.push(b);
                }
                conn[b] += w;
            }
            // Best alternative block by gain = conn[to] - conn[from].
            let mut best: Option<(usize, f32)> = None;
            for &b in &touched {
                if b == from {
                    continue;
                }
                let gain = conn[b] - conn[from];
                if gain > 0.0 && best.is_none_or(|(_, bg)| gain > bg) {
                    best = Some((b, gain));
                }
            }
            if let Some((to, gain)) = best {
                let vw = g.vwgt[v as usize] as f64;
                if weight[to] + vw <= ceiling && weight[from] - vw >= floor {
                    blocks[v as usize] = to as u32;
                    weight[from] -= vw;
                    weight[to] += vw;
                    improvement += gain as f64;
                    moved += 1;
                }
            }
            for &b in &touched {
                conn[b] = 0.0;
            }
        }
        if moved == 0 {
            break;
        }
    }
    improvement
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::kway::block_cut;
    use crate::mlp::partition_kway;
    use phigraph_graph::generators::community::{community_graph, CommunityConfig};
    use phigraph_graph::generators::erdos_renyi::gnm;
    use phigraph_graph::generators::rng::SplitMix64 as StdRng;

    fn kway_cut(g: &WGraph, blocks: &[u32]) -> f64 {
        let mut cut = 0.0;
        for v in 0..g.n() as u32 {
            for (u, w) in g.neighbors(v) {
                if u > v && blocks[v as usize] != blocks[u as usize] {
                    cut += w as f64;
                }
            }
        }
        cut
    }

    #[test]
    fn refinement_never_increases_cut_or_breaks_balance() {
        let csr = gnm(500, 3000, 4);
        let g = WGraph::from_csr(&csr);
        let k = 8;
        let mut rng = StdRng::seed_from_u64(2);
        let mut blocks: Vec<u32> = (0..g.n()).map(|_| rng.random_range(0..k as u32)).collect();
        let before = kway_cut(&g, &blocks);
        let gain = refine_kway(&g, &mut blocks, k, 4);
        let after = kway_cut(&g, &blocks);
        assert!(after <= before + 1e-3, "cut rose {before} -> {after}");
        assert!(
            (before - after - gain).abs() < 1e-2,
            "reported gain {gain} vs actual {}",
            before - after
        );
        // Balance within the envelope.
        let mut weight = vec![0f64; k];
        for v in 0..g.n() {
            weight[blocks[v] as usize] += g.vwgt[v] as f64;
        }
        let target: f64 = weight.iter().sum::<f64>() / k as f64;
        for (b, &w) in weight.iter().enumerate() {
            assert!(w < 1.6 * target, "block {b} weight {w} vs target {target}");
        }
    }

    #[test]
    fn refinement_substantially_improves_random_assignment_on_communities() {
        let (csr, _) = community_graph(&CommunityConfig {
            num_vertices: 600,
            num_communities: 8,
            intra_degree: 10,
            inter_degree: 0.2,
            weighted: false,
            seed: 6,
        });
        let g = WGraph::from_csr(&csr);
        let mut rng = StdRng::seed_from_u64(5);
        let mut blocks: Vec<u32> = (0..g.n()).map(|_| rng.random_range(0u32..8)).collect();
        let before = kway_cut(&g, &blocks);
        refine_kway(&g, &mut blocks, 8, 8);
        let after = kway_cut(&g, &blocks);
        assert!(
            after < 0.7 * before,
            "community structure should allow large gains: {before} -> {after}"
        );
    }

    #[test]
    fn refinement_on_top_of_recursive_bisection_does_not_regress() {
        let csr = gnm(800, 6400, 7);
        let blocks = partition_kway(&csr, 16, 3);
        let g = WGraph::from_csr(&csr);
        let mut refined = blocks.clone();
        refine_kway(&g, &mut refined, 16, 2);
        assert!(block_cut(&csr, &refined) <= block_cut(&csr, &blocks));
    }

    #[test]
    fn degenerate_inputs_are_noops() {
        let csr = gnm(10, 20, 1);
        let g = WGraph::from_csr(&csr);
        let mut blocks = vec![0u32; 10];
        assert_eq!(refine_kway(&g, &mut blocks, 1, 3), 0.0);
    }
}
