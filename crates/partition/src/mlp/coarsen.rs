//! Graph coarsening: collapse a matching into a coarse graph.

use super::matching::{coarse_count, heavy_edge_matching};
use super::WGraph;
use std::collections::HashMap;

/// One level of the coarsening hierarchy.
#[derive(Clone, Debug)]
pub struct CoarseLevel {
    /// The coarse graph.
    pub graph: WGraph,
    /// Fine-vertex → coarse-vertex map.
    pub map: Vec<u32>,
}

/// Collapse `mate` pairs of `g` into a coarse graph: matched pairs become
/// one vertex with summed vertex weight; parallel coarse edges merge with
/// summed edge weight; self-edges are dropped.
pub fn contract(g: &WGraph, mate: &[u32]) -> CoarseLevel {
    let n = g.n();
    let mut map = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n {
        if map[v] != u32::MAX {
            continue;
        }
        map[v] = next;
        let m = mate[v] as usize;
        if m != v {
            map[m] = next;
        }
        next += 1;
    }
    let cn = next as usize;

    let mut vwgt = vec![0.0f32; cn];
    for v in 0..n {
        vwgt[map[v] as usize] += g.vwgt[v];
    }

    // Aggregate coarse edges per coarse source.
    let mut xadj = Vec::with_capacity(cn + 1);
    let mut adj: Vec<u32> = Vec::new();
    let mut ewgt: Vec<f32> = Vec::new();
    xadj.push(0);

    // Group fine vertices by coarse id.
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); cn];
    for v in 0..n {
        members[map[v] as usize].push(v as u32);
    }

    let mut acc: HashMap<u32, f32> = HashMap::new();
    for (c, group) in members.iter().enumerate() {
        acc.clear();
        for &v in group {
            for (u, w) in g.neighbors(v) {
                let cu = map[u as usize];
                if cu as usize != c {
                    *acc.entry(cu).or_insert(0.0) += w;
                }
            }
        }
        let mut entries: Vec<(u32, f32)> = acc.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_unstable_by_key(|e| e.0);
        for (u, w) in entries {
            adj.push(u);
            ewgt.push(w);
        }
        xadj.push(adj.len());
    }

    CoarseLevel {
        graph: WGraph {
            xadj,
            adj,
            ewgt,
            vwgt,
        },
        map,
    }
}

/// Coarsen repeatedly until the graph has at most `target_n` vertices or
/// the reduction stalls (< 10% shrink). Returns the hierarchy, finest
/// first; empty if `g` is already small enough.
pub fn coarsen_to(g: &WGraph, target_n: usize, seed: u64) -> Vec<CoarseLevel> {
    let mut levels: Vec<CoarseLevel> = Vec::new();
    let mut cur = g.clone();
    let mut s = seed;
    while cur.n() > target_n {
        let mate = heavy_edge_matching(&cur, s);
        let cn = coarse_count(&mate);
        if cn as f64 > cur.n() as f64 * 0.95 {
            break; // stalled (e.g. star graphs match poorly)
        }
        let level = contract(&cur, &mate);
        cur = level.graph.clone();
        levels.push(level);
        s = s.wrapping_add(0x9E37_79B9);
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_graph::generators::{erdos_renyi::gnm, small::cycle};

    #[test]
    fn contract_preserves_total_vertex_weight() {
        let g = WGraph::from_csr(&cycle(12));
        let mate = heavy_edge_matching(&g, 1);
        let lvl = contract(&g, &mate);
        assert!((lvl.graph.total_vwgt() - g.total_vwgt()).abs() < 1e-6);
    }

    #[test]
    fn contract_keeps_symmetry() {
        let g = WGraph::from_csr(&gnm(200, 800, 3));
        let mate = heavy_edge_matching(&g, 5);
        let c = contract(&g, &mate).graph;
        for v in 0..c.n() as u32 {
            for (u, w) in c.neighbors(v) {
                assert_ne!(u, v, "self edge survived");
                let back = c.neighbors(u).find(|&(x, _)| x == v);
                assert_eq!(back, Some((v, w)));
            }
        }
    }

    #[test]
    fn coarsen_reaches_target() {
        let g = WGraph::from_csr(&gnm(1000, 8000, 7));
        let levels = coarsen_to(&g, 50, 1);
        assert!(!levels.is_empty());
        let last = &levels.last().unwrap().graph;
        assert!(last.n() <= 120, "coarsest has {} vertices", last.n());
        // Weight conserved end to end.
        assert!((last.total_vwgt() - g.total_vwgt()).abs() / g.total_vwgt() < 1e-5);
    }

    #[test]
    fn maps_compose_over_levels() {
        let g = WGraph::from_csr(&gnm(300, 1500, 2));
        let levels = coarsen_to(&g, 30, 9);
        // Follow vertex 0 down the hierarchy; must stay in range.
        let mut id = 0u32;
        for lvl in &levels {
            id = lvl.map[id as usize];
            assert!((id as usize) < lvl.graph.n());
        }
    }

    #[test]
    fn already_small_graph_yields_no_levels() {
        let g = WGraph::from_csr(&cycle(8));
        assert!(coarsen_to(&g, 20, 0).is_empty());
    }
}
