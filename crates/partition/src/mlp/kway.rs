//! Multilevel bisection and recursive k-way partitioning.

use super::coarsen::coarsen_to;
use super::initial::greedy_bisect;
use super::kway_refine::refine_kway;
use super::refine::fm_refine;
use super::WGraph;
use phigraph_graph::Csr;

/// Coarsest-graph size at which bisection switches to the direct greedy
/// algorithm.
const COARSEST_N: usize = 64;
/// FM passes at each uncoarsening level.
const REFINE_PASSES: usize = 6;

/// Multilevel 2-way partition of `g`: coarsen, bisect the coarsest graph,
/// project and refine back up. Side 0 targets `target_frac` of the total
/// vertex weight.
pub fn multilevel_bisect(g: &WGraph, target_frac: f64, seed: u64) -> Vec<u8> {
    if g.n() == 0 {
        return Vec::new();
    }
    let levels = coarsen_to(g, COARSEST_N, seed);
    let coarsest = levels.last().map(|l| &l.graph).unwrap_or(g);
    let mut side = greedy_bisect(coarsest, target_frac, seed, 6);
    fm_refine(coarsest, &mut side, target_frac, REFINE_PASSES);

    // Project the assignment back through the hierarchy, refining at each
    // finer level. levels[i].map sends level-(i-1) vertices (or the input
    // graph's, for i = 0) to level-i coarse ids.
    for i in (0..levels.len()).rev() {
        let fine_graph = if i == 0 { g } else { &levels[i - 1].graph };
        let map = &levels[i].map;
        let mut fine_side = vec![0u8; fine_graph.n()];
        for v in 0..fine_graph.n() {
            fine_side[v] = side[map[v] as usize];
        }
        fm_refine(fine_graph, &mut fine_side, target_frac, REFINE_PASSES);
        side = fine_side;
    }
    side
}

/// Extract the sub-WGraph induced by vertices with `side[v] == which`.
/// Returns the subgraph and the local→parent vertex map.
fn extract(g: &WGraph, side: &[u8], which: u8) -> (WGraph, Vec<u32>) {
    let n = g.n();
    let mut local_of = vec![u32::MAX; n];
    let mut parent_of: Vec<u32> = Vec::new();
    for v in 0..n {
        if side[v] == which {
            local_of[v] = parent_of.len() as u32;
            parent_of.push(v as u32);
        }
    }
    let mut xadj = Vec::with_capacity(parent_of.len() + 1);
    let mut adj = Vec::new();
    let mut ewgt = Vec::new();
    let mut vwgt = Vec::with_capacity(parent_of.len());
    xadj.push(0);
    for &pv in &parent_of {
        vwgt.push(g.vwgt[pv as usize]);
        for (u, w) in g.neighbors(pv) {
            let lu = local_of[u as usize];
            if lu != u32::MAX {
                adj.push(lu);
                ewgt.push(w);
            }
        }
        xadj.push(adj.len());
    }
    (
        WGraph {
            xadj,
            adj,
            ewgt,
            vwgt,
        },
        parent_of,
    )
}

fn recurse(g: &WGraph, parent_of: &[u32], k: usize, first_block: u32, seed: u64, out: &mut [u32]) {
    if k <= 1 || g.n() == 0 {
        for &pv in parent_of {
            out[pv as usize] = first_block;
        }
        return;
    }
    let kl = k / 2;
    let target = kl as f64 / k as f64;
    let side = multilevel_bisect(g, target, seed);
    let (g0, p0) = extract(g, &side, 0);
    let (g1, p1) = extract(g, &side, 1);
    // Lift local parent maps to the original graph's ids.
    let lift = |p: &[u32]| -> Vec<u32> { p.iter().map(|&v| parent_of[v as usize]).collect() };
    let lifted0 = lift(&p0);
    let lifted1 = lift(&p1);
    recurse(&g0, &lifted0, kl, first_block, seed.wrapping_add(1), out);
    recurse(
        &g1,
        &lifted1,
        k - kl,
        first_block + kl as u32,
        seed.wrapping_add(2),
        out,
    );
}

/// Partition `g` into `k` blocks of roughly equal vertex weight with small
/// cut (the Metis-substitute entry point). Returns the block id per vertex.
pub fn partition_kway(g: &Csr, k: usize, seed: u64) -> Vec<u32> {
    assert!(k >= 1, "k must be positive");
    let n = g.num_vertices();
    let mut out = vec![0u32; n];
    if k == 1 || n == 0 {
        return out;
    }
    let wg = WGraph::from_csr(g);
    let parents: Vec<u32> = (0..n as u32).collect();
    let k = k.min(n.max(1));
    recurse(&wg, &parents, k, 0, seed, &mut out);
    // Direct k-way polish over the recursive-bisection result.
    refine_kway(&wg, &mut out, k, 2);
    out
}

/// Edge cut of a k-way block assignment on the original directed graph.
pub fn block_cut(g: &Csr, blocks: &[u32]) -> usize {
    g.edge_iter()
        .filter(|&(s, d)| blocks[s as usize] != blocks[d as usize])
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_graph::generators::community::{community_graph, CommunityConfig};
    use phigraph_graph::generators::erdos_renyi::gnm;
    use phigraph_graph::generators::rng::SplitMix64 as StdRng;
    use phigraph_graph::generators::small::chain;

    #[test]
    fn bisect_chain_finds_small_cut() {
        let wg = WGraph::from_csr(&chain(256));
        let side = multilevel_bisect(&wg, 0.5, 1);
        assert!(wg.cut(&side) <= 4.0, "cut {}", wg.cut(&side));
        let (w0, w1) = wg.side_weights(&side);
        assert!((w0 / (w0 + w1) - 0.5).abs() < 0.05);
    }

    #[test]
    fn kway_covers_all_blocks_and_balances() {
        let g = gnm(1000, 6000, 5);
        let k = 16;
        let blocks = partition_kway(&g, k, 7);
        let mut weight = vec![0f64; k];
        for v in 0..g.num_vertices() {
            assert!((blocks[v] as usize) < k);
            weight[blocks[v] as usize] += 1.0 + g.out_degree(v as u32) as f64;
        }
        let total: f64 = weight.iter().sum();
        let ideal = total / k as f64;
        for (b, &w) in weight.iter().enumerate() {
            assert!(
                w > 0.3 * ideal && w < 2.0 * ideal,
                "block {b} weight {w} vs ideal {ideal}"
            );
        }
    }

    #[test]
    fn kway_cut_beats_random_assignment() {
        let g = gnm(800, 6400, 9);
        let k = 8;
        let blocks = partition_kway(&g, k, 3);
        let mlp_cut = block_cut(&g, &blocks);
        let mut rng = StdRng::seed_from_u64(1);
        let random: Vec<u32> = (0..g.num_vertices())
            .map(|_| rng.random_range(0..k as u32))
            .collect();
        let random_cut = block_cut(&g, &random);
        assert!(
            mlp_cut < random_cut,
            "MLP cut {mlp_cut} should beat random {random_cut}"
        );
    }

    #[test]
    fn kway_respects_community_structure() {
        let (g, labels) = community_graph(&CommunityConfig {
            num_vertices: 800,
            num_communities: 8,
            intra_degree: 10,
            inter_degree: 0.2,
            weighted: false,
            seed: 4,
        });
        let blocks = partition_kway(&g, 8, 11);
        // Most edges should stay within blocks: community structure gives
        // an easy low-cut solution.
        let cut = block_cut(&g, &blocks);
        let frac = cut as f64 / g.num_edges() as f64;
        assert!(frac < 0.35, "cut fraction {frac}");
        // Sanity: labels exist and intra-community edges dominate.
        let intra = g
            .edge_iter()
            .filter(|&(s, d)| labels[s as usize] == labels[d as usize])
            .count();
        assert!(intra * 2 > g.num_edges());
    }

    #[test]
    fn k_equals_one_is_trivial() {
        let g = chain(10);
        assert!(partition_kway(&g, 1, 0).iter().all(|&b| b == 0));
    }

    #[test]
    fn kway_deterministic_for_seed() {
        let g = gnm(300, 1500, 2);
        assert_eq!(partition_kway(&g, 4, 5), partition_kway(&g, 4, 5));
    }
}
