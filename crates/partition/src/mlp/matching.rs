//! Heavy-edge matching for the coarsening phase.

use super::WGraph;
use phigraph_graph::generators::rng::SplitMix64 as StdRng;

/// Sentinel: vertex is unmatched.
pub const UNMATCHED: u32 = u32::MAX;

/// Compute a heavy-edge matching: visit vertices in random order; an
/// unmatched vertex matches its unmatched neighbor with the heaviest edge
/// (ties broken by lower id). Isolated or fully-matched-neighborhood
/// vertices match themselves. Returns `mate[v]` (== `v` for self-matched).
pub fn heavy_edge_matching(g: &WGraph, seed: u64) -> Vec<u32> {
    let n = g.n();
    let mut mate = vec![UNMATCHED; n];
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    rng.shuffle(&mut order);

    for &v in &order {
        if mate[v as usize] != UNMATCHED {
            continue;
        }
        let mut best: Option<(u32, f32)> = None;
        for (u, w) in g.neighbors(v) {
            if u != v && mate[u as usize] == UNMATCHED {
                match best {
                    Some((bu, bw)) if w < bw || (w == bw && u >= bu) => {}
                    _ => best = Some((u, w)),
                }
            }
        }
        match best {
            Some((u, _)) => {
                mate[v as usize] = u;
                mate[u as usize] = v;
            }
            None => mate[v as usize] = v,
        }
    }
    mate
}

/// Number of coarse vertices the matching yields.
pub fn coarse_count(mate: &[u32]) -> usize {
    mate.iter()
        .enumerate()
        .filter(|&(v, &m)| m as usize >= v)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_graph::generators::small::{chain, cycle};

    fn check_valid(mate: &[u32]) {
        for (v, &m) in mate.iter().enumerate() {
            assert_ne!(m, UNMATCHED, "vertex {v} left unmatched");
            assert_eq!(
                mate[m as usize] as usize, v,
                "matching not symmetric at {v}"
            );
        }
    }

    #[test]
    fn matching_is_valid_on_cycle() {
        let g = WGraph::from_csr(&cycle(10));
        let mate = heavy_edge_matching(&g, 1);
        check_valid(&mate);
        // A cycle of 10 should match at least 3 pairs.
        let pairs = mate
            .iter()
            .enumerate()
            .filter(|&(v, &m)| (m as usize) > v)
            .count();
        assert!(pairs >= 3, "only {pairs} pairs matched");
    }

    #[test]
    fn matching_is_valid_on_chain() {
        let g = WGraph::from_csr(&chain(17));
        let mate = heavy_edge_matching(&g, 9);
        check_valid(&mate);
    }

    #[test]
    fn heavy_edges_preferred() {
        // Triangle 0-1 (w=1 via single edge), 0-2 with doubled edge (w=2).
        let mut el = phigraph_graph::EdgeList::new(3);
        el.push(0, 1);
        el.push(0, 2);
        el.push(2, 0); // doubles 0<->2 multiplicity
        let g = WGraph::from_csr(&phigraph_graph::Csr::from_edge_list(&el));
        for seed in 0..8 {
            let mate = heavy_edge_matching(&g, seed);
            check_valid(&mate);
            // Whenever 0 is processed first it must pick 2 (heavier).
            if mate[0] != 1 {
                assert_eq!(mate[0], 2);
            }
        }
    }

    #[test]
    fn coarse_count_halves_cycle() {
        let g = WGraph::from_csr(&cycle(16));
        let mate = heavy_edge_matching(&g, 3);
        let c = coarse_count(&mate);
        assert!((8..16).contains(&c));
    }

    #[test]
    fn isolated_vertices_self_match() {
        let mut el = phigraph_graph::EdgeList::new(4);
        el.push(0, 1);
        let g = WGraph::from_csr(&phigraph_graph::Csr::from_edge_list(&el));
        let mate = heavy_edge_matching(&g, 0);
        assert_eq!(mate[2], 2);
        assert_eq!(mate[3], 3);
    }
}
