//! Multilevel graph partitioner — the Metis substitute.
//!
//! The paper feeds its hybrid scheme with "the min-connectivity volume
//! partitioning scheme provided by the Metis software". Metis is replaced
//! here by a from-scratch multilevel k-way partitioner using the classic
//! recipe (Karypis & Kumar):
//!
//! 1. **Coarsening** ([`matching`], [`coarsen`]) — heavy-edge matching
//!    collapses matched pairs, aggregating vertex and edge weights, until
//!    the graph is small.
//! 2. **Initial bisection** ([`initial`]) — greedy graph growing from
//!    several seeds, keeping the best balanced cut.
//! 3. **Refinement** ([`refine`]) — boundary Fiduccia–Mattheyses passes at
//!    every uncoarsening level.
//! 4. **K-way** ([`kway`]) — recursive bisection with proportional target
//!    weights, finished by a direct greedy k-way boundary pass
//!    ([`kway_refine`]).
//!
//! The partitioner works on an undirected weighted view ([`WGraph`]); vertex
//! weights default to `1 + out_degree` of the original directed graph so
//! that "the computation ratio [stays] consistent with the expected
//! partitioning ratio" when blocks are dealt by weight.

pub mod coarsen;
pub mod initial;
pub mod kway;
pub mod kway_refine;
pub mod matching;
pub mod refine;

use phigraph_graph::Csr;

pub use kway::partition_kway;

/// Undirected weighted working graph for the partitioner (CSR adjacency
/// with parallel edge weights and per-vertex weights).
#[derive(Clone, Debug, PartialEq)]
pub struct WGraph {
    /// Adjacency offsets (`n + 1` entries).
    pub xadj: Vec<usize>,
    /// Neighbor list.
    pub adj: Vec<u32>,
    /// Edge weights, parallel to `adj`.
    pub ewgt: Vec<f32>,
    /// Vertex weights.
    pub vwgt: Vec<f32>,
}

impl WGraph {
    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Neighbors of `v` with edge weights.
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, f32)> + '_ {
        let r = self.xadj[v as usize]..self.xadj[v as usize + 1];
        self.adj[r.clone()]
            .iter()
            .copied()
            .zip(self.ewgt[r].iter().copied())
    }

    /// Total vertex weight.
    pub fn total_vwgt(&self) -> f64 {
        self.vwgt.iter().map(|&w| w as f64).sum()
    }

    /// Build the undirected weighted view of a directed graph. Vertex
    /// weight is `1 + out_degree` (the workload proxy the hybrid scheme
    /// balances); edge weight is the multiplicity of the (undirected) pair.
    pub fn from_csr(g: &Csr) -> Self {
        let (sym, ewgt) = g.symmetrized_weighted();
        let vwgt = (0..g.num_vertices())
            .map(|v| 1.0 + g.out_degree(v as u32) as f32)
            .collect();
        WGraph {
            xadj: sym.offsets.clone(),
            adj: sym.targets.clone(),
            ewgt,
            vwgt,
        }
    }

    /// Edge cut of a 2-way assignment.
    pub fn cut(&self, side: &[u8]) -> f64 {
        let mut cut = 0.0;
        for v in 0..self.n() as u32 {
            for (u, w) in self.neighbors(v) {
                if u > v && side[v as usize] != side[u as usize] {
                    cut += w as f64;
                }
            }
        }
        cut
    }

    /// Vertex-weight sums per side of a 2-way assignment.
    pub fn side_weights(&self, side: &[u8]) -> (f64, f64) {
        let mut w = [0.0f64; 2];
        for v in 0..self.n() {
            w[side[v] as usize] += self.vwgt[v] as f64;
        }
        (w[0], w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_graph::generators::small::{cycle, paper_example};

    #[test]
    fn from_csr_builds_symmetric_view() {
        let g = paper_example();
        let wg = WGraph::from_csr(&g);
        assert_eq!(wg.n(), 16);
        // Undirected view: every neighbor relation must be mutual.
        for v in 0..wg.n() as u32 {
            for (u, w) in wg.neighbors(v) {
                let back = wg.neighbors(u).find(|&(x, _)| x == v);
                assert_eq!(back, Some((v, w)), "edge {v}<->{u}");
            }
        }
        // Vertex weights reflect out-degrees.
        assert_eq!(wg.vwgt[9], 1.0 + 4.0);
        assert_eq!(wg.vwgt[3], 1.0);
    }

    #[test]
    fn cut_and_side_weights() {
        let wg = WGraph::from_csr(&cycle(4));
        // Split {0,1} vs {2,3}: cut edges are 1-2 and 3-0.
        let side = vec![0u8, 0, 1, 1];
        assert_eq!(wg.cut(&side), 2.0);
        let (w0, w1) = wg.side_weights(&side);
        assert_eq!(w0, w1);
    }
}
