//! The partitioning-file format.
//!
//! The paper's system takes "a graph partitioning file indicating which
//! device each vertex belongs to" as its second input, produced by "a
//! separate module". Format: a header `n`, then one rank id per line, in
//! vertex order. The paper's files use ids 0 and 1; the N-rank fabric
//! accepts any id below [`MAX_RANKS`](crate::MAX_RANKS).

use crate::scheme::{DevicePartition, PartitionScheme, MAX_RANKS};
use crate::shares::Shares;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// Write a partition to the text format.
pub fn write_partition<W: Write>(p: &DevicePartition, out: W) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    writeln!(w, "{}", p.assign.len())?;
    for &d in &p.assign {
        writeln!(w, "{d}")?;
    }
    w.flush()
}

/// Read a partition from the text format. The shares and scheme of the
/// file are unknown; the returned partition carries the measured per-rank
/// vertex counts as shares and `Continuous` as a placeholder scheme. The
/// rank count is `max id + 1`, floored at two.
pub fn read_partition<R: Read>(input: R) -> io::Result<DevicePartition> {
    let mut lines = BufReader::new(input).lines();
    let n: usize = lines
        .next()
        .ok_or_else(|| bad("empty partition file"))??
        .trim()
        .parse()
        .map_err(|_| bad("bad vertex count"))?;
    let mut assign = Vec::with_capacity(n);
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        let d: u8 = t.parse().map_err(|_| bad(&format!("bad rank id {t:?}")))?;
        if d as usize >= MAX_RANKS {
            return Err(bad(&format!(
                "rank id {d} out of range (max {})",
                MAX_RANKS - 1
            )));
        }
        assign.push(d);
    }
    if assign.len() != n {
        return Err(bad(&format!(
            "expected {n} assignments, found {}",
            assign.len()
        )));
    }
    let ranks = assign
        .iter()
        .map(|&d| d as usize + 1)
        .max()
        .unwrap_or(0)
        .max(2);
    let mut counts = vec![0u32; ranks];
    for &d in &assign {
        counts[d as usize] += 1;
    }
    Ok(DevicePartition {
        assign,
        shares: if counts.iter().all(|&c| c == 0) {
            Shares::even(ranks)
        } else {
            Shares::new(counts)
        },
        scheme: PartitionScheme::Continuous,
    })
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio::Ratio;
    use crate::scheme::{partition, partition_n};
    use phigraph_graph::generators::small::cycle;

    #[test]
    fn round_trip() {
        let g = cycle(10);
        let p = partition(&g, PartitionScheme::RoundRobin, Ratio::new(2, 3), 0);
        let mut buf = Vec::new();
        write_partition(&p, &mut buf).unwrap();
        let q = read_partition(&buf[..]).unwrap();
        assert_eq!(q.assign, p.assign);
        assert_eq!(q.num_ranks(), 2);
    }

    #[test]
    fn nway_round_trip() {
        let g = cycle(12);
        let p = partition_n(
            &g,
            PartitionScheme::RoundRobin,
            &Shares::new(vec![1, 1, 2]),
            0,
        );
        let mut buf = Vec::new();
        write_partition(&p, &mut buf).unwrap();
        let q = read_partition(&buf[..]).unwrap();
        assert_eq!(q.assign, p.assign);
        assert_eq!(q.num_ranks(), 3);
        assert_eq!(q.counts(), p.counts());
    }

    #[test]
    fn rejects_wrong_count() {
        assert!(read_partition(&b"3\n0\n1\n"[..]).is_err());
    }

    #[test]
    fn rejects_out_of_range_rank() {
        assert!(read_partition(&b"1\n64\n"[..]).is_err());
        assert!(read_partition(&b"1\nx\n"[..]).is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(read_partition(&b""[..]).is_err());
    }
}
